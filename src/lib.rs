//! # LTE — Learn to Explore
//!
//! A complete Rust implementation of *"Learn to Explore: on Bootstrapping
//! Interactive Data Exploration with Meta-learning"* (ICDE 2023): an
//! explore-by-example IDE system whose per-subspace neural classifiers are
//! meta-trained offline on automatically generated tasks, so that a
//! handful of user labels suffices online.
//!
//! This crate is an umbrella re-exporting the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`data`] | `lte-data` | columnar tables, synthetic SDSS/CAR datasets, subspaces |
//! | [`geom`] | `lte-geom` | convex hulls, region unions, DSM polytopes |
//! | [`cluster`] | `lte-cluster` | k-means, proximity matrices |
//! | [`nn`] | `lte-nn` | dense networks with manual backprop, flat params |
//! | [`preprocess`] | `lte-preprocess` | GMM / Jenks multi-modal attribute encoding |
//! | [`baselines`] | `lte-baselines` | SMO SVM, AL-SVM, factorized DSM |
//! | [`core`] | `lte-core` | meta-tasks, memory-augmented meta-learning, pipeline |
//! | [`serve`] | `lte-serve` | concurrent multi-session exploration engine |
//!
//! ## Quickstart
//!
//! ```no_run
//! use lte::prelude::*;
//!
//! // A database to explore (synthetic SDSS-like sky survey).
//! let dataset = Dataset::sdss(20_000, 42);
//!
//! // Offline: decompose into 2D subspaces and meta-train (unsupervised).
//! let subspaces = decompose_sequential(4, 2);
//! let (pipeline, report) =
//!     LtePipeline::offline(&dataset.table, subspaces, LteConfig::reduced(), 42);
//! println!("meta-trained in {:.1}s", report.train_seconds);
//!
//! // Online: a simulated user with an unknown interest region.
//! let truth = pipeline.generate_truth(UisMode::new(4, 8), 7, 0.2, 0.9);
//! let pool: Vec<Vec<f64>> = (0..1000).map(|i| dataset.table.row(i).unwrap()).collect();
//! let outcome = pipeline.explore(&truth, &pool, Variant::MetaStar, 1);
//! println!("F1 after {} labels: {:.3}", outcome.labels_used, outcome.f1());
//! ```

pub use lte_baselines as baselines;
pub use lte_cluster as cluster;
pub use lte_core as core;
pub use lte_data as data;
pub use lte_geom as geom;
pub use lte_nn as nn;
pub use lte_preprocess as preprocess;
pub use lte_serve as serve;

/// Everything needed for the common exploration workflow.
pub mod prelude {
    pub use lte_core::config::{LteConfig, ScoringPrecision};
    pub use lte_core::explore::Variant;
    pub use lte_core::meta_features::{FeatureDelta, MetaFeatures};
    pub use lte_core::metrics::ConfusionMatrix;
    pub use lte_core::oracle::{
        BehaviorOracle, Cadence, ConjunctiveOracle, RegionOracle, SubspaceOracle,
    };
    pub use lte_core::persist::{load_pipeline, load_registry, save_pipeline, save_registry};
    pub use lte_core::pipeline::{LtePipeline, UirOutcome};
    pub use lte_core::routing::{PipelineRegistry, Router, RoutingDecision};
    pub use lte_core::scenario::{BehaviorConfig, BehavioralOutcome, DriftSpec, DriftTrigger};
    pub use lte_core::scorer::{ScoreRequest, Scorer};
    pub use lte_core::uis::UisMode;
    pub use lte_data::csv::{read_csv, write_csv};
    pub use lte_data::subspace::{decompose_random, decompose_sequential, Subspace};
    pub use lte_data::{Dataset, Table};
    pub use lte_geom::{Region, RegionUnion};
    pub use lte_nn::{cpu_features, Epilogue, KernelKind};
    pub use lte_serve::{
        AdmissionState, Cohort, RoutedSession, ScenarioConfig, ScenarioReport, ScoringService,
        ScoringServiceBuilder, ServiceOutcome, SessionEngine, SessionOutcome, SessionRequest,
        SwapCell, ThroughputStats,
    };
}
