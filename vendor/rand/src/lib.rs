//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of `rand`'s API that the LTE code
//! actually uses:
//!
//! * [`RngCore`] / [`Rng`] (re-exported as [`RngExt`]) with
//!   [`Rng::random`], [`Rng::random_range`], and [`Rng::random_bool`],
//! * [`SeedableRng`] with [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`], a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (the same expansion real `rand` uses for `seed_from_u64`).
//!
//! Streams are **not** bit-compatible with upstream `rand`; everything in
//! this repository that depends on randomness asserts statistical or
//! structural properties, never exact stream values.

pub mod rngs;

pub use rngs::StdRng;

/// Low-level source of randomness: 32/64-bit words and byte fills.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an `RngCore` ("standard"
/// distribution: full range for integers, `[0, 1)` for floats).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly to yield a `T`.
pub trait SampleRange<T> {
    /// Draw one value from `rng`; panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` via Lemire's widening-multiply method
/// with rejection, so integer ranges are unbiased.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
    )+};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::from_rng(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::from_rng(rng);
                lo + (hi - lo) * unit
            }
        }
    )+};
}

float_sample_range!(f32, f64);

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors upstream `rand`'s extension-trait design).
pub trait Rng: RngCore {
    /// A value from the standard distribution (`[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A value uniform in `range`; panics on an empty range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Alias kept so code written against the split core/ext naming compiles.
pub use Rng as RngExt;

/// Deterministically constructible generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "seeds 1 and 2 produced near-identical streams");
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn unit_floats_cover_both_halves() {
        let mut rng = StdRng::seed_from_u64(9);
        let lows = (0..10_000).filter(|_| rng.random::<f64>() < 0.5).count();
        assert!((3_000..7_000).contains(&lows), "lows = {lows}");
    }

    #[test]
    fn integer_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for hi in 1usize..50 {
            for _ in 0..100 {
                let x = rng.random_range(0..hi);
                assert!(x < hi);
                let y = rng.random_range(0..=hi);
                assert!(y <= hi);
            }
        }
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.random_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn negative_integer_ranges_work() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..1_000 {
            let x = rng.random_range(-10i64..10);
            assert!((-10..10).contains(&x));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(19);
        for _ in 0..10_000 {
            let x = rng.random_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(23);
        for len in 0..20 {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} left all zeros");
            }
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(29);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(31);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
