//! Concrete generators. Only [`StdRng`] is provided: a xoshiro256++
//! generator, deterministic and portable across platforms.

use crate::{RngCore, SeedableRng};

/// The workspace's standard seeded generator (xoshiro256++).
///
/// Not bit-compatible with upstream `rand`'s ChaCha-based `StdRng`, but
/// deterministic for a given seed, which is all the LTE code relies on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // xoshiro's state must not be all zero; the SplitMix64 expansion in
        // `seed_from_u64` never produces that, but `from_seed` can be handed
        // anything.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_zero_seed_is_fixed_up() {
        let mut rng = StdRng::from_seed([0; 32]);
        let first = [rng.next_u64(), rng.next_u64(), rng.next_u64()];
        assert!(first.iter().any(|&x| x != 0));
    }

    #[test]
    fn from_seed_uses_the_bytes() {
        let mut a = [0u8; 32];
        a[0] = 1;
        let mut b = [0u8; 32];
        b[0] = 2;
        let (mut ra, mut rb) = (StdRng::from_seed(a), StdRng::from_seed(b));
        assert_ne!(ra.next_u64(), rb.next_u64());
    }
}
