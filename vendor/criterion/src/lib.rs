//! Vendored micro-benchmark harness.
//!
//! The build environment has no network access to crates.io, so this crate
//! reimplements the slice of `criterion`'s API used by the workspace's
//! benches: [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is simple but honest: an adaptive warm-up sizes the batch,
//! then several timed batches report the median ns/iteration. There are no
//! statistics, plots, or saved baselines — this exists so `cargo bench`
//! runs and prints comparable numbers on an offline machine.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers compile.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for one benchmark within a group: a name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// `name` tagged with `parameter` (rendered as `name/parameter`).
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.name, self.parameter)
    }
}

/// Runs the closure under measurement; handed to the bench body.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Measure `f`: warm up, pick a batch size targeting ~5 ms per batch,
    /// then time several batches and keep the median.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch sizing: grow until one batch takes >= 1 ms.
        let mut batch: u64 = 1;
        let warmup_deadline = Instant::now() + Duration::from_millis(200);
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || Instant::now() >= warmup_deadline {
                let per_iter = dt.as_nanos() as f64 / batch as f64;
                let target = Duration::from_millis(5).as_nanos() as f64;
                batch = ((target / per_iter.max(0.1)) as u64).clamp(1, 10_000_000);
                break;
            }
            batch = batch.saturating_mul(4);
        }

        let mut samples: Vec<f64> = (0..7)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..batch {
                    std_black_box(f());
                }
                t0.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark manager: registers and runs benchmarks, printing results.
pub struct Criterion {
    /// Substring filter from the command line (`cargo bench -- <filter>`).
    filter: Option<String>,
}

impl Default for Criterion {
    /// Reads the first non-flag command-line argument as a name filter,
    /// matching `cargo bench -- <filter>` usage.
    fn default() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Criterion { filter }
    }
}

impl Criterion {
    fn should_run(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        if !self.should_run(name) {
            return;
        }
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        println!("{name:<50} {:>12}/iter", human(b.ns_per_iter));
    }

    /// Measure a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Measure one parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Measure one named benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.criterion.run_one(&full, f);
        self
    }

    /// End the group. (No-op here; kept for API compatibility.)
    pub fn finish(self) {}
}

/// Bundle benchmark functions under one runner name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more [`criterion_group!`] bundles.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { ns_per_iter: 0.0 };
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn benchmark_id_renders_name_slash_param() {
        assert_eq!(BenchmarkId::new("psi", 20).to_string(), "psi/20");
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("match_me".into()),
        };
        let mut ran = false;
        c.bench_function("other", |_b| ran = true);
        assert!(!ran);
        // bench_function bodies only run (and call iter) when the filter matches;
        // use a trivial body so the test stays fast.
        let mut c2 = Criterion { filter: None };
        let mut ran2 = false;
        c2.bench_function("anything", |b| {
            ran2 = true;
            b.iter(|| 1 + 1);
        });
        assert!(ran2);
    }

    #[test]
    fn human_units() {
        assert!(human(12.3).ends_with("ns"));
        assert!(human(12_300.0).ends_with("µs"));
        assert!(human(12_300_000.0).ends_with("ms"));
    }
}
