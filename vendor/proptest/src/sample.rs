//! Sampling strategies, mirroring `proptest::sample`.

use crate::{SizeRange, Strategy, TestRng};
use rand::Rng;

/// A strategy yielding order-preserving subsequences of `items`, with
/// length drawn from `size`.
///
/// Panics (on generation) if `size` can exceed `items.len()`.
pub fn subsequence<T: Clone>(items: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
    Subsequence {
        items,
        size: size.into(),
    }
}

/// See [`subsequence`].
#[derive(Debug, Clone)]
pub struct Subsequence<T> {
    items: Vec<T>,
    size: SizeRange,
}

impl<T: Clone> Strategy for Subsequence<T> {
    type Value = Vec<T>;
    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let n = self.size.pick(rng);
        assert!(
            n <= self.items.len(),
            "subsequence of {} from {} items",
            n,
            self.items.len()
        );
        // Floyd's algorithm: n distinct indices, then emit in order.
        let len = self.items.len();
        let mut chosen = vec![false; len];
        for j in len - n..len {
            let t = rng.random_range(0..=j);
            if chosen[t] {
                chosen[j] = true;
            } else {
                chosen[t] = true;
            }
        }
        self.items
            .iter()
            .zip(&chosen)
            .filter(|(_, &c)| c)
            .map(|(item, _)| item.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsequences_are_ordered_and_sized() {
        let mut rng = TestRng::for_case("subseq", 0);
        let strat = subsequence(vec![0usize, 1, 2, 3, 4], 1..=5);
        for _ in 0..300 {
            let s = strat.generate(&mut rng);
            assert!((1..=5).contains(&s.len()));
            assert!(s.windows(2).all(|w| w[0] < w[1]), "not ordered: {s:?}");
        }
    }

    #[test]
    fn full_size_returns_everything() {
        let mut rng = TestRng::for_case("subseq_full", 0);
        let strat = subsequence(vec![7usize, 8, 9], 3);
        assert_eq!(strat.generate(&mut rng), vec![7, 8, 9]);
    }
}
