//! Deterministic per-case RNG for property tests.

use rand::{RngCore, SeedableRng, StdRng};

/// FNV-1a, so each test gets a stable seed derived from its name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The RNG handed to [`Strategy::generate`](crate::Strategy::generate).
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG for case number `case` of the test named `name`. The same
    /// (name, case) pair always produces the same stream, so failures
    /// reproduce across runs without a persistence file.
    pub fn for_case(name: &str, case: u64) -> Self {
        let seed = fnv1a(name.as_bytes()) ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
