//! Collection strategies, mirroring `proptest::collection`.

use crate::{SizeRange, Strategy, TestRng};

/// A `Vec` whose length is drawn from `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_exact_and_ranged_sizes() {
        let mut rng = TestRng::for_case("vec_sizes", 0);
        let exact = vec(0usize..5, 3);
        for _ in 0..50 {
            assert_eq!(exact.generate(&mut rng).len(), 3);
        }
        let ranged = vec(0usize..5, 1..4);
        for _ in 0..200 {
            let v = ranged.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn nests() {
        let mut rng = TestRng::for_case("vec_nest", 0);
        let grid = vec(vec(-1.0..1.0f64, 2), 1..6);
        for _ in 0..100 {
            let rows = grid.generate(&mut rng);
            assert!(!rows.is_empty() && rows.len() < 6);
            assert!(rows.iter().all(|r| r.len() == 2));
        }
    }
}
