//! Vendored mini property-testing framework.
//!
//! The build environment has no network access to crates.io, so this crate
//! reimplements the slice of `proptest`'s API that the workspace's
//! `tests/properties.rs` files use:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`],
//! * range strategies (`-100.0..100.0f64`, `1usize..8`, ...), tuple
//!   strategies, [`Just`], [`bool::ANY`],
//! * [`collection::vec`] with exact or ranged sizes,
//! * [`sample::subsequence`],
//! * the [`proptest!`] macro with `#![proptest_config(...)]` support and
//!   the `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` family.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (derived from the test's module path and name), and there
//! is **no shrinking** — a failing case reports its case index so it can be
//! replayed, but is not minimised.

use rand::Rng;

pub mod collection;
pub mod sample;
pub mod test_runner;

pub use test_runner::TestRng;

/// Everything a property-test file needs; mirrors `proptest::prelude`.
pub mod prelude {
    /// Alias of the crate root so `prop::bool::ANY` etc. resolve.
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases: smaller than upstream's 256 so the full suite stays fast,
    /// large enough to exercise each invariant broadly every run.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed `prop_assert!`; bubbles out of the test body as an `Err`.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Generates values of an associated type from a [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy that post-processes this one's values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )+};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Strategies over `bool`, mirroring `proptest::bool`.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Uniform `bool` strategy type.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform `true` / `false`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.random()
        }
    }
}

/// A count or range of counts, for sized strategies like [`collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.random_range(self.lo..=self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// The `proptest!` macro: a block of `#[test]` functions whose arguments
/// are drawn from strategies.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     fn addition_commutes(a in 0i64..100, b in 0i64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// // Without a `#[test]` attribute the macro emits a plain function; in a
/// // real test file write `#[test]` above `fn` inside the block.
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __test_name = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(__test_name, __case as u64);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        __test_name, __case, __config.cases, e
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Fail the current proptest case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond),
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// Fail the current proptest case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "left = {:?}, right = {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "left = {:?}, right = {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// Fail the current proptest case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "both = {:?}", l);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::TestRng::for_case("ranges_generate_in_bounds", 0);
        for _ in 0..1_000 {
            let x = (0usize..10).generate(&mut rng);
            assert!(x < 10);
            let y = (-1.0..1.0f64).generate(&mut rng);
            assert!((-1.0..1.0).contains(&y));
        }
    }

    #[test]
    fn prop_map_applies() {
        let doubled = (1usize..5).prop_map(|x| x * 2);
        let mut rng = crate::TestRng::for_case("prop_map_applies", 0);
        for _ in 0..100 {
            let v = doubled.generate(&mut rng);
            assert!(v % 2 == 0 && (2..10).contains(&v));
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let strat = (0usize..3, -1.0..0.0f64, crate::bool::ANY);
        let mut rng = crate::TestRng::for_case("tuples", 0);
        for _ in 0..100 {
            let (a, b, _c) = strat.generate(&mut rng);
            assert!(a < 3);
            assert!((-1.0..0.0).contains(&b));
        }
    }

    #[test]
    fn just_yields_the_value() {
        let mut rng = crate::TestRng::for_case("just", 0);
        assert_eq!(Just(41usize).generate(&mut rng), 41);
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let a: Vec<usize> = (0..20)
            .map(|i| (0usize..1000).generate(&mut crate::TestRng::for_case("t", i)))
            .collect();
        let b: Vec<usize> = (0..20)
            .map(|i| (0usize..1000).generate(&mut crate::TestRng::for_case("t", i)))
            .collect();
        assert_eq!(a, b);
        let c: Vec<usize> = (0..20)
            .map(|i| (0usize..1000).generate(&mut crate::TestRng::for_case("other", i)))
            .collect();
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// The macro itself: bodies run, assertions hold, tuples destructure.
        #[test]
        fn macro_end_to_end((a, b) in (0i64..50, 0i64..50), flag in prop::bool::ANY) {
            prop_assert!(a + b >= a.min(b));
            prop_assert_eq!(a + b, b + a);
            if flag {
                prop_assert_ne!(a - 1, a);
            }
        }
    }

    proptest! {
        /// Default-config path of the macro.
        #[test]
        fn macro_default_config(x in 0usize..10) {
            prop_assert!(x < 10);
        }
    }
}
