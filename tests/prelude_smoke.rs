//! Compile-time coverage of the umbrella crate's public surface: every
//! `lte::prelude` re-export is named, and every module alias resolves.
//! If a re-export is dropped or renamed, this file stops compiling.

use lte::prelude::*;

/// Mentioning a type in a function signature proves the re-export resolves
/// without constructing anything expensive.
#[allow(dead_code, clippy::too_many_arguments)]
fn prelude_types_resolve(
    _config: LteConfig,
    _variant: Variant,
    _confusion: ConfusionMatrix,
    _truth: ConjunctiveOracle,
    _region_oracle: RegionOracle,
    _subspace_oracle: &dyn SubspaceOracle,
    _pipeline: LtePipeline,
    _outcome: UirOutcome,
    _mode: UisMode,
    _subspace: Subspace,
    _dataset: Dataset,
    _table: Table,
    _region: Region,
    _union: RegionUnion,
    _engine: SessionEngine,
    _session_request: SessionRequest,
    _session_outcome: SessionOutcome,
    _throughput: ThroughputStats,
    _behavior: BehaviorOracle,
    _cadence: Cadence,
    _behavior_config: BehaviorConfig,
    _behavioral_outcome: BehavioralOutcome,
    _drift_spec: DriftSpec,
    _drift_trigger: DriftTrigger,
    _cohort: Cohort,
    _scenario_config: ScenarioConfig,
    _scenario_report: ScenarioReport,
    _meta_features: MetaFeatures,
    _feature_delta: FeatureDelta,
    _registry: PipelineRegistry,
    _router: Router,
    _decision: RoutingDecision,
    _scorer: &dyn Scorer,
    _score_request: ScoreRequest,
    _builder: ScoringServiceBuilder,
    _routed_session: RoutedSession,
    _epilogue: Epilogue<'_>,
    _kernel: KernelKind,
) {
}

#[test]
fn prelude_functions_are_wired() {
    // Referencing each function re-export proves it resolves and links.
    let _ = read_csv;
    let _ = write_csv;
    let _ = save_pipeline;
    let _ = load_pipeline;
    let _ = save_registry;
    let _ = load_registry;
    let _ = decompose_random::<rand::rngs::StdRng>;
    let subspaces = decompose_sequential(4, 2);
    assert_eq!(subspaces.len(), 2);
}

#[test]
fn module_aliases_resolve() {
    // Each workspace crate is reachable through its umbrella alias.
    let _ = lte::data::subspace::decompose_sequential(4, 2);
    let _ = lte::geom::Point2::new(0.0, 0.0);
    let _ = lte::cluster::ProximityMatrix::within(&[vec![0.0, 0.0], vec![1.0, 1.0]]);
    let _ = lte::nn::Activation::Relu;
    let _ = lte::preprocess::Modality::Peaked;
    let _ = lte::baselines::Kernel::Linear;
    let _ = lte::core::config::LteConfig::reduced();
    let _ = lte::serve::percentile(&[1.0], 50.0);
}

#[test]
fn prelude_smoke_tiny_workflow() {
    // The quickstart's shape at minimal scale: build a dataset, decompose,
    // and check the pieces agree on dimensions. No training.
    let dataset = Dataset::sdss(200, 42);
    let subspaces = decompose_sequential(4, 2);
    assert_eq!(subspaces.len(), 2);
    assert_eq!(dataset.table.n_rows(), 200);
    let row = dataset.table.row(0).expect("row 0");
    assert!(row.len() >= 4);

    // The routing surface without training: a meta-feature vector routes
    // against itself at distance zero with an all-zero delta breakdown.
    let features =
        MetaFeatures::from_values(&[0.3, 0.8, 1.5, 0.0, 0.4, 2.0]).expect("six features");
    assert_eq!(features.distance(&features), 0.0);
    assert!(features.deltas(&features).iter().all(|d| d.delta == 0.0));
}

#[test]
fn prelude_kernel_surface_is_coherent() {
    // Every scoring precision — including the ranking-only quantized
    // mode — is nameable from the prelude, and the detected kernel is one
    // the host actually supports with a matching feature string.
    let _ = [
        ScoringPrecision::Exact,
        ScoringPrecision::Fast,
        ScoringPrecision::Ranked,
    ];
    let kind = KernelKind::detect();
    assert!(kind.supported());
    let features = cpu_features();
    assert!(features.contains("sse2") || kind == KernelKind::Portable);
    match kind {
        KernelKind::Avx512f => assert!(features.contains("avx512f")),
        KernelKind::Avx2Fma => assert!(features.contains("avx2")),
        KernelKind::Portable => {}
    }
}
