//! Shape tests: the qualitative relationships the paper's evaluation
//! rests on, verified end-to-end at test scale. These are the invariants a
//! regression must never break — if any of these flips, the reproduction no
//! longer tells the paper's story.

use lte::baselines::kernel::Kernel;
use lte::baselines::svm::SvmConfig;
use lte::baselines::DsmExplorer;
use lte::core::metrics::ConfusionMatrix;
use lte::prelude::*;

fn cfg() -> LteConfig {
    let mut cfg = LteConfig::reduced();
    cfg.train.n_tasks = 400;
    cfg.train.epochs = 4;
    cfg
}

fn avg_f1(
    pipeline: &LtePipeline,
    mode: UisMode,
    rows: &[Vec<f64>],
    variant: Variant,
    reps: u64,
) -> f64 {
    let mut total = 0.0;
    let mut n = 0;
    for rep in 0..reps {
        let truth = pipeline.generate_truth(mode, 100 + rep, 0.2, 0.9);
        if truth.selectivity(rows) < 0.02 {
            continue;
        }
        total += pipeline.explore(&truth, rows, variant, 500 + rep).f1();
        n += 1;
    }
    total / n.max(1) as f64
}

/// Meta* must clearly beat the from-scratch Basic classifier at the same
/// budget (the paper's core claim), and beat Meta on average (the
/// optimizer's purpose).
#[test]
fn meta_star_beats_basic_on_generalized_uis() {
    let dataset = Dataset::sdss(10_000, 21);
    let (pipeline, _) = LtePipeline::offline(&dataset.table, decompose_sequential(2, 2), cfg(), 21);
    let rows: Vec<Vec<f64>> = pipeline.contexts()[0].sample_rows().to_vec();
    let mode = UisMode::new(4, 8);
    let star = avg_f1(&pipeline, mode, &rows, Variant::MetaStar, 6);
    let basic = avg_f1(&pipeline, mode, &rows, Variant::Basic, 6);
    assert!(
        star > basic + 0.05,
        "Meta* {star:.3} must clearly beat Basic {basic:.3}"
    );
}

/// Meta-training must help: the adapted meta-learner beats the same
/// architecture trained from scratch, averaged over several test UISs.
#[test]
fn meta_beats_basic_on_average() {
    let dataset = Dataset::sdss(10_000, 22);
    let (pipeline, _) = LtePipeline::offline(&dataset.table, decompose_sequential(2, 2), cfg(), 22);
    let rows: Vec<Vec<f64>> = pipeline.contexts()[0].sample_rows().to_vec();
    let mode = UisMode::new(4, 8);
    let meta = avg_f1(&pipeline, mode, &rows, Variant::Meta, 8);
    let basic = avg_f1(&pipeline, mode, &rows, Variant::Basic, 8);
    assert!(
        meta > basic - 0.02,
        "Meta {meta:.3} must not trail Basic {basic:.3}"
    );
}

/// DSM's dimensionality cliff (Fig. 4): its F1 at 8D must fall well below
/// its 2D value, and Meta* must dominate DSM at 8D.
#[test]
fn dsm_degrades_with_dimensionality_and_meta_star_wins_high_d() {
    let dataset = Dataset::sdss(10_000, 23);
    let mode = UisMode::new(1, 16); // convex truths: DSM's best case

    let run_dim = |dims: usize| -> (f64, f64) {
        let (pipeline, _) = LtePipeline::offline(
            &dataset.table,
            decompose_sequential(dims, 2),
            cfg(),
            23 + dims as u64,
        );
        let rows: Vec<Vec<f64>> = (0..800)
            .map(|i| dataset.table.row(i).expect("row"))
            .collect();
        let schema = dataset.table.schema();
        let norm: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| {
                (0..dims)
                    .map(|c| schema.attr(c).expect("attr").normalize(r[c]))
                    .collect()
            })
            .collect();

        let mut star_total = 0.0;
        let mut dsm_total = 0.0;
        let mut n = 0;
        for rep in 0..4u64 {
            let truth = pipeline.generate_truth(mode, 300 + rep, 0.3, 0.9);
            if truth.selectivity(&rows) < 0.02 {
                continue;
            }
            star_total += pipeline.explore(&truth, &rows, Variant::MetaStar, rep).f1();
            let mut dsm = DsmExplorer::new(decompose_sequential(dims, 2));
            dsm.svm = SvmConfig {
                kernel: Kernel::rbf_for_dim(dims),
                ..SvmConfig::default()
            };
            dsm.seed = rep;
            let model = dsm.explore(&norm, &|i: usize, _: &[f64]| truth.label(&rows[i]), 30);
            let cm = ConfusionMatrix::from_pairs(
                norm.iter()
                    .zip(&rows)
                    .map(|(nr, raw)| (model.predict(nr), truth.label(raw))),
            );
            dsm_total += cm.f1();
            n += 1;
        }
        (star_total / n.max(1) as f64, dsm_total / n.max(1) as f64)
    };

    let (_star_2d, dsm_2d) = run_dim(2);
    let (star_8d, dsm_8d) = run_dim(8);
    assert!(
        dsm_8d < dsm_2d,
        "DSM must degrade with dimensionality: 2D {dsm_2d:.3} vs 8D {dsm_8d:.3}"
    );
    assert!(
        star_8d > dsm_8d,
        "Meta* {star_8d:.3} must beat DSM {dsm_8d:.3} at 8D"
    );
}

/// LTE's online cost must not blow up with budget the way active learning
/// does: DSM retrains per label, Meta* adapts once.
#[test]
fn online_cost_meta_flat_dsm_grows() {
    let dataset = Dataset::sdss(10_000, 25);
    let (pipeline30, _) =
        LtePipeline::offline(&dataset.table, decompose_sequential(4, 2), cfg(), 25);
    let rows: Vec<Vec<f64>> = (0..600)
        .map(|i| dataset.table.row(i).expect("row"))
        .collect();
    let schema = dataset.table.schema();
    let norm: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| {
            (0..4)
                .map(|c| schema.attr(c).expect("attr").normalize(r[c]))
                .collect()
        })
        .collect();
    let truth = pipeline30.generate_truth(UisMode::new(1, 16), 7, 0.3, 0.9);

    let dsm_secs = |budget: usize| {
        let mut dsm = DsmExplorer::new(decompose_sequential(4, 2));
        dsm.svm = SvmConfig {
            kernel: Kernel::rbf_for_dim(4),
            ..SvmConfig::default()
        };
        let t0 = std::time::Instant::now();
        let _ = dsm.explore(&norm, &|i: usize, _: &[f64]| truth.label(&rows[i]), budget);
        t0.elapsed().as_secs_f64()
    };
    // DSM cost grows with budget (more rounds, bigger SVMs, bigger hulls).
    let d30 = dsm_secs(30);
    let d105 = dsm_secs(105);
    assert!(
        d105 > d30,
        "DSM online cost must grow with budget: {d30:.3}s vs {d105:.3}s"
    );

    // Meta*'s online cost is much smaller than DSM's at the larger budget.
    let meta = pipeline30.explore(&truth, &rows, Variant::MetaStar, 1);
    assert!(
        meta.online_seconds < d105,
        "Meta* {:.3}s must undercut DSM {:.3}s",
        meta.online_seconds,
        d105
    );
}
