//! Cross-crate integration tests: the full offline → online flow on
//! realistic synthetic data, across all variants and both datasets.

use lte::prelude::*;

/// A small but complete configuration: enough meta-training to behave,
/// small enough for CI.
fn test_config() -> LteConfig {
    let mut cfg = LteConfig::reduced();
    cfg.train.n_tasks = 200;
    cfg.train.epochs = 3;
    cfg
}

fn pool(table: &Table, n: usize) -> Vec<Vec<f64>> {
    (0..n.min(table.n_rows()))
        .map(|i| table.row(i).expect("row"))
        .collect()
}

#[test]
fn sdss_offline_online_all_variants() {
    let dataset = Dataset::sdss(6_000, 1);
    let (pipeline, report) =
        LtePipeline::offline(&dataset.table, decompose_sequential(4, 2), test_config(), 1);
    assert_eq!(pipeline.contexts().len(), 2);
    assert!(report.train_seconds > 0.0);

    let truth = pipeline.generate_truth(UisMode::new(4, 8), 5, 0.25, 0.9);
    let rows = pool(&dataset.table, 800);
    assert!(truth.selectivity(&rows) > 0.01, "truth must have positives");

    let mut f1s = Vec::new();
    for variant in [Variant::Basic, Variant::Meta, Variant::MetaStar] {
        let outcome = pipeline.explore(&truth, &rows, variant, 9);
        assert_eq!(outcome.confusion.total(), rows.len());
        assert_eq!(outcome.labels_used, pipeline.config().budget());
        assert!(outcome.online_seconds > 0.0 && outcome.online_seconds < 60.0);
        f1s.push(outcome.f1());
    }
    // All variants produce real classifiers (far better than marking
    // everything interesting or nothing interesting).
    for (i, f1) in f1s.iter().enumerate() {
        assert!(*f1 > 0.1, "variant {i} F1 {f1}");
    }
}

#[test]
fn car_exploration_is_better_than_chance() {
    let dataset = Dataset::car(5_000, 2);
    let (pipeline, _) =
        LtePipeline::offline(&dataset.table, decompose_sequential(4, 2), test_config(), 2);
    let truth = pipeline.generate_truth(UisMode::new(2, 8), 11, 0.25, 0.9);
    let rows = pool(&dataset.table, 800);
    let sel = truth.selectivity(&rows);
    let outcome = pipeline.explore(&truth, &rows, Variant::MetaStar, 3);

    // Baseline F1 of the "predict everything positive" strategy is
    // 2·sel/(1+sel); Meta* must beat it decisively.
    let all_positive_f1 = 2.0 * sel / (1.0 + sel);
    assert!(
        outcome.f1() > all_positive_f1 + 0.05,
        "Meta* {:.3} vs all-positive {:.3}",
        outcome.f1(),
        all_positive_f1
    );
}

#[test]
fn determinism_same_seed_same_outcome() {
    let dataset = Dataset::sdss(4_000, 3);
    let build = || {
        LtePipeline::offline(
            &dataset.table,
            decompose_sequential(2, 2),
            test_config(),
            77,
        )
        .0
    };
    let p1 = build();
    let p2 = build();
    let truth1 = p1.generate_truth(UisMode::new(4, 8), 5, 0.2, 0.9);
    let truth2 = p2.generate_truth(UisMode::new(4, 8), 5, 0.2, 0.9);
    let rows = pool(&dataset.table, 400);
    let o1 = p1.explore(&truth1, &rows, Variant::Meta, 5);
    let o2 = p2.explore(&truth2, &rows, Variant::Meta, 5);
    assert_eq!(o1.confusion, o2.confusion, "same seeds must reproduce");
}

#[test]
fn one_dimensional_subspaces_are_supported() {
    // 5 attributes with 2D decomposition leaves a 1D remainder subspace.
    let dataset = Dataset::car(4_000, 4);
    let subspaces = decompose_sequential(5, 2);
    assert_eq!(subspaces.last().expect("subspaces").dim(), 1);
    let (pipeline, _) = LtePipeline::offline(&dataset.table, subspaces, test_config(), 4);
    let truth = pipeline.generate_truth(UisMode::new(2, 6), 13, 0.2, 0.95);
    let rows = pool(&dataset.table, 400);
    let outcome = pipeline.explore(&truth, &rows, Variant::MetaStar, 6);
    assert!(outcome.f1().is_finite());
}

#[test]
fn budget_retargeting_changes_initial_tuples() {
    let dataset = Dataset::sdss(4_000, 5);
    let cfg55 = test_config().with_budget(55);
    assert_eq!(cfg55.budget(), 55);
    let (pipeline, _) = LtePipeline::offline(&dataset.table, decompose_sequential(2, 2), cfg55, 5);
    let truth = pipeline.generate_truth(UisMode::new(4, 8), 5, 0.2, 0.9);
    let rows = pool(&dataset.table, 300);
    let outcome = pipeline.explore(&truth, &rows, Variant::Meta, 8);
    assert_eq!(outcome.labels_used, 55);
    assert_eq!(outcome.subspace_outcomes[0].cs_labels.len(), 50); // ks = B - Δ
}
