//! Bringing your own data: build a [`Table`] from raw rows, run LTE on it,
//! and integrate with an arbitrary labelling function.
//!
//! The "database" here is a synthetic IoT sensor log (temperature,
//! humidity, vibration, load). The "user" is an on-call engineer who knows
//! an anomaly when they see one — the labelling function — but cannot write
//! the region down as a query.
//!
//! ```text
//! cargo run --release --example custom_dataset
//! ```

use lte::core::context::SubspaceContext;
use lte::core::explore::explore_subspace;
use lte::core::feature::expansion_degree;
use lte::core::meta_learner::MetaLearner;
use lte::core::meta_task::generate_task_set;
use lte::core::metrics::ConfusionMatrix;
use lte::core::oracle::FnOracle;
use lte::data::rng::{randn_scaled, seeded};
use lte::data::schema::{Attribute, Schema};
use lte::prelude::*;
use rand::RngExt;

/// Synthesize a sensor log: two operating modes plus drift.
fn sensor_log(n: usize, seed: u64) -> Table {
    let mut rng = seeded(seed);
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let idle = rng.random::<f64>() < 0.6;
        let (temp_mu, load_mu) = if idle { (35.0, 10.0) } else { (72.0, 80.0) };
        let temp = randn_scaled(&mut rng, temp_mu, 6.0);
        let humidity = 30.0 + 40.0 * rng.random::<f64>();
        let vibration = randn_scaled(&mut rng, if idle { 0.5 } else { 2.5 }, 0.6).max(0.0);
        let load = (load_mu + randn_scaled(&mut rng, 0.0, 12.0)).clamp(0.0, 100.0);
        rows.push(vec![temp, humidity, vibration, load]);
    }
    let schema = Schema::new(vec![
        Attribute::new("temp", 0.0, 110.0),
        Attribute::new("humidity", 0.0, 100.0),
        Attribute::new("vibration", 0.0, 6.0),
        Attribute::new("load", 0.0, 100.0),
    ]);
    Table::from_rows(schema, &rows).expect("consistent rows")
}

fn main() {
    let table = sensor_log(15_000, 9);
    println!(
        "sensor log: {} readings × {} channels",
        table.n_rows(),
        table.n_cols()
    );

    // Work a single 2D subspace end-to-end with the low-level API:
    // (temp, vibration) is where the engineer's intuition lives.
    let cfg = LteConfig::reduced();
    let subspace = Subspace::new(vec![0, 2]);
    let ctx = SubspaceContext::build(&table, subspace, &cfg.task, &cfg.encoder, 9);

    // Offline: generate meta-tasks and meta-train — fully unsupervised.
    let l = expansion_degree(cfg.task.ku, cfg.net.expansion_frac);
    let tasks = generate_task_set(&ctx, &cfg.task, l, cfg.train.n_tasks, &mut seeded(10));
    let mut learner = MetaLearner::new(
        cfg.task.ku,
        ctx.feature_width(),
        &cfg.net,
        cfg.train.clone(),
        11,
    );
    let report = learner.train(&tasks);
    println!(
        "meta-trained on {} tasks; query loss per epoch: {:?}",
        report.n_tasks,
        report
            .epoch_query_loss
            .iter()
            .map(|v| format!("{v:.3}"))
            .collect::<Vec<_>>()
    );

    // Online: the engineer labels the initial tuples. Their "interest" is
    // a gut call — hot AND shaky, or implausibly shaky while cool.
    let engineer = FnOracle(|row: &[f64]| {
        let (temp, vibration) = (row[0], row[1]);
        (temp > 60.0 && vibration > 2.0) || (temp < 45.0 && vibration > 3.0)
    });

    let eval: Vec<Vec<f64>> = ctx.sample_rows().to_vec();
    let outcome = explore_subspace(
        &ctx,
        Some(&learner),
        &engineer,
        &eval,
        &cfg,
        Variant::MetaStar,
        12,
    );
    let cm = ConfusionMatrix::from_pairs(
        outcome
            .predictions
            .iter()
            .zip(&eval)
            .map(|(&p, row)| (p, (engineer.0)(row))),
    );
    println!(
        "anomaly region discovered with {} labels: F1 {:.3}, precision {:.3}, recall {:.3}",
        outcome.labels_used,
        cm.f1(),
        cm.precision(),
        cm.recall()
    );
}
