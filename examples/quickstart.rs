//! Quickstart: meta-train LTE on a synthetic sky survey and explore one
//! unknown user-interest region with 30 labels.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lte::prelude::*;

fn main() {
    // ---------------------------------------------------------------- data
    // 20K synthetic sky objects with 8 photometric attributes.
    let dataset = Dataset::sdss(20_000, 42);
    println!(
        "dataset `{}`: {} tuples × {} attributes",
        dataset.name,
        dataset.n_rows(),
        dataset.n_attrs()
    );

    // ------------------------------------------------------------- offline
    // The user (say, Alice from the paper's intro) cares about 4 attributes:
    // CCD position (rowc, colc) and sky position (ra, dec). LTE decomposes
    // them into two 2D subspaces and meta-trains one classifier per
    // subspace on automatically generated tasks — no labels involved.
    let subspaces = decompose_sequential(4, 2);
    let config = LteConfig::reduced(); // LteConfig::paper() for full scale
    let budget = config.budget();
    let (pipeline, report) = LtePipeline::offline(&dataset.table, subspaces, config, 42);
    println!(
        "offline: {} meta-tasks/subspace, generated in {:.1}s, trained in {:.1}s",
        report.tasks_per_subspace, report.task_gen_seconds, report.train_seconds
    );

    // -------------------------------------------------------------- online
    // A simulated user interest: concave/disconnected regions per subspace
    // (α=4 convex parts over ψ=8-neighbour hulls).
    let truth = pipeline.generate_truth(UisMode::new(4, 8), 7, 0.2, 0.9);

    // The retrieval pool the system will classify.
    let pool: Vec<Vec<f64>> = (0..2_000)
        .map(|i| dataset.table.row(i).expect("row"))
        .collect();
    println!(
        "ground-truth UIR selectivity on the pool: {:.1}%",
        truth.selectivity(&pool) * 100.0
    );

    // Explore with each variant and compare.
    for variant in [Variant::Basic, Variant::Meta, Variant::MetaStar] {
        let outcome = pipeline.explore(&truth, &pool, variant, 1);
        println!(
            "{:>6}: F1 = {:.3}  (precision {:.3}, recall {:.3}) with {} labels in {:.0}ms",
            variant.name(),
            outcome.f1(),
            outcome.confusion.precision(),
            outcome.confusion.recall(),
            budget,
            outcome.online_seconds * 1e3,
        );
    }
}
