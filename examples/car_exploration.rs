//! Exploring second-hand car listings (the paper's CAR dataset).
//!
//! A buyer's interest is typically a *trade-off region*, not a rectangle:
//! "newer cars with low mileage, OR older bargains with strong engines".
//! That is a disconnected, partly concave region — exactly the generalized
//! UIS setting of §VIII-C where SVM baselines fall apart. This example also
//! demonstrates plugging a custom labelling oracle (any `Fn(&[f64]) ->
//! bool`) instead of a region-based one.
//!
//! ```text
//! cargo run --release --example car_exploration
//! ```

use lte::core::metrics::ConfusionMatrix;
use lte::core::oracle::ConjunctiveOracle;
use lte::prelude::*;

fn main() {
    let dataset = Dataset::car(10_000, 3);
    let table = &dataset.table;

    // Attributes: price, mileage, year, power, engine → explore the first
    // four as two 2D subspaces: (price, mileage) and (year, power).
    let subspaces = decompose_sequential(4, 2);
    let (pipeline, report) =
        LtePipeline::offline(table, subspaces.clone(), LteConfig::reduced(), 3);
    println!(
        "offline done in {:.1}s (tasks) + {:.1}s (training)",
        report.task_gen_seconds, report.train_seconds
    );

    // The buyer's intangible interest per subspace:
    //  * (price, mileage): affordable low-mileage OR very cheap any-mileage,
    //  * (year, power): recent cars OR powerful older ones.
    let price_mileage = RegionUnion::new(vec![
        Region::Box(lte::geom::Aabb::new(
            vec![4_000.0, 10_000.0],
            vec![22_000.0, 110_000.0],
        )),
        Region::Box(lte::geom::Aabb::new(
            vec![500.0, 120_000.0],
            vec![6_000.0, 280_000.0],
        )),
    ]);
    let year_power = RegionUnion::new(vec![
        Region::Box(lte::geom::Aabb::new(
            vec![2012.0, 60.0],
            vec![2022.0, 260.0],
        )),
        Region::Box(lte::geom::Aabb::new(
            vec![1998.0, 150.0],
            vec![2010.0, 420.0],
        )),
    ]);
    let truth = ConjunctiveOracle::new(vec![
        (subspaces[0].clone(), price_mileage),
        (subspaces[1].clone(), year_power),
    ]);

    let pool: Vec<Vec<f64>> = (0..2_500).map(|i| table.row(i).expect("row")).collect();
    println!(
        "buyer's UIR covers {:.1}% of {} candidate listings",
        truth.selectivity(&pool) * 100.0,
        pool.len()
    );

    for variant in [Variant::Basic, Variant::Meta, Variant::MetaStar] {
        let outcome = pipeline.explore(&truth, &pool, variant, 11);
        println!(
            "{:>6}: F1 = {:.3} (labels: {})",
            variant.name(),
            outcome.f1(),
            outcome.labels_used
        );
    }

    // Retrieval: list a few cars Meta* recommends (conjunction of the
    // per-subspace predictions).
    let outcome = pipeline.explore(&truth, &pool, Variant::MetaStar, 11);
    let mut uir_pred = vec![true; pool.len()];
    for sub_outcome in &outcome.subspace_outcomes {
        for (p, &s) in uir_pred.iter_mut().zip(&sub_outcome.predictions) {
            *p &= s;
        }
    }
    println!("\nsample recommendations (price, mileage, year, power):");
    let mut shown = 0;
    let mut cm = ConfusionMatrix::default();
    for (row, &pred) in pool.iter().zip(&uir_pred) {
        cm.record(pred, truth.label(row));
        if pred && shown < 5 {
            println!(
                "  {:>8.0} EUR  {:>7.0} km  {:>5.0}  {:>4.0} hp{}",
                row[0],
                row[1],
                row[2],
                row[3],
                if truth.label(row) { "" } else { "   (miss)" }
            );
            shown += 1;
        }
    }
    println!(
        "retrieved {} listings, precision {:.3}",
        cm.tp + cm.fp,
        cm.precision()
    );
}
