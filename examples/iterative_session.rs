//! Iterative exploration: continuing past the initial budget with active
//! learning on top of the meta-learner (§III-B, "Other IDE Modules").
//!
//! After the few-shot initial exploration, the user keeps labelling the
//! tuples the classifier is least certain about; the meta-learner re-adapts
//! after every answer. The session tracks the three-set convergence bound
//! so the user can stop when the prediction is certain enough.
//!
//! ```text
//! cargo run --release --example iterative_session
//! ```

use lte::core::context::SubspaceContext;
use lte::core::feature::expansion_degree;
use lte::core::iterative::{explore_iteratively, IterativeConfig};
use lte::core::meta_learner::MetaLearner;
use lte::core::meta_task::generate_task_set;
use lte::core::metrics::ConfusionMatrix;
use lte::core::oracle::{RegionOracle, SubspaceOracle};
use lte::core::uis::generate_uis;
use lte::data::rng::seeded;
use lte::prelude::*;

fn main() {
    let dataset = Dataset::sdss(20_000, 5);
    let cfg = LteConfig::reduced();

    // Offline, one subspace: (ra, dec).
    let ctx = SubspaceContext::build(
        &dataset.table,
        Subspace::new(vec![2, 3]),
        &cfg.task,
        &cfg.encoder,
        5,
    );
    let l = expansion_degree(cfg.task.ku, cfg.net.expansion_frac);
    let tasks = generate_task_set(&ctx, &cfg.task, l, cfg.train.n_tasks, &mut seeded(6));
    let mut learner = MetaLearner::new(
        cfg.task.ku,
        ctx.feature_width(),
        &cfg.net,
        cfg.train.clone(),
        7,
    );
    learner.train(&tasks);
    println!("meta-learner trained on {} tasks", tasks.len());

    // A hidden interest region and the retrieval pool.
    let uis = generate_uis(ctx.cu(), ctx.pu(), UisMode::new(3, 10), &mut seeded(88));
    let oracle = RegionOracle::new(uis);
    let pool: Vec<Vec<f64>> = ctx.sample_rows().to_vec();

    let f1_of = |predictions: &[bool]| {
        ConfusionMatrix::from_pairs(
            predictions
                .iter()
                .zip(&pool)
                .map(|(&p, row)| (p, oracle.label(row))),
        )
        .f1()
    };

    // Grow the budget and watch accuracy move.
    println!("\nextra labels  rounds  total labels      F1");
    for extra in [0usize, 5, 10, 20, 40] {
        let iter_cfg = IterativeConfig {
            extra_budget: extra,
            ..IterativeConfig::default()
        };
        let outcome = explore_iteratively(&ctx, &learner, &oracle, &pool, &cfg, &iter_cfg, 17);
        println!(
            "{extra:>12}  {:>6}  {:>12}  {:>6.3}",
            outcome.rounds,
            outcome.labels_used,
            f1_of(&outcome.predictions)
        );
    }

    // Convergence-bound stopping: halt as soon as the certain region is
    // 60% of the covered area.
    let iter_cfg = IterativeConfig {
        extra_budget: 40,
        stop_at_bound: Some(0.6),
        ..IterativeConfig::default()
    };
    let outcome = explore_iteratively(&ctx, &learner, &oracle, &pool, &cfg, &iter_cfg, 17);
    println!(
        "\nwith stop_at_bound=0.6: stopped after {} extra labels (bound history: {:?})",
        outcome.rounds,
        outcome
            .bound_history
            .iter()
            .map(|b| format!("{b:.2}"))
            .collect::<Vec<_>>()
    );
}
