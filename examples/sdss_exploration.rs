//! The paper's running example (§I): Bob, an astronomer whose interest
//! spans many photometric attributes and is too complex for SQL filters.
//!
//! Bob's "interest" here is a conjunction of *hand-written* predicates —
//! something a real user could never type as a query region but can easily
//! label examples of: bright objects (low sky_u) inside one of two CCD
//! areas, with small proper motion. LTE discovers it from `B` labels per
//! subspace group, and we compare against the DSM baseline on the same
//! budget.
//!
//! ```text
//! cargo run --release --example sdss_exploration
//! ```

use lte::baselines::kernel::Kernel;
use lte::baselines::svm::SvmConfig;
use lte::baselines::DsmExplorer;
use lte::core::metrics::ConfusionMatrix;
use lte::core::oracle::ConjunctiveOracle;
use lte::prelude::*;

fn main() {
    let dataset = Dataset::sdss(20_000, 7);
    let table = &dataset.table;
    let schema = table.schema();

    // Bob explores 6 attributes: rowc, colc (CCD), sky_u, sky_g
    // (brightness), rowv, colv (motion) — three 2D subspaces picked
    // explicitly from the 8-attribute schema.
    let subspaces = vec![
        Subspace::new(vec![0, 1]), // (rowc, colc)
        Subspace::new(vec![4, 5]), // (sky_u, sky_g)
        Subspace::new(vec![6, 7]), // (rowv, colv)
    ];
    let (pipeline, _) = LtePipeline::offline(table, subspaces.clone(), LteConfig::reduced(), 7);

    // Bob's intangible interest, expressed as per-subspace regions:
    //  * CCD: either of two disconnected detector areas,
    //  * brightness: a box of bright-ish magnitudes,
    //  * motion: slow movers only.
    let ccd = RegionUnion::new(vec![
        Region::Box(lte::geom::Aabb::new(vec![100.0, 100.0], vec![800.0, 900.0])),
        Region::Box(lte::geom::Aabb::new(
            vec![1200.0, 900.0],
            vec![1900.0, 1800.0],
        )),
    ]);
    let bright = {
        let u = schema.attr(4).expect("sky_u");
        let g = schema.attr(5).expect("sky_g");
        RegionUnion::new(vec![Region::Box(lte::geom::Aabb::new(
            vec![u.lo, g.lo],
            vec![u.lo + 0.6 * u.width(), g.lo + 0.65 * g.width()],
        ))])
    };
    let slow = RegionUnion::new(vec![Region::Box(lte::geom::Aabb::new(
        vec![-0.8, -0.8],
        vec![0.8, 0.8],
    ))]);
    let truth = ConjunctiveOracle::new(vec![
        (subspaces[0].clone(), ccd),
        (subspaces[1].clone(), bright),
        (subspaces[2].clone(), slow),
    ]);

    let pool: Vec<Vec<f64>> = (0..3_000).map(|i| table.row(i).expect("row")).collect();
    println!(
        "Bob's UIR covers {:.1}% of the pool",
        truth.selectivity(&pool) * 100.0
    );

    for variant in [Variant::Meta, Variant::MetaStar] {
        let outcome = pipeline.explore(&truth, &pool, variant, 3);
        println!(
            "{:>6}: UIR F1 = {:.3}   per-subspace UIS F1 = {:?}",
            variant.name(),
            outcome.f1(),
            outcome
                .per_subspace_f1
                .iter()
                .map(|f| format!("{f:.3}"))
                .collect::<Vec<_>>(),
        );
    }

    // DSM on the same budget, full-space active learning.
    let budget = pipeline.config().budget();
    let bob_attrs = [0usize, 1, 4, 5, 6, 7];
    let norm_pool: Vec<Vec<f64>> = pool
        .iter()
        .map(|row| {
            bob_attrs
                .iter()
                .map(|&c| schema.attr(c).expect("attr").normalize(row[c]))
                .collect()
        })
        .collect();
    // DSM sees the 6 selected attributes as columns 0..6 of the pool.
    let mut dsm = DsmExplorer::new(decompose_sequential(6, 2));
    dsm.svm = SvmConfig {
        kernel: Kernel::rbf_for_dim(6),
        ..SvmConfig::default()
    };
    let model = dsm.explore(
        &norm_pool,
        &|i: usize, _: &[f64]| truth.label(&pool[i]),
        budget,
    );
    let cm = ConfusionMatrix::from_pairs(
        norm_pool
            .iter()
            .zip(&pool)
            .map(|(n, raw)| (model.predict(n), truth.label(raw))),
    );
    println!(
        "   DSM: UIR F1 = {:.3}   (three-set F1 lower bound {:.3})",
        cm.f1(),
        model.f1_lower_bound(&norm_pool)
    );
    println!("(budget per method: {budget} labels)");
}
