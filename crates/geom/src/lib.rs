//! Computational-geometry substrate for LTE.
//!
//! User-interest subregions (UIS) in the paper are built from geometric
//! primitives: simulated UISs are unions of convex hulls over cluster
//! centers (§V-C), the few-shot optimizer builds outer/inner circumscribed
//! regions (§VII-B), and the DSM baseline maintains a positive convex
//! polytope and negative convex cones in its dual-space model. This crate
//! provides those primitives for 1D and 2D subspaces (the paper's default
//! decomposition granularity), with an N-dimensional axis-aligned fallback:
//!
//! * [`Point2`] — planar points and vector helpers,
//! * [`hull::convex_hull`] — Andrew's monotone chain in O(n log n),
//! * [`ConvexPolygon`] — point-in-convex-polygon with an epsilon boundary,
//! * [`Region`] / [`RegionUnion`] — arbitrary-shape UIS membership
//!   (union of convex parts, per the convex decomposition theory the paper
//!   invokes),
//! * [`polytope`] — positive-polytope / negative-cone classification for the
//!   dual-space model (DSM) baseline.

pub mod aabb;
pub mod hull;
pub mod point;
pub mod polygon;
pub mod polytope;
pub mod region;

pub use aabb::Aabb;
pub use hull::convex_hull;
pub use point::{dist, dist2, Point2};
pub use polygon::ConvexPolygon;
pub use region::{Region, RegionUnion};
