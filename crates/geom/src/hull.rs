//! 2D convex hulls via Andrew's monotone chain.
//!
//! The paper builds convex hulls over ψ-nearest cluster-center sets as the
//! basic building block of simulated UISs (§V-C, cost O(ψ·log ψ)) and over
//! expanded neighborhoods in the few-shot optimizer (§VII-B). Hull vertices
//! are returned in counter-clockwise order with interior and collinear
//! points removed.

use crate::point::{cross, Point2};

/// Compute the convex hull of a point set.
///
/// Returns vertices in counter-clockwise order. Degenerate inputs degrade
/// gracefully: fewer than 3 distinct points return the distinct points
/// themselves (a point or a segment); fully collinear inputs return the two
/// extreme points.
pub fn convex_hull(points: &[Point2]) -> Vec<Point2> {
    let mut pts: Vec<Point2> = points.to_vec();
    pts.sort_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.y.partial_cmp(&b.y).unwrap_or(std::cmp::Ordering::Equal))
    });
    pts.dedup_by(|a, b| a.x == b.x && a.y == b.y);

    if pts.len() <= 2 {
        return pts;
    }

    let mut lower: Vec<Point2> = Vec::with_capacity(pts.len());
    for &p in &pts {
        while lower.len() >= 2 && cross(lower[lower.len() - 2], lower[lower.len() - 1], p) <= 0.0 {
            lower.pop();
        }
        lower.push(p);
    }

    let mut upper: Vec<Point2> = Vec::with_capacity(pts.len());
    for &p in pts.iter().rev() {
        while upper.len() >= 2 && cross(upper[upper.len() - 2], upper[upper.len() - 1], p) <= 0.0 {
            upper.pop();
        }
        upper.push(p);
    }

    lower.pop();
    upper.pop();
    lower.extend(upper);
    if lower.len() < 2 {
        // All points collinear: monotone chain collapses to the extremes.
        return vec![pts[0], pts[pts.len() - 1]];
    }
    lower
}

/// 1D "hull": the closed interval spanned by the values.
///
/// Returns `None` for empty input.
pub fn interval_hull(values: &[f64]) -> Option<(f64, f64)> {
    if values.is_empty() {
        return None;
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Some((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polygon::ConvexPolygon;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    #[test]
    fn square_hull_drops_interior_points() {
        let pts = vec![
            p(0.0, 0.0),
            p(1.0, 0.0),
            p(1.0, 1.0),
            p(0.0, 1.0),
            p(0.5, 0.5), // interior
            p(0.5, 0.0), // edge-collinear
        ];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn hull_is_counter_clockwise() {
        let pts = vec![p(0.0, 0.0), p(2.0, 0.0), p(1.0, 2.0), p(1.0, 0.5)];
        let h = convex_hull(&pts);
        // Signed area must be positive for CCW ordering.
        let mut area2 = 0.0;
        for i in 0..h.len() {
            let j = (i + 1) % h.len();
            area2 += h[i].x * h[j].y - h[j].x * h[i].y;
        }
        assert!(area2 > 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[p(1.0, 1.0)]).len(), 1);
        assert_eq!(convex_hull(&[p(1.0, 1.0), p(1.0, 1.0)]).len(), 1);
        assert_eq!(convex_hull(&[p(0.0, 0.0), p(1.0, 1.0)]).len(), 2);
        // Collinear points collapse to extremes.
        let h = convex_hull(&[p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0), p(3.0, 3.0)]);
        assert_eq!(h.len(), 2);
        assert!(h.contains(&p(0.0, 0.0)) && h.contains(&p(3.0, 3.0)));
    }

    #[test]
    fn hull_contains_all_input_points() {
        // Deterministic pseudo-random scatter.
        let pts: Vec<Point2> = (0..100)
            .map(|i| {
                let a = (i as f64 * 0.7371).sin() * 10.0;
                let b = (i as f64 * 1.3113).cos() * 10.0;
                p(a, b)
            })
            .collect();
        let h = ConvexPolygon::from_points(&pts);
        for q in &pts {
            assert!(h.contains(*q), "hull must contain input point {q:?}");
        }
    }

    #[test]
    fn interval_hull_spans_values() {
        assert_eq!(interval_hull(&[3.0, -1.0, 2.0]), Some((-1.0, 3.0)));
        assert_eq!(interval_hull(&[]), None);
        assert_eq!(interval_hull(&[5.0]), Some((5.0, 5.0)));
    }
}
