//! Dual-space model geometry for the DSM baseline.
//!
//! DSM (Huang et al., PVLDB 2018 — the paper's state-of-the-art baseline)
//! assumes the user-interest region is *convex* in each subspace and
//! maintains two certain regions from the labeled examples:
//!
//! * the **positive region**: the convex hull of positively labeled points —
//!   by convexity every point inside is certainly interesting;
//! * the **negative region**: for each negatively labeled point `q`, the
//!   convex cone `{ q + t·(q − p) : p ∈ P⁺, t ≥ 0 }` — if any such point
//!   were interesting, convexity would force `q` itself to be interesting,
//!   a contradiction, so the cone is certainly uninteresting.
//!
//! Everything else is *uncertain* and left to the accompanying classifier.
//! The fraction of certain positives yields the three-set F1 lower bound
//! DSM uses for convergence.
//!
//! The cone membership test uses the identity: for `q` outside `P⁺`,
//! `x ∈ cone(q)` ⇔ `q ∈ conv(P⁺ ∪ {x})`, which reduces to one convex-hull
//! construction and one containment test. 1D subspaces are lifted onto the
//! x-axis so the same code applies.

use crate::point::Point2;
use crate::polygon::ConvexPolygon;

/// Certainty label from the dual-space model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreeSetLabel {
    /// Certainly interesting (inside the positive polytope).
    Positive,
    /// Certainly uninteresting (inside a negative cone).
    Negative,
    /// Not decided by the polytope model.
    Uncertain,
}

/// Incremental dual-space model over one subspace.
#[derive(Debug, Clone, Default)]
pub struct DualSpaceModel {
    positives: Vec<Point2>,
    negatives: Vec<Point2>,
    pos_hull: ConvexPolygon,
}

impl DualSpaceModel {
    /// Empty model: everything is uncertain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of positive examples absorbed.
    pub fn n_positives(&self) -> usize {
        self.positives.len()
    }

    /// Number of negative examples absorbed.
    pub fn n_negatives(&self) -> usize {
        self.negatives.len()
    }

    /// Absorb a labeled example (row of the subspace; 1D rows are lifted).
    pub fn add_labeled(&mut self, row: &[f64], interesting: bool) {
        let p = Point2::from_slice(row);
        if interesting {
            self.positives.push(p);
            self.pos_hull = ConvexPolygon::from_points(&self.positives);
        } else {
            self.negatives.push(p);
        }
    }

    /// The positive polytope (convex hull of positive examples).
    pub fn positive_hull(&self) -> &ConvexPolygon {
        &self.pos_hull
    }

    /// True when `x` lies in the certain-positive region.
    pub fn in_positive_region(&self, row: &[f64]) -> bool {
        !self.pos_hull.is_empty() && self.pos_hull.contains_row(row)
    }

    /// True when `x` lies in some negative cone.
    ///
    /// With no positive examples the cone construction is undefined; DSM
    /// then treats only the exact negative points as certainly negative.
    pub fn in_negative_region(&self, row: &[f64]) -> bool {
        let x = Point2::from_slice(row);
        if self.positives.is_empty() {
            return self
                .negatives
                .iter()
                .any(|q| q.dist2(&x) <= crate::polygon::EPS);
        }
        // conv(P+ ∪ {x}) is shared across all negatives for this x.
        let mut pts = self.positives.clone();
        pts.push(x);
        let extended = ConvexPolygon::from_points(&pts);
        self.negatives.iter().any(|q| {
            // Cones only exist for negatives outside the positive hull
            // (inside would contradict the convexity assumption).
            !self.pos_hull.contains(*q) && extended.contains(*q)
        })
    }

    /// Three-way classification of a subspace row.
    pub fn classify(&self, row: &[f64]) -> ThreeSetLabel {
        if self.in_positive_region(row) {
            ThreeSetLabel::Positive
        } else if self.in_negative_region(row) {
            ThreeSetLabel::Negative
        } else {
            ThreeSetLabel::Uncertain
        }
    }

    /// Counts of (positive, negative, uncertain) over an evaluation pool.
    pub fn three_set_counts(&self, rows: &[Vec<f64>]) -> (usize, usize, usize) {
        let mut counts = (0usize, 0usize, 0usize);
        for row in rows {
            match self.classify(row) {
                ThreeSetLabel::Positive => counts.0 += 1,
                ThreeSetLabel::Negative => counts.1 += 1,
                ThreeSetLabel::Uncertain => counts.2 += 1,
            }
        }
        counts
    }

    /// The three-set-metric F1 lower bound `|D⁺| / (|D⁺| + |Dᵘ|)`: the worst
    /// case where every uncertain point is misclassified (paper §III-B cites
    /// this as DSM's convergence indicator).
    pub fn f1_lower_bound(&self, rows: &[Vec<f64>]) -> f64 {
        let (np, _nn, nu) = self.three_set_counts(rows);
        if np + nu == 0 {
            0.0
        } else {
            np as f64 / (np + nu) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_with(pos: &[[f64; 2]], neg: &[[f64; 2]]) -> DualSpaceModel {
        let mut m = DualSpaceModel::new();
        for p in pos {
            m.add_labeled(p, true);
        }
        for q in neg {
            m.add_labeled(q, false);
        }
        m
    }

    #[test]
    fn positive_region_is_hull_of_positives() {
        let m = model_with(&[[0.0, 0.0], [2.0, 0.0], [1.0, 2.0]], &[]);
        assert!(m.in_positive_region(&[1.0, 0.5]));
        assert!(!m.in_positive_region(&[5.0, 5.0]));
        assert_eq!(m.classify(&[1.0, 0.5]), ThreeSetLabel::Positive);
        assert_eq!(m.classify(&[5.0, 5.0]), ThreeSetLabel::Uncertain);
    }

    #[test]
    fn negative_cone_extends_away_from_hull() {
        // Positive triangle around the origin; negative at (3, 0).
        let m = model_with(&[[0.0, 1.0], [0.0, -1.0], [-1.0, 0.0]], &[[3.0, 0.0]]);
        // Points beyond the negative along the same direction are certainly
        // negative: the segment from (5,0) to the hull passes through (3,0).
        assert_eq!(m.classify(&[5.0, 0.0]), ThreeSetLabel::Negative);
        // A point to the side of the cone stays uncertain.
        assert_eq!(m.classify(&[3.0, 4.0]), ThreeSetLabel::Uncertain);
        // The negative point itself is in its own cone (t = 0).
        assert_eq!(m.classify(&[3.0, 0.0]), ThreeSetLabel::Negative);
    }

    #[test]
    fn cone_requires_positive_examples() {
        let m = model_with(&[], &[[1.0, 1.0]]);
        assert_eq!(m.classify(&[1.0, 1.0]), ThreeSetLabel::Negative);
        assert_eq!(m.classify(&[2.0, 2.0]), ThreeSetLabel::Uncertain);
        assert!(!m.in_positive_region(&[1.0, 1.0]));
    }

    #[test]
    fn one_dimensional_rows_are_lifted() {
        let mut m = DualSpaceModel::new();
        m.add_labeled(&[1.0], true);
        m.add_labeled(&[3.0], true);
        m.add_labeled(&[5.0], false);
        assert_eq!(m.classify(&[2.0]), ThreeSetLabel::Positive);
        // Beyond the negative, away from the positive interval.
        assert_eq!(m.classify(&[7.0]), ThreeSetLabel::Negative);
        // Between hull and negative: uncertain.
        assert_eq!(m.classify(&[4.0]), ThreeSetLabel::Uncertain);
    }

    #[test]
    fn three_set_counts_and_f1_bound() {
        let m = model_with(&[[0.0, 0.0], [1.0, 0.0], [0.5, 1.0]], &[[3.0, 0.0]]);
        let rows = vec![
            vec![0.5, 0.3], // positive
            vec![4.0, 0.0], // negative cone
            vec![0.0, 5.0], // uncertain
            vec![0.5, 0.5], // positive
        ];
        let (np, nn, nu) = m.three_set_counts(&rows);
        assert_eq!((np, nn, nu), (2, 1, 1));
        let f1 = m.f1_lower_bound(&rows);
        assert!((f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn f1_bound_empty_pool_is_zero() {
        let m = DualSpaceModel::new();
        assert_eq!(m.f1_lower_bound(&[]), 0.0);
    }

    #[test]
    fn contradictory_negative_inside_hull_is_ignored_for_cones() {
        // A negative inside the positive hull (non-convex ground truth)
        // must not poison the whole plane.
        let m = model_with(&[[0.0, 0.0], [4.0, 0.0], [2.0, 4.0]], &[[2.0, 1.0]]);
        assert_eq!(m.classify(&[10.0, 10.0]), ThreeSetLabel::Uncertain);
    }
}
