//! Convex polygons with robust containment tests.

use crate::hull::convex_hull;
use crate::point::{cross, dist2_point_segment, Point2};

/// Boundary tolerance for containment tests. Points within this distance of
/// the boundary count as inside, which keeps hull-vertex membership stable
/// under floating-point noise.
pub const EPS: f64 = 1e-9;

/// A convex polygon with vertices in counter-clockwise order.
///
/// Degenerate polygons (a single point or a segment) are representable and
/// use distance-based containment with an [`EPS`] tolerance.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConvexPolygon {
    vertices: Vec<Point2>,
}

impl ConvexPolygon {
    /// Build the convex hull of a point set as a polygon.
    pub fn from_points(points: &[Point2]) -> Self {
        Self {
            vertices: convex_hull(points),
        }
    }

    /// Build from raw subspace rows (1D rows are lifted to the x-axis).
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let pts: Vec<Point2> = rows.iter().map(|r| Point2::from_slice(r)).collect();
        Self::from_points(&pts)
    }

    /// The hull vertices (counter-clockwise).
    pub fn vertices(&self) -> &[Point2] {
        &self.vertices
    }

    /// True when the polygon has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Polygon area (0 for degenerate polygons).
    pub fn area(&self) -> f64 {
        if self.vertices.len() < 3 {
            return 0.0;
        }
        let mut area2 = 0.0;
        for i in 0..self.vertices.len() {
            let j = (i + 1) % self.vertices.len();
            area2 +=
                self.vertices[i].x * self.vertices[j].y - self.vertices[j].x * self.vertices[i].y;
        }
        area2.abs() / 2.0
    }

    /// Centroid of the vertices (not the area centroid); `None` if empty.
    pub fn vertex_centroid(&self) -> Option<Point2> {
        if self.vertices.is_empty() {
            return None;
        }
        let n = self.vertices.len() as f64;
        let sx: f64 = self.vertices.iter().map(|p| p.x).sum();
        let sy: f64 = self.vertices.iter().map(|p| p.y).sum();
        Some(Point2::new(sx / n, sy / n))
    }

    /// Point-in-convex-polygon test with an epsilon-tolerant boundary.
    pub fn contains(&self, p: Point2) -> bool {
        match self.vertices.len() {
            0 => false,
            1 => self.vertices[0].dist2(&p) <= EPS,
            2 => dist2_point_segment(p, self.vertices[0], self.vertices[1]) <= EPS,
            _ => {
                // CCW polygon: p is inside iff it is on the left of (or on)
                // every directed edge.
                for i in 0..self.vertices.len() {
                    let j = (i + 1) % self.vertices.len();
                    if cross(self.vertices[i], self.vertices[j], p) < -EPS {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// Containment for a raw row (1D rows lifted to the x-axis).
    pub fn contains_row(&self, row: &[f64]) -> bool {
        self.contains(Point2::from_slice(row))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    fn unit_square() -> ConvexPolygon {
        ConvexPolygon::from_points(&[p(0.0, 0.0), p(1.0, 0.0), p(1.0, 1.0), p(0.0, 1.0)])
    }

    #[test]
    fn contains_interior_boundary_exterior() {
        let sq = unit_square();
        assert!(sq.contains(p(0.5, 0.5)));
        assert!(sq.contains(p(0.0, 0.0)), "vertices are inside");
        assert!(sq.contains(p(0.5, 0.0)), "edges are inside");
        assert!(!sq.contains(p(1.5, 0.5)));
        assert!(!sq.contains(p(-0.001, 0.5)));
    }

    #[test]
    fn area_of_unit_square_is_one() {
        assert!((unit_square().area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_point_polygon() {
        let poly = ConvexPolygon::from_points(&[p(2.0, 3.0)]);
        assert!(poly.contains(p(2.0, 3.0)));
        assert!(!poly.contains(p(2.1, 3.0)));
        assert_eq!(poly.area(), 0.0);
    }

    #[test]
    fn degenerate_segment_polygon() {
        let poly = ConvexPolygon::from_points(&[p(0.0, 0.0), p(2.0, 0.0)]);
        assert!(poly.contains(p(1.0, 0.0)));
        assert!(!poly.contains(p(1.0, 0.5)));
        assert_eq!(poly.area(), 0.0);
    }

    #[test]
    fn empty_polygon_contains_nothing() {
        let poly = ConvexPolygon::from_points(&[]);
        assert!(poly.is_empty());
        assert!(!poly.contains(p(0.0, 0.0)));
    }

    #[test]
    fn from_rows_lifts_1d() {
        let poly = ConvexPolygon::from_rows(&[vec![0.0], vec![5.0]]);
        assert!(poly.contains_row(&[2.5]));
        assert!(!poly.contains_row(&[6.0]));
    }

    #[test]
    fn vertex_centroid_is_mean() {
        let sq = unit_square();
        let c = sq.vertex_centroid().unwrap();
        assert!((c.x - 0.5).abs() < 1e-12 && (c.y - 0.5).abs() < 1e-12);
        assert!(ConvexPolygon::from_points(&[]).vertex_centroid().is_none());
    }
}
