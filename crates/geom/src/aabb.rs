//! Axis-aligned bounding boxes in arbitrary dimension.
//!
//! Used as the N-dimensional fallback for circumscribed regions when a
//! subspace has dimension > 2 (the paper notes minimum bounding rectangles
//! are a valid alternative to convex hulls, §V-C), and by tests to describe
//! rectangular ground-truth interest regions.

/// An axis-aligned box `[lo_i, hi_i]` per dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct Aabb {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Aabb {
    /// Build a box from explicit bounds. Inverted bounds are swapped.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "bound dimensionality mismatch");
        let mut lo = lo;
        let mut hi = hi;
        for i in 0..lo.len() {
            if lo[i] > hi[i] {
                std::mem::swap(&mut lo[i], &mut hi[i]);
            }
        }
        Self { lo, hi }
    }

    /// Smallest box enclosing all rows; `None` for empty input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Option<Self> {
        let first = rows.first()?;
        let mut lo = first.clone();
        let mut hi = first.clone();
        for row in &rows[1..] {
            for (i, &v) in row.iter().enumerate() {
                lo[i] = lo[i].min(v);
                hi[i] = hi[i].max(v);
            }
        }
        Some(Self { lo, hi })
    }

    /// Box dimensionality.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Lower bounds.
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper bounds.
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Inclusive containment test.
    pub fn contains(&self, p: &[f64]) -> bool {
        debug_assert_eq!(p.len(), self.lo.len());
        p.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .all(|(&v, (&lo, &hi))| v >= lo && v <= hi)
    }

    /// Midpoint of every dimension.
    pub fn center(&self) -> Vec<f64> {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(lo, hi)| (lo + hi) / 2.0)
            .collect()
    }

    /// Grow the box by `margin` in every direction.
    pub fn inflate(&self, margin: f64) -> Aabb {
        Aabb {
            lo: self.lo.iter().map(|v| v - margin).collect(),
            hi: self.hi.iter().map(|v| v + margin).collect(),
        }
    }

    /// Box volume (product of side lengths).
    pub fn volume(&self) -> f64 {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(lo, hi)| hi - lo)
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_is_inclusive() {
        let b = Aabb::new(vec![0.0, 0.0], vec![1.0, 2.0]);
        assert!(b.contains(&[0.0, 0.0]));
        assert!(b.contains(&[1.0, 2.0]));
        assert!(b.contains(&[0.5, 1.0]));
        assert!(!b.contains(&[1.1, 1.0]));
    }

    #[test]
    fn inverted_bounds_are_swapped() {
        let b = Aabb::new(vec![5.0], vec![1.0]);
        assert_eq!(b.lo(), &[1.0]);
        assert_eq!(b.hi(), &[5.0]);
    }

    #[test]
    fn from_rows_encloses_everything() {
        let rows = vec![vec![1.0, 5.0], vec![-2.0, 3.0], vec![0.0, 7.0]];
        let b = Aabb::from_rows(&rows).unwrap();
        for r in &rows {
            assert!(b.contains(r));
        }
        assert_eq!(b.lo(), &[-2.0, 3.0]);
        assert_eq!(b.hi(), &[1.0, 7.0]);
        assert!(Aabb::from_rows(&[]).is_none());
    }

    #[test]
    fn center_is_the_midpoint() {
        let b = Aabb::new(vec![0.0, -2.0], vec![4.0, 2.0]);
        assert_eq!(b.center(), vec![2.0, 0.0]);
    }

    #[test]
    fn inflate_and_volume() {
        let b = Aabb::new(vec![0.0, 0.0], vec![2.0, 3.0]);
        assert_eq!(b.volume(), 6.0);
        let g = b.inflate(1.0);
        assert!(g.contains(&[-0.5, -0.5]));
        assert_eq!(g.volume(), 4.0 * 5.0);
    }
}
