//! Arbitrary-shape regions as unions of convex parts.
//!
//! The paper's key representational claim (§V-C) is that any UIS — concave
//! or even disconnected — can be written as a union of convex parts
//! (convex decomposition theory). [`Region`] is one convex part;
//! [`RegionUnion`] is the general UIS: membership is "inside any part".

use crate::aabb::Aabb;
use crate::polygon::ConvexPolygon;

/// One convex part of a region.
#[derive(Debug, Clone, PartialEq)]
pub enum Region {
    /// A closed interval on a 1D subspace.
    Interval { lo: f64, hi: f64 },
    /// A convex polygon on a 2D subspace.
    Polygon(ConvexPolygon),
    /// An axis-aligned box in arbitrary dimension.
    Box(Aabb),
}

impl Region {
    /// Closed-interval constructor (swaps inverted bounds).
    pub fn interval(lo: f64, hi: f64) -> Self {
        if lo <= hi {
            Region::Interval { lo, hi }
        } else {
            Region::Interval { lo: hi, hi: lo }
        }
    }

    /// Membership test for a raw subspace row.
    pub fn contains(&self, row: &[f64]) -> bool {
        match self {
            Region::Interval { lo, hi } => row.first().is_some_and(|&v| v >= *lo && v <= *hi),
            Region::Polygon(poly) => poly.contains_row(row),
            Region::Box(b) => row.len() == b.dim() && b.contains(row),
        }
    }
}

/// A union of convex parts — the general UIS shape.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegionUnion {
    parts: Vec<Region>,
}

impl RegionUnion {
    /// Empty union (contains nothing).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Union of the given parts.
    pub fn new(parts: Vec<Region>) -> Self {
        Self { parts }
    }

    /// Add one part.
    pub fn push(&mut self, part: Region) {
        self.parts.push(part);
    }

    /// The convex parts.
    pub fn parts(&self) -> &[Region] {
        &self.parts
    }

    /// Number of parts.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True when the union has no parts.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Membership: inside any part. Cost O(α · log ψ) as analysed in §V-C
    /// (α parts, each a hull of ψ points).
    pub fn contains(&self, row: &[f64]) -> bool {
        self.parts.iter().any(|p| p.contains(row))
    }

    /// Fraction of `rows` inside the union — the region's selectivity on a
    /// sample. Used to reject degenerate simulated UISs.
    pub fn selectivity(&self, rows: &[Vec<f64>]) -> f64 {
        if rows.is_empty() {
            return 0.0;
        }
        let hits = rows.iter().filter(|r| self.contains(r)).count();
        hits as f64 / rows.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point2;

    fn square(x0: f64, y0: f64, x1: f64, y1: f64) -> Region {
        Region::Polygon(ConvexPolygon::from_points(&[
            Point2::new(x0, y0),
            Point2::new(x1, y0),
            Point2::new(x1, y1),
            Point2::new(x0, y1),
        ]))
    }

    #[test]
    fn interval_contains() {
        let r = Region::interval(2.0, 5.0);
        assert!(r.contains(&[2.0]));
        assert!(r.contains(&[5.0]));
        assert!(!r.contains(&[5.5]));
        assert!(!r.contains(&[]));
        // Inverted bounds are normalized.
        let r = Region::interval(5.0, 2.0);
        assert!(r.contains(&[3.0]));
    }

    #[test]
    fn box_region_checks_dim() {
        let r = Region::Box(Aabb::new(vec![0.0, 0.0], vec![1.0, 1.0]));
        assert!(r.contains(&[0.5, 0.5]));
        assert!(!r.contains(&[0.5]), "dimension mismatch is not a member");
    }

    #[test]
    fn union_of_disconnected_squares() {
        // A disconnected UIS: two far-apart squares (paper Fig. 1, R2).
        let uis = RegionUnion::new(vec![square(0.0, 0.0, 1.0, 1.0), square(5.0, 5.0, 6.0, 6.0)]);
        assert!(uis.contains(&[0.5, 0.5]));
        assert!(uis.contains(&[5.5, 5.5]));
        assert!(!uis.contains(&[3.0, 3.0]), "gap between parts is outside");
        assert_eq!(uis.len(), 2);
    }

    #[test]
    fn union_can_express_concave_shapes() {
        // An L-shape (concave) as the union of two convex rectangles.
        let uis = RegionUnion::new(vec![square(0.0, 0.0, 2.0, 1.0), square(0.0, 0.0, 1.0, 2.0)]);
        assert!(uis.contains(&[1.8, 0.5]));
        assert!(uis.contains(&[0.5, 1.8]));
        assert!(!uis.contains(&[1.8, 1.8]), "concave notch is outside");
    }

    #[test]
    fn empty_union_contains_nothing() {
        let uis = RegionUnion::empty();
        assert!(uis.is_empty());
        assert!(!uis.contains(&[0.0, 0.0]));
    }

    #[test]
    fn selectivity_counts_members() {
        let uis = RegionUnion::new(vec![square(0.0, 0.0, 1.0, 1.0)]);
        let rows = vec![
            vec![0.5, 0.5],
            vec![2.0, 2.0],
            vec![0.1, 0.9],
            vec![9.0, 9.0],
        ];
        assert_eq!(uis.selectivity(&rows), 0.5);
        assert_eq!(uis.selectivity(&[]), 0.0);
    }
}
