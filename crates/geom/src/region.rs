//! Arbitrary-shape regions as unions of convex parts.
//!
//! The paper's key representational claim (§V-C) is that any UIS — concave
//! or even disconnected — can be written as a union of convex parts
//! (convex decomposition theory). [`Region`] is one convex part;
//! [`RegionUnion`] is the general UIS: membership is "inside any part".

use crate::aabb::Aabb;
use crate::polygon::ConvexPolygon;

/// One convex part of a region.
#[derive(Debug, Clone, PartialEq)]
pub enum Region {
    /// A closed interval on a 1D subspace.
    Interval { lo: f64, hi: f64 },
    /// A convex polygon on a 2D subspace.
    Polygon(ConvexPolygon),
    /// An axis-aligned box in arbitrary dimension.
    Box(Aabb),
}

impl Region {
    /// Closed-interval constructor (swaps inverted bounds).
    pub fn interval(lo: f64, hi: f64) -> Self {
        if lo <= hi {
            Region::Interval { lo, hi }
        } else {
            Region::Interval { lo: hi, hi: lo }
        }
    }

    /// Membership test for a raw subspace row.
    pub fn contains(&self, row: &[f64]) -> bool {
        match self {
            Region::Interval { lo, hi } => row.first().is_some_and(|&v| v >= *lo && v <= *hi),
            Region::Polygon(poly) => poly.contains_row(row),
            Region::Box(b) => row.len() == b.dim() && b.contains(row),
        }
    }

    /// Tight axis-aligned bounding box; `None` for an empty polygon.
    pub fn aabb(&self) -> Option<Aabb> {
        match self {
            Region::Interval { lo, hi } => Some(Aabb::new(vec![*lo], vec![*hi])),
            Region::Polygon(poly) => {
                let rows: Vec<Vec<f64>> = poly.vertices().iter().map(|p| vec![p.x, p.y]).collect();
                Aabb::from_rows(&rows)
            }
            Region::Box(b) => Some(b.clone()),
        }
    }

    /// The region rigidly translated by `offset` (per dimension; missing
    /// trailing components translate by 0). Models an analyst's interest
    /// moving elsewhere in the subspace without changing shape.
    pub fn translate(&self, offset: &[f64]) -> Region {
        let off = |d: usize| offset.get(d).copied().unwrap_or(0.0);
        match self {
            Region::Interval { lo, hi } => Region::interval(lo + off(0), hi + off(0)),
            Region::Polygon(poly) => {
                let pts: Vec<crate::point::Point2> = poly
                    .vertices()
                    .iter()
                    .map(|p| crate::point::Point2::new(p.x + off(0), p.y + off(1)))
                    .collect();
                Region::Polygon(ConvexPolygon::from_points(&pts))
            }
            Region::Box(b) => Region::Box(Aabb::new(
                b.lo().iter().enumerate().map(|(d, v)| v + off(d)).collect(),
                b.hi().iter().enumerate().map(|(d, v)| v + off(d)).collect(),
            )),
        }
    }

    /// The region scaled by `factor` about `center` (per dimension; missing
    /// trailing components scale about 0). Models an interest region
    /// widening (`factor > 1`) or narrowing (`factor < 1`).
    pub fn scale_about(&self, center: &[f64], factor: f64) -> Region {
        let c = |d: usize| center.get(d).copied().unwrap_or(0.0);
        let s = |d: usize, v: f64| c(d) + (v - c(d)) * factor;
        match self {
            Region::Interval { lo, hi } => Region::interval(s(0, *lo), s(0, *hi)),
            Region::Polygon(poly) => {
                let pts: Vec<crate::point::Point2> = poly
                    .vertices()
                    .iter()
                    .map(|p| crate::point::Point2::new(s(0, p.x), s(1, p.y)))
                    .collect();
                Region::Polygon(ConvexPolygon::from_points(&pts))
            }
            Region::Box(b) => Region::Box(Aabb::new(
                b.lo().iter().enumerate().map(|(d, &v)| s(d, v)).collect(),
                b.hi().iter().enumerate().map(|(d, &v)| s(d, v)).collect(),
            )),
        }
    }
}

/// A union of convex parts — the general UIS shape.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegionUnion {
    parts: Vec<Region>,
}

impl RegionUnion {
    /// Empty union (contains nothing).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Union of the given parts.
    pub fn new(parts: Vec<Region>) -> Self {
        Self { parts }
    }

    /// Add one part.
    pub fn push(&mut self, part: Region) {
        self.parts.push(part);
    }

    /// The convex parts.
    pub fn parts(&self) -> &[Region] {
        &self.parts
    }

    /// Number of parts.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True when the union has no parts.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Membership: inside any part. Cost O(α · log ψ) as analysed in §V-C
    /// (α parts, each a hull of ψ points).
    pub fn contains(&self, row: &[f64]) -> bool {
        self.parts.iter().any(|p| p.contains(row))
    }

    /// Fraction of `rows` inside the union — the region's selectivity on a
    /// sample. Used to reject degenerate simulated UISs.
    pub fn selectivity(&self, rows: &[Vec<f64>]) -> f64 {
        if rows.is_empty() {
            return 0.0;
        }
        let hits = rows.iter().filter(|r| self.contains(r)).count();
        hits as f64 / rows.len() as f64
    }

    /// Bounding box of the whole union (`None` when every part is empty).
    /// Parts must share one dimensionality.
    pub fn aabb(&self) -> Option<Aabb> {
        let corners: Vec<Vec<f64>> = self
            .parts
            .iter()
            .filter_map(|p| p.aabb())
            .flat_map(|b| [b.lo().to_vec(), b.hi().to_vec()])
            .collect();
        Aabb::from_rows(&corners)
    }

    /// Every part translated by `offset` (see [`Region::translate`]).
    pub fn translate(&self, offset: &[f64]) -> RegionUnion {
        RegionUnion::new(self.parts.iter().map(|p| p.translate(offset)).collect())
    }

    /// Every part scaled by `factor` about `center`
    /// (see [`Region::scale_about`]).
    pub fn scale_about(&self, center: &[f64], factor: f64) -> RegionUnion {
        RegionUnion::new(
            self.parts
                .iter()
                .map(|p| p.scale_about(center, factor))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point2;

    fn square(x0: f64, y0: f64, x1: f64, y1: f64) -> Region {
        Region::Polygon(ConvexPolygon::from_points(&[
            Point2::new(x0, y0),
            Point2::new(x1, y0),
            Point2::new(x1, y1),
            Point2::new(x0, y1),
        ]))
    }

    #[test]
    fn interval_contains() {
        let r = Region::interval(2.0, 5.0);
        assert!(r.contains(&[2.0]));
        assert!(r.contains(&[5.0]));
        assert!(!r.contains(&[5.5]));
        assert!(!r.contains(&[]));
        // Inverted bounds are normalized.
        let r = Region::interval(5.0, 2.0);
        assert!(r.contains(&[3.0]));
    }

    #[test]
    fn box_region_checks_dim() {
        let r = Region::Box(Aabb::new(vec![0.0, 0.0], vec![1.0, 1.0]));
        assert!(r.contains(&[0.5, 0.5]));
        assert!(!r.contains(&[0.5]), "dimension mismatch is not a member");
    }

    #[test]
    fn union_of_disconnected_squares() {
        // A disconnected UIS: two far-apart squares (paper Fig. 1, R2).
        let uis = RegionUnion::new(vec![square(0.0, 0.0, 1.0, 1.0), square(5.0, 5.0, 6.0, 6.0)]);
        assert!(uis.contains(&[0.5, 0.5]));
        assert!(uis.contains(&[5.5, 5.5]));
        assert!(!uis.contains(&[3.0, 3.0]), "gap between parts is outside");
        assert_eq!(uis.len(), 2);
    }

    #[test]
    fn union_can_express_concave_shapes() {
        // An L-shape (concave) as the union of two convex rectangles.
        let uis = RegionUnion::new(vec![square(0.0, 0.0, 2.0, 1.0), square(0.0, 0.0, 1.0, 2.0)]);
        assert!(uis.contains(&[1.8, 0.5]));
        assert!(uis.contains(&[0.5, 1.8]));
        assert!(!uis.contains(&[1.8, 1.8]), "concave notch is outside");
    }

    #[test]
    fn empty_union_contains_nothing() {
        let uis = RegionUnion::empty();
        assert!(uis.is_empty());
        assert!(!uis.contains(&[0.0, 0.0]));
    }

    #[test]
    fn translate_moves_membership_with_the_region() {
        let uis = RegionUnion::new(vec![square(0.0, 0.0, 1.0, 1.0)]);
        let moved = uis.translate(&[10.0, -5.0]);
        assert!(moved.contains(&[10.5, -4.5]));
        assert!(!moved.contains(&[0.5, 0.5]), "old location left behind");

        let iv = Region::interval(2.0, 4.0).translate(&[1.0]);
        assert!(iv.contains(&[3.5]) && iv.contains(&[5.0]) && !iv.contains(&[2.5]));

        let b = Region::Box(Aabb::new(vec![0.0, 0.0], vec![1.0, 1.0])).translate(&[2.0, 0.0]);
        assert!(b.contains(&[2.5, 0.5]) && !b.contains(&[0.5, 0.5]));
    }

    #[test]
    fn scale_about_center_grows_and_shrinks() {
        let uis = RegionUnion::new(vec![square(0.0, 0.0, 2.0, 2.0)]);
        let grown = uis.scale_about(&[1.0, 1.0], 2.0);
        assert!(grown.contains(&[-0.5, -0.5]), "doubled square reaches -1");
        let shrunk = uis.scale_about(&[1.0, 1.0], 0.25);
        assert!(
            !shrunk.contains(&[0.1, 0.1]),
            "quartered square lost its corner"
        );
        assert!(shrunk.contains(&[1.0, 1.0]), "center stays inside");
    }

    #[test]
    fn union_aabb_encloses_all_parts() {
        let uis = RegionUnion::new(vec![square(0.0, 0.0, 1.0, 1.0), square(5.0, 5.0, 6.0, 6.0)]);
        let bb = uis.aabb().unwrap();
        assert_eq!(bb.lo(), &[0.0, 0.0]);
        assert_eq!(bb.hi(), &[6.0, 6.0]);
        assert_eq!(
            Region::interval(3.0, 7.0).aabb().unwrap().center(),
            vec![5.0]
        );
        assert!(RegionUnion::empty().aabb().is_none());
    }

    #[test]
    fn selectivity_counts_members() {
        let uis = RegionUnion::new(vec![square(0.0, 0.0, 1.0, 1.0)]);
        let rows = vec![
            vec![0.5, 0.5],
            vec![2.0, 2.0],
            vec![0.1, 0.9],
            vec![9.0, 9.0],
        ];
        assert_eq!(uis.selectivity(&rows), 0.5);
        assert_eq!(uis.selectivity(&[]), 0.0);
    }
}
