//! Planar points and distance helpers.

/// A point in the plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point2 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point2 {
    /// Construct a point.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Construct from the first two entries of a slice.
    ///
    /// 1D slices are lifted to the x-axis (`y = 0`), so the same geometry
    /// code serves 1D subspaces.
    pub fn from_slice(v: &[f64]) -> Self {
        match v {
            [] => Self::new(0.0, 0.0),
            [x] => Self::new(*x, 0.0),
            [x, y, ..] => Self::new(*x, *y),
        }
    }

    /// Squared Euclidean distance to another point.
    pub fn dist2(&self, other: &Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to another point.
    pub fn dist(&self, other: &Point2) -> f64 {
        self.dist2(other).sqrt()
    }
}

/// Cross product of (b - a) × (c - a): positive when `c` is left of ray
/// `a→b`, negative when right, zero when collinear.
pub fn cross(a: Point2, b: Point2, c: Point2) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// Squared Euclidean distance between equal-length vectors.
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance between equal-length vectors.
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    dist2(a, b).sqrt()
}

/// Squared distance from point `p` to segment `[a, b]`.
pub fn dist2_point_segment(p: Point2, a: Point2, b: Point2) -> f64 {
    let ab = (b.x - a.x, b.y - a.y);
    let ap = (p.x - a.x, p.y - a.y);
    let len2 = ab.0 * ab.0 + ab.1 * ab.1;
    if len2 <= f64::EPSILON {
        return p.dist2(&a);
    }
    let t = ((ap.0 * ab.0 + ap.1 * ab.1) / len2).clamp(0.0, 1.0);
    let proj = Point2::new(a.x + t * ab.0, a.y + t * ab.1);
    p.dist2(&proj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_slice_handles_all_arities() {
        assert_eq!(Point2::from_slice(&[]), Point2::new(0.0, 0.0));
        assert_eq!(Point2::from_slice(&[3.0]), Point2::new(3.0, 0.0));
        assert_eq!(Point2::from_slice(&[3.0, 4.0]), Point2::new(3.0, 4.0));
        assert_eq!(Point2::from_slice(&[3.0, 4.0, 5.0]), Point2::new(3.0, 4.0));
    }

    #[test]
    fn distances() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.dist2(&b), 25.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist(&[1.0], &[4.0]), 3.0);
    }

    #[test]
    fn cross_sign_encodes_orientation() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 0.0);
        assert!(cross(a, b, Point2::new(0.5, 1.0)) > 0.0); // left
        assert!(cross(a, b, Point2::new(0.5, -1.0)) < 0.0); // right
        assert_eq!(cross(a, b, Point2::new(2.0, 0.0)), 0.0); // collinear
    }

    #[test]
    fn point_segment_distance() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(10.0, 0.0);
        // Projection inside the segment.
        assert_eq!(dist2_point_segment(Point2::new(5.0, 3.0), a, b), 9.0);
        // Beyond the endpoints clamps to the endpoint.
        assert_eq!(dist2_point_segment(Point2::new(-3.0, 0.0), a, b), 9.0);
        assert_eq!(dist2_point_segment(Point2::new(13.0, 0.0), a, b), 9.0);
        // Degenerate segment.
        assert_eq!(dist2_point_segment(Point2::new(1.0, 1.0), a, a), 2.0);
    }
}
