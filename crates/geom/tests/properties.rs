//! Property-based tests for the geometry substrate: invariants that must
//! hold for *any* point configuration, not just hand-picked ones.

use lte_geom::hull::interval_hull;
use lte_geom::point::{cross, dist2_point_segment};
use lte_geom::polytope::{DualSpaceModel, ThreeSetLabel};
use lte_geom::{convex_hull, Aabb, ConvexPolygon, Point2, Region, RegionUnion};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point2> {
    (-100.0..100.0f64, -100.0..100.0f64).prop_map(|(x, y)| Point2::new(x, y))
}

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Point2>> {
    proptest::collection::vec(arb_point(), 1..max)
}

proptest! {
    /// Every input point lies inside (or on) its convex hull.
    #[test]
    fn hull_contains_inputs(pts in arb_points(40)) {
        let poly = ConvexPolygon::from_points(&pts);
        for p in &pts {
            prop_assert!(poly.contains(*p), "point {p:?} escaped its hull");
        }
    }

    /// The hull of hull vertices is the hull itself (idempotence).
    #[test]
    fn hull_is_idempotent(pts in arb_points(40)) {
        let h1 = convex_hull(&pts);
        let h2 = convex_hull(&h1);
        let poly1 = ConvexPolygon::from_points(&pts);
        let poly2 = ConvexPolygon::from_points(&h2);
        prop_assert_eq!(h1.len(), h2.len());
        // Same membership behaviour on a probe grid.
        for gx in -3..4 {
            for gy in -3..4 {
                let q = Point2::new(gx as f64 * 30.0, gy as f64 * 30.0);
                prop_assert_eq!(poly1.contains(q), poly2.contains(q));
            }
        }
    }

    /// Hull vertices are in convex position: every vertex is on the hull
    /// boundary, i.e. removing it shrinks membership or keeps it equal,
    /// never grows it.
    #[test]
    fn hull_vertices_are_extreme(pts in arb_points(30)) {
        let h = convex_hull(&pts);
        if h.len() >= 3 {
            // CCW orientation: all consecutive turns are non-right.
            for i in 0..h.len() {
                let a = h[i];
                let b = h[(i + 1) % h.len()];
                let c = h[(i + 2) % h.len()];
                prop_assert!(cross(a, b, c) >= 0.0, "clockwise turn in hull");
            }
        }
    }

    /// Interval hull spans exactly [min, max].
    #[test]
    fn interval_hull_is_min_max(values in proptest::collection::vec(-1e6..1e6f64, 1..50)) {
        let (lo, hi) = interval_hull(&values).expect("non-empty");
        for v in &values {
            prop_assert!(*v >= lo && *v <= hi);
        }
        prop_assert!(values.contains(&lo) && values.contains(&hi));
    }

    /// A union of regions contains everything its parts contain.
    #[test]
    fn union_is_superset_of_parts(pts_a in arb_points(15), pts_b in arb_points(15), probe in arb_point()) {
        let part_a = Region::Polygon(ConvexPolygon::from_points(&pts_a));
        let part_b = Region::Polygon(ConvexPolygon::from_points(&pts_b));
        let union = RegionUnion::new(vec![part_a.clone(), part_b.clone()]);
        let row = [probe.x, probe.y];
        prop_assert_eq!(
            union.contains(&row),
            part_a.contains(&row) || part_b.contains(&row)
        );
    }

    /// Aabb::from_rows encloses all inputs and inflation is monotone.
    #[test]
    fn aabb_encloses_and_inflates(rows in proptest::collection::vec(
        proptest::collection::vec(-50.0..50.0f64, 3), 1..20), margin in 0.0..10.0f64) {
        let b = Aabb::from_rows(&rows).expect("non-empty");
        for r in &rows {
            prop_assert!(b.contains(r));
        }
        let big = b.inflate(margin);
        for r in &rows {
            prop_assert!(big.contains(r));
        }
        prop_assert!(big.volume() >= b.volume());
    }

    /// Dual-space soundness: the positive polytope never contains a point
    /// classified negative, and certain labels are mutually exclusive.
    #[test]
    fn dual_space_labels_are_exclusive(
        pos in arb_points(10),
        neg in arb_points(10),
        probe in arb_point(),
    ) {
        let mut model = DualSpaceModel::new();
        for p in &pos {
            model.add_labeled(&[p.x, p.y], true);
        }
        for q in &neg {
            model.add_labeled(&[q.x, q.y], false);
        }
        let row = [probe.x, probe.y];
        let label = model.classify(&row);
        match label {
            ThreeSetLabel::Positive => prop_assert!(model.in_positive_region(&row)),
            ThreeSetLabel::Negative => prop_assert!(!model.in_positive_region(&row)),
            ThreeSetLabel::Uncertain => {
                prop_assert!(!model.in_positive_region(&row));
                prop_assert!(!model.in_negative_region(&row));
            }
        }
    }

    /// Distance to a segment is zero exactly on the segment and symmetric in
    /// the endpoints.
    #[test]
    fn segment_distance_symmetry(a in arb_point(), b in arb_point(), p in arb_point()) {
        let d1 = dist2_point_segment(p, a, b);
        let d2 = dist2_point_segment(p, b, a);
        prop_assert!((d1 - d2).abs() < 1e-9);
        prop_assert!(d1 >= 0.0);
        prop_assert!(dist2_point_segment(a, a, b) < 1e-18);
    }
}
