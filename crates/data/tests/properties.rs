//! Property-based tests for the data substrate.

use lte_data::rng::seeded;
use lte_data::sampling::{reservoir_indices, sample_indices, train_test_split};
use lte_data::schema::{Attribute, Schema};
use lte_data::subspace::decompose_random;
use lte_data::table::Table;
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// Sampled indices are always distinct and in range, for any (len, n).
    #[test]
    fn sample_indices_distinct(len in 0usize..500, n in 0usize..600, seed in 0u64..100) {
        let mut rng = seeded(seed);
        let s = sample_indices(&mut rng, len, n);
        prop_assert_eq!(s.len(), n.min(len));
        let set: HashSet<_> = s.iter().collect();
        prop_assert_eq!(set.len(), s.len());
        prop_assert!(s.iter().all(|&i| i < len));
    }

    /// Reservoir sampling has the same cardinality guarantees.
    #[test]
    fn reservoir_distinct(len in 0usize..500, n in 0usize..64, seed in 0u64..100) {
        let mut rng = seeded(seed);
        let s = reservoir_indices(&mut rng, len, n);
        prop_assert_eq!(s.len(), n.min(len));
        let set: HashSet<_> = s.iter().collect();
        prop_assert_eq!(set.len(), s.len());
    }

    /// Train/test split partitions the index range exactly.
    #[test]
    fn split_partitions(len in 0usize..300, frac in 0.0..1.0f64, seed in 0u64..100) {
        let mut rng = seeded(seed);
        let (train, test) = train_test_split(&mut rng, len, frac);
        prop_assert_eq!(train.len() + test.len(), len);
        let all: HashSet<_> = train.iter().chain(test.iter()).collect();
        prop_assert_eq!(all.len(), len);
    }

    /// Random subspace decomposition is a partition of the attributes.
    #[test]
    fn decomposition_partitions_attrs(n_attrs in 1usize..20, dim in 1usize..4, seed in 0u64..100) {
        let mut rng = seeded(seed);
        let subs = decompose_random(&mut rng, n_attrs, dim);
        let mut all: Vec<usize> = subs.iter().flat_map(|s| s.attr_indices().to_vec()).collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n_attrs).collect::<Vec<_>>());
        for s in &subs[..subs.len().saturating_sub(1)] {
            prop_assert_eq!(s.dim(), dim);
        }
    }

    /// Attribute normalization always lands in [0, 1] and is monotone.
    #[test]
    fn normalize_bounded_monotone(lo in -1e5..1e5f64, width in 0.0..1e5f64, a in -1e6..1e6f64, b in -1e6..1e6f64) {
        let attr = Attribute::new("x", lo, lo + width);
        let na = attr.normalize(a);
        let nb = attr.normalize(b);
        prop_assert!((0.0..=1.0).contains(&na));
        if a <= b {
            prop_assert!(na <= nb + 1e-12);
        }
    }

    /// Projection then row access equals row access then projection.
    #[test]
    fn project_commutes_with_rows(
        rows in proptest::collection::vec(proptest::collection::vec(-10.0..10.0f64, 3), 1..30),
        keep in proptest::sample::subsequence(vec![0usize, 1, 2], 1..=3),
    ) {
        let schema = Schema::new(vec![
            Attribute::new("a", -10.0, 10.0),
            Attribute::new("b", -10.0, 10.0),
            Attribute::new("c", -10.0, 10.0),
        ]);
        let t = Table::from_rows(schema, &rows).expect("table");
        let p = t.project(&keep).expect("projection");
        for (i, row) in rows.iter().enumerate() {
            let expected: Vec<f64> = keep.iter().map(|&c| row[c]).collect();
            prop_assert_eq!(p.row(i).expect("row"), expected);
        }
    }
}
