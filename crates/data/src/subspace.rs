//! Subspace decomposition (paper §III-A, §V-E).
//!
//! Existing IDEs — and LTE — decompose a user-interest space `Du` into a set
//! of disjoint low-dimensional subspaces `{Di}`, `Du = D1 × ... × Dn`. LTE
//! pre-trains one meta-learner per *meta-subspace*; at exploration time the
//! user's chosen attributes are mapped onto those meta-subspaces. The paper
//! splits the domain space randomly into 2D meta-subspaces because it
//! assumes zero knowledge about semantics (§V-E); we reproduce exactly that,
//! with a seeded RNG.

use crate::error::DataError;
use crate::schema::Schema;
use crate::table::Table;
use rand::Rng;

/// A low-dimensional subspace: an ordered subset of attribute indices of the
/// full schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Subspace {
    attrs: Vec<usize>,
}

impl Subspace {
    /// Create a subspace over the given attribute indices.
    pub fn new(attrs: Vec<usize>) -> Self {
        Self { attrs }
    }

    /// The attribute indices (into the full schema).
    pub fn attr_indices(&self) -> &[usize] {
        &self.attrs
    }

    /// Subspace dimensionality.
    pub fn dim(&self) -> usize {
        self.attrs.len()
    }

    /// Project a full-space row onto this subspace.
    pub fn project_row(&self, row: &[f64]) -> Vec<f64> {
        self.attrs.iter().map(|&i| row[i]).collect()
    }

    /// Project a full table onto this subspace.
    pub fn project_table(&self, table: &Table) -> Result<Table, DataError> {
        table.project(&self.attrs)
    }

    /// Human-readable label using schema names, e.g. `"(ra, dec)"`.
    pub fn label(&self, schema: &Schema) -> String {
        let names: Vec<&str> = self
            .attrs
            .iter()
            .map(|&i| schema.attr(i).map(|a| a.name.as_str()).unwrap_or("?"))
            .collect();
        format!("({})", names.join(", "))
    }
}

/// Randomly split `n_attrs` attributes into disjoint subspaces of dimension
/// `subspace_dim` (the paper's default is 2). When `n_attrs` is not a
/// multiple of `subspace_dim`, the final subspace holds the remainder
/// (dimension ≥ 1).
pub fn decompose_random<R: Rng + ?Sized>(
    rng: &mut R,
    n_attrs: usize,
    subspace_dim: usize,
) -> Vec<Subspace> {
    assert!(subspace_dim >= 1, "subspace_dim must be >= 1");
    let mut idx: Vec<usize> = (0..n_attrs).collect();
    for i in (1..idx.len()).rev() {
        let j = rng.random_range(0..=i);
        idx.swap(i, j);
    }
    idx.chunks(subspace_dim)
        .map(|chunk| Subspace::new(chunk.to_vec()))
        .collect()
}

/// Split the first `n_attrs` attributes in order (deterministic layout used
/// by tests and by experiments that fix the subspace structure).
pub fn decompose_sequential(n_attrs: usize, subspace_dim: usize) -> Vec<Subspace> {
    assert!(subspace_dim >= 1, "subspace_dim must be >= 1");
    (0..n_attrs)
        .collect::<Vec<usize>>()
        .chunks(subspace_dim)
        .map(|chunk| Subspace::new(chunk.to_vec()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;
    use crate::schema::Attribute;

    #[test]
    fn project_row_selects_in_order() {
        let s = Subspace::new(vec![2, 0]);
        assert_eq!(s.project_row(&[10.0, 20.0, 30.0]), vec![30.0, 10.0]);
        assert_eq!(s.dim(), 2);
    }

    #[test]
    fn random_decomposition_partitions_attributes() {
        let mut rng = seeded(0);
        let subs = decompose_random(&mut rng, 8, 2);
        assert_eq!(subs.len(), 4);
        let mut all: Vec<usize> = subs.iter().flat_map(|s| s.attrs.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn random_decomposition_handles_remainder() {
        let mut rng = seeded(1);
        let subs = decompose_random(&mut rng, 5, 2);
        assert_eq!(subs.len(), 3);
        assert_eq!(subs[2].dim(), 1);
    }

    #[test]
    fn sequential_decomposition_is_stable() {
        let subs = decompose_sequential(6, 2);
        assert_eq!(subs[0].attr_indices(), &[0, 1]);
        assert_eq!(subs[1].attr_indices(), &[2, 3]);
        assert_eq!(subs[2].attr_indices(), &[4, 5]);
    }

    #[test]
    fn label_uses_schema_names() {
        let schema = Schema::new(vec![
            Attribute::new("ra", 0.0, 1.0),
            Attribute::new("dec", 0.0, 1.0),
        ]);
        let s = Subspace::new(vec![0, 1]);
        assert_eq!(s.label(&schema), "(ra, dec)");
    }

    #[test]
    fn project_table_matches_project_row() {
        let schema = Schema::new(vec![
            Attribute::new("a", 0.0, 1.0),
            Attribute::new("b", 0.0, 1.0),
            Attribute::new("c", 0.0, 1.0),
        ]);
        let t = Table::from_rows(schema, &[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let s = Subspace::new(vec![2, 1]);
        let p = s.project_table(&t).unwrap();
        assert_eq!(p.row(0).unwrap(), s.project_row(&t.row(0).unwrap()));
    }
}
