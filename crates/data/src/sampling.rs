//! Row-index sampling utilities.
//!
//! The paper keeps every expensive offline step lightweight by operating on
//! small samples: clustering runs on a ~1% sample of each meta-subspace
//! (§V footnote 6) and tabular preprocessing fits GMM/JKC models on a ≤1%
//! sample (§VII-A). These helpers produce reproducible samples given a
//! seeded RNG.

use rand::Rng;

/// Sample `n` distinct indices from `0..len` uniformly at random.
///
/// Uses a partial Fisher-Yates shuffle: O(len) memory, O(n) swaps. If
/// `n >= len`, returns all indices (shuffled).
pub fn sample_indices<R: Rng + ?Sized>(rng: &mut R, len: usize, n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..len).collect();
    let take = n.min(len);
    for i in 0..take {
        let j = rng.random_range(i..len);
        idx.swap(i, j);
    }
    idx.truncate(take);
    idx
}

/// Reservoir-sample `n` indices from a stream of `len` items.
///
/// Equivalent in distribution to [`sample_indices`] but uses O(n) memory;
/// useful when `len` is large and only a small sample is needed.
pub fn reservoir_indices<R: Rng + ?Sized>(rng: &mut R, len: usize, n: usize) -> Vec<usize> {
    if n == 0 || len == 0 {
        return Vec::new();
    }
    let take = n.min(len);
    let mut reservoir: Vec<usize> = (0..take).collect();
    for i in take..len {
        let j = rng.random_range(0..=i);
        if j < take {
            reservoir[j] = i;
        }
    }
    reservoir
}

/// Split `0..len` into a train/test partition with `test_fraction` of the
/// indices in the second part. Both parts are shuffled.
pub fn train_test_split<R: Rng + ?Sized>(
    rng: &mut R,
    len: usize,
    test_fraction: f64,
) -> (Vec<usize>, Vec<usize>) {
    let mut idx: Vec<usize> = (0..len).collect();
    // Full Fisher-Yates shuffle.
    for i in (1..len).rev() {
        let j = rng.random_range(0..=i);
        idx.swap(i, j);
    }
    let n_test = ((len as f64) * test_fraction.clamp(0.0, 1.0)).round() as usize;
    let test = idx.split_off(len - n_test.min(len));
    (idx, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;
    use std::collections::HashSet;

    #[test]
    fn sample_indices_are_distinct_and_in_range() {
        let mut rng = seeded(1);
        let s = sample_indices(&mut rng, 100, 10);
        assert_eq!(s.len(), 10);
        let set: HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 10);
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_indices_cap_at_len() {
        let mut rng = seeded(2);
        let s = sample_indices(&mut rng, 5, 50);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn reservoir_matches_cardinality() {
        let mut rng = seeded(3);
        let s = reservoir_indices(&mut rng, 1000, 10);
        assert_eq!(s.len(), 10);
        let set: HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 10);
        assert!(reservoir_indices(&mut rng, 0, 10).is_empty());
        assert!(reservoir_indices(&mut rng, 10, 0).is_empty());
    }

    #[test]
    fn reservoir_is_roughly_uniform() {
        // Each of 20 items should appear in a size-5 reservoir about 25% of
        // the time over many trials.
        let mut rng = seeded(4);
        let mut counts = [0usize; 20];
        let trials = 4000;
        for _ in 0..trials {
            for i in reservoir_indices(&mut rng, 20, 5) {
                counts[i] += 1;
            }
        }
        for &c in &counts {
            let frac = c as f64 / trials as f64;
            assert!((frac - 0.25).abs() < 0.05, "frac {frac}");
        }
    }

    #[test]
    fn train_test_split_partitions() {
        let mut rng = seeded(5);
        let (train, test) = train_test_split(&mut rng, 100, 0.2);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
        let all: HashSet<_> = train.iter().chain(test.iter()).collect();
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn train_test_split_extremes() {
        let mut rng = seeded(6);
        let (train, test) = train_test_split(&mut rng, 10, 0.0);
        assert_eq!((train.len(), test.len()), (10, 0));
        let (train, test) = train_test_split(&mut rng, 10, 1.0);
        assert_eq!((train.len(), test.len()), (0, 10));
    }
}
