//! Named datasets: a table plus its identity.

use crate::generator;
use crate::table::Table;

/// A named dataset — the unit the exploration pipeline is configured with.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Human-readable dataset name (`"sdss"`, `"car"`, ...).
    pub name: String,
    /// The backing table.
    pub table: Table,
}

impl Dataset {
    /// Wrap an arbitrary table.
    pub fn new(name: impl Into<String>, table: Table) -> Self {
        Self {
            name: name.into(),
            table,
        }
    }

    /// The synthetic SDSS-like dataset (paper default: 100K tuples × 8
    /// attributes). See [`generator::sdss`] for the generation model.
    pub fn sdss(n: usize, seed: u64) -> Self {
        Self::new("sdss", generator::generate_sdss(n, seed))
    }

    /// The synthetic CAR-like dataset (paper default: 50K tuples × 5
    /// attributes). See [`generator::car`] for the generation model.
    pub fn car(n: usize, seed: u64) -> Self {
        Self::new("car", generator::generate_car(n, seed))
    }

    /// Uniform test dataset.
    pub fn uniform(n: usize, dims: usize, seed: u64) -> Self {
        Self::new("uniform", generator::generate_uniform(n, dims, seed))
    }

    /// Number of rows in the backing table.
    pub fn n_rows(&self) -> usize {
        self.table.n_rows()
    }

    /// Number of attributes.
    pub fn n_attrs(&self) -> usize {
        self.table.n_cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_name_datasets() {
        assert_eq!(Dataset::sdss(10, 0).name, "sdss");
        assert_eq!(Dataset::car(10, 0).name, "car");
        assert_eq!(Dataset::uniform(10, 2, 0).name, "uniform");
    }

    #[test]
    fn dims_match_paper_settings() {
        let s = Dataset::sdss(100, 0);
        assert_eq!(s.n_attrs(), 8);
        let c = Dataset::car(100, 0);
        assert_eq!(c.n_attrs(), 5);
    }
}
