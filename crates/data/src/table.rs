//! Columnar table storage.
//!
//! Tables are immutable once built; exploration code projects them onto
//! subspaces, samples them, and iterates rows. Storage is column-major
//! (`Vec<f64>` per attribute) which makes per-attribute preprocessing (GMM /
//! Jenks fitting, §VII-A) cache friendly, while [`Table::row`] materializes
//! row vectors for geometry and classifier input.

use crate::error::DataError;
use crate::sampling;
use crate::schema::Schema;
use rand::Rng;

/// An immutable, column-major numeric table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Schema,
    columns: Vec<Vec<f64>>,
    n_rows: usize,
}

impl Table {
    /// Build a table from a schema and matching columns.
    pub fn new(schema: Schema, columns: Vec<Vec<f64>>) -> Result<Self, DataError> {
        if schema.len() != columns.len() {
            return Err(DataError::ColumnLengthMismatch {
                column: "<schema>".into(),
                expected: schema.len(),
                actual: columns.len(),
            });
        }
        let n_rows = columns.first().map_or(0, Vec::len);
        for (i, col) in columns.iter().enumerate() {
            if col.len() != n_rows {
                return Err(DataError::ColumnLengthMismatch {
                    column: schema.attr(i)?.name.clone(),
                    expected: n_rows,
                    actual: col.len(),
                });
            }
        }
        Ok(Self {
            schema,
            columns,
            n_rows,
        })
    }

    /// Build a table from row-major data.
    pub fn from_rows(schema: Schema, rows: &[Vec<f64>]) -> Result<Self, DataError> {
        let n_cols = schema.len();
        let mut columns = vec![Vec::with_capacity(rows.len()); n_cols];
        for (ri, row) in rows.iter().enumerate() {
            if row.len() != n_cols {
                return Err(DataError::ColumnLengthMismatch {
                    column: format!("<row {ri}>"),
                    expected: n_cols,
                    actual: row.len(),
                });
            }
            for (c, &v) in row.iter().enumerate() {
                columns[c].push(v);
            }
        }
        Table::new(schema, columns)
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Borrow a column by index.
    pub fn column(&self, index: usize) -> Result<&[f64], DataError> {
        self.columns
            .get(index)
            .map(Vec::as_slice)
            .ok_or(DataError::ColumnOutOfBounds {
                index,
                len: self.columns.len(),
            })
    }

    /// Borrow a column by attribute name.
    pub fn column_by_name(&self, name: &str) -> Result<&[f64], DataError> {
        let idx = self.schema.index_of(name)?;
        self.column(idx)
    }

    /// Single cell value.
    pub fn value(&self, row: usize, col: usize) -> Result<f64, DataError> {
        let column = self.column(col)?;
        column.get(row).copied().ok_or(DataError::RowOutOfBounds {
            index: row,
            len: self.n_rows,
        })
    }

    /// Materialize a row as a vector.
    pub fn row(&self, index: usize) -> Result<Vec<f64>, DataError> {
        if index >= self.n_rows {
            return Err(DataError::RowOutOfBounds {
                index,
                len: self.n_rows,
            });
        }
        Ok(self.columns.iter().map(|c| c[index]).collect())
    }

    /// Write a row into a caller-provided buffer (avoids per-row allocation
    /// in hot loops). The buffer is cleared first.
    pub fn row_into(&self, index: usize, out: &mut Vec<f64>) -> Result<(), DataError> {
        if index >= self.n_rows {
            return Err(DataError::RowOutOfBounds {
                index,
                len: self.n_rows,
            });
        }
        out.clear();
        out.extend(self.columns.iter().map(|c| c[index]));
        Ok(())
    }

    /// Iterate rows as freshly allocated vectors.
    pub fn iter_rows(&self) -> impl Iterator<Item = Vec<f64>> + '_ {
        (0..self.n_rows).map(move |i| self.columns.iter().map(|c| c[i]).collect())
    }

    /// Materialize all rows (row-major copy).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.iter_rows().collect()
    }

    /// Project the table onto a subset of columns (attribute indices).
    pub fn project(&self, indices: &[usize]) -> Result<Table, DataError> {
        let schema = self.schema.project(indices)?;
        let mut columns = Vec::with_capacity(indices.len());
        for &i in indices {
            columns.push(self.column(i)?.to_vec());
        }
        Table::new(schema, columns)
    }

    /// Select a subset of rows by index, in the given order.
    pub fn select_rows(&self, indices: &[usize]) -> Result<Table, DataError> {
        for &i in indices {
            if i >= self.n_rows {
                return Err(DataError::RowOutOfBounds {
                    index: i,
                    len: self.n_rows,
                });
            }
        }
        let columns = self
            .columns
            .iter()
            .map(|c| indices.iter().map(|&i| c[i]).collect())
            .collect();
        Table::new(self.schema.clone(), columns)
    }

    /// Uniform random sample (without replacement) of `n` rows.
    ///
    /// If `n >= n_rows`, the whole table is returned (copied).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Table {
        if n >= self.n_rows {
            return self.clone();
        }
        let idx = sampling::sample_indices(rng, self.n_rows, n);
        self.select_rows(&idx)
            .expect("sampled indices are in range")
    }

    /// Sample a fixed fraction of rows, e.g. the paper's 1% clustering sample
    /// (§V footnote 6). Guarantees at least `min` rows (clamped to table
    /// size) so tiny tables remain usable.
    pub fn sample_fraction<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        fraction: f64,
        min: usize,
    ) -> Table {
        let want = ((self.n_rows as f64 * fraction).ceil() as usize)
            .max(min)
            .min(self.n_rows);
        self.sample(rng, want)
    }
}

/// Incremental row-oriented table builder.
#[derive(Debug, Clone)]
pub struct TableBuilder {
    schema: Schema,
    columns: Vec<Vec<f64>>,
}

impl TableBuilder {
    /// Start building a table with the given schema.
    pub fn new(schema: Schema) -> Self {
        let n = schema.len();
        Self {
            schema,
            columns: vec![Vec::new(); n],
        }
    }

    /// Reserve capacity for `n` rows.
    pub fn with_capacity(mut self, n: usize) -> Self {
        for c in &mut self.columns {
            c.reserve(n);
        }
        self
    }

    /// Append one row; the row length must match the schema.
    pub fn push_row(&mut self, row: &[f64]) -> Result<(), DataError> {
        if row.len() != self.columns.len() {
            return Err(DataError::ColumnLengthMismatch {
                column: "<row>".into(),
                expected: self.columns.len(),
                actual: row.len(),
            });
        }
        for (c, &v) in row.iter().enumerate() {
            self.columns[c].push(v);
        }
        Ok(())
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// True when no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finish building.
    pub fn build(self) -> Result<Table, DataError> {
        Table::new(self.schema, self.columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;
    use crate::schema::Attribute;

    fn small_table() -> Table {
        let schema = Schema::new(vec![
            Attribute::new("x", 0.0, 10.0),
            Attribute::new("y", 0.0, 10.0),
        ]);
        Table::from_rows(
            schema,
            &[
                vec![1.0, 2.0],
                vec![3.0, 4.0],
                vec![5.0, 6.0],
                vec![7.0, 8.0],
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_rows_round_trips() {
        let t = small_table();
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.row(1).unwrap(), vec![3.0, 4.0]);
        assert_eq!(t.column_by_name("y").unwrap(), &[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(t.to_rows().len(), 4);
    }

    #[test]
    fn mismatched_row_length_is_rejected() {
        let schema = Schema::new(vec![Attribute::new("x", 0.0, 1.0)]);
        assert!(Table::from_rows(schema, &[vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn mismatched_column_length_is_rejected() {
        let schema = Schema::new(vec![
            Attribute::new("x", 0.0, 1.0),
            Attribute::new("y", 0.0, 1.0),
        ]);
        assert!(Table::new(schema, vec![vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn project_keeps_order() {
        let t = small_table();
        let p = t.project(&[1]).unwrap();
        assert_eq!(p.n_cols(), 1);
        assert_eq!(p.column(0).unwrap(), &[2.0, 4.0, 6.0, 8.0]);
        assert!(t.project(&[2]).is_err());
    }

    #[test]
    fn select_rows_reorders() {
        let t = small_table();
        let s = t.select_rows(&[3, 0]).unwrap();
        assert_eq!(s.row(0).unwrap(), vec![7.0, 8.0]);
        assert_eq!(s.row(1).unwrap(), vec![1.0, 2.0]);
        assert!(t.select_rows(&[9]).is_err());
    }

    #[test]
    fn sample_without_replacement_has_unique_rows() {
        let t = small_table();
        let mut rng = seeded(0);
        let s = t.sample(&mut rng, 3);
        assert_eq!(s.n_rows(), 3);
        let mut rows = s.to_rows();
        rows.sort_by(|a, b| a.partial_cmp(b).unwrap());
        rows.dedup();
        assert_eq!(rows.len(), 3, "sampled rows must be distinct");
    }

    #[test]
    fn sample_larger_than_table_returns_all() {
        let t = small_table();
        let mut rng = seeded(0);
        assert_eq!(t.sample(&mut rng, 100).n_rows(), 4);
    }

    #[test]
    fn sample_fraction_respects_min() {
        let t = small_table();
        let mut rng = seeded(0);
        let s = t.sample_fraction(&mut rng, 0.01, 2);
        assert_eq!(s.n_rows(), 2);
    }

    #[test]
    fn row_into_reuses_buffer() {
        let t = small_table();
        let mut buf = vec![99.0; 8];
        t.row_into(2, &mut buf).unwrap();
        assert_eq!(buf, vec![5.0, 6.0]);
        assert!(t.row_into(10, &mut buf).is_err());
    }

    #[test]
    fn builder_accumulates_rows() {
        let schema = Schema::new(vec![Attribute::new("x", 0.0, 1.0)]);
        let mut b = TableBuilder::new(schema).with_capacity(2);
        assert!(b.is_empty());
        b.push_row(&[0.5]).unwrap();
        b.push_row(&[0.7]).unwrap();
        assert_eq!(b.len(), 2);
        assert!(b.push_row(&[0.1, 0.2]).is_err());
        let t = b.build().unwrap();
        assert_eq!(t.n_rows(), 2);
    }
}
