//! Synthetic used-car listing table (CAR).
//!
//! Mirrors the paper's second dataset: 50K second-hand car listings with 5
//! commonly used numeric attributes: `price, mileage, year, power, engine`.
//!
//! Distributional character (deliberately different from SDSS): smooth,
//! skewed, trend-like marginals — right-skewed mileage, price decaying with
//! age and mileage, a gentle registration-year trend — i.e. the regime where
//! interval-scanning encoders such as Jenks natural breaks (JKC) outperform
//! GMMs (§VII-A).

use super::fit_domains;
use crate::rng::{randn_scaled, seeded};
use crate::table::Table;
use rand::RngExt;

/// Generate a CAR-like table with `n` rows.
pub fn generate_car(n: usize, seed: u64) -> Table {
    let mut rng = seeded(seed);

    let mut price = Vec::with_capacity(n);
    let mut mileage = Vec::with_capacity(n);
    let mut year = Vec::with_capacity(n);
    let mut power = Vec::with_capacity(n);
    let mut engine = Vec::with_capacity(n);

    for _ in 0..n {
        // Registration year: smooth trend, more recent cars more common.
        let u: f64 = rng.random::<f64>();
        let y = 1998.0 + 24.0 * u.powf(0.6); // skewed towards recent years
        year.push(y.floor().clamp(1998.0, 2022.0));

        // Mileage (km): right-skewed, grows with age.
        let age = 2023.0 - y;
        let base_km = 13_000.0 * age;
        let km = (base_km * (0.4 + 1.2 * rng.random::<f64>())
            + randn_scaled(&mut rng, 0.0, 8_000.0))
        .max(0.0);
        mileage.push(km.min(400_000.0));

        // Engine displacement (liters): smooth continuum 0.9..5.0 with a
        // soft mass around compact engines.
        let e = 0.9 + 4.1 * rng.random::<f64>().powf(1.7);
        engine.push((e * 10.0).round() / 10.0);

        // Power (hp): increases smoothly with engine size, plus spread.
        let p = 45.0 + 70.0 * e + randn_scaled(&mut rng, 0.0, 18.0);
        power.push(p.clamp(40.0, 450.0));

        // Price (EUR): depreciates with age and mileage, appreciates with
        // power; multiplicative lognormal-ish noise keeps it smooth and
        // right-skewed.
        let base = 38_000.0 * (-0.13 * age).exp();
        let km_penalty = (-km / 250_000.0).exp();
        let power_bonus = 1.0 + (p - 120.0).max(0.0) / 300.0;
        let noise = (randn_scaled(&mut rng, 0.0, 0.28)).exp();
        let pr = (base * km_penalty * power_bonus * noise).clamp(300.0, 120_000.0);
        price.push(pr.round());
    }

    fit_domains(vec![
        ("price", price),
        ("mileage", mileage),
        ("year", year),
        ("power", power),
        ("engine", engine),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_expected_schema() {
        let t = generate_car(50, 0);
        assert_eq!(t.n_rows(), 50);
        assert_eq!(
            t.schema().names(),
            vec!["price", "mileage", "year", "power", "engine"]
        );
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(generate_car(300, 11), generate_car(300, 11));
        assert_ne!(generate_car(300, 11), generate_car(300, 12));
    }

    #[test]
    fn mileage_is_right_skewed() {
        let t = generate_car(10_000, 1);
        let m = t.column_by_name("mileage").unwrap();
        let mean = m.iter().sum::<f64>() / m.len() as f64;
        let mut sorted = m.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(mean > median, "mean {mean} median {median}");
    }

    #[test]
    fn price_decreases_with_age() {
        let t = generate_car(10_000, 2);
        let price = t.column_by_name("price").unwrap();
        let year = t.column_by_name("year").unwrap();
        let newish: Vec<f64> = price
            .iter()
            .zip(year)
            .filter(|(_, &y)| y >= 2018.0)
            .map(|(&p, _)| p)
            .collect();
        let oldish: Vec<f64> = price
            .iter()
            .zip(year)
            .filter(|(_, &y)| y <= 2005.0)
            .map(|(&p, _)| p)
            .collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&newish) > 2.0 * mean(&oldish),
            "new {} old {}",
            mean(&newish),
            mean(&oldish)
        );
    }

    #[test]
    fn power_correlates_with_engine() {
        let t = generate_car(5_000, 3);
        let p = t.column_by_name("power").unwrap();
        let e = t.column_by_name("engine").unwrap();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (mp, me) = (mean(p), mean(e));
        let mut cov = 0.0;
        let mut vp = 0.0;
        let mut ve = 0.0;
        for i in 0..p.len() {
            cov += (p[i] - mp) * (e[i] - me);
            vp += (p[i] - mp).powi(2);
            ve += (e[i] - me).powi(2);
        }
        assert!(cov / (vp.sqrt() * ve.sqrt()) > 0.8);
    }
}
