//! Synthetic SDSS-like sky-object table.
//!
//! Schema follows the paper's setting of 8 photometric/astrometric
//! attributes (cf. §VIII-A and the running example of §I):
//! `rowc, colc, ra, dec, sky_u, sky_g, rowv, colv`.
//!
//! Generation model: sky objects belong to one of several latent "survey
//! stripes" (mixture components). Within a stripe, CCD coordinates
//! (`rowc`, `colc`) are correlated blobs, sky coordinates (`ra`, `dec`)
//! follow the stripe's field center, sky brightness (`sky_u`, `sky_g`) is
//! multi-modal with correlated bands (two magnitudes of the same object),
//! and velocities (`rowv`, `colv`) are near-zero with occasional outliers.
//! The result is the multi-peaked, partially correlated distribution the
//! paper's GMM preprocessing is designed for.

use super::fit_domains;
use crate::rng::{randn_scaled, sample_weighted, seeded};
use crate::table::Table;
use rand::RngExt;

/// A latent survey stripe: field center and dispersions.
struct Stripe {
    weight: f64,
    ra_center: f64,
    dec_center: f64,
    row_center: f64,
    col_center: f64,
    sky_base: f64,
}

fn stripes() -> Vec<Stripe> {
    // Six stripes with uneven weights => clearly multi-modal marginals.
    vec![
        Stripe {
            weight: 0.28,
            ra_center: 30.0,
            dec_center: -5.0,
            row_center: 350.0,
            col_center: 420.0,
            sky_base: 21.8,
        },
        Stripe {
            weight: 0.22,
            ra_center: 95.0,
            dec_center: 12.0,
            row_center: 820.0,
            col_center: 300.0,
            sky_base: 22.6,
        },
        Stripe {
            weight: 0.18,
            ra_center: 150.0,
            dec_center: 33.0,
            row_center: 1250.0,
            col_center: 980.0,
            sky_base: 23.1,
        },
        Stripe {
            weight: 0.14,
            ra_center: 210.0,
            dec_center: 48.0,
            row_center: 560.0,
            col_center: 1500.0,
            sky_base: 22.2,
        },
        Stripe {
            weight: 0.11,
            ra_center: 280.0,
            dec_center: -22.0,
            row_center: 1700.0,
            col_center: 700.0,
            sky_base: 21.4,
        },
        Stripe {
            weight: 0.07,
            ra_center: 330.0,
            dec_center: 60.0,
            row_center: 980.0,
            col_center: 1150.0,
            sky_base: 23.6,
        },
    ]
}

/// Generate an SDSS-like table with `n` rows.
pub fn generate_sdss(n: usize, seed: u64) -> Table {
    let mut rng = seeded(seed);
    let stripes = stripes();
    let weights: Vec<f64> = stripes.iter().map(|s| s.weight).collect();

    let mut rowc = Vec::with_capacity(n);
    let mut colc = Vec::with_capacity(n);
    let mut ra = Vec::with_capacity(n);
    let mut dec = Vec::with_capacity(n);
    let mut sky_u = Vec::with_capacity(n);
    let mut sky_g = Vec::with_capacity(n);
    let mut rowv = Vec::with_capacity(n);
    let mut colv = Vec::with_capacity(n);

    for _ in 0..n {
        let s = &stripes[sample_weighted(&mut rng, &weights)];

        // CCD coordinates: correlated ellipse per stripe.
        let r = randn_scaled(&mut rng, s.row_center, 90.0);
        let c_corr = 0.55 * (r - s.row_center);
        let c = s.col_center + c_corr + randn_scaled(&mut rng, 0.0, 70.0);
        rowc.push(r.clamp(0.0, 2048.0));
        colc.push(c.clamp(0.0, 2048.0));

        // Sky coordinates: tight field around the stripe center.
        ra.push((s.ra_center + randn_scaled(&mut rng, 0.0, 6.0)).rem_euclid(360.0));
        dec.push(randn_scaled(&mut rng, s.dec_center, 4.0).clamp(-90.0, 90.0));

        // Photometry: two correlated magnitudes, band offset per object.
        let mag = randn_scaled(&mut rng, s.sky_base, 0.45);
        sky_u.push(mag);
        sky_g.push(mag - 0.8 + randn_scaled(&mut rng, 0.0, 0.25));

        // Velocities: mostly near zero; ~4% fast movers (asteroids).
        let fast = rng.random::<f64>() < 0.04;
        let vel_sigma = if fast { 6.0 } else { 0.35 };
        rowv.push(randn_scaled(&mut rng, 0.0, vel_sigma));
        colv.push(randn_scaled(&mut rng, 0.0, vel_sigma));
    }

    fit_domains(vec![
        ("rowc", rowc),
        ("colc", colc),
        ("ra", ra),
        ("dec", dec),
        ("sky_u", sky_u),
        ("sky_g", sky_g),
        ("rowv", rowv),
        ("colv", colv),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_paper_schema() {
        let t = generate_sdss(100, 0);
        assert_eq!(t.n_rows(), 100);
        assert_eq!(
            t.schema().names(),
            vec!["rowc", "colc", "ra", "dec", "sky_u", "sky_g", "rowv", "colv"]
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate_sdss(500, 7);
        let b = generate_sdss(500, 7);
        assert_eq!(a, b);
        let c = generate_sdss(500, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn ra_is_multi_modal() {
        // The `ra` marginal should have mass near several distinct stripe
        // centers: verify at least 4 of the 6 centers have nearby samples
        // and the in-between valleys are sparse.
        let t = generate_sdss(20_000, 1);
        let ra = t.column_by_name("ra").unwrap();
        let centers = [30.0, 95.0, 150.0, 210.0, 280.0, 330.0];
        let near = |c: f64| ra.iter().filter(|&&v| (v - c).abs() < 10.0).count();
        let populated = centers.iter().filter(|&&c| near(c) > 200).count();
        assert!(populated >= 4, "only {populated} stripes populated");
        // Valley between 30 and 95 should be sparse relative to peaks.
        let valley = ra.iter().filter(|&&v| (v - 62.5).abs() < 10.0).count();
        assert!(
            valley * 4 < near(30.0),
            "valley {valley} vs peak {}",
            near(30.0)
        );
    }

    #[test]
    fn magnitudes_are_correlated() {
        let t = generate_sdss(5_000, 2);
        let u = t.column_by_name("sky_u").unwrap();
        let g = t.column_by_name("sky_g").unwrap();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (mu, mg) = (mean(u), mean(g));
        let mut cov = 0.0;
        let mut vu = 0.0;
        let mut vg = 0.0;
        for i in 0..u.len() {
            cov += (u[i] - mu) * (g[i] - mg);
            vu += (u[i] - mu).powi(2);
            vg += (g[i] - mg).powi(2);
        }
        let corr = cov / (vu.sqrt() * vg.sqrt());
        assert!(corr > 0.6, "corr {corr}");
    }

    #[test]
    fn velocities_concentrate_near_zero() {
        let t = generate_sdss(5_000, 3);
        let rowv = t.column_by_name("rowv").unwrap();
        let near_zero = rowv.iter().filter(|v| v.abs() < 1.0).count();
        assert!(near_zero as f64 > 0.85 * rowv.len() as f64);
    }
}
