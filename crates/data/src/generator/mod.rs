//! Deterministic synthetic dataset generators.
//!
//! The paper evaluates on two real datasets that cannot be redistributed
//! here: a 100K-tuple, 8-attribute sample of the Sloan Digital Sky Survey
//! (SDSS) and a 50K-tuple, 5-attribute used-car listing table (CAR). LTE
//! consumes only the *empirical distribution* of each dataset — cluster
//! centers summarize the data (§V-B) and GMM/JKC models encode per-attribute
//! modality (§VII-A) — so what matters for reproduction is distributional
//! character, not the actual sky objects:
//!
//! * [`sdss`] produces peaked, multi-modal, partially correlated attributes
//!   (positions and photometric magnitudes), the regime where GMM encoding
//!   shines;
//! * [`car`] produces smooth, skewed, trend-like attributes (price declining
//!   in mileage, year trends), the regime where Jenks natural breaks shine.
//!
//! Both generators are fully deterministic given a seed.

pub mod car;
pub mod sdss;
pub mod uniform;

pub use car::generate_car;
pub use sdss::generate_sdss;
pub use uniform::generate_uniform;

use crate::schema::{Attribute, Schema};
use crate::table::Table;

/// Recompute attribute domains from the actual generated data so that
/// normalization spans exactly the observed value range.
pub(crate) fn fit_domains(name_cols: Vec<(&str, Vec<f64>)>) -> Table {
    let mut attrs = Vec::with_capacity(name_cols.len());
    let mut columns = Vec::with_capacity(name_cols.len());
    for (name, col) in name_cols {
        let lo = col.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = col.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        attrs.push(Attribute::new(name, lo, hi));
        columns.push(col);
    }
    Table::new(Schema::new(attrs), columns).expect("generator columns share length")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_domains_spans_data() {
        let t = fit_domains(vec![("x", vec![3.0, -1.0, 2.0])]);
        let a = t.schema().attr(0).unwrap();
        assert_eq!(a.lo, -1.0);
        assert_eq!(a.hi, 3.0);
    }
}
