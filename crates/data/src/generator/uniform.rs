//! Uniform filler dataset for unit tests and micro-benchmarks.

use super::fit_domains;
use crate::rng::seeded;
use crate::table::Table;
use rand::RngExt;

/// Generate `n` rows of `dims` attributes uniform in `[0, 1)`.
///
/// Attribute names are `u0, u1, ...`.
pub fn generate_uniform(n: usize, dims: usize, seed: u64) -> Table {
    let mut rng = seeded(seed);
    let mut cols: Vec<Vec<f64>> = vec![Vec::with_capacity(n); dims];
    for _ in 0..n {
        for col in cols.iter_mut() {
            col.push(rng.random::<f64>());
        }
    }
    let names: Vec<String> = (0..dims).map(|i| format!("u{i}")).collect();
    fit_domains(
        names
            .iter()
            .map(String::as_str)
            .zip(cols)
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_range() {
        let t = generate_uniform(200, 3, 0);
        assert_eq!(t.n_rows(), 200);
        assert_eq!(t.n_cols(), 3);
        for c in 0..3 {
            for &v in t.column(c).unwrap() {
                assert!((0.0..1.0).contains(&v));
            }
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate_uniform(64, 2, 9), generate_uniform(64, 2, 9));
    }
}
