//! Attribute and schema definitions.
//!
//! A database is a set of attributes `A = {a1, ..., a|A|}` whose domain
//! space `D = domain(a1) × ... × domain(a|A|)` covers all tuples (paper
//! §III-A). Attributes here are numeric with a closed interval domain.

use crate::error::DataError;

/// A single numeric attribute with a closed value domain.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    /// Attribute name (e.g. `"rowc"` or `"price"`).
    pub name: String,
    /// Inclusive lower bound of the value domain.
    pub lo: f64,
    /// Inclusive upper bound of the value domain.
    pub hi: f64,
}

impl Attribute {
    /// Create an attribute with an explicit domain.
    pub fn new(name: impl Into<String>, lo: f64, hi: f64) -> Self {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        Self {
            name: name.into(),
            lo,
            hi,
        }
    }

    /// Width of the attribute domain.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Clamp a value into the attribute domain.
    pub fn clamp(&self, v: f64) -> f64 {
        v.clamp(self.lo, self.hi)
    }

    /// Min-max normalize a value into `[0, 1]` over the attribute domain.
    ///
    /// Degenerate domains (zero width) map every value to `0.0`.
    pub fn normalize(&self, v: f64) -> f64 {
        if self.width() <= f64::EPSILON {
            0.0
        } else {
            ((v - self.lo) / self.width()).clamp(0.0, 1.0)
        }
    }
}

/// An ordered collection of attributes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Build a schema from a list of attributes.
    pub fn new(attrs: Vec<Attribute>) -> Self {
        Self { attrs }
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True when the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// All attributes, in column order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Attribute at a column index.
    pub fn attr(&self, index: usize) -> Result<&Attribute, DataError> {
        self.attrs.get(index).ok_or(DataError::ColumnOutOfBounds {
            index,
            len: self.attrs.len(),
        })
    }

    /// Column index of an attribute by name.
    pub fn index_of(&self, name: &str) -> Result<usize, DataError> {
        self.attrs
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| DataError::UnknownAttribute(name.to_string()))
    }

    /// Project the schema onto a subset of column indices.
    pub fn project(&self, indices: &[usize]) -> Result<Schema, DataError> {
        let mut attrs = Vec::with_capacity(indices.len());
        for &i in indices {
            attrs.push(self.attr(i)?.clone());
        }
        Ok(Schema::new(attrs))
    }

    /// Attribute names in column order.
    pub fn names(&self) -> Vec<&str> {
        self.attrs.iter().map(|a| a.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema3() -> Schema {
        Schema::new(vec![
            Attribute::new("a", 0.0, 10.0),
            Attribute::new("b", -1.0, 1.0),
            Attribute::new("c", 5.0, 5.0),
        ])
    }

    #[test]
    fn attribute_swaps_inverted_bounds() {
        let a = Attribute::new("x", 10.0, 0.0);
        assert_eq!(a.lo, 0.0);
        assert_eq!(a.hi, 10.0);
    }

    #[test]
    fn normalize_maps_into_unit_interval() {
        let a = Attribute::new("x", 0.0, 10.0);
        assert_eq!(a.normalize(0.0), 0.0);
        assert_eq!(a.normalize(10.0), 1.0);
        assert_eq!(a.normalize(5.0), 0.5);
        // Out-of-domain values are clamped.
        assert_eq!(a.normalize(-5.0), 0.0);
        assert_eq!(a.normalize(25.0), 1.0);
    }

    #[test]
    fn normalize_degenerate_domain_is_zero() {
        let a = Attribute::new("x", 5.0, 5.0);
        assert_eq!(a.normalize(5.0), 0.0);
    }

    #[test]
    fn index_of_finds_by_name() {
        let s = schema3();
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert!(matches!(
            s.index_of("zzz"),
            Err(DataError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn project_reorders_and_subsets() {
        let s = schema3();
        let p = s.project(&[2, 0]).unwrap();
        assert_eq!(p.names(), vec!["c", "a"]);
        assert!(s.project(&[7]).is_err());
    }

    #[test]
    fn attr_out_of_bounds_errors() {
        let s = schema3();
        assert!(matches!(
            s.attr(3),
            Err(DataError::ColumnOutOfBounds { index: 3, len: 3 })
        ));
    }
}
