//! Deterministic random-number helpers shared across the workspace.
//!
//! Every stochastic component in this reproduction (dataset generation,
//! k-means initialization, meta-task sampling, network initialization) is
//! seeded so experiments are replayable. This module centralizes the
//! construction of seeded RNGs and provides Gaussian sampling via the
//! Box-Muller transform, since the `rand` crate alone does not ship
//! distributions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Construct a deterministic RNG from a 64-bit seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive a child seed from a parent seed and a stream label.
///
/// Used to give independent, reproducible randomness to each subspace /
/// meta-task / experiment repetition without sharing RNG state across
/// threads. SplitMix64-style mixing keeps nearby labels decorrelated.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a seed to a uniform value in `[0, 1)` without constructing an RNG.
///
/// Combined with [`derive_seed`] this gives counter-based randomness: the
/// n-th decision of a stream is `unit_from(derive_seed(seed, n))`, which is
/// reproducible regardless of how many decisions were drawn before it. The
/// behavior-oracle layer uses this so label noise does not depend on
/// labelling order.
pub fn unit_from(seed: u64) -> f64 {
    // One extra SplitMix64 round so `unit_from(derive_seed(s, n))` is not
    // correlated with the raw derived seed's low bits.
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Sample a standard-normal value via the Box-Muller transform.
pub fn randn<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0): shift u1 into (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Sample a normal value with the given mean and standard deviation.
pub fn randn_scaled<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    mean + std * randn(rng)
}

/// Sample an index in `0..weights.len()` proportionally to `weights`.
///
/// Weights must be non-negative; if all weights are zero the first index is
/// returned.
pub fn sample_weighted<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    debug_assert!(!weights.is_empty());
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return 0;
    }
    let mut t = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        t -= w;
        if t <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn derive_seed_separates_streams() {
        let s1 = derive_seed(7, 0);
        let s2 = derive_seed(7, 1);
        assert_ne!(s1, s2);
        // Deterministic.
        assert_eq!(derive_seed(7, 0), s1);
    }

    #[test]
    fn unit_from_is_uniform_and_deterministic() {
        assert_eq!(unit_from(99), unit_from(99));
        let n = 20_000u64;
        let mean = (0..n).map(|i| unit_from(derive_seed(5, i))).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        for i in 0..1_000 {
            let u = unit_from(derive_seed(5, i));
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn randn_moments_are_sane() {
        let mut rng = seeded(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| randn(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn randn_scaled_shifts_and_scales() {
        let mut rng = seeded(2);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| randn_scaled(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn sample_weighted_respects_weights() {
        let mut rng = seeded(3);
        let weights = [0.0, 0.0, 1.0];
        for _ in 0..100 {
            assert_eq!(sample_weighted(&mut rng, &weights), 2);
        }
        // Degenerate all-zero weights fall back to index 0.
        assert_eq!(sample_weighted(&mut rng, &[0.0, 0.0]), 0);
    }

    #[test]
    fn sample_weighted_is_roughly_proportional() {
        let mut rng = seeded(4);
        let weights = [1.0, 3.0];
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            counts[sample_weighted(&mut rng, &weights)] += 1;
        }
        let frac = counts[1] as f64 / 10_000.0;
        assert!((frac - 0.75).abs() < 0.03, "frac {frac}");
    }
}
