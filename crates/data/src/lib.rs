//! In-memory columnar data substrate for the LTE (Learn-to-Explore) system.
//!
//! Interactive data exploration operates over a tabular database whose
//! attributes are numeric (the paper evaluates on SDSS photometric attributes
//! and used-car listings). This crate provides:
//!
//! * [`Schema`] / [`Attribute`] — attribute names and value domains,
//! * [`Table`] — a columnar store with projection, row access, and sampling,
//! * [`Dataset`] — a named table plus convenience constructors for the two
//!   synthetic benchmark datasets ([`Dataset::sdss`], [`Dataset::car`]),
//! * [`Subspace`] — low-dimensional attribute subsets and the random
//!   decomposition of a user-interest space into 2D subspaces (paper §III-A),
//! * [`sampling`] — random/reservoir sampling used to keep clustering and
//!   preprocessing lightweight (the paper caps sampling ratios at 1%).
//!
//! The real SDSS and eBay CAR datasets are not redistributable here, so
//! [`generator`] produces deterministic synthetic tables whose marginal
//! distributions have the same character (multi-modal peaks for SDSS,
//! smooth skewed trends for CAR); see `DESIGN.md` for the substitution
//! rationale.

pub mod csv;
pub mod dataset;
pub mod error;
pub mod generator;
pub mod rng;
pub mod sampling;
pub mod schema;
pub mod stats;
pub mod subspace;
pub mod table;

pub use dataset::Dataset;
pub use error::DataError;
pub use schema::{Attribute, Schema};
pub use subspace::Subspace;
pub use table::{Table, TableBuilder};
