//! Error type for data-layer operations.

use std::fmt;

/// Errors produced by table construction, projection, and sampling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A column was given a different number of rows than the table.
    ColumnLengthMismatch {
        /// Name of the offending column.
        column: String,
        /// Expected number of rows.
        expected: usize,
        /// Number of rows actually supplied.
        actual: usize,
    },
    /// An attribute name was not found in the schema.
    UnknownAttribute(String),
    /// A column index was out of bounds.
    ColumnOutOfBounds {
        /// Requested index.
        index: usize,
        /// Number of columns in the table.
        len: usize,
    },
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// Requested index.
        index: usize,
        /// Number of rows in the table.
        len: usize,
    },
    /// A table with zero columns or zero rows was used where data is required.
    Empty(&'static str),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::ColumnLengthMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "column `{column}` has {actual} rows, expected {expected}"
            ),
            DataError::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            DataError::ColumnOutOfBounds { index, len } => {
                write!(f, "column index {index} out of bounds (len {len})")
            }
            DataError::RowOutOfBounds { index, len } => {
                write!(f, "row index {index} out of bounds (len {len})")
            }
            DataError::Empty(what) => write!(f, "{what} must be non-empty"),
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = DataError::ColumnLengthMismatch {
            column: "ra".into(),
            expected: 10,
            actual: 7,
        };
        assert!(e.to_string().contains("ra"));
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('7'));

        assert!(DataError::UnknownAttribute("x".into())
            .to_string()
            .contains('x'));
        assert!(DataError::ColumnOutOfBounds { index: 5, len: 2 }
            .to_string()
            .contains('5'));
        assert!(DataError::RowOutOfBounds { index: 9, len: 3 }
            .to_string()
            .contains('9'));
        assert!(DataError::Empty("table").to_string().contains("table"));
    }
}
