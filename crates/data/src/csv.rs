//! CSV import/export for numeric tables.
//!
//! The synthetic SDSS/CAR generators stand in for the paper's datasets, but
//! a released IDE system must ingest *real* tables. This is a dependency-
//! free reader/writer for the numeric-CSV subset LTE consumes: a header row
//! naming the attributes, then one row of `f64`-parseable values per tuple.
//! Quoted fields (RFC-4180 style, including embedded commas and doubled
//! quotes) are supported in headers; value fields must be numeric.

use crate::error::DataError;
use crate::schema::{Attribute, Schema};
use crate::table::Table;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Errors produced by CSV parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum CsvError {
    /// Underlying I/O failure (message form; `std::io::Error` isn't `Clone`).
    Io(String),
    /// The input had no header row.
    MissingHeader,
    /// A row had the wrong number of fields.
    FieldCount {
        /// 1-based line number.
        line: usize,
        /// Expected field count (header arity).
        expected: usize,
        /// Found field count.
        actual: usize,
    },
    /// A value field failed to parse as `f64`.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// Column name.
        column: String,
        /// Offending text.
        text: String,
    },
    /// An unterminated quoted field.
    UnterminatedQuote {
        /// 1-based line number where the field started.
        line: usize,
    },
    /// Table construction failed after parsing.
    Data(DataError),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::MissingHeader => write!(f, "missing header row"),
            CsvError::FieldCount {
                line,
                expected,
                actual,
            } => write!(f, "line {line}: expected {expected} fields, found {actual}"),
            CsvError::BadNumber { line, column, text } => {
                write!(
                    f,
                    "line {line}, column `{column}`: `{text}` is not a number"
                )
            }
            CsvError::UnterminatedQuote { line } => {
                write!(f, "line {line}: unterminated quoted field")
            }
            CsvError::Data(e) => write!(f, "table construction failed: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Split one CSV record honouring quotes. Returns `None` on unterminated
/// quotes.
fn split_record(line: &str) -> Option<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => cur.push(other),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    fields.push(std::mem::take(&mut cur));
                }
                other => cur.push(other),
            }
        }
    }
    if in_quotes {
        return None;
    }
    fields.push(cur);
    Some(fields)
}

/// Parse CSV text into a [`Table`]. Attribute domains are fitted to the
/// observed min/max per column. Empty lines are skipped.
pub fn parse_csv(text: &str) -> Result<Table, CsvError> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (header_line, header) = lines.next().ok_or(CsvError::MissingHeader)?;
    let names = split_record(header).ok_or(CsvError::UnterminatedQuote {
        line: header_line + 1,
    })?;
    let n_cols = names.len();

    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); n_cols];
    for (idx, line) in lines {
        let fields = split_record(line).ok_or(CsvError::UnterminatedQuote { line: idx + 1 })?;
        if fields.len() != n_cols {
            return Err(CsvError::FieldCount {
                line: idx + 1,
                expected: n_cols,
                actual: fields.len(),
            });
        }
        for (c, field) in fields.iter().enumerate() {
            let v: f64 = field.trim().parse().map_err(|_| CsvError::BadNumber {
                line: idx + 1,
                column: names[c].clone(),
                text: field.clone(),
            })?;
            columns[c].push(v);
        }
    }

    let attrs: Vec<Attribute> = names
        .iter()
        .zip(&columns)
        .map(|(name, col)| {
            let lo = col.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = col.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            if col.is_empty() {
                Attribute::new(name.trim(), 0.0, 0.0)
            } else {
                Attribute::new(name.trim(), lo, hi)
            }
        })
        .collect();
    Table::new(Schema::new(attrs), columns).map_err(CsvError::Data)
}

/// Read a CSV file into a [`Table`].
pub fn read_csv(path: &Path) -> Result<Table, CsvError> {
    let text = fs::read_to_string(path).map_err(|e| CsvError::Io(e.to_string()))?;
    parse_csv(&text)
}

/// Render a [`Table`] as CSV text (header + rows).
pub fn to_csv(table: &Table) -> String {
    let mut out = String::new();
    let names: Vec<String> = table
        .schema()
        .names()
        .iter()
        .map(|n| {
            if n.contains(',') || n.contains('"') {
                format!("\"{}\"", n.replace('"', "\"\""))
            } else {
                n.to_string()
            }
        })
        .collect();
    let _ = writeln!(out, "{}", names.join(","));
    for row in table.iter_rows() {
        let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        let _ = writeln!(out, "{}", cells.join(","));
    }
    out
}

/// Write a [`Table`] to a CSV file.
pub fn write_csv(table: &Table, path: &Path) -> Result<(), CsvError> {
    fs::write(path, to_csv(table)).map_err(|e| CsvError::Io(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_csv() {
        let t = parse_csv("a,b\n1,2\n3,4.5\n").unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.schema().names(), vec!["a", "b"]);
        assert_eq!(t.row(1).unwrap(), vec![3.0, 4.5]);
        // Domains are fitted.
        assert_eq!(t.schema().attr(0).unwrap().lo, 1.0);
        assert_eq!(t.schema().attr(0).unwrap().hi, 3.0);
    }

    #[test]
    fn skips_blank_lines_and_trims() {
        let t = parse_csv("x,y\n\n 1 , 2 \n\n3,4\n\n").unwrap();
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    fn quoted_headers_with_commas() {
        let t = parse_csv("\"price, EUR\",\"say \"\"hi\"\"\"\n1,2\n").unwrap();
        assert_eq!(t.schema().names(), vec!["price, EUR", "say \"hi\""]);
    }

    #[test]
    fn error_on_bad_number() {
        let err = parse_csv("a\nnot_a_number\n").unwrap_err();
        assert!(matches!(err, CsvError::BadNumber { line: 2, .. }), "{err}");
    }

    #[test]
    fn error_on_wrong_field_count() {
        let err = parse_csv("a,b\n1\n").unwrap_err();
        assert!(
            matches!(
                err,
                CsvError::FieldCount {
                    line: 2,
                    expected: 2,
                    actual: 1
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn error_on_unterminated_quote() {
        let err = parse_csv("\"oops\n1\n").unwrap_err();
        assert!(matches!(err, CsvError::UnterminatedQuote { .. }), "{err}");
    }

    #[test]
    fn error_on_empty_input() {
        assert_eq!(parse_csv("").unwrap_err(), CsvError::MissingHeader);
        assert_eq!(parse_csv("\n\n").unwrap_err(), CsvError::MissingHeader);
    }

    #[test]
    fn round_trip_through_text() {
        let original = crate::generator::generate_car(50, 3);
        let text = to_csv(&original);
        let parsed = parse_csv(&text).unwrap();
        assert_eq!(parsed.n_rows(), original.n_rows());
        assert_eq!(parsed.schema().names(), original.schema().names());
        for i in 0..original.n_rows() {
            let a = original.row(i).unwrap();
            let b = parsed.row(i).unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn round_trip_through_file() {
        let original = crate::generator::generate_uniform(20, 3, 1);
        let dir = std::env::temp_dir().join("lte_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        write_csv(&original, &path).unwrap();
        let parsed = read_csv(&path).unwrap();
        assert_eq!(parsed.n_rows(), 20);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_missing_file_is_io_error() {
        let err = read_csv(Path::new("/definitely/not/here.csv")).unwrap_err();
        assert!(matches!(err, CsvError::Io(_)));
    }
}
