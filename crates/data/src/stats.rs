//! Per-column summary statistics.
//!
//! Used by the preprocessing layer to pick an encoder per attribute
//! (peaked/multi-modal → GMM, smooth/trend-like → Jenks; §VII-A) and by the
//! dataset generators' tests.

/// Summary statistics of one numeric column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Number of values.
    pub count: usize,
}

impl ColumnStats {
    /// Compute stats over a column. Empty input produces a zeroed summary.
    pub fn compute(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self {
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                std: 0.0,
                count: 0,
            };
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        let mean = sum / values.len() as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
        Self {
            min,
            max,
            mean,
            std: var.sqrt(),
            count: values.len(),
        }
    }
}

/// Equal-width histogram over a column.
///
/// Returns `bins` counts spanning `[min, max]`; degenerate columns (all
/// values equal) put all mass in the first bin.
pub fn histogram(values: &[f64], bins: usize) -> Vec<usize> {
    assert!(bins > 0, "bins must be > 0");
    let mut counts = vec![0usize; bins];
    if values.is_empty() {
        return counts;
    }
    let stats = ColumnStats::compute(values);
    let width = stats.max - stats.min;
    if width <= f64::EPSILON {
        counts[0] = values.len();
        return counts;
    }
    for &v in values {
        let mut b = ((v - stats.min) / width * bins as f64) as usize;
        if b >= bins {
            b = bins - 1;
        }
        counts[b] += 1;
    }
    counts
}

/// Count local maxima of a (smoothed) histogram — a cheap modality probe.
///
/// A bin is a peak when it exceeds both neighbours and carries at least
/// `min_mass` fraction of the total count. The histogram is first smoothed
/// with a 3-bin moving average to suppress sampling noise.
pub fn count_peaks(hist: &[usize], min_mass: f64) -> usize {
    if hist.len() < 3 {
        return usize::from(hist.iter().any(|&c| c > 0));
    }
    let total: usize = hist.iter().sum();
    if total == 0 {
        return 0;
    }
    let smooth: Vec<f64> = (0..hist.len())
        .map(|i| {
            let lo = i.saturating_sub(1);
            let hi = (i + 1).min(hist.len() - 1);
            (lo..=hi).map(|j| hist[j] as f64).sum::<f64>() / (hi - lo + 1) as f64
        })
        .collect();
    let threshold = min_mass * total as f64;
    let mut peaks = 0;
    for i in 1..smooth.len() - 1 {
        if smooth[i] > smooth[i - 1] && smooth[i] >= smooth[i + 1] && smooth[i] >= threshold {
            peaks += 1;
        }
    }
    // Monotone histograms have their mode at an endpoint.
    if smooth[0] > smooth[1] && smooth[0] >= threshold {
        peaks += 1;
    }
    let n = smooth.len();
    if smooth[n - 1] > smooth[n - 2] && smooth[n - 1] >= threshold {
        peaks += 1;
    }
    peaks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{randn_scaled, seeded};

    #[test]
    fn stats_on_known_values() {
        let s = ColumnStats::compute(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert!((s.std - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.count, 4);
    }

    #[test]
    fn stats_on_empty_is_zeroed() {
        let s = ColumnStats::compute(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn histogram_distributes_counts() {
        let h = histogram(&[0.0, 0.1, 0.5, 0.9, 1.0], 2);
        assert_eq!(h.iter().sum::<usize>(), 5);
        // 0.5 lands exactly on the bin boundary and belongs to the upper bin.
        assert_eq!(h, vec![2, 3]);
    }

    #[test]
    fn histogram_degenerate_column() {
        let h = histogram(&[2.0, 2.0, 2.0], 4);
        assert_eq!(h, vec![3, 0, 0, 0]);
    }

    #[test]
    fn bimodal_data_has_two_peaks() {
        let mut rng = seeded(0);
        let mut v = Vec::new();
        for _ in 0..2000 {
            v.push(randn_scaled(&mut rng, -4.0, 0.5));
            v.push(randn_scaled(&mut rng, 4.0, 0.5));
        }
        let h = histogram(&v, 32);
        assert_eq!(count_peaks(&h, 0.01), 2);
    }

    #[test]
    fn monotone_data_has_one_endpoint_peak() {
        // Exponentially decaying histogram — smooth/trend-like.
        let v: Vec<f64> = (0..4000).map(|i| (i as f64 / 4000.0).powi(3)).collect();
        let h = histogram(&v, 32);
        assert_eq!(count_peaks(&h, 0.01), 1);
    }

    #[test]
    fn count_peaks_edge_cases() {
        assert_eq!(count_peaks(&[], 0.1), 0);
        assert_eq!(count_peaks(&[5], 0.1), 1);
        assert_eq!(count_peaks(&[0, 0], 0.1), 0);
    }
}
