//! Simulated user-interest-subregion (UIS) generation (§V-C).
//!
//! By convex decomposition theory, any UIS — concave or disconnected — can
//! be expressed as a union of convex parts. A simulated UIS is built by
//! repeating α times: pick a random cluster center `cj ∈ Cu`, retrieve its
//! ψ-nearest centers via the proximity matrix `Pu` (O(ku)), and take their
//! convex hull (O(ψ·log ψ)); the union of the α hulls is the UIS. Existing
//! works' UISs are special cases (DSM's connected convex region is α = 1).

use lte_cluster::ProximityMatrix;
use lte_geom::{ConvexPolygon, Region, RegionUnion};
use rand::Rng;

/// A UIS complexity mode: `α` convex parts, each the hull of a `ψ`-nearest
/// cluster-center set. Table III's benchmark modes M1–M7 are instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UisMode {
    /// Number of convex parts (`α`).
    pub alpha: usize,
    /// Neighborhood size per part (`ψ`).
    pub psi: usize,
}

impl UisMode {
    /// Create a mode.
    pub fn new(alpha: usize, psi: usize) -> Self {
        assert!(alpha >= 1, "alpha must be >= 1");
        assert!(psi >= 1, "psi must be >= 1");
        Self { alpha, psi }
    }

    /// The seven test-benchmark modes of Table III:
    /// M1–M4 fix α=4 and vary ψ ∈ {20, 15, 10, 5}; M5–M7 fix ψ=20 and vary
    /// α ∈ {1, 2, 3}.
    pub fn paper_modes() -> Vec<(String, UisMode)> {
        vec![
            ("M1".into(), UisMode::new(4, 20)),
            ("M2".into(), UisMode::new(4, 15)),
            ("M3".into(), UisMode::new(4, 10)),
            ("M4".into(), UisMode::new(4, 5)),
            ("M5".into(), UisMode::new(1, 20)),
            ("M6".into(), UisMode::new(2, 20)),
            ("M7".into(), UisMode::new(3, 20)),
        ]
    }

    /// The convex-and-connected mode DSM assumes (α = 1), with the paper's
    /// §VIII-B hull size ψ = 50 (scaled by `psi` here).
    pub fn convex(psi: usize) -> Self {
        UisMode::new(1, psi)
    }
}

impl std::fmt::Display for UisMode {
    /// Paper-style rendering, e.g. `α=4, ψ=20` — used by reports and the
    /// bench snapshots to label the simulated-UIS complexity.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "α={}, ψ={}", self.alpha, self.psi)
    }
}

/// Generate one simulated UIS over `centers` (`Cu`) using precomputed
/// proximities `pu` (the paper's `Pu`).
///
/// Each part: a uniformly random anchor center, its ψ-nearest neighbours
/// (anchor included), and their convex hull. 1D subspaces produce interval
/// parts via the same lifting as `lte-geom`.
pub fn generate_uis<R: Rng + ?Sized>(
    centers: &[Vec<f64>],
    pu: &ProximityMatrix,
    mode: UisMode,
    rng: &mut R,
) -> RegionUnion {
    assert!(!centers.is_empty(), "need cluster centers to build a UIS");
    assert_eq!(pu.n_rows(), centers.len(), "Pu must match centers");
    let mut parts = Vec::with_capacity(mode.alpha);
    for _ in 0..mode.alpha {
        let anchor = rng.random_range(0..centers.len());
        let neighbours = pu.k_nearest(anchor, mode.psi.min(centers.len()), true);
        let rows: Vec<Vec<f64>> = neighbours.iter().map(|&i| centers[i].clone()).collect();
        parts.push(hull_region(&rows));
    }
    RegionUnion::new(parts)
}

/// Convex hull of subspace rows as a [`Region`] (interval for 1D, polygon
/// for 2D+ via the x/y lifting).
pub fn hull_region(rows: &[Vec<f64>]) -> Region {
    let dim = rows.first().map_or(0, Vec::len);
    if dim <= 1 {
        let values: Vec<f64> = rows.iter().filter_map(|r| r.first().copied()).collect();
        let (lo, hi) = lte_geom::hull::interval_hull(&values).unwrap_or((0.0, 0.0));
        Region::interval(lo, hi)
    } else {
        Region::Polygon(ConvexPolygon::from_rows(rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mode_displays_paper_notation() {
        assert_eq!(UisMode::new(4, 20).to_string(), "α=4, ψ=20");
        assert_eq!(UisMode::new(1, 10).to_string(), "α=1, ψ=10");
    }

    fn grid_centers() -> Vec<Vec<f64>> {
        let mut c = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                c.push(vec![i as f64, j as f64]);
            }
        }
        c
    }

    #[test]
    fn paper_modes_match_table_iii() {
        let modes = UisMode::paper_modes();
        assert_eq!(modes.len(), 7);
        assert_eq!(modes[0].1, UisMode::new(4, 20));
        assert_eq!(modes[3].1, UisMode::new(4, 5));
        assert_eq!(modes[4].1, UisMode::new(1, 20));
        assert_eq!(modes[6].1, UisMode::new(3, 20));
    }

    #[test]
    fn uis_has_alpha_parts_and_contains_anchors() {
        let centers = grid_centers();
        let pu = ProximityMatrix::within(&centers);
        let mut rng = StdRng::seed_from_u64(0);
        let uis = generate_uis(&centers, &pu, UisMode::new(3, 6), &mut rng);
        assert_eq!(uis.len(), 3);
        // Some grid centers must be inside (each hull covers ≥ ψ centers).
        let covered = centers.iter().filter(|c| uis.contains(c)).count();
        assert!(covered >= 6, "covered {covered}");
    }

    #[test]
    fn generation_is_deterministic_under_seed() {
        let centers = grid_centers();
        let pu = ProximityMatrix::within(&centers);
        let a = generate_uis(
            &centers,
            &pu,
            UisMode::new(2, 5),
            &mut StdRng::seed_from_u64(7),
        );
        let b = generate_uis(
            &centers,
            &pu,
            UisMode::new(2, 5),
            &mut StdRng::seed_from_u64(7),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn psi_larger_than_centers_is_clamped() {
        let centers = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]];
        let pu = ProximityMatrix::within(&centers);
        let mut rng = StdRng::seed_from_u64(1);
        let uis = generate_uis(&centers, &pu, UisMode::new(1, 99), &mut rng);
        // Hull of all three centers: the triangle.
        assert!(uis.contains(&[0.2, 0.2]));
    }

    #[test]
    fn one_dimensional_uis_is_interval_union() {
        let centers: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let pu = ProximityMatrix::within(&centers);
        let mut rng = StdRng::seed_from_u64(2);
        let uis = generate_uis(&centers, &pu, UisMode::new(2, 3), &mut rng);
        assert_eq!(uis.len(), 2);
        // Must contain at least the anchors' neighbourhoods.
        let covered = centers.iter().filter(|c| uis.contains(c)).count();
        assert!(covered >= 3);
    }

    #[test]
    fn larger_psi_covers_no_fewer_centers() {
        let centers = grid_centers();
        let pu = ProximityMatrix::within(&centers);
        // Same anchor by same seed: hull over more neighbours is a superset.
        let small = generate_uis(
            &centers,
            &pu,
            UisMode::new(1, 4),
            &mut StdRng::seed_from_u64(3),
        );
        let large = generate_uis(
            &centers,
            &pu,
            UisMode::new(1, 12),
            &mut StdRng::seed_from_u64(3),
        );
        let count = |u: &RegionUnion| centers.iter().filter(|c| u.contains(c)).count();
        assert!(count(&large) >= count(&small));
    }

    #[test]
    #[should_panic(expected = "alpha must be >= 1")]
    fn zero_alpha_panics() {
        UisMode::new(0, 5);
    }
}
