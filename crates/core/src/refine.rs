//! Few-shot prediction optimization (§VII-B) — the `Meta*` layer.
//!
//! Few-shot classifiers make two characteristic error types that geometry
//! can cheaply bound:
//!
//! * **False positives** far from any labelled evidence: fix with the
//!   **outer-subregion**, a generous superset of the UIS. For every `Cs`
//!   center the user labelled positive ("anchor point"), expand to its
//!   `Nsup` nearest `Cu` centers via `Ps` and take the convex hull; the
//!   union of hulls circumscribes the real UIS. Predictions *outside* it
//!   are revised to negative.
//! * **False negatives** as small spurious holes inside the UIS: fix with
//!   the **inner-subregion**, built the same way but with a conservative
//!   expansion `Nsub ≪ Nsup`; predictions *inside* it are revised to
//!   positive.
//!
//! The optimizer depends entirely on the labelled initial tuples — it
//! cannot run standalone (§VIII-A note on Meta*).

use crate::config::RefineConfig;
use crate::context::SubspaceContext;
use crate::uis::hull_region;
use lte_geom::RegionUnion;

/// The outer/inner circumscribed regions built from positive anchors.
#[derive(Debug, Clone)]
pub struct Subregions {
    /// Superset of the UIS (Nsup expansion).
    pub outer: RegionUnion,
    /// Subset of the UIS (Nsub conservative expansion).
    pub inner: RegionUnion,
}

impl Subregions {
    /// Revise a classifier prediction for `row`:
    /// outside the outer-subregion → negative; inside the inner-subregion →
    /// positive; otherwise keep the classifier's verdict.
    ///
    /// With no positive anchors at all, both regions are empty and the
    /// classifier's prediction passes through unchanged.
    pub fn revise(&self, row: &[f64], prediction: bool) -> bool {
        if self.outer.is_empty() {
            return prediction;
        }
        if !self.outer.contains(row) {
            return false;
        }
        if self.inner.contains(row) {
            return true;
        }
        prediction
    }

    /// Three-set-style convergence indicator (§III-B "Convergence"):
    /// tuples inside the inner-subregion are certainly interesting, tuples
    /// outside the outer-subregion certainly not, the band in between is
    /// uncertain. Returns the worst-case F1 lower bound
    /// `|certain⁺| / (|certain⁺| + |uncertain|)` over `rows`, mirroring
    /// DSM's metric so LTE sessions can reuse existing stop criteria.
    pub fn three_set_bound(&self, rows: &[Vec<f64>]) -> f64 {
        if self.outer.is_empty() {
            return 0.0;
        }
        let mut certain_pos = 0usize;
        let mut uncertain = 0usize;
        for row in rows {
            if self.inner.contains(row) {
                certain_pos += 1;
            } else if self.outer.contains(row) {
                uncertain += 1;
            }
        }
        if certain_pos + uncertain == 0 {
            0.0
        } else {
            certain_pos as f64 / (certain_pos + uncertain) as f64
        }
    }
}

/// Build outer/inner subregions from the labels of the `Cs` initial tuples.
pub fn build_subregions(
    ctx: &SubspaceContext,
    cs_labels: &[bool],
    cfg: &RefineConfig,
) -> Subregions {
    build_subregions_with_anchors(ctx, cs_labels, &[], cfg)
}

/// [`build_subregions`] extended with additional positive anchor tuples —
/// positively labeled rows collected *after* the initial exploration
/// (iterative rounds, §III-B). Extra anchors expand through their nearest
/// `Cu` centers by direct distance, since they are not `Cs` rows and hence
/// have no `Ps` entry.
pub fn build_subregions_with_anchors(
    ctx: &SubspaceContext,
    cs_labels: &[bool],
    extra_positive_anchors: &[Vec<f64>],
    cfg: &RefineConfig,
) -> Subregions {
    assert_eq!(
        cs_labels.len(),
        ctx.cs().len(),
        "one label per Cs center required"
    );
    let ku = ctx.cu().len();
    let nsup = ((ku as f64 * cfg.nsup_frac).round() as usize).clamp(1, ku);
    let nsub = ((ku as f64 * cfg.nsub_frac).round() as usize).clamp(1, ku);

    let mut outer = RegionUnion::empty();
    let mut inner = RegionUnion::empty();
    for (i, &positive) in cs_labels.iter().enumerate() {
        if !positive {
            continue;
        }
        outer.push(hull_region(&anchor_neighbourhood(ctx, i, nsup)));
        inner.push(hull_region(&anchor_neighbourhood(ctx, i, nsub)));
    }
    for anchor in extra_positive_anchors {
        outer.push(hull_region(&point_neighbourhood(ctx, anchor, nsup)));
        inner.push(hull_region(&point_neighbourhood(ctx, anchor, nsub)));
    }
    Subregions { outer, inner }
}

/// The anchor `Cs` center plus its `n` nearest `Cu` centers (via `Ps`).
fn anchor_neighbourhood(ctx: &SubspaceContext, anchor: usize, n: usize) -> Vec<Vec<f64>> {
    let mut rows = Vec::with_capacity(n + 1);
    rows.push(ctx.cs()[anchor].clone());
    for j in ctx.ps().k_nearest(anchor, n, true) {
        rows.push(ctx.cu()[j].clone());
    }
    rows
}

/// An arbitrary anchor row plus its `n` nearest `Cu` centers (brute-force
/// distances; `ku` is small).
fn point_neighbourhood(ctx: &SubspaceContext, anchor: &[f64], n: usize) -> Vec<Vec<f64>> {
    let mut by_dist: Vec<(f64, usize)> = ctx
        .cu()
        .iter()
        .enumerate()
        .map(|(j, c)| (lte_geom::dist2(anchor, c), j))
        .collect();
    by_dist.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut rows = Vec::with_capacity(n + 1);
    rows.push(anchor.to_vec());
    for &(_, j) in by_dist.iter().take(n) {
        rows.push(ctx.cu()[j].clone());
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LteConfig;
    use lte_data::generator::generate_sdss;
    use lte_data::subspace::Subspace;

    fn ctx() -> SubspaceContext {
        let table = generate_sdss(3000, 0);
        let cfg = LteConfig::reduced();
        SubspaceContext::build(
            &table,
            Subspace::new(vec![0, 1]),
            &cfg.task,
            &cfg.encoder,
            3,
        )
    }

    fn labels_with_one_positive(ctx: &SubspaceContext, idx: usize) -> Vec<bool> {
        let mut labels = vec![false; ctx.cs().len()];
        labels[idx] = true;
        labels
    }

    #[test]
    fn inner_is_subset_of_outer() {
        let c = ctx();
        let labels = labels_with_one_positive(&c, 0);
        let regions = build_subregions(&c, &labels, &RefineConfig::default());
        // Every sample row inside the inner region must be inside the outer.
        for row in c.sample_rows() {
            if regions.inner.contains(row) {
                assert!(regions.outer.contains(row), "inner ⊄ outer at {row:?}");
            }
        }
    }

    #[test]
    fn revise_clips_far_false_positives() {
        let c = ctx();
        let labels = labels_with_one_positive(&c, 0);
        let regions = build_subregions(&c, &labels, &RefineConfig::default());
        // A point far outside the data range must be revised to negative
        // even if the classifier says positive.
        let far = vec![1e9, 1e9];
        assert!(!regions.revise(&far, true));
    }

    #[test]
    fn revise_rescues_false_negatives_near_anchor() {
        let c = ctx();
        let labels = labels_with_one_positive(&c, 2);
        let regions = build_subregions(&c, &labels, &RefineConfig::default());
        // The anchor itself sits inside the inner region.
        let anchor = c.cs()[2].clone();
        assert!(regions.revise(&anchor, false), "anchor must be positive");
    }

    #[test]
    fn uncertain_band_keeps_classifier_verdict() {
        let c = ctx();
        let labels = labels_with_one_positive(&c, 1);
        let regions = build_subregions(&c, &labels, &RefineConfig::default());
        // Find a sample row between inner and outer.
        let row = c
            .sample_rows()
            .iter()
            .find(|r| regions.outer.contains(r) && !regions.inner.contains(r));
        if let Some(row) = row {
            assert!(regions.revise(row, true));
            assert!(!regions.revise(row, false));
        }
    }

    #[test]
    fn no_positive_labels_passes_through() {
        let c = ctx();
        let labels = vec![false; c.cs().len()];
        let regions = build_subregions(&c, &labels, &RefineConfig::default());
        assert!(regions.outer.is_empty());
        assert!(regions.revise(&[0.0, 0.0], true));
        assert!(!regions.revise(&[0.0, 0.0], false));
    }

    #[test]
    fn more_positives_grow_regions() {
        let c = ctx();
        let one = build_subregions(
            &c,
            &labels_with_one_positive(&c, 0),
            &RefineConfig::default(),
        );
        let mut labels = labels_with_one_positive(&c, 0);
        labels[c.cs().len() - 1] = true;
        let two = build_subregions(&c, &labels, &RefineConfig::default());
        assert_eq!(one.outer.len() + 1, two.outer.len());
        assert_eq!(one.inner.len() + 1, two.inner.len());
    }

    #[test]
    #[should_panic(expected = "one label per Cs center")]
    fn label_count_mismatch_panics() {
        let c = ctx();
        build_subregions(&c, &[true], &RefineConfig::default());
    }

    #[test]
    fn three_set_bound_in_unit_interval_and_zero_without_anchors() {
        let c = ctx();
        let regions = build_subregions(
            &c,
            &labels_with_one_positive(&c, 0),
            &RefineConfig::default(),
        );
        let bound = regions.three_set_bound(c.sample_rows());
        assert!((0.0..=1.0).contains(&bound));

        let empty = build_subregions(&c, &vec![false; c.cs().len()], &RefineConfig::default());
        assert_eq!(empty.three_set_bound(c.sample_rows()), 0.0);
    }

    #[test]
    fn three_set_bound_grows_with_more_anchors() {
        // More positive anchors grow the inner region (certain positives)
        // relative to the uncertain band, so the bound shouldn't collapse.
        let c = ctx();
        let half = c.cs().len() / 2;
        let mut many = vec![false; c.cs().len()];
        many[..half].fill(true);
        let regions = build_subregions(&c, &many, &RefineConfig::default());
        assert!(regions.three_set_bound(c.sample_rows()) > 0.0);
    }
}
