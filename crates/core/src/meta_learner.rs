//! Memory-augmented meta-training (§VI-B/C, Algorithm 2).
//!
//! The meta-learner holds the *learned initialization parameters*
//! `φ = {φR, φτ, φclf}` plus the two memories. Training iterates meta-tasks
//! in batches:
//!
//! 1. **Local phase** (per task, Eqs. 6, 10–12): initialize task parameters
//!    `θR ⇐ φR − σ·ωR`, `θτ ⇐ φτ`, `θclf ⇐ φclf`, read the task-wise
//!    conversion matrix, and run a few SGD steps on the support set.
//! 2. **Global phase** (per batch, Eqs. 13–16): take one aggregated gradient
//!    step on the query-set loss *evaluated at the adapted parameters* and
//!    write the memories attentively.
//!
//! Following the paper (which adopts MAMO's one-step global update "to save
//! the cost of training"), the global update is **first-order**: the
//! gradient of the query loss at `θ̂` is applied to `φ` directly, without
//! differentiating through the local steps. This is the standard FOMAML
//! approximation; DESIGN.md records it as an explicit design decision.

use crate::classifier::{ClassifierConfig, Example, Grads, UisClassifier};
use crate::config::{NetConfig, TrainConfig};
use crate::memory::Memories;
use crate::meta_task::MetaTask;
use lte_data::rng::{derive_seed, seeded};

/// A classifier adapted to one task, plus the by-products the global phase
/// needs.
pub struct Adapted {
    /// The locally fine-tuned classifier (task parameters θ̂ and local Mcp).
    pub classifier: UisClassifier,
    /// Attention `aR` over memory modes (present iff memories are active).
    pub attention: Option<Vec<f64>>,
    /// Average support-loss gradient w.r.t. θR across local steps —
    /// the `∇θR LossFunc` written into `MR` (Eq. 15).
    pub avg_grad_r: Vec<f64>,
    /// Final average support loss after adaptation.
    pub support_loss: f64,
}

/// Training progress report.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean query loss per epoch.
    pub epoch_query_loss: Vec<f64>,
    /// Number of tasks trained on.
    pub n_tasks: usize,
}

/// The meta-learner: learned initialization + memories.
#[derive(Debug, Clone)]
pub struct MetaLearner {
    arch: ClassifierConfig,
    host: UisClassifier,
    phi_r: Vec<f64>,
    phi_t: Vec<f64>,
    phi_clf: Vec<f64>,
    memories: Option<Memories>,
    cfg: TrainConfig,
}

impl MetaLearner {
    /// Create a randomly initialized meta-learner for a subspace whose
    /// UIS-feature width is `ku` and tuple-feature width is `nr`.
    pub fn new(ku: usize, nr: usize, net: &NetConfig, cfg: TrainConfig, seed: u64) -> Self {
        let arch = ClassifierConfig {
            ku,
            nr,
            ne: net.ne,
            clf_hidden: net.clf_hidden,
            use_conversion: cfg.use_memories,
        };
        let mut rng = seeded(derive_seed(seed, 100));
        let host = UisClassifier::new(arch.clone(), &mut rng);
        let phi_r = host.r_block.params();
        let phi_t = host.t_block.params();
        let phi_clf = host.clf_block.params();
        let memories = if cfg.use_memories {
            Some(Memories::init(cfg.m, ku, phi_r.len(), net.ne, &mut rng))
        } else {
            None
        };
        Self {
            arch,
            host,
            phi_r,
            phi_t,
            phi_clf,
            memories,
            cfg,
        }
    }

    /// The classifier architecture.
    pub fn arch(&self) -> &ClassifierConfig {
        &self.arch
    }

    /// The training configuration.
    pub fn train_config(&self) -> &TrainConfig {
        &self.cfg
    }

    /// Whether memory augmentation is active.
    pub fn has_memories(&self) -> bool {
        self.memories.is_some()
    }

    /// The learned initialization parameters `(φR, φτ, φclf)`.
    pub fn phi(&self) -> (&[f64], &[f64], &[f64]) {
        (&self.phi_r, &self.phi_t, &self.phi_clf)
    }

    /// The memories, when memory augmentation is active.
    pub fn memories(&self) -> Option<&Memories> {
        self.memories.as_ref()
    }

    /// Overwrite the learned initialization (model persistence).
    ///
    /// # Panics
    /// Panics on length mismatches with the architecture.
    pub fn set_phi(&mut self, phi_r: Vec<f64>, phi_t: Vec<f64>, phi_clf: Vec<f64>) {
        assert_eq!(phi_r.len(), self.phi_r.len(), "φR length mismatch");
        assert_eq!(phi_t.len(), self.phi_t.len(), "φτ length mismatch");
        assert_eq!(phi_clf.len(), self.phi_clf.len(), "φclf length mismatch");
        self.phi_r = phi_r;
        self.phi_t = phi_t;
        self.phi_clf = phi_clf;
    }

    /// Overwrite the memories (model persistence). Only valid when memory
    /// augmentation is active.
    ///
    /// # Panics
    /// Panics when called on a memory-less learner or with mismatched
    /// shapes.
    pub fn set_memories(&mut self, memories: Memories) {
        let current = self
            .memories
            .as_ref()
            .expect("learner was built without memories");
        assert_eq!(current.mvr.rows(), memories.mvr.rows(), "m mismatch");
        assert_eq!(current.mvr.cols(), memories.mvr.cols(), "ku mismatch");
        assert_eq!(current.mr.cols(), memories.mr.cols(), "|θR| mismatch");
        self.memories = Some(memories);
    }

    /// Local phase: adapt the learned initialization to a task defined by
    /// its UIS feature vector and support set (Eqs. 6, 10–12). Also the
    /// online fast-adaptation path ("the steps to train the meta-learners by
    /// user-labeled tuples are similar to the local update", §VI-C).
    pub fn adapt(&self, v_r: &[f64], support: &[Example], steps: usize, rho: f64) -> Adapted {
        self.adapt_weighted(v_r, support, steps, rho, 1.0)
    }

    /// [`MetaLearner::adapt`] with a positive-class weight for the local
    /// loss (used online, where label sets can be heavily imbalanced; see
    /// [`UisClassifier::balance_weight`]).
    pub fn adapt_weighted(
        &self,
        v_r: &[f64],
        support: &[Example],
        steps: usize,
        rho: f64,
        pos_weight: f64,
    ) -> Adapted {
        let mut c = self.host.clone();
        let attention = match &self.memories {
            Some(mem) => {
                let a = mem.attention(v_r);
                // Eq. 6: θR ⇐ φR − σ·ωR.
                let omega = mem.omega_r(&a);
                let mut theta_r = self.phi_r.clone();
                for (t, o) in theta_r.iter_mut().zip(&omega) {
                    *t -= self.cfg.sigma * o;
                }
                c.r_block.read_params(&theta_r);
                // Eq. 10: task-wise conversion matrix.
                c.conversion = Some(mem.read_mcp(&a));
                Some(a)
            }
            None => {
                c.r_block.read_params(&self.phi_r);
                None
            }
        };
        // Eq. 11: plain MAML initialization for the other blocks.
        c.t_block.read_params(&self.phi_t);
        c.clf_block.read_params(&self.phi_clf);

        // Eq. 12: local SGD on the support set (Mcp updated by backprop too).
        let mut grad_r_acc = vec![0.0; self.phi_r.len()];
        let mut n_grads = 0usize;
        let mut support_loss = 0.0;
        for _ in 0..steps {
            support_loss = 0.0;
            for ex in support {
                let mut grads = Grads::zeros_like(&c);
                support_loss += c.loss_backward_weighted(v_r, ex, &mut grads, pos_weight);
                for (acc, g) in grad_r_acc.iter_mut().zip(&grads.g_r) {
                    *acc += g;
                }
                n_grads += 1;
                c.sgd_step(&grads, rho);
            }
            support_loss /= support.len().max(1) as f64;
        }
        if n_grads > 0 {
            let inv = 1.0 / n_grads as f64;
            for g in grad_r_acc.iter_mut() {
                *g *= inv;
            }
        }
        Adapted {
            classifier: c,
            attention,
            avg_grad_r: grad_r_acc,
            support_loss,
        }
    }

    /// Algorithm 2: full meta-training over a task set.
    pub fn train(&mut self, tasks: &[MetaTask]) -> TrainReport {
        let mut report = TrainReport {
            epoch_query_loss: Vec::with_capacity(self.cfg.epochs),
            n_tasks: tasks.len(),
        };
        for _ in 0..self.cfg.epochs {
            let mut epoch_loss = 0.0;
            let mut n_query = 0usize;
            for batch in tasks.chunks(self.cfg.batch_size.max(1)) {
                let mut acc = Grads::zeros_like(&self.host);
                for task in batch {
                    let adapted =
                        self.adapt(&task.v_r, &task.support, self.cfg.local_steps, self.cfg.rho);

                    // Query-set gradients at the adapted parameters (the
                    // FOMAML term).
                    let mut qg = Grads::zeros_like(&adapted.classifier);
                    let mut qloss = 0.0;
                    for ex in &task.query {
                        qloss += adapted.classifier.loss_backward(&task.v_r, ex, &mut qg);
                    }
                    let q_len = task.query.len().max(1);
                    let w = self.cfg.direct_weight.clamp(0.0, 1.0);
                    qg.scale((1.0 - w) / q_len as f64);
                    epoch_loss += qloss;
                    n_query += task.query.len();
                    acc.add(&qg);

                    // Direct term: query gradients at the *initialization*
                    // (zero-step adaptation), teaching φ to classify from
                    // (vR, vτ) without any labels.
                    if w > 0.0 {
                        let zero = self.adapt(&task.v_r, &task.support, 0, 0.0);
                        let mut dg = Grads::zeros_like(&zero.classifier);
                        for ex in &task.query {
                            zero.classifier.loss_backward(&task.v_r, ex, &mut dg);
                        }
                        dg.scale(w / q_len as f64);
                        acc.add(&dg);
                    }

                    // Global memory writes (Eqs. 14–16), per task as in
                    // Algorithm 2 line 11.
                    if let Some(mem) = &mut self.memories {
                        let a = adapted
                            .attention
                            .as_ref()
                            .expect("attention exists when memories are active");
                        mem.update_mvr(a, &task.v_r, self.cfg.eta);
                        mem.update_mr(a, &adapted.avg_grad_r, self.cfg.beta);
                        let mcp_local = adapted
                            .classifier
                            .conversion
                            .as_ref()
                            .expect("conversion exists when memories are active");
                        mem.update_mcp(a, mcp_local, self.cfg.gamma);
                    }
                }
                // Eq. 13: one aggregated global step on φ.
                let scale = self.cfg.lambda / batch.len() as f64;
                for (p, g) in self.phi_r.iter_mut().zip(&acc.g_r) {
                    *p -= scale * g;
                }
                for (p, g) in self.phi_t.iter_mut().zip(&acc.g_t) {
                    *p -= scale * g;
                }
                for (p, g) in self.phi_clf.iter_mut().zip(&acc.g_clf) {
                    *p -= scale * g;
                }
            }
            report
                .epoch_query_loss
                .push(epoch_loss / n_query.max(1) as f64);
        }
        report
    }

    /// Mean query loss over tasks after local adaptation — the meta-learning
    /// generalization measure used by tests and the |TM| sweep (Fig. 8(c)).
    pub fn evaluate(&self, tasks: &[MetaTask]) -> f64 {
        if tasks.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        let mut n = 0usize;
        for task in tasks {
            let adapted = self.adapt(&task.v_r, &task.support, self.cfg.local_steps, self.cfg.rho);
            total += adapted.classifier.loss_on(&task.v_r, &task.query) * task.query.len() as f64;
            n += task.query.len();
        }
        total / n.max(1) as f64
    }

    /// Mean query *accuracy* over tasks after local adaptation.
    pub fn evaluate_accuracy(&self, tasks: &[MetaTask]) -> f64 {
        if tasks.is_empty() {
            return 0.0;
        }
        let mut correct = 0usize;
        let mut n = 0usize;
        for task in tasks {
            let adapted = self.adapt(&task.v_r, &task.support, self.cfg.local_steps, self.cfg.rho);
            for (x, y) in &task.query {
                if adapted.classifier.predict(&task.v_r, x) == *y {
                    correct += 1;
                }
            }
            n += task.query.len();
        }
        correct as f64 / n.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LteConfig;
    use crate::context::SubspaceContext;
    use crate::feature::expansion_degree;
    use crate::meta_task::generate_task_set;
    use lte_data::generator::generate_sdss;
    use lte_data::rng::seeded;
    use lte_data::subspace::Subspace;

    fn setup() -> (SubspaceContext, Vec<MetaTask>, LteConfig) {
        let table = generate_sdss(3000, 0);
        let mut cfg = LteConfig::reduced();
        cfg.train.n_tasks = 60;
        cfg.train.epochs = 2;
        let ctx = SubspaceContext::build(
            &table,
            Subspace::new(vec![0, 1]),
            &cfg.task,
            &cfg.encoder,
            5,
        );
        let l = expansion_degree(cfg.task.ku, cfg.net.expansion_frac);
        let tasks = generate_task_set(&ctx, &cfg.task, l, cfg.train.n_tasks, &mut seeded(6));
        (ctx, tasks, cfg)
    }

    #[test]
    fn training_reduces_query_loss() {
        let (ctx, tasks, cfg) = setup();
        let mut learner = MetaLearner::new(
            cfg.task.ku,
            ctx.feature_width(),
            &cfg.net,
            cfg.train.clone(),
            7,
        );
        let before = learner.evaluate(&tasks[..20]);
        learner.train(&tasks);
        let after = learner.evaluate(&tasks[..20]);
        assert!(
            after < before,
            "meta-training should reduce adapted query loss: {before} -> {after}"
        );
    }

    #[test]
    fn adaptation_improves_over_initialization() {
        let (ctx, tasks, cfg) = setup();
        let mut learner = MetaLearner::new(
            cfg.task.ku,
            ctx.feature_width(),
            &cfg.net,
            cfg.train.clone(),
            8,
        );
        learner.train(&tasks);
        // Zero-step "adaptation" vs the configured local steps.
        let task = tasks.iter().find(|t| t.is_balanced()).unwrap();
        let zero = learner.adapt(&task.v_r, &task.support, 0, 0.0);
        let adapted = learner.adapt(
            &task.v_r,
            &task.support,
            cfg.train.local_steps * 3,
            cfg.train.rho,
        );
        let loss_zero = zero.classifier.loss_on(&task.v_r, &task.support);
        let loss_adapted = adapted.classifier.loss_on(&task.v_r, &task.support);
        assert!(
            loss_adapted < loss_zero,
            "local steps must fit the support set: {loss_zero} -> {loss_adapted}"
        );
    }

    #[test]
    fn memories_can_be_disabled_for_plain_maml() {
        let (ctx, tasks, mut cfg) = setup();
        cfg.train.use_memories = false;
        let mut learner = MetaLearner::new(
            cfg.task.ku,
            ctx.feature_width(),
            &cfg.net,
            cfg.train.clone(),
            9,
        );
        assert!(!learner.has_memories());
        assert!(!learner.arch().use_conversion);
        let report = learner.train(&tasks[..30]);
        assert_eq!(report.epoch_query_loss.len(), cfg.train.epochs);
        // Adaptation still works without memories.
        let adapted = learner.adapt(&tasks[0].v_r, &tasks[0].support, 2, 0.05);
        assert!(adapted.attention.is_none());
        assert!(adapted.classifier.conversion.is_none());
    }

    #[test]
    fn avg_grad_r_has_theta_r_shape() {
        let (ctx, tasks, cfg) = setup();
        let learner = MetaLearner::new(
            cfg.task.ku,
            ctx.feature_width(),
            &cfg.net,
            cfg.train.clone(),
            10,
        );
        let adapted = learner.adapt(&tasks[0].v_r, &tasks[0].support, 1, 0.05);
        assert_eq!(
            adapted.avg_grad_r.len(),
            cfg.task.ku * cfg.net.ne + cfg.net.ne
        );
        assert!(adapted.avg_grad_r.iter().any(|&g| g != 0.0));
    }

    #[test]
    fn report_tracks_epochs() {
        let (ctx, tasks, cfg) = setup();
        let mut learner = MetaLearner::new(
            cfg.task.ku,
            ctx.feature_width(),
            &cfg.net,
            cfg.train.clone(),
            11,
        );
        let report = learner.train(&tasks[..20]);
        assert_eq!(report.n_tasks, 20);
        assert_eq!(report.epoch_query_loss.len(), cfg.train.epochs);
        assert!(report.epoch_query_loss.iter().all(|l| l.is_finite()));
    }
}
