//! Memory-augmented optimization (§VI-B).
//!
//! Plain MAML assigns the *same* learned initialization to every task, which
//! makes it easy to slip into local optima. LTE (following MAMO) adds two
//! memories that turn the initialization task-wise:
//!
//! * **UIS-feature memory** — `MvR ∈ R^{m×ku}` stores `m` implicit *modes*
//!   of UIS feature vectors; attention `aR = softmax(cos(vR, MvR))` (Eq. 7)
//!   retrieves a bias `ωR = aRᵀ·MR` (Eq. 8) from the parameter matrix
//!   `MR ∈ R^{m×|θR|}`, and the task-wise initialization is
//!   `θR ⇐ φR − σ·ωR` (Eq. 6).
//! * **Embedding-conversion memory** — `MCP ∈ R^{m×Ne×2Ne}` stores mode-wise
//!   conversion parameters; the task-wise `Mcp = aRᵀ·MCP` (Eq. 10) is
//!   fine-tuned locally by backprop and written back attentively.
//!
//! Writes blend new information at rates η/β/γ (Eqs. 14–16).

use lte_nn::matrix::{cosine, softmax_inplace};
use lte_nn::Matrix;
use rand::Rng;

/// Row-wise attentive convex blend: `row_i ⇐ (1−rate·a_i)·row_i +
/// rate·a_i·content`.
fn blend_rows(matrix: &mut Matrix, attention: &[f64], content: &[f64], rate: f64) {
    assert_eq!(attention.len(), matrix.rows(), "attention width mismatch");
    assert_eq!(content.len(), matrix.cols(), "content width mismatch");
    for (i, &ai) in attention.iter().enumerate() {
        let r = (rate * ai).clamp(0.0, 1.0);
        if r == 0.0 {
            continue;
        }
        let row = matrix.row_mut(i);
        for (m, &c) in row.iter_mut().zip(content) {
            *m = (1.0 - r) * *m + r * c;
        }
    }
}

/// The two memories of the meta-learner.
#[derive(Debug, Clone)]
pub struct Memories {
    /// `MvR`: `m × ku` UIS-feature mode matrix.
    pub mvr: Matrix,
    /// `MR`: `m × |θR|` embedding-block parameter memory.
    pub mr: Matrix,
    /// `MCP`: `m` mode slices of `Ne × 2Ne` conversion parameters.
    pub mcp: Vec<Matrix>,
}

impl Memories {
    /// Randomly initialized memories (`§VI-C`: random init, updated during
    /// the global phase).
    pub fn init<R: Rng + ?Sized>(
        m: usize,
        ku: usize,
        theta_r_len: usize,
        ne: usize,
        rng: &mut R,
    ) -> Self {
        assert!(m >= 1, "at least one memory mode required");
        Self {
            mvr: Matrix::uniform(m, ku, 0.5, rng),
            mr: Matrix::uniform(m, theta_r_len, 0.01, rng),
            mcp: (0..m)
                .map(|_| {
                    // Same near-identity layout as the classifier's fresh
                    // conversion: modes start as balanced embedding mixers.
                    let mut slice = Matrix::uniform(ne, 2 * ne, 0.02, rng);
                    for i in 0..ne {
                        slice.set(i, i, slice.get(i, i) + 0.5);
                        slice.set(i, ne + i, slice.get(i, ne + i) + 0.5);
                    }
                    slice
                })
                .collect(),
        }
    }

    /// Number of modes `m`.
    pub fn n_modes(&self) -> usize {
        self.mvr.rows()
    }

    /// Attention over modes for a UIS feature vector (Eq. 7):
    /// softmax of cosine similarities against the rows of `MvR`.
    pub fn attention(&self, v_r: &[f64]) -> Vec<f64> {
        assert_eq!(v_r.len(), self.mvr.cols(), "vR width mismatch");
        let mut a: Vec<f64> = (0..self.mvr.rows())
            .map(|i| cosine(v_r, self.mvr.row(i)))
            .collect();
        softmax_inplace(&mut a);
        a
    }

    /// Parameter bias `ωR = aRᵀ·MR` (Eq. 8).
    pub fn omega_r(&self, attention: &[f64]) -> Vec<f64> {
        self.mr.matvec_t(attention)
    }

    /// Task-wise conversion matrix `Mcp = Σ_i aR[i]·MCP[i]` (Eq. 10).
    pub fn read_mcp(&self, attention: &[f64]) -> Matrix {
        assert_eq!(attention.len(), self.mcp.len(), "attention width mismatch");
        let (rows, cols) = (self.mcp[0].rows(), self.mcp[0].cols());
        let mut out = Matrix::zeros(rows, cols);
        for (ai, slice) in attention.iter().zip(&self.mcp) {
            out.add_scaled(slice, *ai);
        }
        out
    }

    /// Eq. 14: `MvR ⇐ η·(aR × vRᵀ) + (1−η)·MvR`, realized as a row-wise
    /// convex blend at rate `η·aR[i]`.
    ///
    /// A literal reading of Eqs. 14–16 decays *unattended* rows towards zero
    /// on every write (the decay factor applies to the whole matrix but the
    /// attentive write only tops up attended rows), which collapses memory
    /// scale over thousands of tasks. Blending each row `i` at rate
    /// `η·aR[i]` keeps the attentive semantics — rows move towards the new
    /// content proportionally to their attention — while preserving scale;
    /// this matches MAMO's behaviour and is recorded in DESIGN.md.
    pub fn update_mvr(&mut self, attention: &[f64], v_r: &[f64], eta: f64) {
        blend_rows(&mut self.mvr, attention, v_r, eta);
    }

    /// Eq. 15: `MR ⇐ β·(aR × ∇θR Lᵀ) + (1−β)·MR` (row-wise convex blend;
    /// see [`Memories::update_mvr`]).
    pub fn update_mr(&mut self, attention: &[f64], grad_r: &[f64], beta: f64) {
        blend_rows(&mut self.mr, attention, grad_r, beta);
    }

    /// Eq. 16: `MCP[i] ⇐ γ·aR[i]·Mcp + (1−γ)·MCP[i]` (per-slice convex
    /// blend at rate `γ·aR[i]`; see [`Memories::update_mvr`]).
    pub fn update_mcp(&mut self, attention: &[f64], mcp_local: &Matrix, gamma: f64) {
        for (ai, slice) in attention.iter().zip(&mut self.mcp) {
            let rate = (gamma * ai).clamp(0.0, 1.0);
            slice.scale(1.0 - rate);
            slice.add_scaled(mcp_local, rate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lte_data::rng::seeded;

    fn mems() -> Memories {
        let mut rng = seeded(0);
        Memories::init(4, 8, 20, 5, &mut rng)
    }

    #[test]
    fn shapes_are_consistent() {
        let m = mems();
        assert_eq!(m.n_modes(), 4);
        assert_eq!(m.mvr.cols(), 8);
        assert_eq!(m.mr.cols(), 20);
        assert_eq!(m.mcp.len(), 4);
        assert_eq!(m.mcp[0].rows(), 5);
        assert_eq!(m.mcp[0].cols(), 10);
    }

    #[test]
    fn attention_is_a_distribution() {
        let m = mems();
        let a = m.attention(&[1.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 0.0]);
        assert_eq!(a.len(), 4);
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(a.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn attention_prefers_similar_modes() {
        let mut m = mems();
        // Plant a mode aligned with a probe vector.
        let probe = [1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        for (c, &v) in probe.iter().enumerate() {
            m.mvr.set(2, c, v * 10.0);
        }
        let a = m.attention(&probe);
        let max_idx = (0..4)
            .max_by(|&i, &j| a[i].partial_cmp(&a[j]).unwrap())
            .unwrap();
        assert_eq!(max_idx, 2, "{a:?}");
    }

    #[test]
    fn omega_is_attention_weighted_row_mix() {
        let mut m = mems();
        // Make MR rows constant per row for a hand-checkable read.
        for r in 0..4 {
            for c in 0..20 {
                m.mr.set(r, c, r as f64);
            }
        }
        let omega = m.omega_r(&[0.0, 0.0, 1.0, 0.0]);
        assert!(omega.iter().all(|&v| (v - 2.0).abs() < 1e-12));
    }

    #[test]
    fn read_mcp_blends_slices() {
        let mut m = mems();
        for (i, slice) in m.mcp.iter_mut().enumerate() {
            *slice = Matrix::from_fn(5, 10, |_, _| i as f64);
        }
        let read = m.read_mcp(&[0.5, 0.5, 0.0, 0.0]);
        assert!((read.get(0, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn updates_blend_towards_new_information() {
        let mut m = mems();
        let a = vec![1.0, 0.0, 0.0, 0.0];
        let v = vec![1.0; 8];
        let before = m.mvr.get(0, 0);
        m.update_mvr(&a, &v, 0.5);
        let after = m.mvr.get(0, 0);
        assert!((after - (0.5 * before + 0.5)).abs() < 1e-12);
        // Unattended rows are untouched (scale-preserving attentive write).
        let r3_before = m.mvr.get(3, 0);
        m.update_mvr(&a, &v, 0.5);
        assert!((m.mvr.get(3, 0) - r3_before).abs() < 1e-12);
    }

    #[test]
    fn update_mr_and_mcp_mirror_equations() {
        let mut m = mems();
        let a = vec![0.0, 1.0, 0.0, 0.0];
        let g = vec![2.0; 20];
        let before = m.mr.get(1, 7);
        m.update_mr(&a, &g, 0.25);
        assert!((m.mr.get(1, 7) - (0.75 * before + 0.25 * 2.0)).abs() < 1e-12);

        let local = Matrix::from_fn(5, 10, |_, _| 4.0);
        let before = m.mcp[1].get(2, 2);
        m.update_mcp(&a, &local, 0.5);
        assert!((m.mcp[1].get(2, 2) - (0.5 * before + 0.5 * 4.0)).abs() < 1e-12);
        // Unattended slice is untouched (scale-preserving attentive write).
        let b0 = m.mcp[0].get(0, 0);
        m.update_mcp(&a, &local, 0.5);
        assert!((m.mcp[0].get(0, 0) - b0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "vR width mismatch")]
    fn attention_checks_width() {
        mems().attention(&[0.0; 3]);
    }
}
