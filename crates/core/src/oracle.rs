//! Simulated users: ground-truth labelling oracles.
//!
//! Collecting real labelling feedback is human-computer interaction and out
//! of the paper's scope (§III footnote 5); its evaluation labels tuples
//! against synthetic ground-truth regions generated the same way as
//! meta-task UISs (§VIII-B/C). [`RegionOracle`] wraps one such region for a
//! subspace; [`ConjunctiveOracle`] combines per-subspace regions into the
//! full-space UIR, `Ru = ∧ Ri`.

use lte_data::subspace::Subspace;
use lte_geom::RegionUnion;

/// Labels subspace rows as interesting / not interesting.
pub trait SubspaceOracle {
    /// True when the (raw, un-encoded) subspace row is interesting.
    fn label(&self, row: &[f64]) -> bool;
}

/// Ground-truth oracle backed by a region union.
#[derive(Debug, Clone)]
pub struct RegionOracle {
    region: RegionUnion,
}

impl RegionOracle {
    /// Wrap a ground-truth region.
    pub fn new(region: RegionUnion) -> Self {
        Self { region }
    }

    /// The wrapped region.
    pub fn region(&self) -> &RegionUnion {
        &self.region
    }
}

impl SubspaceOracle for RegionOracle {
    fn label(&self, row: &[f64]) -> bool {
        self.region.contains(row)
    }
}

/// Closure-backed oracle for tests and custom ground truths.
pub struct FnOracle<F: Fn(&[f64]) -> bool>(pub F);

impl<F: Fn(&[f64]) -> bool> SubspaceOracle for FnOracle<F> {
    fn label(&self, row: &[f64]) -> bool {
        (self.0)(row)
    }
}

/// Full-space oracle: a tuple is interesting iff *every* subspace projection
/// falls inside its ground-truth region (the conjunctivity of §III-A).
#[derive(Debug, Clone)]
pub struct ConjunctiveOracle {
    parts: Vec<(Subspace, RegionUnion)>,
}

impl ConjunctiveOracle {
    /// Combine per-subspace ground-truth regions.
    pub fn new(parts: Vec<(Subspace, RegionUnion)>) -> Self {
        Self { parts }
    }

    /// The per-subspace parts.
    pub fn parts(&self) -> &[(Subspace, RegionUnion)] {
        &self.parts
    }

    /// Label a full-space row.
    pub fn label(&self, row: &[f64]) -> bool {
        self.parts
            .iter()
            .all(|(sub, region)| region.contains(&sub.project_row(row)))
    }

    /// Fraction of interesting rows in a pool (UIR selectivity).
    pub fn selectivity(&self, rows: &[Vec<f64>]) -> f64 {
        if rows.is_empty() {
            return 0.0;
        }
        rows.iter().filter(|r| self.label(r)).count() as f64 / rows.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lte_geom::Region;

    fn box_region(x0: f64, y0: f64, x1: f64, y1: f64) -> RegionUnion {
        RegionUnion::new(vec![Region::Box(lte_geom::Aabb::new(
            vec![x0, y0],
            vec![x1, y1],
        ))])
    }

    #[test]
    fn region_oracle_delegates_to_region() {
        let oracle = RegionOracle::new(box_region(0.0, 0.0, 1.0, 1.0));
        assert!(oracle.label(&[0.5, 0.5]));
        assert!(!oracle.label(&[2.0, 2.0]));
    }

    #[test]
    fn fn_oracle_wraps_closures() {
        let oracle = FnOracle(|row: &[f64]| row[0] > 0.0);
        assert!(oracle.label(&[1.0]));
        assert!(!oracle.label(&[-1.0]));
    }

    #[test]
    fn conjunctive_oracle_requires_all_subspaces() {
        let oracle = ConjunctiveOracle::new(vec![
            (Subspace::new(vec![0, 1]), box_region(0.0, 0.0, 1.0, 1.0)),
            (Subspace::new(vec![2, 3]), box_region(5.0, 5.0, 6.0, 6.0)),
        ]);
        assert!(oracle.label(&[0.5, 0.5, 5.5, 5.5]));
        assert!(
            !oracle.label(&[0.5, 0.5, 0.0, 0.0]),
            "second subspace fails"
        );
        assert!(!oracle.label(&[9.0, 9.0, 5.5, 5.5]), "first subspace fails");
    }

    #[test]
    fn selectivity_counts_conjunctive_members() {
        let oracle = ConjunctiveOracle::new(vec![(
            Subspace::new(vec![0]),
            RegionUnion::new(vec![Region::interval(0.0, 1.0)]),
        )]);
        let rows = vec![vec![0.5, 9.0], vec![2.0, 9.0]];
        assert_eq!(oracle.selectivity(&rows), 0.5);
        assert_eq!(oracle.selectivity(&[]), 0.0);
    }
}
