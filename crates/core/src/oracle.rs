//! Simulated users: ground-truth labelling oracles.
//!
//! Collecting real labelling feedback is human-computer interaction and out
//! of the paper's scope (§III footnote 5); its evaluation labels tuples
//! against synthetic ground-truth regions generated the same way as
//! meta-task UISs (§VIII-B/C). [`RegionOracle`] wraps one such region for a
//! subspace; [`ConjunctiveOracle`] combines per-subspace regions into the
//! full-space UIR, `Ru = ∧ Ri`.

use std::cell::Cell;

use lte_data::rng::{derive_seed, unit_from};
use lte_data::subspace::Subspace;
use lte_geom::RegionUnion;

/// Labels subspace rows as interesting / not interesting.
pub trait SubspaceOracle {
    /// True when the (raw, un-encoded) subspace row is interesting.
    fn label(&self, row: &[f64]) -> bool;
}

/// Ground-truth oracle backed by a region union.
#[derive(Debug, Clone)]
pub struct RegionOracle {
    region: RegionUnion,
}

impl RegionOracle {
    /// Wrap a ground-truth region.
    pub fn new(region: RegionUnion) -> Self {
        Self { region }
    }

    /// The wrapped region.
    pub fn region(&self) -> &RegionUnion {
        &self.region
    }
}

impl SubspaceOracle for RegionOracle {
    fn label(&self, row: &[f64]) -> bool {
        self.region.contains(row)
    }
}

/// Closure-backed oracle for tests and custom ground truths.
pub struct FnOracle<F: Fn(&[f64]) -> bool>(pub F);

impl<F: Fn(&[f64]) -> bool> SubspaceOracle for FnOracle<F> {
    fn label(&self, row: &[f64]) -> bool {
        (self.0)(row)
    }
}

/// Full-space oracle: a tuple is interesting iff *every* subspace projection
/// falls inside its ground-truth region (the conjunctivity of §III-A).
#[derive(Debug, Clone)]
pub struct ConjunctiveOracle {
    parts: Vec<(Subspace, RegionUnion)>,
}

impl ConjunctiveOracle {
    /// Combine per-subspace ground-truth regions.
    pub fn new(parts: Vec<(Subspace, RegionUnion)>) -> Self {
        Self { parts }
    }

    /// The per-subspace parts.
    pub fn parts(&self) -> &[(Subspace, RegionUnion)] {
        &self.parts
    }

    /// Label a full-space row.
    pub fn label(&self, row: &[f64]) -> bool {
        self.parts
            .iter()
            .all(|(sub, region)| region.contains(&sub.project_row(row)))
    }

    /// Fraction of interesting rows in a pool (UIR selectivity). Accepts
    /// any row representation (`Vec<f64>`, `&[f64]`, …) so callers can
    /// score borrowed pool rows without cloning.
    pub fn selectivity<R: AsRef<[f64]>>(&self, rows: &[R]) -> f64 {
        if rows.is_empty() {
            return 0.0;
        }
        rows.iter().filter(|r| self.label(r.as_ref())).count() as f64 / rows.len() as f64
    }
}

/// A [`SubspaceOracle`] that flips each answer independently with
/// probability `noise` — the paper's noisy-analyst ablation surface.
///
/// Noise is **counter-based**: the n-th label drawn from this oracle flips
/// iff `unit_from(derive_seed(seed, n)) < noise`, so a given (seed, noise)
/// pair produces one reproducible mislabel pattern regardless of thread
/// count, and `noise == 0.0` is *exactly* the wrapped oracle.
pub struct NoisyOracle<O: SubspaceOracle> {
    inner: O,
    noise: f64,
    seed: u64,
    count: Cell<u64>,
}

impl<O: SubspaceOracle> NoisyOracle<O> {
    /// Wrap `inner`, flipping each label with probability `noise`
    /// (clamped to `[0, 1]`).
    pub fn new(inner: O, noise: f64, seed: u64) -> Self {
        Self {
            inner,
            noise: noise.clamp(0.0, 1.0),
            seed,
            count: Cell::new(0),
        }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Number of labels drawn so far.
    pub fn labels_emitted(&self) -> u64 {
        self.count.get()
    }
}

impl<O: SubspaceOracle> SubspaceOracle for NoisyOracle<O> {
    fn label(&self, row: &[f64]) -> bool {
        let n = self.count.get();
        self.count.set(n + 1);
        let truth = self.inner.label(row);
        if self.noise > 0.0 && unit_from(derive_seed(self.seed, n)) < self.noise {
            !truth
        } else {
            truth
        }
    }
}

/// How fast a simulated analyst answers labelling rounds.
///
/// Produces *simulated* think time — the scenario layer reports it
/// separately from measured compute latency and never sleeps on it.
#[derive(Debug, Clone, PartialEq)]
pub enum Cadence {
    /// Same mean pause before every round.
    Steady {
        /// Mean seconds between rounds.
        think_seconds: f64,
    },
    /// Fast bursts separated by long pauses (Saha et al.'s punctuated
    /// exploration pattern).
    Bursty {
        /// Rounds answered per burst.
        burst_len: usize,
        /// Mean seconds between rounds inside a burst.
        within_seconds: f64,
        /// Mean seconds of the pause that precedes each new burst.
        pause_seconds: f64,
    },
}

impl Cadence {
    /// Instant responses (no think time at all).
    pub fn instant() -> Self {
        Cadence::Steady { think_seconds: 0.0 }
    }

    /// Simulated seconds the analyst thinks before `round` (0-based).
    ///
    /// Deterministic in `(self, round, seed)`: the mean is jittered by a
    /// ±25% factor drawn counter-style from the seed. A zero mean stays
    /// exactly `0.0`.
    pub fn think_before_round(&self, round: usize, seed: u64) -> f64 {
        let mean = match self {
            Cadence::Steady { think_seconds } => *think_seconds,
            Cadence::Bursty {
                burst_len,
                within_seconds,
                pause_seconds,
            } => {
                if *burst_len > 0 && round > 0 && round.is_multiple_of(*burst_len) {
                    *pause_seconds
                } else {
                    *within_seconds
                }
            }
        };
        if mean == 0.0 {
            0.0
        } else {
            mean * (0.75 + 0.5 * unit_from(derive_seed(seed, round as u64)))
        }
    }
}

/// A simulated analyst wrapped around a [`ConjunctiveOracle`] ground truth.
///
/// Composes the behaviors the scenario layer mixes into traffic: an
/// interest-region **shift** (the truth is swapped for a transformed one
/// from a given round onward), per-label **noise**, **abandonment** (the
/// session truncates before round `k`), and a round **cadence**. All
/// stochastic choices are counter-based off `seed`, so a session replays
/// bit-identically on any worker count.
///
/// Round bookkeeping uses interior mutability ([`Cell`]) so the oracle can
/// be driven through the `&self`-based [`SubspaceOracle`] seam; construct
/// one per session (it is `Send` but not `Sync`).
pub struct BehaviorOracle {
    initial: ConjunctiveOracle,
    shifted: Option<(usize, ConjunctiveOracle)>,
    noise: f64,
    abandon_after: Option<usize>,
    cadence: Cadence,
    seed: u64,
    round: Cell<usize>,
    labels: Cell<u64>,
}

impl BehaviorOracle {
    /// A perfectly steady analyst for `truth` (no shift / noise /
    /// abandonment, instant cadence).
    pub fn new(truth: ConjunctiveOracle, seed: u64) -> Self {
        Self {
            initial: truth,
            shifted: None,
            noise: 0.0,
            abandon_after: None,
            cadence: Cadence::instant(),
            seed,
            round: Cell::new(0),
            labels: Cell::new(0),
        }
    }

    /// Swap the ground truth for `shifted` from round `at_round` onward
    /// (0-based): the analyst's interest moves mid-session.
    pub fn with_shift(mut self, at_round: usize, shifted: ConjunctiveOracle) -> Self {
        self.shifted = Some((at_round, shifted));
        self
    }

    /// Flip each emitted label with probability `noise` (clamped to
    /// `[0, 1]`).
    pub fn with_noise(mut self, noise: f64) -> Self {
        self.noise = noise.clamp(0.0, 1.0);
        self
    }

    /// Abandon the session before round `k` (0-based): rounds `0..k` run,
    /// round `k` and later refuse to start.
    pub fn with_abandonment(mut self, k: usize) -> Self {
        self.abandon_after = Some(k);
        self
    }

    /// Set the round cadence.
    pub fn with_cadence(mut self, cadence: Cadence) -> Self {
        self.cadence = cadence;
        self
    }

    /// Start round `round` (0-based). Returns `false` when the analyst has
    /// abandoned the session — no labels may be drawn for this round.
    pub fn begin_round(&self, round: usize) -> bool {
        self.round.set(round);
        self.abandon_after.is_none_or(|k| round < k)
    }

    /// Ground truth in effect at `round`.
    pub fn truth_at(&self, round: usize) -> &ConjunctiveOracle {
        match &self.shifted {
            Some((at, truth)) if round >= *at => truth,
            _ => &self.initial,
        }
    }

    /// Ground truth in effect for the round last passed to
    /// [`Self::begin_round`].
    pub fn current_truth(&self) -> &ConjunctiveOracle {
        self.truth_at(self.round.get())
    }

    /// Ground truth the analyst ends the session with (what final accuracy
    /// should be measured against).
    pub fn final_truth(&self, total_rounds: usize) -> &ConjunctiveOracle {
        self.truth_at(total_rounds.saturating_sub(1))
    }

    /// True when a shift is configured and the current round has reached it.
    pub fn has_drifted(&self) -> bool {
        matches!(&self.shifted, Some((at, _)) if self.round.get() >= *at)
    }

    /// True when a shift is configured at all.
    pub fn shift_configured(&self) -> bool {
        self.shifted.is_some()
    }

    /// The round the configured shift takes effect, if any.
    pub fn shift_round(&self) -> Option<usize> {
        self.shifted.as_ref().map(|(at, _)| *at)
    }

    /// Round the analyst abandons before, if any.
    pub fn abandon_after(&self) -> Option<usize> {
        self.abandon_after
    }

    /// Total labels emitted across all rounds so far.
    pub fn labels_emitted(&self) -> u64 {
        self.labels.get()
    }

    /// Simulated think time before `round` (see
    /// [`Cadence::think_before_round`]).
    pub fn think_before_round(&self, round: usize) -> f64 {
        self.cadence
            .think_before_round(round, derive_seed(self.seed, 500))
    }

    /// Label a full-space row against the current truth (with noise).
    pub fn label_full(&self, row: &[f64]) -> bool {
        let truth = self.current_truth().label(row);
        self.apply_noise(truth)
    }

    /// A [`SubspaceOracle`] view onto part `part` of the conjunction, for
    /// feeding one subspace's exploration round. Labels drawn through the
    /// view share this oracle's noise stream and label counter.
    pub fn subspace_view(&self, part: usize) -> BehaviorSubspaceView<'_> {
        BehaviorSubspaceView { oracle: self, part }
    }

    fn apply_noise(&self, truth: bool) -> bool {
        let n = self.labels.get();
        self.labels.set(n + 1);
        if self.noise > 0.0 && unit_from(derive_seed(derive_seed(self.seed, 777), n)) < self.noise {
            !truth
        } else {
            truth
        }
    }
}

/// One-subspace view of a [`BehaviorOracle`] (see
/// [`BehaviorOracle::subspace_view`]).
pub struct BehaviorSubspaceView<'a> {
    oracle: &'a BehaviorOracle,
    part: usize,
}

impl SubspaceOracle for BehaviorSubspaceView<'_> {
    fn label(&self, row: &[f64]) -> bool {
        let truth = self.oracle.current_truth().parts()[self.part]
            .1
            .contains(row);
        self.oracle.apply_noise(truth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lte_geom::Region;

    fn box_region(x0: f64, y0: f64, x1: f64, y1: f64) -> RegionUnion {
        RegionUnion::new(vec![Region::Box(lte_geom::Aabb::new(
            vec![x0, y0],
            vec![x1, y1],
        ))])
    }

    #[test]
    fn region_oracle_delegates_to_region() {
        let oracle = RegionOracle::new(box_region(0.0, 0.0, 1.0, 1.0));
        assert!(oracle.label(&[0.5, 0.5]));
        assert!(!oracle.label(&[2.0, 2.0]));
    }

    #[test]
    fn fn_oracle_wraps_closures() {
        let oracle = FnOracle(|row: &[f64]| row[0] > 0.0);
        assert!(oracle.label(&[1.0]));
        assert!(!oracle.label(&[-1.0]));
    }

    #[test]
    fn conjunctive_oracle_requires_all_subspaces() {
        let oracle = ConjunctiveOracle::new(vec![
            (Subspace::new(vec![0, 1]), box_region(0.0, 0.0, 1.0, 1.0)),
            (Subspace::new(vec![2, 3]), box_region(5.0, 5.0, 6.0, 6.0)),
        ]);
        assert!(oracle.label(&[0.5, 0.5, 5.5, 5.5]));
        assert!(
            !oracle.label(&[0.5, 0.5, 0.0, 0.0]),
            "second subspace fails"
        );
        assert!(!oracle.label(&[9.0, 9.0, 5.5, 5.5]), "first subspace fails");
    }

    #[test]
    fn selectivity_counts_conjunctive_members() {
        let oracle = ConjunctiveOracle::new(vec![(
            Subspace::new(vec![0]),
            RegionUnion::new(vec![Region::interval(0.0, 1.0)]),
        )]);
        let rows = vec![vec![0.5, 9.0], vec![2.0, 9.0]];
        assert_eq!(oracle.selectivity(&rows), 0.5);
        // Borrowed rows work too, without cloning.
        let borrowed: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        assert_eq!(oracle.selectivity(&borrowed), 0.5);
        assert_eq!(oracle.selectivity::<Vec<f64>>(&[]), 0.0);
    }

    #[test]
    fn noisy_oracle_at_zero_noise_is_transparent() {
        let inner = RegionOracle::new(box_region(0.0, 0.0, 1.0, 1.0));
        let noisy = NoisyOracle::new(RegionOracle::new(box_region(0.0, 0.0, 1.0, 1.0)), 0.0, 42);
        for i in 0..100 {
            let row = [i as f64 / 50.0, 0.5];
            assert_eq!(noisy.label(&row), inner.label(&row));
        }
        assert_eq!(noisy.labels_emitted(), 100);
    }

    #[test]
    fn noisy_oracle_flip_rate_tracks_noise() {
        let inner = RegionOracle::new(box_region(0.0, 0.0, 1.0, 1.0));
        let noisy = NoisyOracle::new(RegionOracle::new(box_region(0.0, 0.0, 1.0, 1.0)), 0.3, 42);
        let n = 10_000;
        let flips = (0..n)
            .filter(|&i| {
                let row = [i as f64 / 5_000.0, 0.5];
                noisy.label(&row) != inner.label(&row)
            })
            .count();
        let rate = flips as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.03, "flip rate {rate}");
        // Full noise inverts everything.
        let inverted = NoisyOracle::new(FnOracle(|_: &[f64]| true), 1.0, 7);
        for _ in 0..50 {
            assert!(!inverted.label(&[0.0]));
        }
    }

    #[test]
    fn noisy_oracle_replays_the_same_mislabels() {
        let mk = || NoisyOracle::new(FnOracle(|_: &[f64]| true), 0.5, 123);
        let a: Vec<bool> = {
            let o = mk();
            (0..200).map(|_| o.label(&[0.0])).collect()
        };
        let b: Vec<bool> = {
            let o = mk();
            (0..200).map(|_| o.label(&[0.0])).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn cadence_is_deterministic_and_zero_stays_zero() {
        let c = Cadence::Steady { think_seconds: 2.0 };
        let t = c.think_before_round(3, 9);
        assert_eq!(t, c.think_before_round(3, 9));
        assert!((1.5..2.5).contains(&t), "jitter stays within ±25%: {t}");
        assert_eq!(Cadence::instant().think_before_round(3, 9), 0.0);

        let b = Cadence::Bursty {
            burst_len: 3,
            within_seconds: 1.0,
            pause_seconds: 30.0,
        };
        assert!(b.think_before_round(0, 9) < 2.0, "burst rounds are fast");
        assert!(b.think_before_round(3, 9) > 20.0, "pause precedes a burst");
        assert!(b.think_before_round(4, 9) < 2.0);
    }

    #[test]
    fn behavior_oracle_swaps_truth_at_the_shift_round() {
        let before = ConjunctiveOracle::new(vec![(
            Subspace::new(vec![0, 1]),
            box_region(0.0, 0.0, 1.0, 1.0),
        )]);
        let after = ConjunctiveOracle::new(vec![(
            Subspace::new(vec![0, 1]),
            box_region(5.0, 5.0, 6.0, 6.0),
        )]);
        let analyst = BehaviorOracle::new(before, 1).with_shift(2, after);

        assert!(analyst.begin_round(0));
        assert!(analyst.label_full(&[0.5, 0.5]));
        assert!(!analyst.has_drifted());

        assert!(analyst.begin_round(2));
        assert!(!analyst.label_full(&[0.5, 0.5]), "interest moved away");
        assert!(analyst.label_full(&[5.5, 5.5]));
        assert!(analyst.has_drifted());
        assert_eq!(analyst.labels_emitted(), 3);

        // The subspace view labels against the same shifted region.
        let view = analyst.subspace_view(0);
        assert!(view.label(&[5.5, 5.5]));
        assert!(!view.label(&[0.5, 0.5]));
        assert_eq!(analyst.labels_emitted(), 5);
    }

    #[test]
    fn behavior_oracle_abandons_at_round_k() {
        let truth = ConjunctiveOracle::new(vec![(
            Subspace::new(vec![0, 1]),
            box_region(0.0, 0.0, 1.0, 1.0),
        )]);
        let analyst = BehaviorOracle::new(truth, 5).with_abandonment(2);
        assert!(analyst.begin_round(0));
        assert!(analyst.begin_round(1));
        assert!(!analyst.begin_round(2), "round k refuses to start");
        assert!(!analyst.begin_round(7));
        assert_eq!(analyst.abandon_after(), Some(2));
    }
}
