//! A dependency-free worker pool shared by the serving engine
//! (`lte-serve`) and the bench harness (`lte-bench`).
//!
//! [`parallel_map`] fans a job list across scoped threads through a
//! mutex-guarded work queue and returns outputs in input order, so results
//! are **independent of the worker count and of scheduling**: running the
//! same jobs at 1 worker or at [`default_threads`] workers produces
//! byte-identical output vectors as long as each job is itself
//! deterministic. The serving engine's multi-session determinism guarantee
//! rests on this property.

/// Run jobs across worker threads (index-preserving). Uses a mutex-guarded
/// iterator as the work queue; `threads` is clamped to the job count.
///
/// ```
/// use lte_core::parallel::parallel_map;
///
/// let squares = parallel_map((0..8).collect::<Vec<_>>(), 4, |x| x * x);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]); // input order kept
/// ```
pub fn parallel_map<I, O, F>(inputs: Vec<I>, threads: usize, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = inputs.len();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return inputs.into_iter().map(f).collect();
    }
    let queue = std::sync::Mutex::new(inputs.into_iter().enumerate());
    let outputs = std::sync::Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                // Take the lock only to pop; run the job outside it.
                let next = queue.lock().expect("queue poisoned").next();
                match next {
                    Some((i, input)) => {
                        let out = f(input);
                        outputs.lock().expect("outputs poisoned").push((i, out));
                    }
                    None => break,
                }
            });
        }
    });
    let mut results = outputs.into_inner().expect("outputs poisoned");
    results.sort_by_key(|(i, _)| *i);
    results.into_iter().map(|(_, o)| o).collect()
}

/// Default worker count: leave nothing idle but respect tiny machines.
///
/// ```
/// use lte_core::parallel::default_threads;
///
/// assert!(default_threads() >= 1); // never zero, even when undetectable
/// ```
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Fan a slice over worker threads in contiguous blocks of `block` items,
/// flattening the per-block outputs back in input order — the row-block
/// parallelism under large batched matmuls (each block of pool rows is
/// scored independently; see
/// [`UisClassifier::score_pool`](crate::classifier::UisClassifier::score_pool)).
///
/// Because blocks are contiguous and outputs are re-assembled in input
/// order, the result is **identical to `f(items)`** whenever `f` maps each
/// input row to outputs independent of the rest of its block — the
/// invariant every batched scoring path here satisfies — regardless of
/// `threads`, `block`, or scheduling.
///
/// ```
/// use lte_core::parallel::parallel_flat_map_chunks;
///
/// let doubled = parallel_flat_map_chunks(&[1, 2, 3, 4, 5], 2, 4, |chunk| {
///     chunk.iter().map(|x| x * 2).collect::<Vec<_>>()
/// });
/// assert_eq!(doubled, vec![2, 4, 6, 8, 10]);
/// ```
///
/// # Panics
/// Panics when `block` is zero and `items` is non-empty.
pub fn parallel_flat_map_chunks<I, O, F>(items: &[I], block: usize, threads: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&[I]) -> Vec<O> + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    if threads <= 1 || items.len() <= block {
        return f(items);
    }
    let chunks: Vec<&[I]> = items.chunks(block).collect();
    parallel_map(chunks, threads, f)
        .into_iter()
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..50).collect::<Vec<_>>(), 4, |x| x * 2);
        assert_eq!(out, (0..50).map(|x| x * 2).collect::<Vec<_>>());
        let out = parallel_map(vec![1, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
        let empty: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |x| x);
        assert!(empty.is_empty());
    }

    #[test]
    fn worker_count_does_not_change_output() {
        let inputs: Vec<u64> = (0..200).collect();
        let reference = parallel_map(inputs.clone(), 1, |x| x.wrapping_mul(0x9E37_79B9));
        for threads in [2, 3, default_threads()] {
            let out = parallel_map(inputs.clone(), threads, |x| x.wrapping_mul(0x9E37_79B9));
            assert_eq!(out, reference, "{threads} workers diverged");
        }
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn flat_map_chunks_matches_serial() {
        let items: Vec<i64> = (0..1000).collect();
        let serial: Vec<i64> = items.iter().map(|x| x * 3 - 1).collect();
        for (block, threads) in [(1, 1), (7, 2), (64, 4), (1000, 4), (2000, 4)] {
            let out = parallel_flat_map_chunks(&items, block, threads, |chunk| {
                chunk.iter().map(|x| x * 3 - 1).collect::<Vec<_>>()
            });
            assert_eq!(out, serial, "block {block}, {threads} threads");
        }
        let empty: Vec<i64> = parallel_flat_map_chunks(&[], 0, 4, |_: &[i64]| Vec::new());
        assert!(empty.is_empty());
    }
}
