//! A dependency-free worker pool shared by the serving engine
//! (`lte-serve`) and the bench harness (`lte-bench`).
//!
//! [`parallel_map`] fans a job list across scoped threads through a
//! mutex-guarded work queue and returns outputs in input order, so results
//! are **independent of the worker count and of scheduling**: running the
//! same jobs at 1 worker or at [`default_threads`] workers produces
//! byte-identical output vectors as long as each job is itself
//! deterministic. The serving engine's multi-session determinism guarantee
//! rests on this property.

/// Run jobs across worker threads (index-preserving). Uses a mutex-guarded
/// iterator as the work queue; `threads` is clamped to the job count.
///
/// ```
/// use lte_core::parallel::parallel_map;
///
/// let squares = parallel_map((0..8).collect::<Vec<_>>(), 4, |x| x * x);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]); // input order kept
/// ```
pub fn parallel_map<I, O, F>(inputs: Vec<I>, threads: usize, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = inputs.len();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return inputs.into_iter().map(f).collect();
    }
    let queue = std::sync::Mutex::new(inputs.into_iter().enumerate());
    let outputs = std::sync::Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                // Take the lock only to pop; run the job outside it.
                let next = queue.lock().expect("queue poisoned").next();
                match next {
                    Some((i, input)) => {
                        let out = f(input);
                        outputs.lock().expect("outputs poisoned").push((i, out));
                    }
                    None => break,
                }
            });
        }
    });
    let mut results = outputs.into_inner().expect("outputs poisoned");
    results.sort_by_key(|(i, _)| *i);
    results.into_iter().map(|(_, o)| o).collect()
}

/// Default worker count: leave nothing idle but respect tiny machines.
///
/// ```
/// use lte_core::parallel::default_threads;
///
/// assert!(default_threads() >= 1); // never zero, even when undetectable
/// ```
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Fan a slice over worker threads in contiguous blocks of `block` items,
/// flattening the per-block outputs back in input order — the row-block
/// parallelism under large batched matmuls (each block of pool rows is
/// scored independently; see
/// [`UisClassifier::score_pool`](crate::classifier::UisClassifier::score_pool)).
///
/// Because blocks are contiguous and outputs are re-assembled in input
/// order, the result is **identical to `f(items)`** whenever `f` maps each
/// input row to outputs independent of the rest of its block — the
/// invariant every batched scoring path here satisfies — regardless of
/// `threads`, `block`, or scheduling.
///
/// ```
/// use lte_core::parallel::parallel_flat_map_chunks;
///
/// let doubled = parallel_flat_map_chunks(&[1, 2, 3, 4, 5], 2, 4, |chunk| {
///     chunk.iter().map(|x| x * 2).collect::<Vec<_>>()
/// });
/// assert_eq!(doubled, vec![2, 4, 6, 8, 10]);
/// ```
///
/// # Panics
/// Panics when `block` is zero and `items` is non-empty.
pub fn parallel_flat_map_chunks<I, O, F>(items: &[I], block: usize, threads: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&[I]) -> Vec<O> + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    if threads <= 1 || items.len() <= block {
        return f(items);
    }
    let chunks: Vec<&[I]> = items.chunks(block).collect();
    parallel_map(chunks, threads, f)
        .into_iter()
        .flatten()
        .collect()
}

/// Fan many independent row groups over **one** worker pool: every group is
/// cut into contiguous blocks of `block` items, all blocks from all groups
/// are dispatched together through [`parallel_map`], and the per-block
/// outputs are reassembled per group in input order.
///
/// This is the fused-dispatch shape of cross-session pool scoring: each
/// group is one session's retrieval pool (scored by that session's adapted
/// classifier via the group index handed to `f`), and fusing the blocks
/// means the parallel threshold and the load balancing see the *combined*
/// batch, not each small per-session pool. Because blocks are contiguous
/// and [`parallel_map`] preserves order, `result[g]` is identical to
/// `f(g, groups[g])` whenever `f` maps each row independently of the rest
/// of its block — regardless of `threads`, `block`, or how groups
/// interleave.
///
/// With `threads <= 1` each group is processed in one `f(g, group)` call,
/// exactly like the serial path of
/// [`UisClassifier::score_pool`](crate::classifier::UisClassifier::score_pool).
///
/// ```
/// use lte_core::parallel::parallel_flat_map_groups;
///
/// let a = vec![1, 2, 3];
/// let b = vec![10, 20];
/// let out = parallel_flat_map_groups(&[&a, &b], 2, 4, |g, chunk| {
///     chunk.iter().map(|x| x + g as i32).collect::<Vec<_>>()
/// });
/// assert_eq!(out, vec![vec![1, 2, 3], vec![11, 21]]);
/// ```
///
/// # Panics
/// Panics when `block` is zero and any group is non-empty.
pub fn parallel_flat_map_groups<I, O, F>(
    groups: &[&[I]],
    block: usize,
    threads: usize,
    f: F,
) -> Vec<Vec<O>>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &[I]) -> Vec<O> + Sync,
{
    if threads <= 1 || groups.iter().map(|g| g.len()).sum::<usize>() <= block {
        return groups.iter().enumerate().map(|(g, it)| f(g, it)).collect();
    }
    let mut jobs: Vec<(usize, &[I])> = Vec::new();
    for (g, items) in groups.iter().enumerate() {
        if items.is_empty() {
            continue;
        }
        assert!(block > 0, "block size must be positive");
        for chunk in items.chunks(block) {
            jobs.push((g, chunk));
        }
    }
    let parts = parallel_map(jobs, threads, |(g, chunk)| (g, f(g, chunk)));
    let mut result: Vec<Vec<O>> = groups.iter().map(|g| Vec::with_capacity(g.len())).collect();
    for (g, mut part) in parts {
        result[g].append(&mut part);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..50).collect::<Vec<_>>(), 4, |x| x * 2);
        assert_eq!(out, (0..50).map(|x| x * 2).collect::<Vec<_>>());
        let out = parallel_map(vec![1, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
        let empty: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |x| x);
        assert!(empty.is_empty());
    }

    #[test]
    fn worker_count_does_not_change_output() {
        let inputs: Vec<u64> = (0..200).collect();
        let reference = parallel_map(inputs.clone(), 1, |x| x.wrapping_mul(0x9E37_79B9));
        for threads in [2, 3, default_threads()] {
            let out = parallel_map(inputs.clone(), threads, |x| x.wrapping_mul(0x9E37_79B9));
            assert_eq!(out, reference, "{threads} workers diverged");
        }
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn flat_map_chunks_matches_serial() {
        let items: Vec<i64> = (0..1000).collect();
        let serial: Vec<i64> = items.iter().map(|x| x * 3 - 1).collect();
        for (block, threads) in [(1, 1), (7, 2), (64, 4), (1000, 4), (2000, 4)] {
            let out = parallel_flat_map_chunks(&items, block, threads, |chunk| {
                chunk.iter().map(|x| x * 3 - 1).collect::<Vec<_>>()
            });
            assert_eq!(out, serial, "block {block}, {threads} threads");
        }
        let empty: Vec<i64> = parallel_flat_map_chunks(&[], 0, 4, |_: &[i64]| Vec::new());
        assert!(empty.is_empty());
    }

    #[test]
    fn flat_map_groups_matches_per_group_serial() {
        let groups_owned: Vec<Vec<i64>> = vec![
            (0..5).collect(),
            Vec::new(),
            (100..137).collect(),
            vec![7],
            (1000..1003).collect(),
        ];
        let groups: Vec<&[i64]> = groups_owned.iter().map(|g| g.as_slice()).collect();
        let f =
            |g: usize, chunk: &[i64]| chunk.iter().map(|x| x * 3 + g as i64).collect::<Vec<i64>>();
        let serial: Vec<Vec<i64>> = groups.iter().enumerate().map(|(g, it)| f(g, it)).collect();
        for (block, threads) in [(1, 1), (1, 4), (4, 2), (16, 4), (64, 3)] {
            let out = parallel_flat_map_groups(&groups, block, threads, f);
            assert_eq!(out, serial, "block {block}, {threads} threads");
        }
        let none: Vec<Vec<i64>> = parallel_flat_map_groups(&[], 0, 4, |_, _: &[i64]| Vec::new());
        assert!(none.is_empty());
    }
}
