//! Fixed-order meta-feature vectors for task routing.
//!
//! A library of specialized pipelines (see [`crate::routing`]) needs a
//! common coordinate system in which an *incoming session* can be compared
//! against the *meta-tasks each pipeline was trained on*. Following the
//! meta-feature tradition of algorithm selection (and the explainable
//! meta-learning framing of Woźnica & Biecek), every task — simulated or
//! live — is summarized by the same fixed-order vector of
//! [`FEATURE_COUNT`] scalars:
//!
//! | # | name                  | meaning                                            |
//! |---|-----------------------|----------------------------------------------------|
//! | 0 | `selectivity`         | fraction of positive labels                        |
//! | 1 | `balance`             | `2·min(sel, 1−sel)` — 1 at 50/50, 0 when one-class |
//! | 2 | `mean_dim`            | mean subspace dimensionality                       |
//! | 3 | `peaked_frac`         | fraction of attributes with *peaked* modality (the |
//! |   |                       | GMM side of the §VII-A GMM/Jenks encoder split)    |
//! | 4 | `positive_dispersion` | mean pairwise distance among positives, normalized |
//! |   |                       | by the all-point mean pairwise distance            |
//! | 5 | `subspaces`           | number of conjunctive subspaces                    |
//!
//! Both extraction paths are pure functions of their inputs — no RNG, no
//! global state — so a given task or (truth, probe rows) pair always maps
//! to the same vector, which is what makes routing decisions replayable.

use crate::context::SubspaceContext;
use crate::meta_task::MetaTask;
use crate::oracle::ConjunctiveOracle;
use lte_preprocess::modality::{probe_modality, Modality};

/// Number of meta-features in the fixed-order vector.
pub const FEATURE_COUNT: usize = 6;

/// Names of the meta-features, in vector order.
pub const FEATURE_NAMES: [&str; FEATURE_COUNT] = [
    "selectivity",
    "balance",
    "mean_dim",
    "peaked_frac",
    "positive_dispersion",
    "subspaces",
];

/// Per-feature weights of the routing distance: label statistics dominate
/// (selectivity is the strongest specialization signal), count-valued
/// features (`mean_dim`, `subspaces`) are damped so a one-dimension gap
/// does not drown every unit-interval feature.
const DISTANCE_WEIGHTS: [f64; FEATURE_COUNT] = [2.0, 1.0, 0.5, 1.0, 1.0, 0.5];

/// Pairwise-distance computations cap their point count (stable prefix) so
/// feature extraction stays O(1)-ish in the pool size.
const DISPERSION_MAX_POINTS: usize = 256;

/// One feature's side-by-side comparison inside a routing explanation.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureDelta {
    /// Feature name (from [`FEATURE_NAMES`]).
    pub name: &'static str,
    /// The incoming session's value.
    pub session: f64,
    /// The chosen pipeline's training centroid value.
    pub centroid: f64,
    /// `session − centroid`.
    pub delta: f64,
}

/// A fixed-order meta-feature vector (see the module docs for the layout).
#[derive(Debug, Clone, PartialEq)]
pub struct MetaFeatures {
    values: [f64; FEATURE_COUNT],
}

impl MetaFeatures {
    /// Wrap a raw vector; `None` when the length is not [`FEATURE_COUNT`].
    pub fn from_values(values: &[f64]) -> Option<Self> {
        let values: [f64; FEATURE_COUNT] = values.try_into().ok()?;
        Some(Self { values })
    }

    /// The raw values, in [`FEATURE_NAMES`] order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Extract the vector of one simulated meta-task on its subspace
    /// context. `n_subspaces` is the pipeline's conjunctive subspace count
    /// (a task only sees its own subspace).
    pub fn from_task(ctx: &SubspaceContext, task: &MetaTask, n_subspaces: usize) -> Self {
        let sel = task.support_positive_rate();
        let peaked = ctx
            .encoder()
            .encoders()
            .iter()
            .filter(|e| e.is_gmm())
            .count() as f64
            / ctx.encoder().encoders().len().max(1) as f64;
        // Support positives live on the Cs centers (raw subspace rows);
        // their spread relative to all of Cs is the task's dispersion.
        let dispersion = dispersion_ratio(ctx.cs(), &task.cs_labels);
        Self {
            values: [
                sel,
                balance(sel),
                ctx.dim() as f64,
                peaked,
                dispersion,
                n_subspaces as f64,
            ],
        }
    }

    /// Extract the vector of an incoming session from its ground truth and
    /// a probe pool of full-space rows (the serving layer probes with the
    /// shard's eval rows, optionally subsampled by the router).
    pub fn from_probe(truth: &ConjunctiveOracle, probe_rows: &[Vec<f64>]) -> Self {
        let sel = truth.selectivity(probe_rows);
        let parts = truth.parts();
        let n_parts = parts.len().max(1);
        let mean_dim = parts.iter().map(|(s, _)| s.dim()).sum::<usize>() as f64 / n_parts as f64;

        // Modality per explored attribute, probed on the pool columns —
        // the session-side mirror of the encoder's GMM/Jenks split.
        let mut peaked = 0usize;
        let mut attrs = 0usize;
        for (sub, _) in parts {
            for &attr in sub.attr_indices() {
                let column: Vec<f64> = probe_rows.iter().map(|r| r[attr]).collect();
                if probe_modality(&column) == Modality::Peaked {
                    peaked += 1;
                }
                attrs += 1;
            }
        }
        let peaked_frac = peaked as f64 / attrs.max(1) as f64;

        // Per-part positive dispersion (against the part's own region,
        // mirroring the per-subspace task-side measure), averaged.
        let mut dispersion = 0.0;
        for (sub, region) in parts {
            let proj: Vec<Vec<f64>> = probe_rows
                .iter()
                .take(DISPERSION_MAX_POINTS)
                .map(|r| sub.project_row(r))
                .collect();
            let labels: Vec<bool> = proj.iter().map(|p| region.contains(p)).collect();
            dispersion += dispersion_ratio(&proj, &labels);
        }
        dispersion /= n_parts as f64;

        Self {
            values: [
                sel,
                balance(sel),
                mean_dim,
                peaked_frac,
                dispersion,
                parts.len() as f64,
            ],
        }
    }

    /// Component-wise mean of a non-empty set of vectors.
    ///
    /// # Panics
    /// Panics on an empty iterator.
    pub fn centroid<'a, I: IntoIterator<Item = &'a MetaFeatures>>(items: I) -> Self {
        let mut sum = [0.0; FEATURE_COUNT];
        let mut n = 0usize;
        for item in items {
            for (s, v) in sum.iter_mut().zip(&item.values) {
                *s += v;
            }
            n += 1;
        }
        assert!(n > 0, "centroid of an empty feature set");
        for s in sum.iter_mut() {
            *s /= n as f64;
        }
        Self { values: sum }
    }

    /// Weighted Euclidean distance (weights: `DISTANCE_WEIGHTS`) — the
    /// routing metric. Symmetric, zero iff equal.
    pub fn distance(&self, other: &MetaFeatures) -> f64 {
        self.values
            .iter()
            .zip(&other.values)
            .zip(&DISTANCE_WEIGHTS)
            .map(|((a, b), w)| w * (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Side-by-side per-feature comparison `self − centroid`, in
    /// [`FEATURE_NAMES`] order — the `feature_deltas` of a
    /// [`RoutingDecision`](crate::routing::RoutingDecision).
    pub fn deltas(&self, centroid: &MetaFeatures) -> Vec<FeatureDelta> {
        FEATURE_NAMES
            .iter()
            .zip(self.values.iter().zip(&centroid.values))
            .map(|(name, (&session, &centroid))| FeatureDelta {
                name,
                session,
                centroid,
                delta: session - centroid,
            })
            .collect()
    }
}

/// `2·min(sel, 1−sel)`: 1.0 at a 50/50 split, 0.0 when one class is absent.
fn balance(sel: f64) -> f64 {
    2.0 * sel.min(1.0 - sel).max(0.0)
}

/// Mean pairwise distance among `positive` points divided by the mean
/// pairwise distance among all points (both capped at
/// [`DISPERSION_MAX_POINTS`], stable prefix order). Scale-free: ~1.0 when
/// positives are spread like the data, small when they form one tight
/// cluster, 0.0 when fewer than two positives exist.
fn dispersion_ratio(points: &[Vec<f64>], positive: &[bool]) -> f64 {
    let all: Vec<&Vec<f64>> = points.iter().take(DISPERSION_MAX_POINTS).collect();
    let pos: Vec<&Vec<f64>> = points
        .iter()
        .zip(positive)
        .filter(|(_, &y)| y)
        .map(|(p, _)| p)
        .take(DISPERSION_MAX_POINTS)
        .collect();
    let all_mean = mean_pairwise(&all);
    let pos_mean = mean_pairwise(&pos);
    if all_mean <= 0.0 || pos.len() < 2 {
        0.0
    } else {
        pos_mean / all_mean
    }
}

fn mean_pairwise(points: &[&Vec<f64>]) -> f64 {
    let n = points.len();
    if n < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            let d2: f64 = points[i]
                .iter()
                .zip(points[j].iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            total += d2.sqrt();
        }
    }
    total / (n * (n - 1) / 2) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LteConfig;
    use crate::meta_task::generate_task;
    use lte_data::generator::generate_sdss;
    use lte_data::rng::seeded;
    use lte_data::subspace::Subspace;
    use lte_data::table::Table;

    fn ctx_and_table() -> (SubspaceContext, Table) {
        let table = generate_sdss(3000, 0);
        let cfg = LteConfig::reduced();
        let ctx = SubspaceContext::build(
            &table,
            Subspace::new(vec![0, 1]),
            &cfg.task,
            &cfg.encoder,
            1,
        );
        (ctx, table)
    }

    #[test]
    fn task_features_are_deterministic_and_in_range() {
        let (ctx, _) = ctx_and_table();
        let cfg = LteConfig::reduced();
        let t = generate_task(&ctx, cfg.task.mode, cfg.task.delta, 4, &mut seeded(7));
        let a = MetaFeatures::from_task(&ctx, &t, 2);
        let b = MetaFeatures::from_task(&ctx, &t, 2);
        assert_eq!(a, b, "pure function of (ctx, task)");
        let v = a.values();
        assert_eq!(v.len(), FEATURE_COUNT);
        assert!((0.0..=1.0).contains(&v[0]), "selectivity {}", v[0]);
        assert!((0.0..=1.0).contains(&v[1]), "balance {}", v[1]);
        assert_eq!(v[2], 2.0, "2D subspace");
        assert!((0.0..=1.0).contains(&v[3]), "peaked_frac {}", v[3]);
        assert!(v[4] >= 0.0, "dispersion {}", v[4]);
        assert_eq!(v[5], 2.0, "subspace count passed through");
    }

    #[test]
    fn probe_features_track_the_truth() {
        let (ctx, table) = ctx_and_table();
        let _ = ctx;
        let rows: Vec<Vec<f64>> = (0..400).map(|i| table.row(i).unwrap()).collect();
        // A 1-attribute interval truth over attribute 0.
        let lo = -0.5;
        let hi = 0.5;
        let truth = ConjunctiveOracle::new(vec![(
            Subspace::new(vec![0, 1]),
            lte_geom::RegionUnion::new(vec![lte_geom::Region::Box(lte_geom::Aabb::new(
                vec![lo, -10.0],
                vec![hi, 10.0],
            ))]),
        )]);
        let f = MetaFeatures::from_probe(&truth, &rows);
        assert_eq!(f.values()[0], truth.selectivity(&rows));
        assert_eq!(f.values()[2], 2.0);
        assert_eq!(f.values()[5], 1.0);
        assert_eq!(f, MetaFeatures::from_probe(&truth, &rows));
    }

    #[test]
    fn centroid_distance_and_deltas_are_consistent() {
        let a = MetaFeatures::from_values(&[0.2, 0.4, 2.0, 0.5, 0.8, 2.0]).unwrap();
        let b = MetaFeatures::from_values(&[0.6, 0.8, 2.0, 0.5, 0.4, 2.0]).unwrap();
        let c = MetaFeatures::centroid([&a, &b]);
        for (got, want) in c.values().iter().zip([0.4, 0.6, 2.0, 0.5, 0.6, 2.0]) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
        assert_eq!(a.distance(&a), 0.0);
        assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-15, "symmetric");
        assert!(a.distance(&b) > 0.0);

        let deltas = a.deltas(&c);
        assert_eq!(deltas.len(), FEATURE_COUNT);
        for (d, name) in deltas.iter().zip(FEATURE_NAMES) {
            assert_eq!(d.name, name);
            assert!((d.delta - (d.session - d.centroid)).abs() < 1e-15);
        }
        assert!(MetaFeatures::from_values(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn dispersion_separates_tight_from_spread_positives() {
        let points: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, 0.0]).collect();
        let tight: Vec<bool> = (0..100).map(|i| i < 5).collect();
        let spread: Vec<bool> = (0..100).map(|i| i % 20 == 0).collect();
        let t = dispersion_ratio(&points, &tight);
        let s = dispersion_ratio(&points, &spread);
        assert!(t < s, "tight {t} vs spread {s}");
        let none = vec![false; 100];
        assert_eq!(dispersion_ratio(&points, &none), 0.0);
    }
}
