//! Iterative exploration: active learning on top of meta-learners
//! (§III-B, "Other IDE Modules" 1).
//!
//! The LTE framework plugs into existing IDE loops: "if a user wants to
//! continue exploring after the initial exploration phase, active learning
//! can be employed to feed more labelled tuples to the meta-learner for
//! further training." This module implements that continuation:
//!
//! 1. run the standard initial exploration (Cs centers + Δ random tuples),
//! 2. per round, pick the pool tuple the adapted classifier is *least sure*
//!    about (|logit| minimal — uncertainty sampling), ask the user,
//! 3. re-adapt from the meta-initialization on the grown label set,
//! 4. stop at the extended budget or when the convergence indicator
//!    ([`crate::refine::Subregions::three_set_bound`]) crosses a threshold.

use crate::classifier::{Example, UisClassifier};
use crate::config::LteConfig;
use crate::context::SubspaceContext;
use crate::feature::{expansion_degree, uis_feature_vector};
use crate::meta_learner::MetaLearner;
use crate::oracle::SubspaceOracle;
use lte_data::rng::{derive_seed, seeded};
use rand::Rng;

/// Outcome of an iterative exploration session.
#[derive(Debug, Clone)]
pub struct IterativeOutcome {
    /// Predictions for the evaluation pool after the final round.
    pub predictions: Vec<bool>,
    /// Total labels consumed (initial + iterative rounds).
    pub labels_used: usize,
    /// Number of active-learning rounds executed.
    pub rounds: usize,
    /// Convergence-bound trajectory (one value per round), when tracked.
    pub bound_history: Vec<f64>,
}

/// Configuration of the iterative continuation.
#[derive(Debug, Clone)]
pub struct IterativeConfig {
    /// Additional labels beyond the initial `B`.
    pub extra_budget: usize,
    /// Uncertainty-sampling candidates per round.
    pub candidates_per_round: usize,
    /// Stop early when the three-set F1 lower bound reaches this value
    /// (`None` disables convergence stopping).
    pub stop_at_bound: Option<f64>,
}

impl Default for IterativeConfig {
    fn default() -> Self {
        Self {
            extra_budget: 20,
            candidates_per_round: 100,
            stop_at_bound: None,
        }
    }
}

/// Run initial exploration plus iterative active-learning rounds on one
/// subspace. Returns the final predictions over `pool`.
pub fn explore_iteratively(
    ctx: &SubspaceContext,
    learner: &MetaLearner,
    oracle: &dyn SubspaceOracle,
    pool: &[Vec<f64>],
    cfg: &LteConfig,
    iter_cfg: &IterativeConfig,
    seed: u64,
) -> IterativeOutcome {
    let mut rng = seeded(seed);

    // Initial exploration: exactly the §V-D support construction.
    let cs_labels: Vec<bool> = ctx.cs().iter().map(|c| oracle.label(c)).collect();
    let mut examples: Vec<Example> = ctx
        .cs()
        .iter()
        .zip(&cs_labels)
        .map(|(row, &y)| (ctx.encode(row), y))
        .collect();
    let sample = ctx.sample_rows();
    for _ in 0..cfg.task.delta {
        let row = &sample[rng.random_range(0..sample.len())];
        examples.push((ctx.encode(row), oracle.label(row)));
    }
    let l = expansion_degree(ctx.cu().len(), cfg.net.expansion_frac);
    let v_r = uis_feature_vector(&cs_labels, ctx.ps(), l);

    let encoded_pool: Vec<Vec<f64>> = pool.iter().map(|r| ctx.encode(r)).collect();
    let mut labeled_pool: Vec<bool> = vec![false; pool.len()];

    let adapt = |examples: &[Example]| -> UisClassifier {
        let w = UisClassifier::balance_weight(examples);
        learner
            .adapt_weighted(&v_r, examples, cfg.online.adapt_steps, cfg.online.lr, w)
            .classifier
    };
    let mut classifier = adapt(&examples);

    let mut rounds = 0;
    let mut bound_history = Vec::new();
    let mut extra_positives: Vec<Vec<f64>> = Vec::new();

    for round in 0..iter_cfg.extra_budget {
        // Convergence check on the current model: the subregions absorb
        // every positive label collected so far, so the bound moves as the
        // session progresses.
        if let Some(target) = iter_cfg.stop_at_bound {
            let regions = crate::refine::build_subregions_with_anchors(
                ctx,
                &cs_labels,
                &extra_positives,
                &cfg.refine,
            );
            let bound = regions.three_set_bound(pool);
            bound_history.push(bound);
            if bound >= target {
                break;
            }
        }

        // Uncertainty sampling over unlabeled candidates.
        let mut round_rng = seeded(derive_seed(seed, 10_000 + round as u64));
        let candidates: Vec<usize> = sample_candidates(
            &mut round_rng,
            pool.len(),
            &labeled_pool,
            iter_cfg.candidates_per_round,
        );
        let Some(&next) = candidates.iter().min_by(|&&a, &&b| {
            let ua = classifier.logit(&v_r, &encoded_pool[a]).abs();
            let ub = classifier.logit(&v_r, &encoded_pool[b]).abs();
            ua.partial_cmp(&ub).unwrap_or(std::cmp::Ordering::Equal)
        }) else {
            break;
        };

        labeled_pool[next] = true;
        let label = oracle.label(&pool[next]);
        if label {
            extra_positives.push(pool[next].clone());
        }
        examples.push((encoded_pool[next].clone(), label));
        classifier = adapt(&examples);
        rounds += 1;
    }

    let predictions = encoded_pool
        .iter()
        .map(|x| classifier.logit(&v_r, x) > 0.0)
        .collect();
    IterativeOutcome {
        predictions,
        labels_used: examples.len(),
        rounds,
        bound_history,
    }
}

fn sample_candidates<R: Rng + ?Sized>(
    rng: &mut R,
    pool_len: usize,
    labeled: &[bool],
    count: usize,
) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..pool_len).filter(|&i| !labeled[i]).collect();
    let take = count.min(idx.len());
    for i in 0..take {
        let j = rng.random_range(i..idx.len());
        idx.swap(i, j);
    }
    idx.truncate(take);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LteConfig;
    use crate::meta_task::generate_task_set;
    use crate::metrics::ConfusionMatrix;
    use crate::oracle::RegionOracle;
    use crate::uis::generate_uis;
    use lte_data::generator::generate_sdss;
    use lte_data::subspace::Subspace;

    fn setup() -> (SubspaceContext, MetaLearner, LteConfig) {
        let table = generate_sdss(3000, 0);
        let mut cfg = LteConfig::reduced();
        cfg.train.n_tasks = 120;
        cfg.train.epochs = 3;
        let ctx = SubspaceContext::build(
            &table,
            Subspace::new(vec![0, 1]),
            &cfg.task,
            &cfg.encoder,
            51,
        );
        let l = expansion_degree(cfg.task.ku, cfg.net.expansion_frac);
        let tasks = generate_task_set(&ctx, &cfg.task, l, cfg.train.n_tasks, &mut seeded(52));
        let mut learner = MetaLearner::new(
            cfg.task.ku,
            ctx.feature_width(),
            &cfg.net,
            cfg.train.clone(),
            53,
        );
        learner.train(&tasks);
        (ctx, learner, cfg)
    }

    #[test]
    fn iterative_rounds_consume_extra_budget() {
        let (ctx, learner, cfg) = setup();
        let uis = generate_uis(ctx.cu(), ctx.pu(), cfg.task.mode, &mut seeded(99));
        let oracle = RegionOracle::new(uis);
        let pool: Vec<Vec<f64>> = ctx.sample_rows()[..300].to_vec();
        let iter_cfg = IterativeConfig {
            extra_budget: 10,
            ..IterativeConfig::default()
        };
        let outcome = explore_iteratively(&ctx, &learner, &oracle, &pool, &cfg, &iter_cfg, 1);
        assert_eq!(outcome.rounds, 10);
        assert_eq!(outcome.labels_used, cfg.budget() + 10);
        assert_eq!(outcome.predictions.len(), 300);
    }

    #[test]
    fn more_rounds_do_not_hurt_on_average() {
        let (ctx, learner, cfg) = setup();
        let pool: Vec<Vec<f64>> = ctx.sample_rows().to_vec();
        let mut f1_short = 0.0;
        let mut f1_long = 0.0;
        let mut n = 0;
        for rep in 0..4u64 {
            let uis = generate_uis(ctx.cu(), ctx.pu(), cfg.task.mode, &mut seeded(200 + rep));
            let sel = uis.selectivity(&pool);
            if !(0.1..=0.9).contains(&sel) {
                continue;
            }
            let oracle = RegionOracle::new(uis);
            let f1 = |extra: usize| {
                let iter_cfg = IterativeConfig {
                    extra_budget: extra,
                    ..IterativeConfig::default()
                };
                let o =
                    explore_iteratively(&ctx, &learner, &oracle, &pool, &cfg, &iter_cfg, 300 + rep);
                ConfusionMatrix::from_pairs(
                    o.predictions
                        .iter()
                        .zip(&pool)
                        .map(|(&p, row)| (p, oracle.label(row))),
                )
                .f1()
            };
            f1_short += f1(0);
            f1_long += f1(15);
            n += 1;
        }
        assert!(n > 0, "need at least one valid test UIS");
        // Active continuation shouldn't hurt much on average.
        assert!(
            f1_long >= f1_short - 0.05 * n as f64,
            "15 extra labels degraded: {f1_short} -> {f1_long} over {n} reps"
        );
    }

    #[test]
    fn convergence_stopping_halts_early() {
        let (ctx, learner, cfg) = setup();
        let uis = generate_uis(ctx.cu(), ctx.pu(), cfg.task.mode, &mut seeded(400));
        let oracle = RegionOracle::new(uis);
        let pool: Vec<Vec<f64>> = ctx.sample_rows()[..200].to_vec();
        let iter_cfg = IterativeConfig {
            extra_budget: 10,
            stop_at_bound: Some(0.0), // trivially satisfied at once
            ..IterativeConfig::default()
        };
        let outcome = explore_iteratively(&ctx, &learner, &oracle, &pool, &cfg, &iter_cfg, 2);
        assert_eq!(outcome.rounds, 0, "bound 0.0 must stop immediately");
        assert_eq!(outcome.bound_history.len(), 1);
    }
}
