//! The end-to-end LTE pipeline over a multi-attribute user-interest space.
//!
//! Offline (§III-B left half): decompose the space into meta-subspaces,
//! build a [`SubspaceContext`] per subspace, generate its meta-task set, and
//! meta-train one [`MetaLearner`] per subspace.
//!
//! Online (§III-B right half): for a user whose interest is a conjunction of
//! per-subspace regions, run [`crate::explore::explore_subspace`] per subspace and
//! conjoin the predictions into the UIR, `Ru = ∧ Ri`.
//!
//! Budget accounting: `B = ks + Δ` is the per-subspace-group labelling
//! budget, matching the paper's "support-set size reflects the budget"
//! convention; conjunctive subspaces form one group (§V-D footnote 8).

use crate::config::LteConfig;
use crate::context::SubspaceContext;
use crate::explore::{finish_round, prepare_round, ExploreOutcome, Variant};
use crate::feature::expansion_degree;
use crate::meta_learner::MetaLearner;
use crate::meta_task::generate_task_set;
use crate::metrics::ConfusionMatrix;
use crate::oracle::{ConjunctiveOracle, RegionOracle};
use crate::uis::{generate_uis, UisMode};
use lte_data::rng::{derive_seed, seeded};
use lte_data::subspace::Subspace;
use lte_data::table::Table;
use std::time::Instant;

/// Timing and quality report of the offline phase.
#[derive(Debug, Clone)]
pub struct OfflineReport {
    /// Seconds spent generating meta-tasks (all subspaces).
    pub task_gen_seconds: f64,
    /// Seconds spent meta-training (all subspaces).
    pub train_seconds: f64,
    /// Meta-tasks generated per subspace (`|TM|`).
    pub tasks_per_subspace: usize,
    /// Final per-subspace mean query loss after training.
    pub final_query_loss: Vec<f64>,
}

/// Result of one online UIR exploration.
#[derive(Debug, Clone)]
pub struct UirOutcome {
    /// Confusion matrix of conjunctive UIR prediction over the pool.
    pub confusion: ConfusionMatrix,
    /// Per-subspace UIS F1 scores.
    pub per_subspace_f1: Vec<f64>,
    /// Total online seconds (adaptation + prediction, all subspaces).
    pub online_seconds: f64,
    /// Per-subspace-group labels consumed (`B = ks + Δ`).
    pub labels_used: usize,
    /// Per-subspace exploration outcomes (scores, labels, timing).
    pub subspace_outcomes: Vec<ExploreOutcome>,
}

impl UirOutcome {
    /// Conjunctive UIR F1.
    pub fn f1(&self) -> f64 {
        self.confusion.f1()
    }

    /// Conjunctive prediction per pool row (AND over subspaces, after any
    /// Meta* revision).
    pub fn uir_predictions(&self) -> Vec<bool> {
        let n = self
            .subspace_outcomes
            .first()
            .map_or(0, |o| o.predictions.len());
        let mut pred = vec![true; n];
        for sub in &self.subspace_outcomes {
            for (p, &s) in pred.iter_mut().zip(&sub.predictions) {
                *p &= s;
            }
        }
        pred
    }

    /// Final retrieval (§III-B "Other IDE Modules" 3): pool indices ranked
    /// by conjunctive confidence — the *minimum* subspace probability, the
    /// natural conjunction of per-subspace beliefs. `k = None` returns the
    /// full ranking.
    pub fn ranked_retrieval(&self, k: Option<usize>) -> Vec<(usize, f64)> {
        let n = self.subspace_outcomes.first().map_or(0, |o| o.scores.len());
        let mut scored: Vec<(usize, f64)> = (0..n)
            .map(|i| {
                let conf = self
                    .subspace_outcomes
                    .iter()
                    .map(|o| sigmoid(o.scores[i]))
                    .fold(1.0f64, f64::min);
                (i, conf)
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        if let Some(k) = k {
            scored.truncate(k);
        }
        scored
    }
}

fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// A retrieval pool preprocessed once per pipeline: for every subspace, the
/// projected raw rows (what `Meta*`'s geometric revision reads) and their
/// encoded feature vectors (what the classifier scores).
///
/// Projection and encoding are pure functions of the pipeline's contexts,
/// so one `EncodedPool` can be shared by any number of sessions exploring
/// the same pool — the serving engine caches one per (dataset shard,
/// pipeline epoch) and stops re-encoding the pool per session per round,
/// which is where most of the per-session online cost goes.
#[derive(Debug, Clone)]
pub struct EncodedPool {
    proj: Vec<Vec<Vec<f64>>>,
    encoded: Vec<Vec<Vec<f64>>>,
    rows: usize,
}

impl EncodedPool {
    /// Number of pool rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Projected raw rows of one subspace.
    pub fn proj(&self, subspace: usize) -> &[Vec<f64>] {
        &self.proj[subspace]
    }

    /// Encoded feature rows of one subspace.
    pub fn encoded(&self, subspace: usize) -> &[Vec<f64>] {
        &self.encoded[subspace]
    }
}

/// The trained LTE system: one context + meta-learner per subspace.
#[derive(Debug, Clone)]
pub struct LtePipeline {
    config: LteConfig,
    subspaces: Vec<Subspace>,
    contexts: Vec<SubspaceContext>,
    learners: Vec<MetaLearner>,
}

impl LtePipeline {
    /// Reassemble a pipeline from persisted parts (see
    /// [`crate::persist`]).
    ///
    /// # Panics
    /// Panics when the part counts disagree.
    pub fn from_parts(
        config: LteConfig,
        subspaces: Vec<Subspace>,
        contexts: Vec<SubspaceContext>,
        learners: Vec<MetaLearner>,
    ) -> Self {
        assert_eq!(subspaces.len(), contexts.len(), "context count mismatch");
        assert_eq!(subspaces.len(), learners.len(), "learner count mismatch");
        Self {
            config,
            subspaces,
            contexts,
            learners,
        }
    }

    /// Run the full offline phase on `table` over the given subspace
    /// decomposition.
    pub fn offline(
        table: &Table,
        subspaces: Vec<Subspace>,
        config: LteConfig,
        seed: u64,
    ) -> (Self, OfflineReport) {
        assert!(!subspaces.is_empty(), "at least one subspace required");
        let mut contexts = Vec::with_capacity(subspaces.len());
        let mut learners = Vec::with_capacity(subspaces.len());
        let mut task_gen_seconds = 0.0;
        let mut train_seconds = 0.0;
        let mut final_query_loss = Vec::with_capacity(subspaces.len());

        for (i, sub) in subspaces.iter().enumerate() {
            let sub_seed = derive_seed(seed, i as u64);
            let ctx =
                SubspaceContext::build(table, sub.clone(), &config.task, &config.encoder, sub_seed);

            let l = expansion_degree(config.task.ku, config.net.expansion_frac);
            let t0 = Instant::now();
            let tasks = generate_task_set(
                &ctx,
                &config.task,
                l,
                config.train.n_tasks,
                &mut seeded(derive_seed(sub_seed, 1)),
            );
            task_gen_seconds += t0.elapsed().as_secs_f64();

            let mut learner = MetaLearner::new(
                config.task.ku.min(ctx.cu().len()),
                ctx.feature_width(),
                &config.net,
                config.train.clone(),
                derive_seed(sub_seed, 2),
            );
            let t0 = Instant::now();
            let report = learner.train(&tasks);
            train_seconds += t0.elapsed().as_secs_f64();
            final_query_loss.push(report.epoch_query_loss.last().copied().unwrap_or(f64::NAN));

            contexts.push(ctx);
            learners.push(learner);
        }

        let report = OfflineReport {
            task_gen_seconds,
            train_seconds,
            tasks_per_subspace: config.train.n_tasks,
            final_query_loss,
        };
        (
            Self {
                config,
                subspaces,
                contexts,
                learners,
            },
            report,
        )
    }

    /// The configuration in force.
    pub fn config(&self) -> &LteConfig {
        &self.config
    }

    /// Override the online-exploration parameters (adaptation steps /
    /// learning rate) without retraining — used by the Fig. 8(d) online
    /// learning-rate sweep.
    pub fn set_online(&mut self, online: crate::config::OnlineConfig) {
        self.config.online = online;
    }

    /// The subspace decomposition.
    pub fn subspaces(&self) -> &[Subspace] {
        &self.subspaces
    }

    /// Per-subspace offline contexts.
    pub fn contexts(&self) -> &[SubspaceContext] {
        &self.contexts
    }

    /// Per-subspace meta-learners.
    pub fn learners(&self) -> &[MetaLearner] {
        &self.learners
    }

    /// Generate a ground-truth UIR: one simulated UIS per subspace, in the
    /// given mode, rejected until its selectivity over the subspace sample
    /// lies within `(min_sel, max_sel)` — degenerate test regions make F1
    /// meaningless. Returns the conjunctive oracle.
    pub fn generate_truth(
        &self,
        mode: UisMode,
        seed: u64,
        min_sel: f64,
        max_sel: f64,
    ) -> ConjunctiveOracle {
        let mut parts = Vec::with_capacity(self.contexts.len());
        for (i, ctx) in self.contexts.iter().enumerate() {
            let mut rng = seeded(derive_seed(seed, 1000 + i as u64));
            let mut region = generate_uis(ctx.cu(), ctx.pu(), mode, &mut rng);
            let mut tries = 0;
            while tries < 100 {
                let sel = region.selectivity(ctx.sample_rows());
                if sel > min_sel && sel < max_sel {
                    break;
                }
                region = generate_uis(ctx.cu(), ctx.pu(), mode, &mut rng);
                tries += 1;
            }
            parts.push((self.subspaces[i].clone(), region));
        }
        ConjunctiveOracle::new(parts)
    }

    /// Project and encode a retrieval pool once for every subspace, so the
    /// result can be shared across sessions (see [`EncodedPool`]).
    pub fn encode_pool(&self, eval_rows: &[Vec<f64>]) -> EncodedPool {
        let mut proj = Vec::with_capacity(self.subspaces.len());
        let mut encoded = Vec::with_capacity(self.subspaces.len());
        for (sub, ctx) in self.subspaces.iter().zip(&self.contexts) {
            let p: Vec<Vec<f64>> = eval_rows.iter().map(|r| sub.project_row(r)).collect();
            let e: Vec<Vec<f64>> = p.iter().map(|row| ctx.encode(row)).collect();
            proj.push(p);
            encoded.push(e);
        }
        EncodedPool {
            proj,
            encoded,
            rows: eval_rows.len(),
        }
    }

    /// Online exploration of a UIR defined by per-subspace ground-truth
    /// regions (in pipeline subspace order), evaluated on `eval_rows`
    /// (full-space tuples).
    pub fn explore(
        &self,
        truth: &ConjunctiveOracle,
        eval_rows: &[Vec<f64>],
        variant: Variant,
        seed: u64,
    ) -> UirOutcome {
        self.explore_with_pool(
            truth,
            eval_rows,
            &self.encode_pool(eval_rows),
            variant,
            seed,
        )
    }

    /// [`LtePipeline::explore`] against a pre-encoded pool — callers that
    /// run many sessions over the same `eval_rows` (the serving engine)
    /// build the [`EncodedPool`] once and skip the per-session projection
    /// and encoding passes. Outcomes are bit-identical to
    /// [`LtePipeline::explore`]: projection and encoding are pure, and the
    /// per-round seed stream (`derive_seed(seed, 2000 + i)`) is unchanged.
    ///
    /// # Panics
    /// Panics when `pool` was built from different rows than `eval_rows`
    /// (length check) or the truth's subspaces disagree with the pipeline.
    pub fn explore_with_pool(
        &self,
        truth: &ConjunctiveOracle,
        eval_rows: &[Vec<f64>],
        pool: &EncodedPool,
        variant: Variant,
        seed: u64,
    ) -> UirOutcome {
        assert_eq!(
            truth.parts().len(),
            self.subspaces.len(),
            "one ground-truth region per subspace required"
        );
        assert_eq!(pool.rows(), eval_rows.len(), "pool/eval row count mismatch");
        let mut subspace_outcomes = Vec::with_capacity(self.subspaces.len());
        let mut per_subspace_f1 = Vec::with_capacity(self.subspaces.len());
        let mut online_seconds = 0.0;

        // Conjunctive predictions start all-true and are AND-ed per subspace.
        let mut uir_pred = vec![true; eval_rows.len()];

        for (i, ctx) in self.contexts.iter().enumerate() {
            let (sub, region) = &truth.parts()[i];
            debug_assert_eq!(sub, &self.subspaces[i]);
            let oracle = RegionOracle::new(region.clone());

            let learner = match variant {
                Variant::Basic => None,
                _ => Some(&self.learners[i]),
            };
            let prepared = prepare_round(
                ctx,
                learner,
                &oracle,
                &self.config,
                variant,
                derive_seed(seed, 2000 + i as u64),
            );
            let t0 = Instant::now();
            let scores = prepared.classifier.score_pool(
                &prepared.v_r,
                pool.encoded(i),
                self.config.online.precision,
            );
            let score_seconds = t0.elapsed().as_secs_f64();
            let outcome = finish_round(
                ctx,
                prepared,
                pool.proj(i),
                scores,
                &self.config,
                variant,
                score_seconds,
            );
            online_seconds += outcome.online_seconds;

            let sub_confusion = ConfusionMatrix::from_pairs(
                outcome
                    .predictions
                    .iter()
                    .zip(pool.proj(i))
                    .map(|(&pred, row)| (pred, region.contains(row))),
            );
            per_subspace_f1.push(sub_confusion.f1());

            for (pred, sub_pred) in uir_pred.iter_mut().zip(&outcome.predictions) {
                *pred &= sub_pred;
            }
            subspace_outcomes.push(outcome);
        }

        let confusion = ConfusionMatrix::from_pairs(
            uir_pred
                .iter()
                .zip(eval_rows)
                .map(|(&pred, row)| (pred, truth.label(row))),
        );

        UirOutcome {
            confusion,
            per_subspace_f1,
            online_seconds,
            labels_used: self.config.budget(),
            subspace_outcomes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lte_data::generator::generate_sdss;
    use lte_data::subspace::decompose_sequential;

    fn small_pipeline() -> (LtePipeline, OfflineReport, Table) {
        let table = generate_sdss(3000, 0);
        let mut cfg = LteConfig::reduced();
        cfg.train.n_tasks = 100;
        let subspaces = decompose_sequential(4, 2);
        let (p, r) = LtePipeline::offline(&table, subspaces, cfg, 77);
        (p, r, table)
    }

    #[test]
    fn offline_builds_one_learner_per_subspace() {
        let (p, report, _) = small_pipeline();
        assert_eq!(p.contexts().len(), 2);
        assert_eq!(p.learners().len(), 2);
        assert_eq!(report.final_query_loss.len(), 2);
        assert!(report.task_gen_seconds > 0.0);
        assert!(report.train_seconds > 0.0);
        assert!(report.final_query_loss.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn truth_generation_respects_selectivity_bounds() {
        let (p, _, _) = small_pipeline();
        let truth = p.generate_truth(UisMode::new(4, 10), 5, 0.2, 0.9);
        assert_eq!(truth.parts().len(), 2);
        for (i, (_, region)) in truth.parts().iter().enumerate() {
            let sel = region.selectivity(p.contexts()[i].sample_rows());
            assert!(sel > 0.15 && sel < 0.95, "subspace {i} selectivity {sel}");
        }
    }

    #[test]
    fn explore_produces_conjunctive_predictions() {
        let (p, _, table) = small_pipeline();
        let truth = p.generate_truth(UisMode::new(4, 10), 6, 0.25, 0.9);
        let eval: Vec<Vec<f64>> = (0..600).map(|i| table.row(i).unwrap()).collect();
        let outcome = p.explore(&truth, &eval, Variant::Meta, 9);
        assert_eq!(outcome.per_subspace_f1.len(), 2);
        assert_eq!(outcome.confusion.total(), 600);
        assert_eq!(outcome.labels_used, p.config().budget());
        assert!(outcome.online_seconds > 0.0);
        // Conjunctive prediction can never exceed any single subspace's
        // positive count.
        let conj_pos = outcome.confusion.tp + outcome.confusion.fp;
        for sub in &outcome.subspace_outcomes {
            let sub_pos = sub.predictions.iter().filter(|&&b| b).count();
            assert!(conj_pos <= sub_pos);
        }
    }

    #[test]
    fn ranked_retrieval_orders_by_conjunctive_confidence() {
        let (p, _, table) = small_pipeline();
        let truth = p.generate_truth(UisMode::new(4, 10), 8, 0.25, 0.9);
        let eval: Vec<Vec<f64>> = (0..200).map(|i| table.row(i).unwrap()).collect();
        let outcome = p.explore(&truth, &eval, Variant::Meta, 12);

        let ranked = outcome.ranked_retrieval(None);
        assert_eq!(ranked.len(), 200);
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1, "ranking must be non-increasing");
        }
        for (_, conf) in &ranked {
            assert!((0.0..=1.0).contains(conf));
        }
        let top5 = outcome.ranked_retrieval(Some(5));
        assert_eq!(top5.len(), 5);
        assert_eq!(top5[0], ranked[0]);

        // Conjunctive predictions match the confusion matrix totals.
        let preds = outcome.uir_predictions();
        let positives = preds.iter().filter(|&&b| b).count();
        assert_eq!(positives, outcome.confusion.tp + outcome.confusion.fp);
    }

    #[test]
    fn meta_star_runs_end_to_end() {
        let (p, _, table) = small_pipeline();
        let truth = p.generate_truth(UisMode::new(4, 10), 7, 0.25, 0.9);
        let eval: Vec<Vec<f64>> = (0..300).map(|i| table.row(i).unwrap()).collect();
        let outcome = p.explore(&truth, &eval, Variant::MetaStar, 10);
        assert!(outcome.f1().is_finite());
    }

    #[test]
    #[should_panic(expected = "at least one subspace")]
    fn empty_subspaces_panics() {
        let table = generate_sdss(500, 0);
        LtePipeline::offline(&table, vec![], LteConfig::reduced(), 0);
    }
}
