//! Simulated-analyst sessions: behavior configs and behavioral exploration.
//!
//! The paper evaluates against perfectly steady oracles; real analysts
//! shift focus, mislabel, and abandon mid-session (Saha et al., see
//! PAPERS.md). This module turns a [`crate::oracle::BehaviorOracle`]
//! description into a full exploration session over a trained
//! [`LtePipeline`]: [`BehaviorConfig`] says *how* an analyst behaves,
//! [`DriftSpec`] says how their interest region moves, and
//! [`explore_behavioral`] runs the session round by round — the unit the
//! serving-layer scenario mixer composes into traffic.
//!
//! Determinism contract: with [`BehaviorConfig::steady`], a behavioral
//! session reproduces [`LtePipeline::explore`] exactly (same per-subspace
//! seed stream `derive_seed(seed, 2000 + i)`), so scenario results are
//! comparable to the static-oracle figures.

use crate::drift::DriftReport;
use crate::explore::{explore_subspace, ExploreOutcome, Variant};
use crate::metrics::ConfusionMatrix;
use crate::oracle::{BehaviorOracle, Cadence, ConjunctiveOracle};
use crate::pipeline::LtePipeline;
use lte_data::rng::{derive_seed, seeded};
use lte_data::table::Table;
use lte_geom::RegionUnion;

/// When a mid-session interest shift takes effect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriftTrigger {
    /// At a fixed round index (0-based).
    AtRound(usize),
    /// At the given fraction of the session's total rounds (clamped to
    /// `[0, 1]`; e.g. `0.5` shifts halfway through).
    AtFraction(f64),
}

impl DriftTrigger {
    /// The concrete round the shift takes effect for a session of
    /// `total_rounds` rounds.
    pub fn resolve(&self, total_rounds: usize) -> usize {
        match self {
            DriftTrigger::AtRound(r) => *r,
            DriftTrigger::AtFraction(f) => {
                (f.clamp(0.0, 1.0) * total_rounds as f64).floor() as usize
            }
        }
    }
}

/// A mid-session interest-region shift: every per-subspace region is scaled
/// about its bounding-box center and translated by a fraction of its extent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftSpec {
    /// When the shift takes effect.
    pub trigger: DriftTrigger,
    /// Translation per dimension as a fraction of the region's extent
    /// (`0.5` moves the region by half its own width).
    pub translate_frac: f64,
    /// Scale factor about the region center (`1.0` = unchanged shape).
    pub scale: f64,
}

impl DriftSpec {
    /// True when the transform is the identity. Noop specs short-circuit to
    /// a clone so shift magnitude `0.0` degenerates to the original truth
    /// *bitwise* (floating-point transforms would not round-trip exactly).
    pub fn is_noop(&self) -> bool {
        self.translate_frac == 0.0 && self.scale == 1.0
    }

    /// Apply the shift to one region.
    pub fn apply(&self, region: &RegionUnion) -> RegionUnion {
        if self.is_noop() {
            return region.clone();
        }
        let Some(bb) = region.aabb() else {
            return region.clone();
        };
        let offset: Vec<f64> = bb
            .lo()
            .iter()
            .zip(bb.hi())
            .map(|(lo, hi)| (hi - lo) * self.translate_frac)
            .collect();
        region
            .scale_about(&bb.center(), self.scale)
            .translate(&offset)
    }

    /// Apply the shift to every part of a conjunctive ground truth.
    pub fn shift_truth(&self, truth: &ConjunctiveOracle) -> ConjunctiveOracle {
        ConjunctiveOracle::new(
            truth
                .parts()
                .iter()
                .map(|(sub, region)| (sub.clone(), self.apply(region)))
                .collect(),
        )
    }
}

/// How one simulated analyst behaves across a session.
#[derive(Debug, Clone, PartialEq)]
pub struct BehaviorConfig {
    /// Per-label flip probability.
    pub noise: f64,
    /// Optional mid-session interest shift.
    pub drift: Option<DriftSpec>,
    /// Abandon before round `k` (0-based); `None` = finishes the session.
    pub abandon_after: Option<usize>,
    /// Round cadence (simulated think time).
    pub cadence: Cadence,
}

impl BehaviorConfig {
    /// The ideal analyst the static figures assume: no noise, no drift,
    /// finishes every round instantly. Behaviorally identical to
    /// [`LtePipeline::explore`].
    pub fn steady() -> Self {
        Self {
            noise: 0.0,
            drift: None,
            abandon_after: None,
            cadence: Cadence::instant(),
        }
    }

    /// An analyst whose interest shifts halfway through the session
    /// (moderate translation + slight widening) with light label noise.
    pub fn drifter() -> Self {
        Self {
            noise: 0.05,
            drift: Some(DriftSpec {
                trigger: DriftTrigger::AtFraction(0.5),
                translate_frac: 0.35,
                scale: 1.25,
            }),
            abandon_after: None,
            cadence: Cadence::Steady { think_seconds: 2.0 },
        }
    }

    /// A noisy analyst who abandons after the first round, labelling in
    /// fast bursts with long pauses.
    pub fn churner() -> Self {
        Self {
            noise: 0.15,
            drift: None,
            abandon_after: Some(1),
            cadence: Cadence::Bursty {
                burst_len: 2,
                within_seconds: 0.5,
                pause_seconds: 20.0,
            },
        }
    }

    /// Build the session's [`BehaviorOracle`] for a ground truth and
    /// session length.
    pub fn instantiate(
        &self,
        truth: ConjunctiveOracle,
        total_rounds: usize,
        seed: u64,
    ) -> BehaviorOracle {
        let mut analyst = BehaviorOracle::new(truth, seed)
            .with_noise(self.noise)
            .with_cadence(self.cadence.clone());
        if let Some(spec) = &self.drift {
            let at = spec.trigger.resolve(total_rounds);
            let shifted = spec.shift_truth(analyst.truth_at(0));
            analyst = analyst.with_shift(at, shifted);
        }
        if let Some(k) = self.abandon_after {
            analyst = analyst.with_abandonment(k);
        }
        analyst
    }
}

/// Result of one behavioral exploration session.
#[derive(Debug, Clone)]
pub struct BehavioralOutcome {
    /// Confusion of the conjunctive prediction (over the subspaces actually
    /// explored) against the truth the analyst *ended* the session with.
    pub confusion: ConfusionMatrix,
    /// Per-explored-subspace F1 against the truth in force that round.
    pub per_subspace_f1: Vec<f64>,
    /// Running conjunctive F1 after each round, against that round's truth.
    pub f1_by_round: Vec<f64>,
    /// Measured compute seconds (adaptation + prediction).
    pub online_seconds: f64,
    /// Simulated analyst think seconds (deterministic; never slept on).
    pub think_seconds: f64,
    /// Labels actually drawn from the analyst across all rounds.
    pub labels_used: usize,
    /// Rounds completed (`< total` when the analyst abandoned).
    pub rounds_run: usize,
    /// True when the analyst quit before exploring every subspace.
    pub abandoned: bool,
    /// True when the interest region shifted during an executed round.
    pub drifted: bool,
    /// Per-round exploration outcomes.
    pub subspace_outcomes: Vec<ExploreOutcome>,
}

impl BehavioralOutcome {
    /// Final conjunctive F1.
    pub fn f1(&self) -> f64 {
        self.confusion.f1()
    }

    /// First round (1-based count) after which the running F1 reached
    /// `threshold`, if any — the scenario layer's rounds-to-convergence.
    pub fn rounds_to_convergence(&self, threshold: f64) -> Option<usize> {
        self.f1_by_round
            .iter()
            .position(|&f| f >= threshold)
            .map(|i| i + 1)
    }
}

/// Run one simulated-analyst session over a trained pipeline.
///
/// Mirrors [`LtePipeline::explore`] round by round — same per-subspace seed
/// stream — but labels flow through the analyst (noise + current truth),
/// rounds stop at abandonment, and simulated think time accumulates.
pub fn explore_behavioral(
    pipeline: &LtePipeline,
    truth: &ConjunctiveOracle,
    behavior: &BehaviorConfig,
    eval_rows: &[Vec<f64>],
    variant: Variant,
    seed: u64,
) -> BehavioralOutcome {
    assert_eq!(
        truth.parts().len(),
        pipeline.subspaces().len(),
        "one ground-truth region per subspace required"
    );
    let total_rounds = pipeline.subspaces().len();
    let analyst = behavior.instantiate(truth.clone(), total_rounds, seed);

    let mut subspace_outcomes = Vec::with_capacity(total_rounds);
    let mut per_subspace_f1 = Vec::with_capacity(total_rounds);
    let mut f1_by_round = Vec::with_capacity(total_rounds);
    let mut online_seconds = 0.0;
    let mut think_seconds = 0.0;
    let mut labels_used = 0usize;
    let mut rounds_run = 0usize;
    let mut uir_pred = vec![true; eval_rows.len()];

    for (i, ctx) in pipeline.contexts().iter().enumerate() {
        if !analyst.begin_round(i) {
            break;
        }
        think_seconds += analyst.think_before_round(i);

        let sub = &pipeline.subspaces()[i];
        let proj: Vec<Vec<f64>> = eval_rows.iter().map(|r| sub.project_row(r)).collect();
        let view = analyst.subspace_view(i);
        let learner = match variant {
            Variant::Basic => None,
            _ => Some(&pipeline.learners()[i]),
        };

        let labels_before = analyst.labels_emitted();
        let outcome = explore_subspace(
            ctx,
            learner,
            &view,
            &proj,
            pipeline.config(),
            variant,
            derive_seed(seed, 2000 + i as u64),
        );
        labels_used += (analyst.labels_emitted() - labels_before) as usize;
        online_seconds += outcome.online_seconds;

        // Judge this round against the truth the analyst holds *now*.
        let round_truth = analyst.truth_at(i);
        let region = &round_truth.parts()[i].1;
        let sub_confusion = ConfusionMatrix::from_pairs(
            outcome
                .predictions
                .iter()
                .zip(&proj)
                .map(|(&pred, row)| (pred, region.contains(row))),
        );
        per_subspace_f1.push(sub_confusion.f1());

        for (pred, sub_pred) in uir_pred.iter_mut().zip(&outcome.predictions) {
            *pred &= sub_pred;
        }
        let running = ConfusionMatrix::from_pairs(
            uir_pred
                .iter()
                .zip(eval_rows)
                .map(|(&pred, row)| (pred, round_truth.label(row))),
        );
        f1_by_round.push(running.f1());

        subspace_outcomes.push(outcome);
        rounds_run = i + 1;
    }

    let abandoned = rounds_run < total_rounds;
    let drifted = analyst.shift_round().is_some_and(|at| rounds_run > at);
    let final_truth = analyst.final_truth(rounds_run.max(1));
    let confusion = ConfusionMatrix::from_pairs(
        uir_pred
            .iter()
            .zip(eval_rows)
            .map(|(&pred, row)| (pred, final_truth.label(row))),
    );

    BehavioralOutcome {
        confusion,
        per_subspace_f1,
        f1_by_round,
        online_seconds,
        think_seconds,
        labels_used,
        rounds_run,
        abandoned,
        drifted,
        subspace_outcomes,
    }
}

/// Probe every subspace context of a pipeline against (possibly updated)
/// table data — the `probe_drift`-triggered seam: a serving layer can run
/// this between rounds and rebuild whichever contexts report stale.
pub fn probe_session_drift(
    pipeline: &LtePipeline,
    table: &Table,
    fresh_n: usize,
    seed: u64,
) -> Vec<DriftReport> {
    pipeline
        .contexts()
        .iter()
        .enumerate()
        .map(|(i, ctx)| {
            crate::drift::probe_drift(
                ctx,
                table,
                fresh_n,
                &mut seeded(derive_seed(seed, i as u64)),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LteConfig;
    use crate::uis::UisMode;
    use lte_data::generator::generate_sdss;
    use lte_data::subspace::decompose_sequential;
    use lte_geom::Region;

    fn tiny_pipeline() -> (LtePipeline, Table) {
        let table = generate_sdss(3000, 0);
        let mut cfg = LteConfig::reduced();
        cfg.train.n_tasks = 60;
        cfg.train.epochs = 1;
        let subspaces = decompose_sequential(4, 2);
        let (p, _) = LtePipeline::offline(&table, subspaces, cfg, 11);
        (p, table)
    }

    fn square_union(x0: f64, y0: f64, x1: f64, y1: f64) -> RegionUnion {
        RegionUnion::new(vec![Region::Box(lte_geom::Aabb::new(
            vec![x0, y0],
            vec![x1, y1],
        ))])
    }

    #[test]
    fn trigger_resolution() {
        assert_eq!(DriftTrigger::AtRound(3).resolve(10), 3);
        assert_eq!(DriftTrigger::AtFraction(0.5).resolve(10), 5);
        assert_eq!(DriftTrigger::AtFraction(0.0).resolve(10), 0);
        assert_eq!(DriftTrigger::AtFraction(1.0).resolve(10), 10);
        assert_eq!(DriftTrigger::AtFraction(2.0).resolve(10), 10, "clamped");
    }

    #[test]
    fn noop_drift_is_bitwise_identity() {
        let region = square_union(0.25, 0.25, 0.75, 0.75);
        let spec = DriftSpec {
            trigger: DriftTrigger::AtRound(0),
            translate_frac: 0.0,
            scale: 1.0,
        };
        assert!(spec.is_noop());
        assert_eq!(spec.apply(&region), region);
    }

    #[test]
    fn drift_translates_by_extent_fraction() {
        let region = square_union(0.0, 0.0, 2.0, 2.0);
        let spec = DriftSpec {
            trigger: DriftTrigger::AtRound(0),
            translate_frac: 0.5,
            scale: 1.0,
        };
        let moved = spec.apply(&region);
        // Extent 2, half-extent translation: [1,3]×[1,3].
        assert!(moved.contains(&[1.5, 1.5]));
        assert!(moved.contains(&[2.9, 2.9]));
        assert!(!moved.contains(&[0.5, 0.5]));
    }

    #[test]
    fn behavioral_steady_matches_pipeline_explore() {
        let (p, table) = tiny_pipeline();
        let truth = p.generate_truth(UisMode::new(4, 10), 6, 0.25, 0.9);
        let eval: Vec<Vec<f64>> = (0..250).map(|i| table.row(i).unwrap()).collect();

        let reference = p.explore(&truth, &eval, Variant::Meta, 9);
        let behavioral = explore_behavioral(
            &p,
            &truth,
            &BehaviorConfig::steady(),
            &eval,
            Variant::Meta,
            9,
        );

        // Same seed stream + transparent oracle ⇒ identical predictions,
        // scores, and metrics (timing aside).
        assert!(!behavioral.abandoned);
        assert!(!behavioral.drifted);
        assert_eq!(behavioral.think_seconds, 0.0);
        assert_eq!(behavioral.rounds_run, 2);
        assert_eq!(behavioral.confusion, reference.confusion);
        assert_eq!(behavioral.per_subspace_f1, reference.per_subspace_f1);
        for (b, r) in behavioral
            .subspace_outcomes
            .iter()
            .zip(&reference.subspace_outcomes)
        {
            assert_eq!(b.predictions, r.predictions);
            let same_scores = b
                .scores
                .iter()
                .zip(&r.scores)
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same_scores, "score streams diverged");
        }
    }

    #[test]
    fn behavioral_abandonment_truncates_the_session() {
        let (p, table) = tiny_pipeline();
        let truth = p.generate_truth(UisMode::new(4, 10), 6, 0.25, 0.9);
        let eval: Vec<Vec<f64>> = (0..250).map(|i| table.row(i).unwrap()).collect();

        let mut cfg = BehaviorConfig::steady();
        cfg.abandon_after = Some(1);
        let outcome = explore_behavioral(&p, &truth, &cfg, &eval, Variant::Meta, 9);
        assert!(outcome.abandoned);
        assert_eq!(outcome.rounds_run, 1);
        assert_eq!(outcome.subspace_outcomes.len(), 1);
        assert_eq!(outcome.f1_by_round.len(), 1);

        // The one round it did run is identical to the steady session's.
        let full = explore_behavioral(
            &p,
            &truth,
            &BehaviorConfig::steady(),
            &eval,
            Variant::Meta,
            9,
        );
        assert_eq!(
            outcome.subspace_outcomes[0].predictions,
            full.subspace_outcomes[0].predictions
        );
    }

    #[test]
    fn behavioral_drift_is_flagged_and_changes_the_target() {
        let (p, table) = tiny_pipeline();
        let truth = p.generate_truth(UisMode::new(4, 10), 6, 0.25, 0.9);
        let eval: Vec<Vec<f64>> = (0..250).map(|i| table.row(i).unwrap()).collect();

        let cfg = BehaviorConfig {
            noise: 0.0,
            drift: Some(DriftSpec {
                trigger: DriftTrigger::AtRound(1),
                translate_frac: 0.5,
                scale: 1.0,
            }),
            abandon_after: None,
            cadence: Cadence::instant(),
        };
        let outcome = explore_behavioral(&p, &truth, &cfg, &eval, Variant::Meta, 9);
        assert!(outcome.drifted);
        assert_eq!(outcome.rounds_run, 2);

        // Round 0 ran before the shift, so it matches the steady session;
        // the shifted truth differs from the original on some eval row.
        let steady = explore_behavioral(
            &p,
            &truth,
            &BehaviorConfig::steady(),
            &eval,
            Variant::Meta,
            9,
        );
        assert_eq!(
            outcome.subspace_outcomes[0].predictions,
            steady.subspace_outcomes[0].predictions
        );
        let shifted = cfg.drift.unwrap().shift_truth(&truth);
        let differs = eval.iter().any(|r| shifted.label(r) != truth.label(r));
        assert!(differs, "a half-extent shift must move some labels");
    }

    #[test]
    fn rounds_to_convergence_reads_the_f1_trace() {
        let outcome = BehavioralOutcome {
            confusion: ConfusionMatrix::from_pairs(std::iter::empty::<(bool, bool)>()),
            per_subspace_f1: vec![],
            f1_by_round: vec![0.3, 0.6, 0.9],
            online_seconds: 0.0,
            think_seconds: 0.0,
            labels_used: 0,
            rounds_run: 3,
            abandoned: false,
            drifted: false,
            subspace_outcomes: vec![],
        };
        assert_eq!(outcome.rounds_to_convergence(0.5), Some(2));
        assert_eq!(outcome.rounds_to_convergence(0.95), None);
    }

    #[test]
    fn probe_session_drift_covers_every_subspace() {
        let (p, table) = tiny_pipeline();
        let reports = probe_session_drift(&p, &table, 300, 4);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(
                !r.is_stale(
                    crate::drift::DEFAULT_MAX_SHIFT,
                    crate::drift::DEFAULT_MAX_RATIO
                ),
                "unchanged data must not look stale: {r:?}"
            );
        }
    }
}
