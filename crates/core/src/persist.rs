//! Model persistence: save a trained [`LtePipeline`] to disk and load it
//! back, byte-for-byte reproducible.
//!
//! The offline phase is the expensive part of LTE (minutes to hours of
//! meta-training at paper scale); a deployable system trains once and
//! serves many users. This module provides a small, dependency-free,
//! versioned binary format covering everything the online phase needs:
//! the configuration, per-subspace contexts (cluster centers + fitted
//! encoders; proximity matrices are recomputed on load), and per-subspace
//! meta-learners (φ parameters + memories).
//!
//! The format is little-endian with a `LTEP` magic and a version byte;
//! loading validates structure and fails with a descriptive
//! [`PersistError`] instead of panicking on corrupt input.

use crate::config::{
    LteConfig, MetaTaskConfig, NetConfig, OnlineConfig, RefineConfig, ScoringPrecision, TrainConfig,
};
use crate::context::SubspaceContext;
use crate::memory::Memories;
use crate::meta_learner::MetaLearner;
use crate::pipeline::LtePipeline;
use crate::uis::UisMode;
use lte_data::schema::Attribute;
use lte_data::subspace::Subspace;
use lte_nn::Matrix;
use lte_preprocess::gmm::{Component, Gmm};
use lte_preprocess::{AttributeEncoder, EncoderConfig, EncoderKind, JenksBreaks, TableEncoder};
use std::fs;
use std::path::Path;

const MAGIC: &[u8; 4] = b"LTEP";
// v1: initial format. v2: OnlineConfig grew the scoring-precision knob
// (v1 files load with the precision defaulted to `Exact`, the v1-era
// behavior). v3: the precision byte gained the `Ranked` value (2); v2
// files still decode with their original two-value alphabet.
const MIN_VERSION: u8 = 1;
const VERSION: u8 = 3;

/// Errors from saving/loading pipelines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// I/O failure (message form).
    Io(String),
    /// Input does not start with the `LTEP` magic.
    BadMagic,
    /// Format version this build cannot read: 0, or newer than
    /// [`FORMAT_VERSION`] (decoding a future layout with today's field
    /// order would misparse silently, so it is refused up front).
    UnsupportedVersion(u8),
    /// Truncated or structurally invalid payload.
    Corrupt(&'static str),
}

/// The newest LTEP format version this build writes and reads. Older
/// versions back to v1 still load, with absent knobs defaulted.
pub const FORMAT_VERSION: u8 = VERSION;

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::BadMagic => write!(f, "not an LTE pipeline file"),
            PersistError::UnsupportedVersion(v) => write!(
                f,
                "unsupported format version {v} (this build reads versions \
                 {MIN_VERSION} through {VERSION})"
            ),
            PersistError::Corrupt(what) => write!(f, "corrupt pipeline file: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

// ---------------------------------------------------------------- encoder

#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn f64s(&mut self, xs: &[f64]) {
        self.usize(xs.len());
        for &x in xs {
            self.f64(x);
        }
    }
    fn usizes(&mut self, xs: &[usize]) {
        self.usize(xs.len());
        for &x in xs {
            self.usize(x);
        }
    }
    fn rows(&mut self, rows: &[Vec<f64>]) {
        self.usize(rows.len());
        for r in rows {
            self.f64s(r);
        }
    }
    fn matrix(&mut self, m: &Matrix) {
        self.usize(m.rows());
        self.usize(m.cols());
        for &v in m.data() {
            self.f64(v);
        }
    }
}

// ---------------------------------------------------------------- decoder

struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.pos + n > self.data.len() {
            return Err(PersistError::Corrupt("unexpected end of data"));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }
    fn u64(&mut self) -> Result<u64, PersistError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }
    fn usize(&mut self) -> Result<usize, PersistError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| PersistError::Corrupt("length overflow"))
    }
    fn len(&mut self, cap: usize, what: &'static str) -> Result<usize, PersistError> {
        let v = self.usize()?;
        if v > cap {
            return Err(PersistError::Corrupt(what));
        }
        Ok(v)
    }
    fn f64(&mut self) -> Result<f64, PersistError> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes(b.try_into().expect("8 bytes")))
    }
    fn bool(&mut self) -> Result<bool, PersistError> {
        Ok(self.u8()? != 0)
    }
    fn str(&mut self) -> Result<String, PersistError> {
        let n = self.len(1 << 20, "string too long")?;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| PersistError::Corrupt("invalid utf-8"))
    }
    fn f64s(&mut self) -> Result<Vec<f64>, PersistError> {
        let n = self.len(1 << 28, "vector too long")?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.f64()?);
        }
        Ok(v)
    }
    fn usizes(&mut self) -> Result<Vec<usize>, PersistError> {
        let n = self.len(1 << 20, "vector too long")?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.usize()?);
        }
        Ok(v)
    }
    fn rows(&mut self) -> Result<Vec<Vec<f64>>, PersistError> {
        let n = self.len(1 << 24, "too many rows")?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.f64s()?);
        }
        Ok(v)
    }
    fn matrix(&mut self) -> Result<Matrix, PersistError> {
        let rows = self.len(1 << 20, "matrix too tall")?;
        let cols = self.len(1 << 20, "matrix too wide")?;
        let n = rows
            .checked_mul(cols)
            .ok_or(PersistError::Corrupt("matrix size overflow"))?;
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(self.f64()?);
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }
}

// ----------------------------------------------------------- config codec

fn put_config(e: &mut Enc, c: &LteConfig, version: u8) {
    // MetaTaskConfig
    e.usize(c.task.ku);
    e.usize(c.task.ks);
    e.usize(c.task.kq);
    e.usize(c.task.delta);
    e.usize(c.task.mode.alpha);
    e.usize(c.task.mode.psi);
    e.f64(c.task.sample_fraction);
    e.usize(c.task.min_sample);
    e.usize(c.task.max_sample);
    e.usize(c.task.max_uis_retries);
    // NetConfig
    e.usize(c.net.ne);
    e.usize(c.net.clf_hidden);
    e.f64(c.net.expansion_frac);
    // TrainConfig
    e.usize(c.train.n_tasks);
    e.usize(c.train.epochs);
    e.usize(c.train.batch_size);
    e.usize(c.train.local_steps);
    e.f64(c.train.rho);
    e.f64(c.train.lambda);
    e.usize(c.train.m);
    e.f64(c.train.eta);
    e.f64(c.train.beta);
    e.f64(c.train.gamma);
    e.f64(c.train.sigma);
    e.bool(c.train.use_memories);
    e.f64(c.train.direct_weight);
    // RefineConfig
    e.f64(c.refine.nsup_frac);
    e.f64(c.refine.nsub_frac);
    // OnlineConfig
    e.usize(c.online.adapt_steps);
    e.f64(c.online.lr);
    e.usize(c.online.basic_steps);
    // The precision knob exists from v2 on; v1 had no byte here. The
    // `Ranked` value needs v3: a v2 writer downgrades it to `Fast` (the
    // nearest mode v2 readers understand — still a reduced-precision
    // ranking path), mirroring how v1 drops the knob entirely.
    if version >= 2 {
        e.u8(match c.online.precision {
            ScoringPrecision::Exact => 0,
            ScoringPrecision::Fast => 1,
            ScoringPrecision::Ranked => {
                if version >= 3 {
                    2
                } else {
                    1
                }
            }
        });
    }
    // EncoderConfig
    e.u8(match c.encoder.kind {
        EncoderKind::Auto => 0,
        EncoderKind::AllGmm => 1,
        EncoderKind::AllJkc => 2,
        EncoderKind::MinMax => 3,
    });
    e.usize(c.encoder.n_components);
    e.usize(c.encoder.n_intervals);
    e.f64(c.encoder.sample_fraction);
    e.usize(c.encoder.min_sample);
}

fn get_config(d: &mut Dec, version: u8) -> Result<LteConfig, PersistError> {
    let task = MetaTaskConfig {
        ku: d.usize()?,
        ks: d.usize()?,
        kq: d.usize()?,
        delta: d.usize()?,
        mode: {
            let alpha = d.usize()?;
            let psi = d.usize()?;
            if alpha == 0 || psi == 0 {
                return Err(PersistError::Corrupt("invalid UIS mode"));
            }
            UisMode::new(alpha, psi)
        },
        sample_fraction: d.f64()?,
        min_sample: d.usize()?,
        max_sample: d.usize()?,
        max_uis_retries: d.usize()?,
    };
    let net = NetConfig {
        ne: d.usize()?,
        clf_hidden: d.usize()?,
        expansion_frac: d.f64()?,
    };
    let train = TrainConfig {
        n_tasks: d.usize()?,
        epochs: d.usize()?,
        batch_size: d.usize()?,
        local_steps: d.usize()?,
        rho: d.f64()?,
        lambda: d.f64()?,
        m: d.usize()?,
        eta: d.f64()?,
        beta: d.f64()?,
        gamma: d.f64()?,
        sigma: d.f64()?,
        use_memories: d.bool()?,
        direct_weight: d.f64()?,
    };
    let refine = RefineConfig {
        nsup_frac: d.f64()?,
        nsub_frac: d.f64()?,
    };
    let online = OnlineConfig {
        adapt_steps: d.usize()?,
        lr: d.f64()?,
        basic_steps: d.usize()?,
        // v1 predates the precision knob: default to `Exact`, the only
        // behavior v1 files could have been written under. The `Ranked`
        // value (2) is part of the v3 alphabet only — in a v2 file it is
        // corruption, not a mode.
        precision: if version >= 2 {
            match d.u8()? {
                0 => ScoringPrecision::Exact,
                1 => ScoringPrecision::Fast,
                2 if version >= 3 => ScoringPrecision::Ranked,
                _ => return Err(PersistError::Corrupt("unknown scoring precision")),
            }
        } else {
            ScoringPrecision::Exact
        },
    };
    let encoder = EncoderConfig {
        kind: match d.u8()? {
            0 => EncoderKind::Auto,
            1 => EncoderKind::AllGmm,
            2 => EncoderKind::AllJkc,
            3 => EncoderKind::MinMax,
            _ => return Err(PersistError::Corrupt("unknown encoder kind")),
        },
        n_components: d.usize()?,
        n_intervals: d.usize()?,
        sample_fraction: d.f64()?,
        min_sample: d.usize()?,
    };
    Ok(LteConfig {
        task,
        net,
        train,
        refine,
        online,
        encoder,
    })
}

// ---------------------------------------------------------- encoder codec

fn put_attribute_encoder(e: &mut Enc, enc: &AttributeEncoder) {
    match enc {
        AttributeEncoder::Gmm(g) => {
            e.u8(0);
            e.usize(g.k());
            for c in g.components() {
                e.f64(c.weight);
                e.f64(c.mean);
                e.f64(c.std);
            }
        }
        AttributeEncoder::Jenks(j) => {
            e.u8(1);
            e.f64s(j.bounds());
        }
        AttributeEncoder::MinMax(attr) => {
            e.u8(2);
            e.str(&attr.name);
            e.f64(attr.lo);
            e.f64(attr.hi);
        }
    }
}

fn get_attribute_encoder(d: &mut Dec) -> Result<AttributeEncoder, PersistError> {
    Ok(match d.u8()? {
        0 => {
            let k = d.len(1 << 16, "too many GMM components")?;
            if k == 0 {
                return Err(PersistError::Corrupt("empty GMM"));
            }
            let mut comps = Vec::with_capacity(k);
            for _ in 0..k {
                comps.push(Component {
                    weight: d.f64()?,
                    mean: d.f64()?,
                    std: d.f64()?,
                });
            }
            AttributeEncoder::Gmm(Gmm::from_components(comps))
        }
        1 => {
            let bounds = d.f64s()?;
            if bounds.len() < 2 || bounds.windows(2).any(|w| w[0] > w[1]) {
                return Err(PersistError::Corrupt("invalid Jenks bounds"));
            }
            AttributeEncoder::Jenks(JenksBreaks::from_bounds(bounds))
        }
        2 => {
            let name = d.str()?;
            let lo = d.f64()?;
            let hi = d.f64()?;
            AttributeEncoder::MinMax(Attribute::new(name, lo, hi))
        }
        _ => return Err(PersistError::Corrupt("unknown attribute encoder")),
    })
}

// --------------------------------------------------------------- pipeline

/// Serialize a trained pipeline to bytes (current format version).
pub fn pipeline_to_bytes(p: &LtePipeline) -> Vec<u8> {
    pipeline_to_bytes_versioned(p, VERSION)
}

/// Serialize at an explicit (older) format version — used by the
/// version-gating tests to produce genuine v1 payloads.
fn pipeline_to_bytes_versioned(p: &LtePipeline, version: u8) -> Vec<u8> {
    assert!(
        (MIN_VERSION..=VERSION).contains(&version),
        "cannot write format version {version}"
    );
    let mut e = Enc::default();
    e.buf.extend_from_slice(MAGIC);
    e.u8(version);
    put_config(&mut e, p.config(), version);
    e.usize(p.subspaces().len());
    for i in 0..p.subspaces().len() {
        let ctx = &p.contexts()[i];
        let learner = &p.learners()[i];

        e.usizes(p.subspaces()[i].attr_indices());
        e.rows(ctx.sample_rows());
        e.rows(ctx.cu());
        e.rows(ctx.cs());
        e.rows(ctx.cq());
        e.usize(ctx.encoder().encoders().len());
        for enc in ctx.encoder().encoders() {
            put_attribute_encoder(&mut e, enc);
        }

        let arch = learner.arch();
        e.usize(arch.ku);
        e.usize(arch.nr);
        let (phi_r, phi_t, phi_clf) = learner.phi();
        e.f64s(phi_r);
        e.f64s(phi_t);
        e.f64s(phi_clf);
        match learner.memories() {
            Some(mem) => {
                e.bool(true);
                e.matrix(&mem.mvr);
                e.matrix(&mem.mr);
                e.usize(mem.mcp.len());
                for slice in &mem.mcp {
                    e.matrix(slice);
                }
            }
            None => e.bool(false),
        }
    }
    e.buf
}

/// Deserialize a pipeline from bytes.
pub fn pipeline_from_bytes(data: &[u8]) -> Result<LtePipeline, PersistError> {
    let mut d = Dec::new(data);
    if d.take(4)? != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = d.u8()?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let config = get_config(&mut d, version)?;
    let n_subspaces = d.len(1 << 12, "too many subspaces")?;
    if n_subspaces == 0 {
        return Err(PersistError::Corrupt("pipeline without subspaces"));
    }

    let mut subspaces = Vec::with_capacity(n_subspaces);
    let mut contexts = Vec::with_capacity(n_subspaces);
    let mut learners = Vec::with_capacity(n_subspaces);
    for _ in 0..n_subspaces {
        let attrs = d.usizes()?;
        let subspace = Subspace::new(attrs);
        let sample_rows = d.rows()?;
        let cu = d.rows()?;
        let cs = d.rows()?;
        let cq = d.rows()?;
        if cu.is_empty() || cs.is_empty() {
            return Err(PersistError::Corrupt("empty center sets"));
        }
        let n_encoders = d.len(1 << 12, "too many encoders")?;
        let mut encoders = Vec::with_capacity(n_encoders);
        for _ in 0..n_encoders {
            encoders.push(get_attribute_encoder(&mut d)?);
        }
        let encoder = TableEncoder::from_encoders(encoders);
        contexts.push(SubspaceContext::from_parts(
            subspace.clone(),
            sample_rows,
            cu,
            cs,
            cq,
            encoder,
        ));
        subspaces.push(subspace);

        let ku = d.usize()?;
        let nr = d.usize()?;
        let mut learner = MetaLearner::new(ku, nr, &config.net, config.train.clone(), 0);
        let phi_r = d.f64s()?;
        let phi_t = d.f64s()?;
        let phi_clf = d.f64s()?;
        let (er, et, ec) = learner.phi();
        if phi_r.len() != er.len() || phi_t.len() != et.len() || phi_clf.len() != ec.len() {
            return Err(PersistError::Corrupt("parameter shape mismatch"));
        }
        learner.set_phi(phi_r, phi_t, phi_clf);
        if d.bool()? {
            if !learner.has_memories() {
                return Err(PersistError::Corrupt("memories for memory-less config"));
            }
            let mvr = d.matrix()?;
            let mr = d.matrix()?;
            let n_slices = d.len(1 << 10, "too many memory modes")?;
            let mut mcp = Vec::with_capacity(n_slices);
            for _ in 0..n_slices {
                mcp.push(d.matrix()?);
            }
            let expected = learner.memories().expect("has memories");
            if mvr.rows() != expected.mvr.rows()
                || mvr.cols() != expected.mvr.cols()
                || mr.cols() != expected.mr.cols()
                || mcp.len() != expected.mcp.len()
            {
                return Err(PersistError::Corrupt("memory shape mismatch"));
            }
            learner.set_memories(Memories { mvr, mr, mcp });
        } else if learner.has_memories() {
            return Err(PersistError::Corrupt("missing memories"));
        }
        learners.push(learner);
    }
    if d.pos != data.len() {
        return Err(PersistError::Corrupt("trailing bytes"));
    }
    Ok(LtePipeline::from_parts(
        config, subspaces, contexts, learners,
    ))
}

/// Save a trained pipeline to a file.
pub fn save_pipeline(p: &LtePipeline, path: &Path) -> Result<(), PersistError> {
    fs::write(path, pipeline_to_bytes(p)).map_err(|e| PersistError::Io(e.to_string()))
}

/// Load a pipeline from a file.
pub fn load_pipeline(path: &Path) -> Result<LtePipeline, PersistError> {
    let data = fs::read(path).map_err(|e| PersistError::Io(e.to_string()))?;
    pipeline_from_bytes(&data)
}

// --------------------------------------------------------------- registry

const REGISTRY_MAGIC: &[u8; 4] = b"LTER";
const REGISTRY_VERSION: u8 = 1;

/// Serialize a [`PipelineRegistry`](crate::routing::PipelineRegistry): an `LTER` container holding, per
/// entry, the name, meta-feature centroid, task tags, and the pipeline as
/// an embedded length-prefixed LTEP payload (same codec as
/// [`pipeline_to_bytes`], so registries inherit LTEP's versioning).
pub fn registry_to_bytes(registry: &crate::routing::PipelineRegistry) -> Vec<u8> {
    let mut e = Enc::default();
    e.buf.extend_from_slice(REGISTRY_MAGIC);
    e.u8(REGISTRY_VERSION);
    e.usize(registry.len());
    for entry in registry.entries() {
        e.str(entry.name());
        e.f64s(entry.centroid().values());
        e.usize(entry.task_tags().len());
        for tag in entry.task_tags() {
            e.usize(tag.subspace);
            e.usize(tag.task_index);
            e.f64s(tag.features.values());
        }
        let payload = pipeline_to_bytes(entry.pipeline());
        e.usize(payload.len());
        e.buf.extend_from_slice(&payload);
    }
    e.buf
}

/// Deserialize a [`PipelineRegistry`](crate::routing::PipelineRegistry) written by [`registry_to_bytes`].
/// Entry order — the routing tie-break — is preserved exactly.
pub fn registry_from_bytes(data: &[u8]) -> Result<crate::routing::PipelineRegistry, PersistError> {
    use crate::meta_features::MetaFeatures;
    let mut d = Dec::new(data);
    if d.take(4)? != REGISTRY_MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = d.u8()?;
    if version != REGISTRY_VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let n_entries = d.len(1 << 10, "too many registry entries")?;
    let mut registry = crate::routing::PipelineRegistry::new();
    for _ in 0..n_entries {
        let name = d.str()?;
        let centroid = MetaFeatures::from_values(&d.f64s()?)
            .ok_or(PersistError::Corrupt("bad centroid width"))?;
        let n_tags = d.len(1 << 20, "too many task tags")?;
        let mut task_tags = Vec::with_capacity(n_tags);
        for _ in 0..n_tags {
            let subspace = d.usize()?;
            let task_index = d.usize()?;
            let features = MetaFeatures::from_values(&d.f64s()?)
                .ok_or(PersistError::Corrupt("bad task-tag feature width"))?;
            task_tags.push(crate::routing::TaskTag {
                subspace,
                task_index,
                features,
            });
        }
        let payload_len = d.usize()?;
        let payload = d.take(payload_len)?;
        let pipeline = pipeline_from_bytes(payload)?;
        registry.register_tagged(&name, std::sync::Arc::new(pipeline), centroid, task_tags);
    }
    if d.pos != data.len() {
        return Err(PersistError::Corrupt("trailing bytes"));
    }
    Ok(registry)
}

/// Save a pipeline registry to a file.
pub fn save_registry(
    registry: &crate::routing::PipelineRegistry,
    path: &Path,
) -> Result<(), PersistError> {
    fs::write(path, registry_to_bytes(registry)).map_err(|e| PersistError::Io(e.to_string()))
}

/// Load a pipeline registry from a file.
pub fn load_registry(path: &Path) -> Result<crate::routing::PipelineRegistry, PersistError> {
    let data = fs::read(path).map_err(|e| PersistError::Io(e.to_string()))?;
    registry_from_bytes(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Variant;
    use lte_data::generator::generate_sdss;
    use lte_data::subspace::decompose_sequential;

    fn trained_pipeline() -> (LtePipeline, Vec<Vec<f64>>) {
        let table = generate_sdss(3000, 0);
        let mut cfg = LteConfig::reduced();
        cfg.train.n_tasks = 80;
        cfg.train.epochs = 2;
        let (p, _) = LtePipeline::offline(&table, decompose_sequential(4, 2), cfg, 5);
        let pool: Vec<Vec<f64>> = (0..300).map(|i| table.row(i).unwrap()).collect();
        (p, pool)
    }

    #[test]
    fn round_trip_preserves_predictions_exactly() {
        let (p, pool) = trained_pipeline();
        let bytes = pipeline_to_bytes(&p);
        let loaded = pipeline_from_bytes(&bytes).expect("round trip");

        let truth = p.generate_truth(UisMode::new(4, 8), 9, 0.2, 0.9);
        let truth2 = loaded.generate_truth(UisMode::new(4, 8), 9, 0.2, 0.9);
        for variant in [Variant::Basic, Variant::Meta, Variant::MetaStar] {
            let a = p.explore(&truth, &pool, variant, 3);
            let b = loaded.explore(&truth2, &pool, variant, 3);
            assert_eq!(a.confusion, b.confusion, "{variant:?} diverged");
        }
    }

    #[test]
    fn file_round_trip() {
        let (p, _) = trained_pipeline();
        let dir = std::env::temp_dir().join("lte_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pipeline.ltep");
        save_pipeline(&p, &path).expect("save");
        let loaded = load_pipeline(&path).expect("load");
        assert_eq!(loaded.subspaces().len(), 2);
        assert_eq!(
            loaded.learners()[0].phi().0,
            p.learners()[0].phi().0,
            "φR must survive the file round trip"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Regression (serving bugfix sweep): pre-precision-knob v1 files must
    /// load — not error — with `ScoringPrecision` defaulted to `Exact`,
    /// and produce the same predictions as the same pipeline at `Exact`.
    #[test]
    fn v1_file_loads_with_exact_precision_default() {
        let (mut p, pool) = trained_pipeline();
        // Write v1 from a pipeline whose in-memory knob is Fast: the v1
        // format cannot carry it, so the load must come back Exact.
        let mut online = p.config().online.clone();
        online.precision = ScoringPrecision::Fast;
        p.set_online(online);
        let v1 = pipeline_to_bytes_versioned(&p, 1);
        assert_eq!(v1[4], 1, "version byte");
        let loaded = pipeline_from_bytes(&v1).expect("v1 must load");
        assert_eq!(loaded.config().online.precision, ScoringPrecision::Exact);

        // And the v1 round trip preserves everything else: predictions
        // match the same pipeline forced to Exact.
        let mut online = p.config().online.clone();
        online.precision = ScoringPrecision::Exact;
        p.set_online(online);
        let truth = p.generate_truth(UisMode::new(4, 8), 9, 0.2, 0.9);
        let truth2 = loaded.generate_truth(UisMode::new(4, 8), 9, 0.2, 0.9);
        let a = p.explore(&truth, &pool, Variant::Meta, 3);
        let b = loaded.explore(&truth2, &pool, Variant::Meta, 3);
        assert_eq!(a.confusion, b.confusion);
    }

    /// Regression (serving bugfix sweep): a version byte *newer* than this
    /// build must be refused with a clear `UnsupportedVersion` — decoding
    /// a future layout with today's field order would misparse silently.
    #[test]
    fn future_version_is_unsupported_not_misparsed() {
        let (p, _) = trained_pipeline();
        let mut bytes = pipeline_to_bytes(&p);
        bytes[4] = VERSION + 1;
        assert_eq!(
            pipeline_from_bytes(&bytes).unwrap_err(),
            PersistError::UnsupportedVersion(VERSION + 1)
        );
        // Current version still round-trips, and the error names the range.
        assert_eq!(FORMAT_VERSION, VERSION);
        let msg = PersistError::UnsupportedVersion(9).to_string();
        assert!(msg.contains("unsupported format version 9"), "{msg}");
        assert!(msg.contains('1') && msg.contains('3'), "{msg}");
    }

    /// LTEP v3 carries `ScoringPrecision::Ranked`; the round trip must
    /// preserve it exactly.
    #[test]
    fn v3_round_trips_ranked_precision() {
        let (mut p, _) = trained_pipeline();
        let mut online = p.config().online.clone();
        online.precision = ScoringPrecision::Ranked;
        p.set_online(online);
        let bytes = pipeline_to_bytes(&p);
        assert_eq!(bytes[4], 3, "version byte");
        let loaded = pipeline_from_bytes(&bytes).expect("v3 must load");
        assert_eq!(loaded.config().online.precision, ScoringPrecision::Ranked);
    }

    /// v2 files keep their prior semantics under a v3 reader: the
    /// two-value precision alphabet decodes unchanged, and the value `2`
    /// (v3's `Ranked`) is corruption in a v2 file, not a mode.
    #[test]
    fn v2_file_loads_with_prior_semantics() {
        let (mut p, _) = trained_pipeline();
        let mut online = p.config().online.clone();
        online.precision = ScoringPrecision::Fast;
        p.set_online(online);
        let v2 = pipeline_to_bytes_versioned(&p, 2);
        assert_eq!(v2[4], 2, "version byte");
        let loaded = pipeline_from_bytes(&v2).expect("v2 must load");
        assert_eq!(loaded.config().online.precision, ScoringPrecision::Fast);

        // A v2 writer cannot represent Ranked: it downgrades to Fast.
        let mut online = p.config().online.clone();
        online.precision = ScoringPrecision::Ranked;
        p.set_online(online);
        let v2_ranked = pipeline_to_bytes_versioned(&p, 2);
        let loaded = pipeline_from_bytes(&v2_ranked).expect("v2 must load");
        assert_eq!(loaded.config().online.precision, ScoringPrecision::Fast);

        // And a literal 2 in a v2 precision byte is refused. The byte sits
        // at a fixed offset only relative to the config block, so find it
        // by diffing the Exact and Fast encodings of the same pipeline.
        let mut online = p.config().online.clone();
        online.precision = ScoringPrecision::Exact;
        p.set_online(online);
        let v2_exact = pipeline_to_bytes_versioned(&p, 2);
        let idx = v2_exact
            .iter()
            .zip(&v2)
            .position(|(a, b)| a != b)
            .expect("encodings must differ at the precision byte");
        let mut forged = v2_exact.clone();
        forged[idx] = 2;
        assert_eq!(
            pipeline_from_bytes(&forged).unwrap_err(),
            PersistError::Corrupt("unknown scoring precision")
        );
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(
            pipeline_from_bytes(b"nope").unwrap_err(),
            PersistError::BadMagic
        );
        assert_eq!(
            pipeline_from_bytes(b"LTEP\xff").unwrap_err(),
            PersistError::UnsupportedVersion(0xff)
        );
        assert_eq!(
            pipeline_from_bytes(b"LTEP\x00").unwrap_err(),
            PersistError::UnsupportedVersion(0)
        );
        // Truncation anywhere inside must be caught, not panic.
        let (p, _) = trained_pipeline();
        let bytes = pipeline_to_bytes(&p);
        for cut in [5usize, 50, 500, bytes.len() - 1] {
            let err = pipeline_from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, PersistError::Corrupt(_)),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let (p, _) = trained_pipeline();
        let mut bytes = pipeline_to_bytes(&p);
        bytes.push(0);
        assert_eq!(
            pipeline_from_bytes(&bytes).unwrap_err(),
            PersistError::Corrupt("trailing bytes")
        );
    }

    #[test]
    fn loading_missing_file_is_io_error() {
        let err = load_pipeline(Path::new("/definitely/not/here.ltep")).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }

    #[test]
    fn registry_round_trip_preserves_entries_and_routing() {
        use crate::routing::{PipelineRegistry, Router};
        let (p, pool) = trained_pipeline();
        let truth = p.generate_truth(UisMode::new(4, 8), 11, 0.2, 0.9);
        let mut reg = PipelineRegistry::new();
        reg.register("only", std::sync::Arc::new(p), 6, 21);

        let bytes = registry_to_bytes(&reg);
        let loaded = registry_from_bytes(&bytes).expect("registry round trip");
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded.get(0).name(), "only");
        assert_eq!(loaded.get(0).centroid(), reg.get(0).centroid());
        assert_eq!(loaded.get(0).task_tags(), reg.get(0).task_tags());

        // Routing through the loaded registry is identical.
        let router = Router::new(3);
        let a = router.route(&reg, &truth, &pool);
        let b = router.route(&loaded, &truth, &pool);
        assert_eq!(a, b);

        // And so is exploration through the loaded pipeline.
        let x = reg
            .get(0)
            .pipeline()
            .explore(&truth, &pool, Variant::Meta, 4);
        let y = loaded
            .get(0)
            .pipeline()
            .explore(&truth, &pool, Variant::Meta, 4);
        assert_eq!(x.confusion, y.confusion);
    }

    #[test]
    fn registry_rejects_garbage_and_truncation() {
        use crate::routing::PipelineRegistry;
        assert_eq!(
            registry_from_bytes(b"nope").unwrap_err(),
            PersistError::BadMagic
        );
        assert_eq!(
            registry_from_bytes(b"LTER\x07").unwrap_err(),
            PersistError::UnsupportedVersion(7)
        );
        let (p, _) = trained_pipeline();
        let mut reg = PipelineRegistry::new();
        reg.register("x", std::sync::Arc::new(p), 4, 1);
        let bytes = registry_to_bytes(&reg);
        for cut in [5usize, 20, bytes.len() / 2, bytes.len() - 1] {
            let err = registry_from_bytes(&bytes[..cut]).unwrap_err();
            assert!(matches!(err, PersistError::Corrupt(_)), "cut {cut}: {err}");
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(
            registry_from_bytes(&padded).unwrap_err(),
            PersistError::Corrupt("trailing bytes")
        );
        // An empty registry round-trips too.
        let empty = registry_to_bytes(&PipelineRegistry::new());
        assert_eq!(registry_from_bytes(&empty).unwrap().len(), 0);
    }
}
