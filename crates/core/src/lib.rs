//! Learn-to-Explore (LTE): meta-learning-bootstrapped interactive data
//! exploration — the core of the ICDE 2023 paper reproduction.
//!
//! # The problem
//!
//! Explore-by-example IDE systems discover a **user interest region** (UIR)
//! through rounds of tuple labelling. The exploration is a classifier
//! training process, and with neural classifiers the label appetite
//! ("slow convergence") is the bottleneck. LTE treats exploration as
//! **few-shot learning**: classifiers are *meta-trained offline* on
//! automatically generated, unsupervised meta-tasks, so that online a
//! handful of labels and a few gradient steps suffice.
//!
//! # Offline phase (one-time, unsupervised)
//!
//! 1. The data space is decomposed into low-dimensional *meta-subspaces*
//!    ([`context::SubspaceContext`]), each summarized by three k-means
//!    center sets `Cu`, `Cs`, `Cq` and proximity matrices `Pu`, `Ps` (§V-B).
//! 2. Meta-tasks are generated per subspace ([`meta_task`]): a simulated
//!    UIS (union of `α` convex hulls over `ψ`-nearest-center sets, §V-C)
//!    plus support/query sets labeled against it (§V-D).
//! 3. A [`classifier::UisClassifier`] (UIS-feature embedding + tuple
//!    embedding + classification blocks, §VI-A) is meta-trained with
//!    memory-augmented first-order MAML ([`meta_learner::MetaLearner`],
//!    Algorithm 2): local updates on support sets, one-step global updates
//!    on query sets, and attentive memory reads/writes (§VI-B).
//!
//! # Online phase (per user, few-shot)
//!
//! The user labels the `ks + Δ` initial tuples of each subspace (the same
//! cluster centers used during training); labels become the UIS feature
//! vector ([`feature`]); the pre-trained meta-learner fast-adapts with a few
//! local steps ([`explore`]); optionally the few-shot optimizer
//! ([`refine`], §VII-B) clips false positives/negatives with outer/inner
//! circumscribed regions. Per-subspace predictions conjoin into the UIR
//! ([`pipeline::LtePipeline`]).

pub mod classifier;
pub mod config;
pub mod context;
pub mod drift;
pub mod explore;
pub mod feature;
pub mod iterative;
pub mod memory;
pub mod meta_features;
pub mod meta_learner;
pub mod meta_task;
pub mod metrics;
pub mod oracle;
pub mod parallel;
pub mod persist;
pub mod pipeline;
pub mod refine;
pub mod routing;
pub mod scenario;
pub mod scorer;
pub mod uis;

pub use classifier::{ClassifierConfig, UisClassifier};
pub use config::LteConfig;
pub use context::SubspaceContext;
pub use explore::{ExploreOutcome, Variant};
pub use meta_features::{FeatureDelta, MetaFeatures};
pub use meta_learner::MetaLearner;
pub use meta_task::{MetaTask, TaskGenError};
pub use metrics::ConfusionMatrix;
pub use oracle::{
    BehaviorOracle, Cadence, ConjunctiveOracle, NoisyOracle, RegionOracle, SubspaceOracle,
};
pub use pipeline::LtePipeline;
pub use routing::{PipelineRegistry, Router, RoutingDecision};
pub use scenario::{
    explore_behavioral, BehaviorConfig, BehavioralOutcome, DriftSpec, DriftTrigger,
};
pub use scorer::{FusedRequest, ScoreRequest, Scorer};
pub use uis::UisMode;
