//! The unified scoring surface: one trait, one request type, one fused
//! dispatcher.
//!
//! Historically pool scoring had three entry points on
//! [`UisClassifier`](crate::classifier::UisClassifier) —
//! `logits_batch` (exact), `score_pool` (precision-dispatched) and the free
//! `score_pool_fused_with` (cross-session batch) — each re-implementing the
//! same block-cutting and parallel-threshold logic. The router, the fused
//! serving path, and the per-session engine now all speak [`Scorer`] /
//! [`ScoreRequest`]; the old entry points remain as thin shims so existing
//! callers keep working (see `classifier.rs`).
//!
//! Determinism contract: every method here maps each pool row independently
//! of its block, so outputs are **bit-identical at any worker count** — the
//! same invariant the serving determinism suite pins for the legacy entry
//! points.

use crate::config::ScoringPrecision;
use crate::parallel;

/// Minimum pool rows before scoring fans out over row blocks; smaller
/// pools are dominated by per-thread overhead and stay serial. For fused
/// batches the threshold applies to the **combined** row total.
pub const PARALLEL_MIN_ROWS: usize = 2048;

/// Rows per parallel block: large enough that each block's matmuls
/// amortize dispatch, small enough to split a serving-scale pool across
/// every worker.
pub const PARALLEL_BLOCK_ROWS: usize = 1024;

/// One pool-scoring request: the session's expanded UIS feature vector
/// `vR`, the encoded pool rows, and the precision knob.
#[derive(Clone, Copy)]
pub struct ScoreRequest<'a> {
    /// The session's expanded UIS feature vector `vR`.
    pub v_r: &'a [f64],
    /// Encoded pool rows to score.
    pub rows: &'a [Vec<f64>],
    /// Scoring precision (see [`ScoringPrecision`]).
    pub precision: ScoringPrecision,
}

impl<'a> ScoreRequest<'a> {
    /// Bundle a `vR`, pool rows and precision into a request.
    pub fn new(v_r: &'a [f64], rows: &'a [Vec<f64>], precision: ScoringPrecision) -> Self {
        Self {
            v_r,
            rows,
            precision,
        }
    }
}

/// Anything that scores encoded pool rows against a UIS feature vector.
///
/// Implementors provide the serial per-block kernel
/// ([`Scorer::score_block`]); the provided [`Scorer::score`] method layers
/// the shared block-cutting / parallel-threshold policy on top, and
/// [`score_fused_with`] fuses many requests over one worker pool. `Fast`
/// precision must promote its `f32` logits exactly, so every path returns
/// `f64`.
pub trait Scorer: Sync {
    /// Width of the `vR` vector this scorer expects (`ku`).
    fn vr_width(&self) -> usize;

    /// Serial scoring of one row block at the requested precision. Each
    /// row's logit must depend only on that row — the invariant that makes
    /// block-parallel dispatch bit-identical to the serial pass.
    fn score_block(&self, v_r: &[f64], rows: &[Vec<f64>], precision: ScoringPrecision) -> Vec<f64>;

    /// Score a whole pool: serial below [`PARALLEL_MIN_ROWS`], otherwise
    /// fanned over the shared worker pool in [`PARALLEL_BLOCK_ROWS`]
    /// blocks. Bit-identical to the serial pass at any worker count.
    ///
    /// # Panics
    /// Panics when `req.v_r.len() != self.vr_width()`.
    fn score(&self, req: &ScoreRequest<'_>) -> Vec<f64> {
        assert_eq!(req.v_r.len(), self.vr_width(), "vR width mismatch");
        let threads = parallel::default_threads();
        if req.rows.len() < PARALLEL_MIN_ROWS || threads <= 1 {
            return self.score_block(req.v_r, req.rows, req.precision);
        }
        parallel::parallel_flat_map_chunks(req.rows, PARALLEL_BLOCK_ROWS, threads, |chunk| {
            self.score_block(req.v_r, chunk, req.precision)
        })
    }
}

/// One session's entry in a fused cross-session batch: which scorer runs
/// it, plus its [`ScoreRequest`].
#[derive(Clone, Copy)]
pub struct FusedRequest<'a> {
    /// The (adapted) scorer that scores this request's rows.
    pub scorer: &'a dyn Scorer,
    /// The session's pool-scoring request.
    pub request: ScoreRequest<'a>,
}

/// [`score_fused_with`] at the default worker count.
pub fn score_fused(requests: &[FusedRequest<'_>]) -> Vec<Vec<f64>> {
    score_fused_with(requests, parallel::default_threads())
}

/// Score many sessions' pools as **one fused batch** over the shared
/// worker pool, returning one logit vector per request (in request order).
///
/// Each request keeps its own scorer, `vR`, and precision — fusion happens
/// at the dispatch level: every request's rows are cut into the same
/// contiguous blocks as [`Scorer::score`] and all blocks from all requests
/// are fanned across one pool via
/// [`parallel_flat_map_groups`](crate::parallel::parallel_flat_map_groups).
/// Crucially, the [`PARALLEL_MIN_ROWS`] cutoff is checked against the
/// **fused** row total, not each request's pool, so many small per-session
/// pools still get parallel dispatch once their sum is large enough.
///
/// Every output vector is bit-identical to the per-request
/// `request.scorer.score(&request.request)` call at any worker count,
/// because [`Scorer::score_block`] maps each row independently of its
/// block (the invariant the serving determinism suite pins).
///
/// # Panics
/// Panics when any request's `vR` width disagrees with its scorer.
pub fn score_fused_with(requests: &[FusedRequest<'_>], threads: usize) -> Vec<Vec<f64>> {
    for req in requests {
        assert_eq!(
            req.request.v_r.len(),
            req.scorer.vr_width(),
            "vR width mismatch"
        );
    }
    let fused_rows: usize = requests.iter().map(|r| r.request.rows.len()).sum();
    let threads = if fused_rows >= PARALLEL_MIN_ROWS {
        threads
    } else {
        1
    };
    let groups: Vec<&[Vec<f64>]> = requests.iter().map(|r| r.request.rows).collect();
    parallel::parallel_flat_map_groups(&groups, PARALLEL_BLOCK_ROWS, threads, |g, chunk| {
        let req = &requests[g];
        req.scorer
            .score_block(req.request.v_r, chunk, req.request.precision)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::{ClassifierConfig, UisClassifier};
    use lte_data::rng::seeded;

    fn classifier(seed: u64) -> UisClassifier {
        let cfg = ClassifierConfig {
            ku: 6,
            nr: 4,
            ne: 8,
            clf_hidden: 8,
            use_conversion: true,
        };
        UisClassifier::new(cfg, &mut seeded(seed))
    }

    fn pool(n: usize, salt: u64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..4)
                    .map(|j| (((i as u64 * 4 + j + salt * 131) as f64) * 0.37).sin())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn trait_surface_matches_legacy_entry_points() {
        let c = classifier(0);
        let v_r = vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0];
        let rows = pool(37, 1);
        for precision in [ScoringPrecision::Exact, ScoringPrecision::Fast] {
            let via_trait = c.score(&ScoreRequest::new(&v_r, &rows, precision));
            let via_legacy = c.score_pool(&v_r, &rows, precision);
            assert_eq!(via_trait.len(), via_legacy.len());
            for (a, b) in via_trait.iter().zip(&via_legacy) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn fused_matches_per_request_bitwise_at_any_worker_count() {
        let c1 = classifier(1);
        let c2 = classifier(2);
        let v1 = vec![1.0, 1.0, 0.0, 0.0, 1.0, 0.0];
        let v2 = vec![0.0, 1.0, 1.0, 0.0, 0.0, 1.0];
        let p1 = pool(61, 3);
        let p2 = pool(17, 4);
        let requests = [
            FusedRequest {
                scorer: &c1,
                request: ScoreRequest::new(&v1, &p1, ScoringPrecision::Exact),
            },
            FusedRequest {
                scorer: &c2,
                request: ScoreRequest::new(&v2, &p2, ScoringPrecision::Fast),
            },
        ];
        let reference: Vec<Vec<f64>> = requests
            .iter()
            .map(|r| r.scorer.score(&r.request))
            .collect();
        for threads in [1, 2, 4] {
            let fused = score_fused_with(&requests, threads);
            assert_eq!(fused.len(), reference.len());
            for (f, r) in fused.iter().zip(&reference) {
                assert_eq!(f.len(), r.len());
                for (a, b) in f.iter().zip(r) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{threads} workers diverged");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "vR width mismatch")]
    fn fused_rejects_wrong_vr_width() {
        let c = classifier(3);
        let v_r = vec![0.0; 3];
        let rows = pool(4, 5);
        let requests = [FusedRequest {
            scorer: &c,
            request: ScoreRequest::new(&v_r, &rows, ScoringPrecision::Exact),
        }];
        score_fused_with(&requests, 1);
    }
}
