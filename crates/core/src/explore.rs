//! Online exploration of one subspace (§III-B, initial exploration module).
//!
//! The flow for a fresh user: (1) present the `ks` initial tuples (= the
//! `Cs` cluster centers, exactly the support-set construction of §V-D) plus
//! `Δ` random tuples; (2) collect labels from the (simulated) user;
//! (3) build the UIS feature vector from the `Cs` labels; (4) fast-adapt the
//! pre-trained meta-learner with a few local steps — or train a classifier
//! from scratch for the `Basic` ablation; (5) predict the UIS over an
//! evaluation pool; (6) for `Meta*`, revise predictions with the few-shot
//! optimizer (§VII-B).

use crate::classifier::{ClassifierConfig, Example, UisClassifier};
use crate::config::LteConfig;
use crate::context::SubspaceContext;
use crate::feature::{expansion_degree, uis_feature_vector};
use crate::meta_learner::MetaLearner;
use crate::oracle::SubspaceOracle;
use crate::refine::build_subregions;
use lte_data::rng::seeded;
use rand::RngExt;
use std::time::Instant;

/// Which LTE variant to run (§VIII-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Basic UIS classifier, trained from scratch on the initial labels.
    Basic,
    /// Meta-learner fast-adapted from the learned initialization.
    Meta,
    /// `Meta` plus the few-shot prediction optimizer.
    MetaStar,
}

impl Variant {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Variant::Basic => "Basic",
            Variant::Meta => "Meta",
            Variant::MetaStar => "Meta*",
        }
    }
}

/// Result of exploring one subspace.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// Predicted interestingness per evaluation row.
    pub predictions: Vec<bool>,
    /// Classifier logits per evaluation row (before geometric revision).
    pub scores: Vec<f64>,
    /// Labels consumed (`ks + Δ`).
    pub labels_used: usize,
    /// Wall-clock seconds spent on online adaptation + prediction.
    pub online_seconds: f64,
    /// The labels the user gave to the `Cs` initial tuples.
    pub cs_labels: Vec<bool>,
}

/// The label-and-adapt half of one exploration round, stopped right before
/// pool scoring — so a serving layer can collect many sessions' prepared
/// rounds and score their pools as one fused batch (see
/// [`crate::classifier::score_pool_fused`]).
#[derive(Debug, Clone)]
pub struct PreparedRound {
    /// The adapted (or from-scratch-trained) classifier for this round.
    pub classifier: UisClassifier,
    /// The session's expanded UIS feature vector `vR`.
    pub v_r: Vec<f64>,
    /// The labels the user gave to the `Cs` initial tuples.
    pub cs_labels: Vec<bool>,
    /// Labels consumed (`ks + Δ`).
    pub labels_used: usize,
    /// Wall-clock seconds spent on adaptation/training.
    pub prep_seconds: f64,
}

/// Steps (1)–(4) of one round: collect the initial labels, build the UIS
/// feature vector, and adapt/train the classifier — everything up to (but
/// excluding) pool scoring. [`explore_subspace`] is exactly
/// `prepare_round` → `score_pool` → [`finish_round`]; the cross-session
/// scoring service runs the same three stages with the middle one fused
/// across sessions.
///
/// Consumes the same RNG stream as [`explore_subspace`] (Δ sampling, then
/// `Basic`'s initialization), so for equal inputs the two paths produce
/// bit-identical classifiers.
///
/// # Panics
/// Panics when `learner` is `None` for the meta variants.
pub fn prepare_round(
    ctx: &SubspaceContext,
    learner: Option<&MetaLearner>,
    oracle: &dyn SubspaceOracle,
    cfg: &LteConfig,
    variant: Variant,
    seed: u64,
) -> PreparedRound {
    let mut rng = seeded(seed);

    // (1, 2) Initial tuples and user labels. The Cs centers come first —
    // their labels define the UIS feature vector — then Δ random tuples.
    let cs_labels: Vec<bool> = ctx.cs().iter().map(|c| oracle.label(c)).collect();
    let mut examples: Vec<Example> = ctx
        .cs()
        .iter()
        .zip(&cs_labels)
        .map(|(row, &y)| (ctx.encode(row), y))
        .collect();
    let sample = ctx.sample_rows();
    for _ in 0..cfg.task.delta {
        let row = &sample[rng.random_range(0..sample.len())];
        examples.push((ctx.encode(row), oracle.label(row)));
    }
    let labels_used = examples.len();

    // (3) UIS feature vector from the Cs labels.
    let l = expansion_degree(ctx.cu().len(), cfg.net.expansion_frac);
    let v_r = uis_feature_vector(&cs_labels, ctx.ps(), l);

    // (4) Adapt / train. Online label sets are imbalanced when the
    // interest region is small, so positive examples are re-weighted
    // (identically for every variant).
    let pos_weight = UisClassifier::balance_weight(&examples);
    let start = Instant::now();
    let classifier = match variant {
        Variant::Basic => {
            let arch = ClassifierConfig {
                ku: ctx.cu().len(),
                nr: ctx.feature_width(),
                ne: cfg.net.ne,
                clf_hidden: cfg.net.clf_hidden,
                use_conversion: false,
            };
            let mut c = UisClassifier::new(arch, &mut rng);
            c.train_local_weighted(
                &v_r,
                &examples,
                cfg.online.basic_steps,
                cfg.online.lr,
                pos_weight,
            );
            c
        }
        Variant::Meta | Variant::MetaStar => {
            let learner = learner.expect("meta variants require a trained meta-learner");
            learner
                .adapt_weighted(
                    &v_r,
                    &examples,
                    cfg.online.adapt_steps,
                    cfg.online.lr,
                    pos_weight,
                )
                .classifier
        }
    };
    let prep_seconds = start.elapsed().as_secs_f64();

    PreparedRound {
        classifier,
        v_r,
        cs_labels,
        labels_used,
        prep_seconds,
    }
}

/// Step (6) of one round: turn pool logits into predictions and apply
/// `Meta*`'s geometric revision, assembling the final [`ExploreOutcome`].
///
/// * `eval_rows` — the **raw** (projected, un-encoded) pool rows the
///   `scores` were computed over, needed by the geometric revision,
/// * `scores` — the pool logits from scoring `prepared.classifier` on the
///   encoded pool (per session or fused — bit-identical either way),
/// * `score_seconds` — the caller-measured scoring wall-clock, folded into
///   `online_seconds` next to adaptation and revision time.
pub fn finish_round(
    ctx: &SubspaceContext,
    prepared: PreparedRound,
    eval_rows: &[Vec<f64>],
    scores: Vec<f64>,
    cfg: &LteConfig,
    variant: Variant,
    score_seconds: f64,
) -> ExploreOutcome {
    assert_eq!(scores.len(), eval_rows.len(), "one score per pool row");
    let start = Instant::now();
    let mut predictions: Vec<bool> = scores.iter().map(|&logit| logit > 0.0).collect();

    // (6) Few-shot optimizer for Meta*.
    if variant == Variant::MetaStar {
        let regions = build_subregions(ctx, &prepared.cs_labels, &cfg.refine);
        for (row, pred) in eval_rows.iter().zip(predictions.iter_mut()) {
            *pred = regions.revise(row, *pred);
        }
    }
    let online_seconds = prepared.prep_seconds + score_seconds + start.elapsed().as_secs_f64();

    ExploreOutcome {
        predictions,
        scores,
        labels_used: prepared.labels_used,
        online_seconds,
        cs_labels: prepared.cs_labels,
    }
}

/// Run the online exploration of one subspace.
///
/// * `ctx` — the offline-precomputed subspace state,
/// * `learner` — the pre-trained meta-learner (required for
///   `Meta`/`MetaStar`; ignored by `Basic`),
/// * `oracle` — the simulated user,
/// * `eval_rows` — raw subspace rows to predict (the retrieval pool),
/// * `seed` — drives the Δ random initial tuples and `Basic`'s
///   initialization.
///
/// Composed from [`prepare_round`] and [`finish_round`] around one
/// (5) batched pool-scoring call: encode the pool, then one
/// `forward_batch` pass per block instead of a per-point dispatch loop,
/// with the precision knob picking the f64 reference kernels or the f32
/// ranking fast path.
///
/// # Panics
/// Panics when `learner` is `None` for the meta variants.
pub fn explore_subspace(
    ctx: &SubspaceContext,
    learner: Option<&MetaLearner>,
    oracle: &dyn SubspaceOracle,
    eval_rows: &[Vec<f64>],
    cfg: &LteConfig,
    variant: Variant,
    seed: u64,
) -> ExploreOutcome {
    let prepared = prepare_round(ctx, learner, oracle, cfg, variant, seed);
    let start = Instant::now();
    let encoded: Vec<Vec<f64>> = eval_rows.iter().map(|row| ctx.encode(row)).collect();
    let scores = prepared
        .classifier
        .score_pool(&prepared.v_r, &encoded, cfg.online.precision);
    let score_seconds = start.elapsed().as_secs_f64();
    finish_round(
        ctx,
        prepared,
        eval_rows,
        scores,
        cfg,
        variant,
        score_seconds,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LteConfig;
    use crate::meta_task::generate_task_set;
    use crate::metrics::ConfusionMatrix;
    use crate::oracle::RegionOracle;
    use crate::uis::generate_uis;
    use lte_data::generator::generate_sdss;
    use lte_data::subspace::Subspace;

    struct Setup {
        ctx: SubspaceContext,
        learner: MetaLearner,
        cfg: LteConfig,
    }

    fn setup() -> Setup {
        let table = generate_sdss(3000, 0);
        let mut cfg = LteConfig::reduced();
        cfg.train.n_tasks = 120;
        let ctx = SubspaceContext::build(
            &table,
            Subspace::new(vec![0, 1]),
            &cfg.task,
            &cfg.encoder,
            21,
        );
        let l = expansion_degree(cfg.task.ku, cfg.net.expansion_frac);
        let tasks = generate_task_set(&ctx, &cfg.task, l, cfg.train.n_tasks, &mut seeded(22));
        let mut learner = MetaLearner::new(
            cfg.task.ku,
            ctx.feature_width(),
            &cfg.net,
            cfg.train.clone(),
            23,
        );
        learner.train(&tasks);
        Setup { ctx, learner, cfg }
    }

    fn f1_of(outcome: &ExploreOutcome, oracle: &RegionOracle, rows: &[Vec<f64>]) -> f64 {
        ConfusionMatrix::from_pairs(
            outcome
                .predictions
                .iter()
                .zip(rows)
                .map(|(&pred, row)| (pred, oracle.label(row))),
        )
        .f1()
    }

    #[test]
    fn meta_explores_unseen_uis_reasonably() {
        let s = setup();
        // A *test* UIS generated from a held-out seed.
        let uis = generate_uis(s.ctx.cu(), s.ctx.pu(), s.cfg.task.mode, &mut seeded(1000));
        let oracle = RegionOracle::new(uis);
        let eval: Vec<Vec<f64>> = s.ctx.sample_rows().to_vec();
        let outcome = explore_subspace(
            &s.ctx,
            Some(&s.learner),
            &oracle,
            &eval,
            &s.cfg,
            Variant::Meta,
            31,
        );
        assert_eq!(outcome.labels_used, s.cfg.budget());
        assert_eq!(outcome.predictions.len(), eval.len());
        let f1 = f1_of(&outcome, &oracle, &eval);
        assert!(f1 > 0.3, "meta F1 too low: {f1}");
    }

    #[test]
    fn meta_star_revision_changes_far_points_only_to_negative() {
        let s = setup();
        let uis = generate_uis(s.ctx.cu(), s.ctx.pu(), s.cfg.task.mode, &mut seeded(1001));
        let oracle = RegionOracle::new(uis);
        let eval: Vec<Vec<f64>> = s.ctx.sample_rows()[..200].to_vec();
        let meta = explore_subspace(
            &s.ctx,
            Some(&s.learner),
            &oracle,
            &eval,
            &s.cfg,
            Variant::Meta,
            32,
        );
        let star = explore_subspace(
            &s.ctx,
            Some(&s.learner),
            &oracle,
            &eval,
            &s.cfg,
            Variant::MetaStar,
            32,
        );
        // Same scores (revision is post-hoc), possibly different labels.
        assert_eq!(meta.scores, star.scores);
        assert_eq!(meta.cs_labels, star.cs_labels);
    }

    #[test]
    fn basic_variant_runs_without_learner() {
        let s = setup();
        let uis = generate_uis(s.ctx.cu(), s.ctx.pu(), s.cfg.task.mode, &mut seeded(1002));
        let oracle = RegionOracle::new(uis);
        let eval: Vec<Vec<f64>> = s.ctx.sample_rows()[..100].to_vec();
        let outcome = explore_subspace(&s.ctx, None, &oracle, &eval, &s.cfg, Variant::Basic, 33);
        assert_eq!(outcome.predictions.len(), 100);
        assert!(outcome.online_seconds >= 0.0);
    }

    #[test]
    #[should_panic(expected = "meta variants require")]
    fn meta_without_learner_panics() {
        let s = setup();
        let uis = generate_uis(s.ctx.cu(), s.ctx.pu(), s.cfg.task.mode, &mut seeded(1003));
        let oracle = RegionOracle::new(uis);
        explore_subspace(&s.ctx, None, &oracle, &[], &s.cfg, Variant::Meta, 34);
    }

    #[test]
    fn variant_names_match_paper() {
        assert_eq!(Variant::Basic.name(), "Basic");
        assert_eq!(Variant::Meta.name(), "Meta");
        assert_eq!(Variant::MetaStar.name(), "Meta*");
    }
}
