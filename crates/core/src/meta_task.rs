//! Meta-task generation (§V, Algorithm 1).
//!
//! A meta-task `t : (R^M_t, S^sp_t, S^qs_t)` simulates one exploration
//! episode without any user: the simulated UIS plays the role of the
//! unknown interest region, the support set simulates the user's labelled
//! tuples, and the query set simulates evaluating the adapted classifier.
//! Support tuples are the `ks` centers of `Cs` plus `Δ` random sample
//! tuples; query tuples are the `kq` centers of `Cq` plus `Δ` random
//! tuples (§V-D). Labels come from UIS membership.

use crate::classifier::Example;
use crate::config::MetaTaskConfig;
use crate::context::SubspaceContext;
use crate::feature::uis_feature_vector;
use crate::uis::{generate_uis, UisMode};
use lte_geom::RegionUnion;
use rand::Rng;

/// One generated meta-task.
#[derive(Debug, Clone)]
pub struct MetaTask {
    /// The simulated UIS `R^M_t`.
    pub uis: RegionUnion,
    /// Expanded UIS feature vector `vR ∈ R^ku` (§VI-A).
    pub v_r: Vec<f64>,
    /// Support set: encoded tuple features + labels (`ks + Δ` examples).
    pub support: Vec<Example>,
    /// Query set: encoded tuple features + labels (`kq + Δ` examples).
    pub query: Vec<Example>,
    /// Labels of the `Cs` centers (the first `ks` support examples) — kept
    /// for UIS-feature reconstruction and the few-shot optimizer.
    pub cs_labels: Vec<bool>,
}

impl MetaTask {
    /// Fraction of positive support labels.
    pub fn support_positive_rate(&self) -> f64 {
        if self.support.is_empty() {
            return 0.0;
        }
        self.support.iter().filter(|(_, y)| *y).count() as f64 / self.support.len() as f64
    }

    /// True when the support set contains both classes (trainable task).
    pub fn is_balanced(&self) -> bool {
        let rate = self.support_positive_rate();
        rate > 0.0 && rate < 1.0
    }
}

/// Generate one meta-task on a subspace context.
///
/// `expansion_l` is the UIS-feature expansion degree (§VI-A).
pub fn generate_task<R: Rng + ?Sized>(
    ctx: &SubspaceContext,
    mode: UisMode,
    delta: usize,
    expansion_l: usize,
    rng: &mut R,
) -> MetaTask {
    let uis = generate_uis(ctx.cu(), ctx.pu(), mode, rng);

    let cs_labels: Vec<bool> = ctx.cs().iter().map(|c| uis.contains(c)).collect();
    let v_r = uis_feature_vector(&cs_labels, ctx.ps(), expansion_l);

    let mut support: Vec<Example> = ctx
        .cs()
        .iter()
        .zip(&cs_labels)
        .map(|(row, &y)| (ctx.encode(row), y))
        .collect();
    append_random_examples(ctx, &uis, delta, rng, &mut support);

    let mut query: Vec<Example> = ctx
        .cq()
        .iter()
        .map(|row| (ctx.encode(row), uis.contains(row)))
        .collect();
    append_random_examples(ctx, &uis, delta, rng, &mut query);

    MetaTask {
        uis,
        v_r,
        support,
        query,
        cs_labels,
    }
}

/// Append `Δ` random sample tuples, labeled against the UIS (§V-D: "to
/// increase the generality of meta-training").
fn append_random_examples<R: Rng + ?Sized>(
    ctx: &SubspaceContext,
    uis: &RegionUnion,
    delta: usize,
    rng: &mut R,
    out: &mut Vec<Example>,
) {
    let rows = ctx.sample_rows();
    for _ in 0..delta {
        let row = &rows[rng.random_range(0..rows.len())];
        out.push((ctx.encode(row), uis.contains(row)));
    }
}

/// Why a meta-task set cannot be generated from a context/config pair.
///
/// These are configuration errors (e.g. `ku == 0`, or an empty clustering
/// sample with `Δ > 0`) that previously surfaced as panics deep inside the
/// generation loop; [`try_generate_task_set`] rejects them upfront.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskGenError {
    /// The context has no `Cu` centers (`ku == 0`): no UIS can be built.
    NoUisCenters,
    /// The context has no `Cs` centers (`ks == 0`): every support set
    /// would be empty and no task could ever be balanced.
    NoSupportCenters,
    /// `Δ > 0` random tuples were requested but the clustering sample is
    /// empty, so there is nothing to draw them from.
    EmptySample,
}

impl std::fmt::Display for TaskGenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoUisCenters => {
                write!(
                    f,
                    "no Cu centers (ku == 0): cannot construct a simulated UIS"
                )
            }
            Self::NoSupportCenters => {
                write!(f, "no Cs centers (ks == 0): support sets would be empty")
            }
            Self::EmptySample => {
                write!(f, "delta > 0 but the clustering sample is empty")
            }
        }
    }
}

impl std::error::Error for TaskGenError {}

/// [`generate_task_set`] with upfront validation: degenerate context/config
/// pairs come back as a typed [`TaskGenError`] instead of panicking inside
/// the generation loop.
pub fn try_generate_task_set<R: Rng + ?Sized>(
    ctx: &SubspaceContext,
    cfg: &MetaTaskConfig,
    expansion_l: usize,
    n: usize,
    rng: &mut R,
) -> Result<Vec<MetaTask>, TaskGenError> {
    if ctx.cu().is_empty() {
        return Err(TaskGenError::NoUisCenters);
    }
    if ctx.cs().is_empty() {
        return Err(TaskGenError::NoSupportCenters);
    }
    if cfg.delta > 0 && ctx.sample_rows().is_empty() {
        return Err(TaskGenError::EmptySample);
    }
    let mut tasks = Vec::with_capacity(n);
    for _ in 0..n {
        let mut task = generate_task(ctx, cfg.mode, cfg.delta, expansion_l, rng);
        let mut tries = 0;
        while !task.is_balanced() && tries < cfg.max_uis_retries {
            task = generate_task(ctx, cfg.mode, cfg.delta, expansion_l, rng);
            tries += 1;
        }
        tasks.push(task);
    }
    Ok(tasks)
}

/// Generate a meta-task set of size `n`, retrying degenerate tasks whose
/// support set is single-class (untrainable few-shot episodes) up to
/// `cfg.max_uis_retries` times each.
///
/// # Panics
/// Panics on degenerate context/config pairs (see [`TaskGenError`]); use
/// [`try_generate_task_set`] to handle those as values.
pub fn generate_task_set<R: Rng + ?Sized>(
    ctx: &SubspaceContext,
    cfg: &MetaTaskConfig,
    expansion_l: usize,
    n: usize,
    rng: &mut R,
) -> Vec<MetaTask> {
    try_generate_task_set(ctx, cfg, expansion_l, n, rng)
        .unwrap_or_else(|e| panic!("invalid meta-task configuration: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LteConfig;
    use lte_data::generator::generate_sdss;
    use lte_data::rng::seeded;
    use lte_data::subspace::Subspace;

    fn ctx() -> SubspaceContext {
        let table = generate_sdss(3000, 0);
        let cfg = LteConfig::reduced();
        SubspaceContext::build(
            &table,
            Subspace::new(vec![0, 1]),
            &cfg.task,
            &cfg.encoder,
            1,
        )
    }

    #[test]
    fn task_shapes_match_config() {
        let c = ctx();
        let cfg = LteConfig::reduced();
        let mut rng = seeded(0);
        let t = generate_task(&c, cfg.task.mode, cfg.task.delta, 4, &mut rng);
        assert_eq!(t.support.len(), cfg.task.ks + cfg.task.delta);
        assert_eq!(t.query.len(), cfg.task.kq + cfg.task.delta);
        assert_eq!(t.cs_labels.len(), cfg.task.ks);
        assert_eq!(t.v_r.len(), cfg.task.ku);
        // Features have encoder width.
        assert_eq!(t.support[0].0.len(), c.feature_width());
    }

    #[test]
    fn labels_agree_with_uis_membership() {
        let c = ctx();
        let cfg = LteConfig::reduced();
        let mut rng = seeded(1);
        let t = generate_task(&c, cfg.task.mode, cfg.task.delta, 4, &mut rng);
        for (center, &label) in c.cs().iter().zip(&t.cs_labels) {
            assert_eq!(t.uis.contains(center), label);
        }
    }

    #[test]
    fn feature_vector_is_binary_and_nonzero_when_positives_exist() {
        let c = ctx();
        let cfg = LteConfig::reduced();
        let mut rng = seeded(2);
        let t = generate_task(&c, cfg.task.mode, cfg.task.delta, 4, &mut rng);
        assert!(t.v_r.iter().all(|&b| b == 0.0 || b == 1.0));
        if t.cs_labels.iter().any(|&b| b) {
            assert!(t.v_r.iter().sum::<f64>() >= 1.0);
        }
    }

    #[test]
    fn task_set_mostly_balanced() {
        let c = ctx();
        let cfg = LteConfig::reduced();
        let mut rng = seeded(3);
        let tasks = generate_task_set(&c, &cfg.task, 4, 30, &mut rng);
        assert_eq!(tasks.len(), 30);
        let balanced = tasks.iter().filter(|t| t.is_balanced()).count();
        assert!(balanced >= 25, "only {balanced}/30 balanced");
    }

    #[test]
    fn deterministic_under_seed() {
        let c = ctx();
        let cfg = LteConfig::reduced();
        let a = generate_task(&c, cfg.task.mode, cfg.task.delta, 4, &mut seeded(9));
        let b = generate_task(&c, cfg.task.mode, cfg.task.delta, 4, &mut seeded(9));
        assert_eq!(a.v_r, b.v_r);
        assert_eq!(a.cs_labels, b.cs_labels);
    }

    #[test]
    fn degenerate_configs_are_typed_errors_not_panics() {
        let c = ctx();
        let cfg = LteConfig::reduced();

        // ku == 0: rebuild the context with no Cu centers.
        let no_cu = SubspaceContext::from_parts(
            c.subspace().clone(),
            c.sample_rows().to_vec(),
            Vec::new(),
            c.cs().to_vec(),
            c.cq().to_vec(),
            c.encoder().clone(),
        );
        let err = try_generate_task_set(&no_cu, &cfg.task, 4, 2, &mut seeded(0));
        assert_eq!(err.err(), Some(TaskGenError::NoUisCenters));

        // ks == 0: no support centers.
        let no_cs = SubspaceContext::from_parts(
            c.subspace().clone(),
            c.sample_rows().to_vec(),
            c.cu().to_vec(),
            Vec::new(),
            c.cq().to_vec(),
            c.encoder().clone(),
        );
        let err = try_generate_task_set(&no_cs, &cfg.task, 4, 2, &mut seeded(0));
        assert_eq!(err.err(), Some(TaskGenError::NoSupportCenters));

        // Empty pool with Δ > 0: nothing to draw random examples from.
        let no_sample = SubspaceContext::from_parts(
            c.subspace().clone(),
            Vec::new(),
            c.cu().to_vec(),
            c.cs().to_vec(),
            c.cq().to_vec(),
            c.encoder().clone(),
        );
        assert!(cfg.task.delta > 0);
        let err = try_generate_task_set(&no_sample, &cfg.task, 4, 2, &mut seeded(0));
        assert_eq!(err.err(), Some(TaskGenError::EmptySample));
        // Error messages are stable, human-readable text.
        assert!(TaskGenError::NoUisCenters.to_string().contains("ku == 0"));

        // A healthy context still succeeds through the fallible path.
        let ok = try_generate_task_set(&c, &cfg.task, 4, 2, &mut seeded(0));
        assert_eq!(ok.map(|t| t.len()).map_err(|e| e.to_string()), Ok(2));
    }

    #[test]
    #[should_panic(expected = "invalid meta-task configuration")]
    fn infallible_wrapper_panics_with_typed_message() {
        let c = ctx();
        let cfg = LteConfig::reduced();
        let no_cu = SubspaceContext::from_parts(
            c.subspace().clone(),
            c.sample_rows().to_vec(),
            Vec::new(),
            c.cs().to_vec(),
            c.cq().to_vec(),
            c.encoder().clone(),
        );
        generate_task_set(&no_cu, &cfg.task, 4, 2, &mut seeded(0));
    }

    #[test]
    fn one_dimensional_subspace_tasks_work_end_to_end() {
        // 1D subspaces arise from odd-attribute decompositions; UISs become
        // interval unions and the whole task machinery must still hold.
        let table = generate_sdss(3000, 1);
        let cfg = LteConfig::reduced();
        let c = SubspaceContext::build(
            &table,
            Subspace::new(vec![4]), // sky_u alone
            &cfg.task,
            &cfg.encoder,
            2,
        );
        assert_eq!(c.dim(), 1);
        let mut rng = seeded(3);
        let tasks = generate_task_set(&c, &cfg.task, 4, 20, &mut rng);
        assert_eq!(tasks.len(), 20);
        let balanced = tasks.iter().filter(|t| t.is_balanced()).count();
        assert!(balanced >= 10, "1D tasks mostly balanced, got {balanced}");
        // Labels still agree with UIS membership on the 1D rows.
        let t = &tasks[0];
        for (center, &label) in c.cs().iter().zip(&t.cs_labels) {
            assert_eq!(t.uis.contains(center), label);
        }
    }
}
