//! The basic UIS classifier (§VI-A) with optional embedding conversion.
//!
//! Three building blocks, all fully connected:
//!
//! * **UIS feature embedding** `f_θR : R^ku → R^Ne` over the expanded
//!   interest vector `vR` (Eq. 3),
//! * **data tuple embedding** `f_θτ : R^Nr → R^Ne` over the preprocessed
//!   tuple vector `vτ` (Eq. 4),
//! * **classification block** `f_θclf` over the concatenation
//!   `[embR, embτ]` producing the interestingness logit (Eq. 5).
//!
//! When memory augmentation is active, a task-wise conversion matrix
//! `Mcp ∈ R^{Ne×2Ne}` transforms the concatenation before classification
//! (Eq. 9); `Mcp` is read from the global conversion memory per task and
//! locally fine-tuned by backpropagation together with θ (§VI-B).

use lte_nn::loss::bce_with_logits;
use lte_nn::{matmul_nt_ranked, Activation, Epilogue, Matrix, Matrix32, Mlp, MlpCache};
use rand::Rng;

/// Architecture of the UIS classifier.
#[derive(Debug, Clone)]
pub struct ClassifierConfig {
    /// UIS-feature input width (`ku`).
    pub ku: usize,
    /// Tuple-feature input width (`Nr`, encoder dependent).
    pub nr: usize,
    /// Embedding size `Ne`.
    pub ne: usize,
    /// Hidden width of the classification block.
    pub clf_hidden: usize,
    /// Insert the `Ne × 2Ne` conversion matrix before classification
    /// (the memory-augmented variant).
    pub use_conversion: bool,
}

impl ClassifierConfig {
    /// Classification-block input width: `Ne` with conversion, `2Ne` without.
    pub fn clf_input(&self) -> usize {
        if self.use_conversion {
            self.ne
        } else {
            2 * self.ne
        }
    }
}

/// One labeled training example: encoded tuple features plus label.
pub type Example = (Vec<f64>, bool);

/// Legacy fused-batch request — superseded by
/// [`FusedRequest`](crate::scorer::FusedRequest) on the unified
/// [`Scorer`](crate::scorer::Scorer) surface; kept as a thin compatibility
/// shim for existing callers. See [`score_pool_fused`].
pub struct PoolScoreRequest<'a> {
    /// The (adapted) classifier that scores this request's rows.
    pub classifier: &'a UisClassifier,
    /// The session's expanded UIS feature vector `vR`.
    pub v_r: &'a [f64],
    /// Encoded pool rows to score.
    pub rows: &'a [Vec<f64>],
    /// Scoring precision for this request.
    pub precision: crate::config::ScoringPrecision,
}

/// Legacy alias for [`score_fused`](crate::scorer::score_fused): score many
/// sessions' pools as one fused batch at the default worker count. New code
/// should build [`FusedRequest`](crate::scorer::FusedRequest)s and call the
/// `scorer` module directly; outputs are bit-identical either way.
pub fn score_pool_fused(requests: &[PoolScoreRequest<'_>]) -> Vec<Vec<f64>> {
    score_pool_fused_with(requests, crate::parallel::default_threads())
}

/// Legacy alias for [`score_fused_with`](crate::scorer::score_fused_with)
/// with an explicit worker count — the serving engine passes its configured
/// worker budget; tests force `threads > 1` to exercise the fused parallel
/// path on single-core machines.
pub fn score_pool_fused_with(requests: &[PoolScoreRequest<'_>], threads: usize) -> Vec<Vec<f64>> {
    let unified: Vec<crate::scorer::FusedRequest<'_>> = requests
        .iter()
        .map(|r| crate::scorer::FusedRequest {
            scorer: r.classifier,
            request: crate::scorer::ScoreRequest::new(r.v_r, r.rows, r.precision),
        })
        .collect();
    crate::scorer::score_fused_with(&unified, threads)
}

/// Forward-pass cache for backprop.
pub struct ForwardCache {
    r_cache: MlpCache,
    t_cache: MlpCache,
    concat: Vec<f64>,
    converted: Option<Vec<f64>>,
    clf_cache: MlpCache,
    /// The produced logit.
    pub logit: f64,
}

/// Parameter gradients of one backward pass, grouped per block.
pub struct Grads {
    /// Flat gradient of the UIS-feature embedding block.
    pub g_r: Vec<f64>,
    /// Flat gradient of the tuple embedding block.
    pub g_t: Vec<f64>,
    /// Flat gradient of the classification block.
    pub g_clf: Vec<f64>,
    /// Gradient of the conversion matrix (present iff conversion is used).
    pub g_conv: Option<Matrix>,
}

impl Grads {
    /// Zeroed gradients matching a classifier's shapes.
    pub fn zeros_like(c: &UisClassifier) -> Self {
        Self {
            g_r: vec![0.0; c.r_block.param_count()],
            g_t: vec![0.0; c.t_block.param_count()],
            g_clf: vec![0.0; c.clf_block.param_count()],
            g_conv: c
                .conversion
                .as_ref()
                .map(|m| Matrix::zeros(m.rows(), m.cols())),
        }
    }

    /// Scale all gradients in place.
    pub fn scale(&mut self, s: f64) {
        for g in self.g_r.iter_mut() {
            *g *= s;
        }
        for g in self.g_t.iter_mut() {
            *g *= s;
        }
        for g in self.g_clf.iter_mut() {
            *g *= s;
        }
        if let Some(m) = &mut self.g_conv {
            m.scale(s);
        }
    }

    /// Accumulate another gradient set (shapes must match).
    pub fn add(&mut self, other: &Grads) {
        for (a, b) in self.g_r.iter_mut().zip(&other.g_r) {
            *a += b;
        }
        for (a, b) in self.g_t.iter_mut().zip(&other.g_t) {
            *a += b;
        }
        for (a, b) in self.g_clf.iter_mut().zip(&other.g_clf) {
            *a += b;
        }
        if let (Some(a), Some(b)) = (&mut self.g_conv, &other.g_conv) {
            a.add_scaled(b, 1.0);
        }
    }
}

/// The three-block UIS classifier.
#[derive(Debug, Clone)]
pub struct UisClassifier {
    /// UIS-feature embedding block (`f_θR`).
    pub r_block: Mlp,
    /// Tuple embedding block (`f_θτ`).
    pub t_block: Mlp,
    /// Classification block (`f_θclf`), outputs a logit.
    pub clf_block: Mlp,
    /// Task-wise conversion matrix `Mcp` (memory-augmented variant only).
    pub conversion: Option<Matrix>,
    cfg: ClassifierConfig,
}

impl UisClassifier {
    /// Randomly initialized classifier with the given architecture.
    pub fn new<R: Rng + ?Sized>(cfg: ClassifierConfig, rng: &mut R) -> Self {
        let r_block = Mlp::new(&[cfg.ku, cfg.ne], Activation::Relu, Activation::Relu, rng);
        let t_block = Mlp::new(&[cfg.nr, cfg.ne], Activation::Relu, Activation::Relu, rng);
        let clf_block = Mlp::new(
            &[cfg.clf_input(), cfg.clf_hidden, 1],
            Activation::Relu,
            Activation::Identity,
            rng,
        );
        let conversion = if cfg.use_conversion {
            // Near-identity initialization: [I | I] / 2 plus noise, so the
            // conversion starts as an average of the two embeddings rather
            // than scrambling them.
            let ne = cfg.ne;
            let mut m = Matrix::uniform(ne, 2 * ne, 0.02, rng);
            for i in 0..ne {
                m.set(i, i, m.get(i, i) + 0.5);
                m.set(i, ne + i, m.get(i, ne + i) + 0.5);
            }
            Some(m)
        } else {
            None
        };
        Self {
            r_block,
            t_block,
            clf_block,
            conversion,
            cfg,
        }
    }

    /// The architecture this classifier was built with.
    pub fn config(&self) -> &ClassifierConfig {
        &self.cfg
    }

    /// Forward pass producing the interestingness logit.
    ///
    /// # Panics
    /// Panics when input widths disagree with the architecture.
    pub fn forward(&self, v_r: &[f64], v_t: &[f64]) -> ForwardCache {
        assert_eq!(v_r.len(), self.cfg.ku, "vR width mismatch");
        assert_eq!(v_t.len(), self.cfg.nr, "vτ width mismatch");
        let r_cache = self.r_block.forward_cache(v_r);
        let t_cache = self.t_block.forward_cache(v_t);
        let mut concat = Vec::with_capacity(2 * self.cfg.ne);
        concat.extend_from_slice(r_cache.output());
        concat.extend_from_slice(t_cache.output());

        let (clf_in, converted) = match &self.conversion {
            Some(mcp) => {
                let z = mcp.matvec(&concat);
                (z.clone(), Some(z))
            }
            None => (concat.clone(), None),
        };
        let clf_cache = self.clf_block.forward_cache(&clf_in);
        let logit = clf_cache.output()[0];
        ForwardCache {
            r_cache,
            t_cache,
            concat,
            converted,
            clf_cache,
            logit,
        }
    }

    /// Convenience: logit only.
    pub fn logit(&self, v_r: &[f64], v_t: &[f64]) -> f64 {
        self.forward(v_r, v_t).logit
    }

    /// Batched inference: logits for many tuples sharing one UIS feature
    /// vector — the pool-scoring shape of the online phase, where a whole
    /// retrieval pool is predicted against a single user's `vR`.
    ///
    /// The UIS embedding is computed once, the tuple embeddings and
    /// classification run as one [`Mlp::forward_batch`] pass per block, and
    /// the conversion (when present) splits into a pool-constant left half
    /// plus one batched product: `Mcp·[embR | embτ] = Mcp_L·embR +
    /// Mcp_R·embτ`, where `Mcp_L·embR` is shared by every tuple. Every
    /// logit agrees with [`UisClassifier::logit`] on the same tuple to
    /// within rounding (the split regroups the conversion sum), depends
    /// only on its own tuple, and is deterministic — batch composition
    /// never changes a tuple's logit.
    ///
    /// Pools of at least [`UisClassifier::PARALLEL_MIN_ROWS`] rows are
    /// fanned across the shared worker pool in contiguous row blocks (see
    /// [`parallel_flat_map_chunks`](crate::parallel::parallel_flat_map_chunks));
    /// because each logit depends only on
    /// its own tuple, the output is bit-identical to the serial pass at
    /// any worker count.
    ///
    /// ```
    /// use lte_core::classifier::{ClassifierConfig, UisClassifier};
    /// use lte_data::rng::seeded;
    ///
    /// let cfg = ClassifierConfig { ku: 4, nr: 3, ne: 8, clf_hidden: 8, use_conversion: true };
    /// let clf = UisClassifier::new(cfg, &mut seeded(0));
    /// let v_r = vec![1.0, 0.0, 1.0, 0.0];
    /// let pool = vec![vec![0.1, 0.2, 0.3], vec![0.4, 0.5, 0.6]];
    /// let logits = clf.logits_batch(&v_r, &pool);
    /// assert_eq!(logits.len(), 2);
    /// // Batched logits agree with the per-point path on every tuple.
    /// assert!((logits[0] - clf.logit(&v_r, &pool[0])).abs() < 1e-12);
    /// ```
    ///
    /// # Panics
    /// Panics when input widths disagree with the architecture.
    pub fn logits_batch(&self, v_r: &[f64], tuples: &[Vec<f64>]) -> Vec<f64> {
        assert_eq!(v_r.len(), self.cfg.ku, "vR width mismatch");
        self.chunked(tuples, |chunk| self.logits_block(v_r, chunk))
    }

    /// Single-precision batched inference — [`UisClassifier::logits_batch`]
    /// on the `f32` kernels ([`Mlp::forward_batch_f32`]), for pool
    /// *ranking* where only the order of logits matters. Logits track the
    /// `f64` path to within `f32` round-off accumulated over the blocks
    /// (see [`ScoringPrecision`](crate::config::ScoringPrecision) for the
    /// accuracy/rank contract); the `f64` path stays the reference for
    /// training and gradcheck. Parallelizes over row blocks exactly like
    /// the `f64` path, with the same worker-count independence.
    ///
    /// # Panics
    /// Panics when input widths disagree with the architecture.
    pub fn logits_batch_f32(&self, v_r: &[f64], tuples: &[Vec<f64>]) -> Vec<f32> {
        assert_eq!(v_r.len(), self.cfg.ku, "vR width mismatch");
        self.chunked(tuples, |chunk| self.logits_block_f32(v_r, chunk))
    }

    /// i8-quantized batched inference — [`UisClassifier::logits_batch`]
    /// on the quantized ranking kernels ([`Mlp::forward_batch_ranked`]),
    /// for **argmax-order ranking only**: quantization error is
    /// percent-level, far outside the `f32` noise floor, so the raw values
    /// must never feed thresholds or calibration (see
    /// [`ScoringPrecision::Ranked`](crate::config::ScoringPrecision) for
    /// the contract). Quantization scales are row-local and the integer
    /// accumulation is exact, so block-parallel dispatch stays bitwise
    /// identical to the serial pass at any worker count.
    ///
    /// # Panics
    /// Panics when input widths disagree with the architecture.
    pub fn logits_batch_ranked(&self, v_r: &[f64], tuples: &[Vec<f64>]) -> Vec<f32> {
        assert_eq!(v_r.len(), self.cfg.ku, "vR width mismatch");
        self.chunked(tuples, |chunk| self.logits_block_ranked(v_r, chunk))
    }

    /// Score a retrieval pool at the configured precision, always returning
    /// `f64` logits (Fast-mode `f32` logits are promoted exactly). Thin
    /// shim over the unified [`Scorer::score`](crate::scorer::Scorer::score)
    /// surface, kept so existing callers compile unchanged; see
    /// [`ScoringPrecision`](crate::config::ScoringPrecision) for when
    /// `Fast` is safe.
    pub fn score_pool(
        &self,
        v_r: &[f64],
        tuples: &[Vec<f64>],
        precision: crate::config::ScoringPrecision,
    ) -> Vec<f64> {
        use crate::scorer::{ScoreRequest, Scorer};
        self.score(&ScoreRequest::new(v_r, tuples, precision))
    }

    /// Minimum pool rows before scoring fans out over row blocks — alias
    /// of [`scorer::PARALLEL_MIN_ROWS`](crate::scorer::PARALLEL_MIN_ROWS),
    /// kept for existing callers.
    pub const PARALLEL_MIN_ROWS: usize = crate::scorer::PARALLEL_MIN_ROWS;
    /// Rows per parallel block — alias of
    /// [`scorer::PARALLEL_BLOCK_ROWS`](crate::scorer::PARALLEL_BLOCK_ROWS).
    const PARALLEL_BLOCK_ROWS: usize = crate::scorer::PARALLEL_BLOCK_ROWS;

    /// Dispatch a per-block scorer serially or over the shared worker pool
    /// depending on pool size. Output equals the serial pass bitwise
    /// because every scoring path maps each row independently.
    fn chunked<O, F>(&self, tuples: &[Vec<f64>], f: F) -> Vec<O>
    where
        O: Send,
        F: Fn(&[Vec<f64>]) -> Vec<O> + Sync,
    {
        let threads = crate::parallel::default_threads();
        if tuples.len() < Self::PARALLEL_MIN_ROWS || threads <= 1 {
            return f(tuples);
        }
        crate::parallel::parallel_flat_map_chunks(tuples, Self::PARALLEL_BLOCK_ROWS, threads, f)
    }

    /// Serial `f64` scoring of one row block (see
    /// [`UisClassifier::logits_batch`] for the algebra).
    fn logits_block(&self, v_r: &[f64], tuples: &[Vec<f64>]) -> Vec<f64> {
        let x = Matrix::from_rows(tuples, self.cfg.nr);
        let r_emb = self.r_block.forward(v_r);
        let t_emb = self.t_block.forward_batch(&x);
        let ne = self.cfg.ne;

        let clf_in = match &self.conversion {
            Some(mcp) => {
                // r_const = Mcp_L·embR (constant over the pool); Mcp_R as
                // its own matrix so the batch product is embτ·Mcp_Rᵀ.
                let (r_const, mcp_right) = self.split_conversion(mcp, &r_emb);
                let mut z = t_emb.matmul_nt(&mcp_right);
                z.add_row_bias(&r_const);
                z
            }
            None => {
                // Per-row concatenation [embR | embτ] with embR broadcast.
                let mut concat = Matrix::zeros(tuples.len(), 2 * ne);
                for r in 0..tuples.len() {
                    let row = concat.row_mut(r);
                    row[..ne].copy_from_slice(&r_emb);
                    row[ne..].copy_from_slice(t_emb.row(r));
                }
                concat
            }
        };
        self.clf_block.forward_batch(&clf_in).data().to_vec()
    }

    /// Serial `f32` scoring of one row block: same algebra as
    /// [`UisClassifier::logits_block`], with the pool-constant pieces
    /// (UIS embedding, conversion split) computed once in `f64` and
    /// demoted, and every per-tuple matmul on the `f32` kernels.
    fn logits_block_f32(&self, v_r: &[f64], tuples: &[Vec<f64>]) -> Vec<f32> {
        let x = Matrix32::from_rows(tuples, self.cfg.nr);
        let r_emb = self.r_block.forward(v_r);
        let t_emb = self.t_block.forward_batch_f32(&x);
        let ne = self.cfg.ne;

        let clf_in = match &self.conversion {
            Some(mcp) => {
                let (r_const, mcp_right) = self.split_conversion(mcp, &r_emb);
                let r_const32: Vec<f32> = r_const.iter().map(|&v| v as f32).collect();
                // The pool-constant `r_const` rides the kernel epilogue
                // instead of a second full pass over the product.
                t_emb.matmul_nt_ep(
                    &Matrix32::from_f64(&mcp_right),
                    Epilogue::bias_only(&r_const32),
                )
            }
            None => {
                let r_emb32: Vec<f32> = r_emb.iter().map(|&v| v as f32).collect();
                let mut concat = Matrix32::zeros(tuples.len(), 2 * ne);
                for r in 0..tuples.len() {
                    let row = concat.row_mut(r);
                    row[..ne].copy_from_slice(&r_emb32);
                    row[ne..].copy_from_slice(t_emb.row(r));
                }
                concat
            }
        };
        self.clf_block.forward_batch_f32(&clf_in).data().to_vec()
    }

    /// Serial i8-quantized scoring of one row block: same algebra as
    /// [`UisClassifier::logits_block_f32`], with every per-tuple matmul on
    /// the quantized ranking kernels (the pool-constant UIS embedding and
    /// conversion split stay in `f64`, exactly as in the `f32` path, and
    /// fold into the fused epilogue as the bias).
    fn logits_block_ranked(&self, v_r: &[f64], tuples: &[Vec<f64>]) -> Vec<f32> {
        let x = Matrix32::from_rows(tuples, self.cfg.nr);
        let r_emb = self.r_block.forward(v_r);
        let t_emb = self.t_block.forward_batch_ranked(&x);
        let ne = self.cfg.ne;

        let clf_in = match &self.conversion {
            Some(mcp) => {
                let (r_const, mcp_right) = self.split_conversion(mcp, &r_emb);
                let r_const32: Vec<f32> = r_const.iter().map(|&v| v as f32).collect();
                matmul_nt_ranked(
                    &t_emb,
                    &Matrix32::from_f64(&mcp_right),
                    Epilogue::bias_only(&r_const32),
                )
            }
            None => {
                let r_emb32: Vec<f32> = r_emb.iter().map(|&v| v as f32).collect();
                let mut concat = Matrix32::zeros(tuples.len(), 2 * ne);
                for r in 0..tuples.len() {
                    let row = concat.row_mut(r);
                    row[..ne].copy_from_slice(&r_emb32);
                    row[ne..].copy_from_slice(t_emb.row(r));
                }
                concat
            }
        };
        self.clf_block.forward_batch_ranked(&clf_in).data().to_vec()
    }

    /// Split the conversion `Mcp·[embR | embτ]` into the pool-constant
    /// left product `Mcp_L·embR` and the right half `Mcp_R` as its own
    /// matrix (so the batch product is `embτ·Mcp_Rᵀ`).
    fn split_conversion(&self, mcp: &Matrix, r_emb: &[f64]) -> (Vec<f64>, Matrix) {
        let ne = self.cfg.ne;
        let mut r_const = vec![0.0; ne];
        let mut mcp_right = Matrix::zeros(ne, ne);
        for (i, rc) in r_const.iter_mut().enumerate() {
            let row = mcp.row(i);
            *rc = lte_nn::matrix::dot(&row[..ne], r_emb);
            mcp_right.row_mut(i).copy_from_slice(&row[ne..]);
        }
        (r_const, mcp_right)
    }

    /// Convenience: hard prediction (`logit > 0`).
    pub fn predict(&self, v_r: &[f64], v_t: &[f64]) -> bool {
        self.logit(v_r, v_t) > 0.0
    }

    /// Backward pass from `dL/dlogit`, accumulating into `grads`.
    pub fn backward(&self, cache: &ForwardCache, dlogit: f64, grads: &mut Grads) {
        let d_clf_in = self
            .clf_block
            .backward(&cache.clf_cache, &[dlogit], &mut grads.g_clf);

        let d_concat = match (&self.conversion, &cache.converted) {
            (Some(mcp), Some(_)) => {
                // z = Mcp·cat: dMcp = d_z ⊗ cat, dcat = Mcpᵀ·d_z.
                if let Some(gm) = &mut grads.g_conv {
                    gm.add_outer(&d_clf_in, &cache.concat, 1.0);
                }
                mcp.matvec_t(&d_clf_in)
            }
            _ => d_clf_in,
        };

        let ne = self.cfg.ne;
        self.r_block
            .backward(&cache.r_cache, &d_concat[..ne], &mut grads.g_r);
        self.t_block
            .backward(&cache.t_cache, &d_concat[ne..], &mut grads.g_t);
    }

    /// BCE loss and gradient of one example; accumulates into `grads` and
    /// returns the loss.
    pub fn loss_backward(&self, v_r: &[f64], example: &Example, grads: &mut Grads) -> f64 {
        self.loss_backward_weighted(v_r, example, grads, 1.0)
    }

    /// [`UisClassifier::loss_backward`] with a positive-class weight.
    ///
    /// Few-shot exploration labels are heavily imbalanced when the interest
    /// region is small (a handful of positives among `B` labels); weighting
    /// positive examples by `pos_weight > 1` keeps the adapted classifier
    /// from collapsing to the all-negative prediction.
    pub fn loss_backward_weighted(
        &self,
        v_r: &[f64],
        example: &Example,
        grads: &mut Grads,
        pos_weight: f64,
    ) -> f64 {
        let cache = self.forward(v_r, &example.0);
        let target = if example.1 { 1.0 } else { 0.0 };
        let (mut loss, mut dlogit) = bce_with_logits(cache.logit, target);
        if example.1 && pos_weight != 1.0 {
            loss *= pos_weight;
            dlogit *= pos_weight;
        }
        self.backward(&cache, dlogit, grads);
        loss
    }

    /// Positive-class weight for a labeled set: `sqrt(n_neg / n_pos)`,
    /// clamped to `[1, 5]` — a gentle re-balancing that never *downweights*
    /// positives and caps the correction for extreme imbalance.
    pub fn balance_weight(examples: &[Example]) -> f64 {
        let pos = examples.iter().filter(|(_, y)| *y).count();
        let neg = examples.len() - pos;
        if pos == 0 || neg == 0 {
            1.0
        } else {
            (neg as f64 / pos as f64).sqrt().clamp(1.0, 5.0)
        }
    }

    /// Apply an SGD step to all blocks (and `Mcp` if present).
    pub fn sgd_step(&mut self, grads: &Grads, lr: f64) {
        self.r_block.sgd_step(&grads.g_r, lr);
        self.t_block.sgd_step(&grads.g_t, lr);
        self.clf_block.sgd_step(&grads.g_clf, lr);
        if let (Some(m), Some(g)) = (&mut self.conversion, &grads.g_conv) {
            m.add_scaled(g, -lr);
        }
    }

    /// Train on labeled examples with per-sample SGD — used for local
    /// adaptation (Eq. 12) and for the from-scratch `Basic` variant.
    /// Returns the average loss of the *final* pass.
    pub fn train_local(&mut self, v_r: &[f64], examples: &[Example], steps: usize, lr: f64) -> f64 {
        self.train_local_weighted(v_r, examples, steps, lr, 1.0)
    }

    /// [`UisClassifier::train_local`] with a positive-class weight (see
    /// [`UisClassifier::balance_weight`]).
    pub fn train_local_weighted(
        &mut self,
        v_r: &[f64],
        examples: &[Example],
        steps: usize,
        lr: f64,
        pos_weight: f64,
    ) -> f64 {
        let mut last_avg = 0.0;
        for _ in 0..steps {
            let mut total = 0.0;
            for ex in examples {
                let mut grads = Grads::zeros_like(self);
                total += self.loss_backward_weighted(v_r, ex, &mut grads, pos_weight);
                self.sgd_step(&grads, lr);
            }
            last_avg = total / examples.len().max(1) as f64;
        }
        last_avg
    }

    /// Average BCE loss over examples (no updates).
    pub fn loss_on(&self, v_r: &[f64], examples: &[Example]) -> f64 {
        if examples.is_empty() {
            return 0.0;
        }
        examples
            .iter()
            .map(|(x, y)| {
                let logit = self.logit(v_r, x);
                bce_with_logits(logit, if *y { 1.0 } else { 0.0 }).0
            })
            .sum::<f64>()
            / examples.len() as f64
    }

    /// Classification accuracy over examples.
    pub fn accuracy_on(&self, v_r: &[f64], examples: &[Example]) -> f64 {
        if examples.is_empty() {
            return 0.0;
        }
        let correct = examples
            .iter()
            .filter(|(x, y)| self.predict(v_r, x) == *y)
            .count();
        correct as f64 / examples.len() as f64
    }
}

/// The unified scoring surface (see [`crate::scorer`]): the classifier's
/// serial block kernels plugged into the shared block-cutting policy.
/// [`Scorer::score`](crate::scorer::Scorer::score) on a classifier is
/// bit-identical to [`UisClassifier::score_pool`] at any worker count.
impl crate::scorer::Scorer for UisClassifier {
    fn vr_width(&self) -> usize {
        self.cfg.ku
    }

    fn score_block(
        &self,
        v_r: &[f64],
        rows: &[Vec<f64>],
        precision: crate::config::ScoringPrecision,
    ) -> Vec<f64> {
        match precision {
            crate::config::ScoringPrecision::Exact => self.logits_block(v_r, rows),
            crate::config::ScoringPrecision::Fast => self
                .logits_block_f32(v_r, rows)
                .into_iter()
                .map(f64::from)
                .collect(),
            crate::config::ScoringPrecision::Ranked => self
                .logits_block_ranked(v_r, rows)
                .into_iter()
                .map(f64::from)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lte_data::rng::seeded;

    fn cfg(use_conversion: bool) -> ClassifierConfig {
        ClassifierConfig {
            ku: 8,
            nr: 6,
            ne: 10,
            clf_hidden: 12,
            use_conversion,
        }
    }

    /// Toy task: tuple interesting iff feature 0 > 0.5 (vR held constant).
    fn toy_examples() -> Vec<Example> {
        let mut ex = Vec::new();
        for i in 0..40 {
            let v = i as f64 / 40.0;
            let x = vec![v, 1.0 - v, 0.3, v * v, 0.5, 0.1];
            ex.push((x, v > 0.5));
        }
        ex
    }

    #[test]
    fn forward_shapes_and_clf_input() {
        assert_eq!(cfg(true).clf_input(), 10);
        assert_eq!(cfg(false).clf_input(), 20);
        let mut rng = seeded(0);
        let c = UisClassifier::new(cfg(true), &mut rng);
        let cache = c.forward(&[0.0; 8], &[0.0; 6]);
        assert!(cache.logit.is_finite());
        assert!(c.conversion.is_some());
        let c = UisClassifier::new(cfg(false), &mut rng);
        assert!(c.conversion.is_none());
    }

    #[test]
    fn training_fits_toy_task_with_and_without_conversion() {
        for use_conv in [false, true] {
            let mut rng = seeded(1);
            let mut c = UisClassifier::new(cfg(use_conv), &mut rng);
            let v_r = vec![1.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 0.0];
            let examples = toy_examples();
            let before = c.accuracy_on(&v_r, &examples);
            c.train_local(&v_r, &examples, 60, 0.05);
            let after = c.accuracy_on(&v_r, &examples);
            assert!(
                after >= 0.9,
                "conversion={use_conv}: accuracy {before} -> {after}"
            );
        }
    }

    #[test]
    fn loss_decreases_during_training() {
        let mut rng = seeded(2);
        let mut c = UisClassifier::new(cfg(true), &mut rng);
        let v_r = vec![0.0; 8];
        let examples = toy_examples();
        let before = c.loss_on(&v_r, &examples);
        c.train_local(&v_r, &examples, 30, 0.05);
        let after = c.loss_on(&v_r, &examples);
        assert!(after < before, "loss {before} -> {after}");
    }

    #[test]
    fn gradients_match_finite_differences_through_all_blocks() {
        let mut rng = seeded(3);
        let c = UisClassifier::new(cfg(true), &mut rng);
        let v_r: Vec<f64> = (0..8).map(|i| (i % 2) as f64).collect();
        let x: Vec<f64> = (0..6).map(|i| 0.1 * i as f64).collect();
        let example = (x, true);

        let mut grads = Grads::zeros_like(&c);
        c.loss_backward(&v_r, &example, &mut grads);

        // Check the conversion-matrix gradient numerically (the most
        // hand-written part of the backward pass).
        let h = 1e-6;
        let mcp = c.conversion.clone().unwrap();
        let g = grads.g_conv.as_ref().unwrap();
        for idx in [0usize, 5, 37, mcp.rows() * mcp.cols() - 1] {
            let mut plus = c.clone();
            let mut m = mcp.clone();
            m.data_mut()[idx] += h;
            plus.conversion = Some(m);
            let mut minus = c.clone();
            let mut m = mcp.clone();
            m.data_mut()[idx] -= h;
            minus.conversion = Some(m);
            let loss = |cl: &UisClassifier| cl.loss_on(&v_r, std::slice::from_ref(&example));
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * h);
            let analytic = g.data()[idx];
            assert!(
                (numeric - analytic).abs() < 1e-5,
                "Mcp[{idx}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn logits_batch_matches_per_point() {
        for use_conv in [false, true] {
            let mut rng = seeded(6);
            let c = UisClassifier::new(cfg(use_conv), &mut rng);
            let v_r: Vec<f64> = (0..8).map(|i| ((i * i) % 3) as f64 * 0.5).collect();
            let tuples: Vec<Vec<f64>> = (0..23)
                .map(|i| (0..6).map(|j| ((i * 6 + j) as f64 * 0.17).sin()).collect())
                .collect();
            let batch = c.logits_batch(&v_r, &tuples);
            assert_eq!(batch.len(), tuples.len());
            for (i, t) in tuples.iter().enumerate() {
                let solo = c.logit(&v_r, t);
                assert!(
                    (batch[i] - solo).abs() <= 1e-12,
                    "conversion={use_conv}, tuple {i}: {} vs {solo}",
                    batch[i]
                );
            }
            assert!(c.logits_batch(&v_r, &[]).is_empty());
            // Batch composition never changes a tuple's logit.
            let half = c.logits_batch(&v_r, &tuples[..11]);
            for (a, b) in half.iter().zip(&batch) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn grads_scale_and_add() {
        let mut rng = seeded(4);
        let c = UisClassifier::new(cfg(true), &mut rng);
        let v_r = vec![1.0; 8];
        let ex = (vec![0.5; 6], false);
        let mut a = Grads::zeros_like(&c);
        c.loss_backward(&v_r, &ex, &mut a);
        let mut b = Grads::zeros_like(&c);
        b.add(&a);
        b.add(&a);
        b.scale(0.5);
        for (x, y) in a.g_r.iter().zip(&b.g_r) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "vR width mismatch")]
    fn wrong_vr_width_panics() {
        let mut rng = seeded(5);
        let c = UisClassifier::new(cfg(false), &mut rng);
        c.forward(&[0.0; 3], &[0.0; 6]);
    }
}
