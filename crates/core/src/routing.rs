//! Meta-feature task routing over a library of trained pipelines.
//!
//! One meta-learner per subspace bootstraps a single exploration flavor;
//! serving real traffic means holding *several* trained [`LtePipeline`]s —
//! specialists for different interest shapes (broad convex regions vs
//! fragmented multi-part ones, different decompositions) — and picking the
//! best match per incoming session. The [`PipelineRegistry`] tags every
//! pipeline with the meta-feature centroid of (a deterministic sample of)
//! its training tasks; the [`Router`] extracts the same fixed-order
//! features from an incoming session's ground truth + probe rows (see
//! [`crate::meta_features`]) and picks the nearest centroid.
//!
//! Routing is **explainable and deterministic** by construction: every
//! [`RoutingDecision`] carries the per-candidate distances, the chosen
//! entry's nearest meta-tasks, and per-feature deltas against the chosen
//! centroid; ties break by the stable registry index; the only randomness
//! is the seeded probe-row subsample, and it is recorded on the decision.

use std::sync::Arc;

use crate::feature::expansion_degree;
use crate::meta_features::{FeatureDelta, MetaFeatures};
use crate::meta_task::try_generate_task_set;
use crate::oracle::ConjunctiveOracle;
use crate::pipeline::LtePipeline;
use lte_data::rng::{derive_seed, seeded};
use rand::Rng;

/// Where one registry tag came from: the `task_index`-th sampled meta-task
/// of subspace `subspace`, with its extracted features.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskTag {
    /// Subspace index within the entry's pipeline.
    pub subspace: usize,
    /// Index within that subspace's sampled tag tasks.
    pub task_index: usize,
    /// The task's meta-feature vector.
    pub features: MetaFeatures,
}

/// One registered pipeline plus its meta-feature tagging.
#[derive(Debug, Clone)]
pub struct RegistryEntry {
    name: String,
    pipeline: Arc<LtePipeline>,
    centroid: MetaFeatures,
    task_tags: Vec<TaskTag>,
}

impl RegistryEntry {
    /// The entry's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The trained pipeline.
    pub fn pipeline(&self) -> &Arc<LtePipeline> {
        &self.pipeline
    }

    /// Centroid of the entry's tag-task features.
    pub fn centroid(&self) -> &MetaFeatures {
        &self.centroid
    }

    /// The sampled training-task tags powering nearest-task explanations.
    pub fn task_tags(&self) -> &[TaskTag] {
        &self.task_tags
    }
}

/// An ordered library of trained pipelines tagged with the meta-feature
/// centroids of their training tasks. Entry order is the routing
/// tie-break, so it is part of the determinism contract.
#[derive(Debug, Clone, Default)]
pub struct PipelineRegistry {
    entries: Vec<RegistryEntry>,
}

impl PipelineRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered pipelines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no pipeline is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries, in registration order.
    pub fn entries(&self) -> &[RegistryEntry] {
        &self.entries
    }

    /// Entry at `index`.
    pub fn get(&self, index: usize) -> &RegistryEntry {
        &self.entries[index]
    }

    /// Index of the entry named `name`, if any.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.name == name)
    }

    /// Register a trained pipeline, tagging it by regenerating
    /// `tag_tasks_per_subspace` meta-tasks per subspace from the pipeline's
    /// own contexts and config (seeded by `derive_seed(seed, subspace)` —
    /// fully deterministic, so re-registering reproduces the same
    /// centroid). Returns the entry index.
    ///
    /// The tag tasks are drawn in the pipeline's *training* UIS mode, so a
    /// specialist trained on, say, single-hull broad regions gets a
    /// centroid with high selectivity/dispersion and a fragmented-region
    /// specialist gets a low one — exactly the signal the router needs.
    ///
    /// # Panics
    /// Panics when the pipeline's contexts cannot generate tasks (see
    /// [`TaskGenError`](crate::meta_task::TaskGenError)).
    pub fn register(
        &mut self,
        name: &str,
        pipeline: Arc<LtePipeline>,
        tag_tasks_per_subspace: usize,
        seed: u64,
    ) -> usize {
        let cfg = pipeline.config();
        let n_subspaces = pipeline.subspaces().len();
        let l = expansion_degree(cfg.task.ku, cfg.net.expansion_frac);
        let mut task_tags = Vec::new();
        for (s, ctx) in pipeline.contexts().iter().enumerate() {
            let mut rng = seeded(derive_seed(seed, s as u64));
            let tasks = try_generate_task_set(ctx, &cfg.task, l, tag_tasks_per_subspace, &mut rng)
                .unwrap_or_else(|e| panic!("cannot tag pipeline '{name}': {e}"));
            for (t, task) in tasks.iter().enumerate() {
                task_tags.push(TaskTag {
                    subspace: s,
                    task_index: t,
                    features: MetaFeatures::from_task(ctx, task, n_subspaces),
                });
            }
        }
        let centroid = MetaFeatures::centroid(task_tags.iter().map(|t| &t.features));
        self.register_tagged(name, pipeline, centroid, task_tags)
    }

    /// Register a pipeline with precomputed tagging — the persistence
    /// load path (see [`crate::persist::registry_from_bytes`]). Returns
    /// the entry index.
    pub fn register_tagged(
        &mut self,
        name: &str,
        pipeline: Arc<LtePipeline>,
        centroid: MetaFeatures,
        task_tags: Vec<TaskTag>,
    ) -> usize {
        self.entries.push(RegistryEntry {
            name: name.to_string(),
            pipeline,
            centroid,
            task_tags,
        });
        self.entries.len() - 1
    }
}

/// One candidate's score inside a routing decision.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateScore {
    /// Registry entry index.
    pub index: usize,
    /// Entry name.
    pub name: String,
    /// Weighted distance from the session features to the entry centroid
    /// (`f64::INFINITY` for incompatible entries).
    pub distance: f64,
    /// Whether the entry's subspace decomposition matches the session's.
    pub compatible: bool,
}

/// One nearest training task of the chosen entry — the "this session looks
/// like tasks the pipeline trained on" half of the explanation.
#[derive(Debug, Clone, PartialEq)]
pub struct NearestTask {
    /// Subspace index within the chosen pipeline.
    pub subspace: usize,
    /// Tag-task index within that subspace.
    pub task_index: usize,
    /// Weighted feature distance to the session.
    pub distance: f64,
}

/// The auditable outcome of routing one session: which entry was chosen
/// and *why*. Equality is structural, so determinism tests can compare
/// whole decisions.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingDecision {
    /// Index of the chosen registry entry.
    pub chosen: usize,
    /// Name of the chosen entry.
    pub chosen_name: String,
    /// The session's extracted meta-features.
    pub session_features: MetaFeatures,
    /// Every entry's distance, in registry order.
    pub candidates: Vec<CandidateScore>,
    /// The chosen entry's nearest training tasks, ascending by distance.
    pub nearest_meta_tasks: Vec<NearestTask>,
    /// Per-feature session-vs-centroid comparison against the chosen
    /// entry, in [`FEATURE_NAMES`](crate::meta_features::FEATURE_NAMES)
    /// order.
    pub feature_deltas: Vec<FeatureDelta>,
    /// Probe rows actually used for feature extraction (after the seeded
    /// subsample).
    pub probe_rows_used: usize,
    /// The router seed in force (provenance of the probe subsample).
    pub seed: u64,
}

impl RoutingDecision {
    /// Render the decision as a deterministic human-readable explanation:
    /// chosen entry + margin, nearest meta-tasks, and the largest feature
    /// deltas. Identical decisions render identical strings.
    pub fn explanation(&self) -> String {
        let mut out = format!(
            "routed to '{}' (entry {}) at distance {:.4}",
            self.chosen_name, self.chosen, self.candidates[self.chosen].distance
        );
        let runner_up = self
            .candidates
            .iter()
            .filter(|c| c.compatible && c.index != self.chosen)
            .min_by(|a, b| {
                a.distance
                    .partial_cmp(&b.distance)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.index.cmp(&b.index))
            });
        if let Some(r) = runner_up {
            out.push_str(&format!("; runner-up '{}' at {:.4}", r.name, r.distance));
        }
        out.push_str("\nnearest meta-tasks:");
        for t in &self.nearest_meta_tasks {
            out.push_str(&format!(
                " s{}/t{} d={:.4}",
                t.subspace, t.task_index, t.distance
            ));
        }
        // Largest deltas first (stable tie-break by feature order).
        let mut ranked: Vec<&FeatureDelta> = self.feature_deltas.iter().collect();
        ranked.sort_by(|a, b| {
            b.delta
                .abs()
                .partial_cmp(&a.delta.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        out.push_str("\ntop feature deltas:");
        for d in ranked.iter().take(3) {
            out.push_str(&format!(
                " {} {:.3} vs {:.3} (Δ {:+.3})",
                d.name, d.session, d.centroid, d.delta
            ));
        }
        out
    }
}

/// Scores incoming sessions against a [`PipelineRegistry`].
///
/// Deterministic: feature extraction is pure, candidate distances are pure,
/// ties break by the stable registry index, and the only RNG use — the
/// probe-row subsample when the pool exceeds `max_probe_rows` — is seeded
/// and recorded on the decision.
#[derive(Debug, Clone)]
pub struct Router {
    seed: u64,
    k_nearest: usize,
    max_probe_rows: usize,
}

impl Router {
    /// A router with default explanation depth (3 nearest tasks) and probe
    /// cap (256 rows).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            k_nearest: 3,
            max_probe_rows: 256,
        }
    }

    /// Set how many nearest meta-tasks each decision reports.
    pub fn with_k_nearest(mut self, k: usize) -> Self {
        self.k_nearest = k;
        self
    }

    /// Set the probe-row cap (larger pools are subsampled, seeded).
    pub fn with_max_probe_rows(mut self, n: usize) -> Self {
        self.max_probe_rows = n.max(1);
        self
    }

    /// The router's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Route one session: extract its meta-features from `truth` over (a
    /// seeded subsample of) `probe_rows`, score every registry entry, and
    /// return the full decision.
    ///
    /// Only entries whose subspace decomposition equals the truth's are
    /// eligible (a pipeline cannot explore a decomposition it was not
    /// trained on); incompatible entries appear in `candidates` with
    /// infinite distance.
    ///
    /// # Panics
    /// Panics when the registry is empty or no entry is compatible.
    pub fn route(
        &self,
        registry: &PipelineRegistry,
        truth: &ConjunctiveOracle,
        probe_rows: &[Vec<f64>],
    ) -> RoutingDecision {
        assert!(!registry.is_empty(), "cannot route over an empty registry");
        let probe = self.subsample(probe_rows);
        let session_features = MetaFeatures::from_probe(truth, &probe);

        let truth_subspaces: Vec<_> = truth.parts().iter().map(|(s, _)| s.clone()).collect();
        let candidates: Vec<CandidateScore> = registry
            .entries()
            .iter()
            .enumerate()
            .map(|(i, entry)| {
                let compatible = entry.pipeline().subspaces() == truth_subspaces.as_slice();
                let distance = if compatible {
                    session_features.distance(entry.centroid())
                } else {
                    f64::INFINITY
                };
                CandidateScore {
                    index: i,
                    name: entry.name().to_string(),
                    distance,
                    compatible,
                }
            })
            .collect();

        // Strictly-smaller comparison in registry order = stable-index
        // tie-break.
        let chosen = candidates
            .iter()
            .filter(|c| c.compatible)
            .fold(None::<&CandidateScore>, |best, c| match best {
                Some(b) if b.distance <= c.distance => Some(b),
                _ => Some(c),
            })
            .expect("no registry pipeline matches the session's subspace decomposition")
            .index;

        let entry = registry.get(chosen);
        let mut nearest: Vec<NearestTask> = entry
            .task_tags()
            .iter()
            .map(|t| NearestTask {
                subspace: t.subspace,
                task_index: t.task_index,
                distance: session_features.distance(&t.features),
            })
            .collect();
        nearest.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then((a.subspace, a.task_index).cmp(&(b.subspace, b.task_index)))
        });
        nearest.truncate(self.k_nearest);

        let feature_deltas = session_features.deltas(entry.centroid());
        RoutingDecision {
            chosen,
            chosen_name: entry.name().to_string(),
            session_features,
            candidates,
            nearest_meta_tasks: nearest,
            feature_deltas,
            probe_rows_used: probe.len(),
            seed: self.seed,
        }
    }

    /// Seeded subsample of the probe pool: a partial Fisher–Yates pick of
    /// `max_probe_rows` indices, returned in ascending row order so
    /// downstream extraction sees a stable prefix-like ordering.
    fn subsample(&self, probe_rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        if probe_rows.len() <= self.max_probe_rows {
            return probe_rows.to_vec();
        }
        let mut rng = seeded(derive_seed(self.seed, 0));
        let mut indices: Vec<usize> = (0..probe_rows.len()).collect();
        for i in 0..self.max_probe_rows {
            let j = rng.random_range(i..indices.len());
            indices.swap(i, j);
        }
        let mut picked = indices[..self.max_probe_rows].to_vec();
        picked.sort_unstable();
        picked.into_iter().map(|i| probe_rows[i].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LteConfig;
    use crate::uis::UisMode;
    use lte_data::generator::generate_sdss;
    use lte_data::subspace::decompose_sequential;

    fn tiny_pipeline(mode: UisMode, seed: u64) -> Arc<LtePipeline> {
        let table = generate_sdss(2000, 0);
        let mut cfg = LteConfig::reduced();
        cfg.task.mode = mode;
        cfg.train.n_tasks = 30;
        cfg.train.epochs = 1;
        let subspaces = decompose_sequential(4, 2);
        let (p, _) = LtePipeline::offline(&table, subspaces, cfg, seed);
        Arc::new(p)
    }

    fn registry_and_truth() -> (PipelineRegistry, ConjunctiveOracle, Vec<Vec<f64>>) {
        let broad = tiny_pipeline(UisMode::new(1, 12), 5);
        let narrow = tiny_pipeline(UisMode::new(4, 3), 6);
        let truth = broad.generate_truth(UisMode::new(1, 12), 9, 0.15, 0.9);
        let table = generate_sdss(2000, 0);
        let rows: Vec<Vec<f64>> = (0..500).map(|i| table.row(i).unwrap()).collect();
        let mut reg = PipelineRegistry::new();
        reg.register("broad", broad, 8, 100);
        reg.register("narrow", narrow, 8, 100);
        (reg, truth, rows)
    }

    #[test]
    fn registration_is_deterministic() {
        let p = tiny_pipeline(UisMode::new(1, 12), 5);
        let mut a = PipelineRegistry::new();
        a.register("x", Arc::clone(&p), 8, 100);
        let mut b = PipelineRegistry::new();
        b.register("x", p, 8, 100);
        assert_eq!(a.get(0).centroid(), b.get(0).centroid());
        assert_eq!(a.get(0).task_tags(), b.get(0).task_tags());
        assert_eq!(a.index_of("x"), Some(0));
        assert_eq!(a.index_of("y"), None);
    }

    #[test]
    fn route_is_deterministic_with_full_explanation() {
        let (reg, truth, rows) = registry_and_truth();
        let router = Router::new(42);
        let a = router.route(&reg, &truth, &rows);
        let b = router.route(&reg, &truth, &rows);
        assert_eq!(a, b, "routing is a pure function of its inputs");
        assert_eq!(a.candidates.len(), 2);
        assert!(!a.nearest_meta_tasks.is_empty());
        assert_eq!(a.feature_deltas.len(), crate::meta_features::FEATURE_COUNT);
        assert!(!a.explanation().is_empty());
        assert_eq!(a.explanation(), b.explanation());
        assert!(a.probe_rows_used <= 256);
        assert_eq!(a.seed, 42);
        // Nearest tasks come back ascending by distance.
        for w in a.nearest_meta_tasks.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn incompatible_decompositions_are_excluded() {
        let (mut reg, truth, rows) = registry_and_truth();
        // A third pipeline over a different decomposition (1D subspaces).
        let table = generate_sdss(2000, 0);
        let mut cfg = LteConfig::reduced();
        cfg.train.n_tasks = 30;
        cfg.train.epochs = 1;
        let (p, _) = LtePipeline::offline(&table, decompose_sequential(4, 1), cfg, 8);
        reg.register("one_dim", Arc::new(p), 8, 100);

        let decision = Router::new(1).route(&reg, &truth, &rows);
        let odd = &decision.candidates[2];
        assert!(!odd.compatible);
        assert_eq!(odd.distance, f64::INFINITY);
        assert_ne!(decision.chosen, 2);
    }

    #[test]
    fn probe_subsample_is_seeded_and_capped() {
        let (reg, truth, rows) = registry_and_truth();
        let router = Router::new(7).with_max_probe_rows(64);
        let a = router.route(&reg, &truth, &rows);
        assert_eq!(a.probe_rows_used, 64);
        // Different seed, possibly different subsample — but still a valid,
        // deterministic decision.
        let b = Router::new(8)
            .with_max_probe_rows(64)
            .route(&reg, &truth, &rows);
        assert_eq!(b.probe_rows_used, 64);
        assert_eq!(a, router.route(&reg, &truth, &rows));
    }

    #[test]
    #[should_panic(expected = "empty registry")]
    fn empty_registry_panics() {
        let (_, truth, rows) = registry_and_truth();
        Router::new(0).route(&PipelineRegistry::new(), &truth, &rows);
    }
}
