//! UIS feature vectors and their heuristic expansion (§VI-A).
//!
//! The classifier's first input summarizes *which parts of the subspace the
//! user finds interesting*: one bit per `Cs` cluster center, set when the
//! center's label is positive. Because `ks` is small (it equals the number
//! of tuples a user will label), the raw vector is sparse; the paper
//! therefore *expands* it over the richer `Cu` summary: every positive `Cs`
//! bit turns on the `l` nearest `Cu` centers (via the precomputed `Ps`
//! matrix), and the final feature vector `vR ∈ R^ku` is the union of those
//! neighbourhoods. Bit positions are fixed across training and online use,
//! which is what makes UIS features comparable across tasks.

use lte_cluster::ProximityMatrix;

/// Build the expanded UIS feature vector `vR ∈ {0,1}^ku`.
///
/// * `cs_labels[i]` — the label of the i-th `Cs` center (support tuple),
/// * `ps` — the `ks × ku` proximity matrix,
/// * `l` — expansion degree (the paper defaults to `0.1·ku`).
///
/// # Panics
/// Panics when `cs_labels.len() != ps.n_rows()`.
pub fn uis_feature_vector(cs_labels: &[bool], ps: &ProximityMatrix, l: usize) -> Vec<f64> {
    assert_eq!(
        cs_labels.len(),
        ps.n_rows(),
        "one label per Cs center required"
    );
    let ku = ps.n_cols();
    let mut v = vec![0.0; ku];
    for (i, &positive) in cs_labels.iter().enumerate() {
        if !positive {
            continue;
        }
        for j in ps.k_nearest(i, l.max(1), true) {
            v[j] = 1.0;
        }
    }
    v
}

/// Expansion degree `l` from the configured fraction of `ku`.
pub fn expansion_degree(ku: usize, frac: f64) -> usize {
    ((ku as f64 * frac).round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps_for(cs: &[Vec<f64>], cu: &[Vec<f64>]) -> ProximityMatrix {
        ProximityMatrix::between(cs, cu)
    }

    #[test]
    fn all_negative_labels_give_zero_vector() {
        let cs = vec![vec![0.0], vec![5.0]];
        let cu: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let v = uis_feature_vector(&[false, false], &ps_for(&cs, &cu), 3);
        assert_eq!(v, vec![0.0; 10]);
    }

    #[test]
    fn positive_label_lights_nearest_cu_bits() {
        let cs = vec![vec![0.0], vec![9.0]];
        let cu: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let v = uis_feature_vector(&[true, false], &ps_for(&cs, &cu), 3);
        // Nearest three Cu centers to 0.0 are 0, 1, 2.
        assert_eq!(&v[..3], &[1.0, 1.0, 1.0]);
        assert_eq!(v[3..].iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn overlapping_expansions_union() {
        let cs = vec![vec![2.0], vec![3.0]];
        let cu: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64]).collect();
        let v = uis_feature_vector(&[true, true], &ps_for(&cs, &cu), 2);
        // 2.0 → {2, 1 or 3}; 3.0 → {3, 2 or 4}: union has 3-4 bits but each
        // bit stays binary.
        assert!(v.iter().all(|&b| b == 0.0 || b == 1.0));
        assert!(v.iter().sum::<f64>() >= 3.0);
    }

    #[test]
    fn l_is_clamped_to_at_least_one() {
        let cs = vec![vec![0.0]];
        let cu: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64]).collect();
        let v = uis_feature_vector(&[true], &ps_for(&cs, &cu), 0);
        assert_eq!(v.iter().sum::<f64>(), 1.0);
    }

    #[test]
    fn expansion_degree_rounds_and_floors() {
        assert_eq!(expansion_degree(100, 0.1), 10);
        assert_eq!(expansion_degree(40, 0.1), 4);
        assert_eq!(expansion_degree(3, 0.1), 1);
        assert_eq!(expansion_degree(0, 0.5), 1);
    }

    #[test]
    #[should_panic(expected = "one label per Cs center")]
    fn label_count_mismatch_panics() {
        let cs = vec![vec![0.0]];
        let cu = vec![vec![0.0]];
        uis_feature_vector(&[true, false], &ps_for(&cs, &cu), 1);
    }
}
