//! Evaluation metrics (§VIII-A).
//!
//! Accuracy is F1 = 2·precision·recall / (precision + recall) over the
//! evaluation pool; efficiency is the labelling budget `B`.

/// Binary confusion counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    /// Predicted interesting, actually interesting.
    pub tp: usize,
    /// Predicted interesting, actually not.
    pub fp: usize,
    /// Predicted not interesting, actually interesting.
    pub fn_: usize,
    /// Predicted not interesting, actually not.
    pub tn: usize,
}

impl ConfusionMatrix {
    /// Accumulate from `(prediction, truth)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (bool, bool)>) -> Self {
        let mut m = ConfusionMatrix::default();
        for (pred, truth) in pairs {
            m.record(pred, truth);
        }
        m
    }

    /// Record one observation.
    pub fn record(&mut self, pred: bool, truth: bool) {
        match (pred, truth) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, true) => self.fn_ += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// Precision; 0 when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall; 0 when nothing is actually positive.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1-score; 0 when precision + recall is 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Plain accuracy.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / self.total() as f64
        }
    }

    /// Merge another confusion matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
        self.tn += other.tn;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let m = ConfusionMatrix::from_pairs([(true, true), (false, false), (true, true)]);
        assert_eq!(m.f1(), 1.0);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.accuracy(), 1.0);
    }

    #[test]
    fn hand_computed_f1() {
        // tp=2, fp=1, fn=1 → p=2/3, r=2/3, f1=2/3.
        let m = ConfusionMatrix::from_pairs([
            (true, true),
            (true, true),
            (true, false),
            (false, true),
            (false, false),
        ]);
        assert!((m.f1() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.total(), 5);
    }

    #[test]
    fn degenerate_cases_are_zero_not_nan() {
        let m = ConfusionMatrix::from_pairs([(false, false)]);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.f1(), 0.0);
        assert_eq!(ConfusionMatrix::default().accuracy(), 0.0);
    }

    #[test]
    fn all_positive_predictions_have_precision_equal_base_rate() {
        let m = ConfusionMatrix::from_pairs([(true, true), (true, false)]);
        assert_eq!(m.precision(), 0.5);
        assert_eq!(m.recall(), 1.0);
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = ConfusionMatrix::from_pairs([(true, true)]);
        let b = ConfusionMatrix::from_pairs([(false, true), (true, false)]);
        a.merge(&b);
        assert_eq!(a.tp, 1);
        assert_eq!(a.fn_, 1);
        assert_eq!(a.fp, 1);
        assert_eq!(a.total(), 3);
    }
}
