//! Dynamic maintenance (§V-E).
//!
//! "One only needs to check if sampled tuples should be updated to decide
//! if the meta-tasks and meta-learners should be updated, when the data
//! distributions of the meta-subspaces change." This module implements
//! that check: a cheap drift probe comparing fresh data against the
//! clustering summary a [`SubspaceContext`] was built from, localizing the
//! decision per subspace so only stale contexts get rebuilt.
//!
//! The probe compares two signals between the context's sample and a fresh
//! sample of the (possibly updated) table:
//!
//! * **assignment histogram shift** — each `Cu` center's share of assigned
//!   tuples, compared by total-variation distance; captures mass moving
//!   between existing modes;
//! * **quantization-error growth** — mean distance of fresh tuples to their
//!   nearest `Cu` center, relative to the context sample's own error;
//!   captures mass appearing *outside* all existing modes.

use crate::context::SubspaceContext;
use lte_data::table::Table;
use rand::Rng;

/// Result of a drift probe on one subspace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftReport {
    /// Total-variation distance between old/new center-assignment
    /// histograms (0 = identical, 1 = disjoint).
    pub assignment_shift: f64,
    /// Fresh-sample quantization error divided by the context sample's
    /// (1 = unchanged; ≫1 = new mass far from every known center).
    pub quantization_ratio: f64,
}

impl DriftReport {
    /// Decision rule with the given thresholds.
    pub fn is_stale(&self, max_shift: f64, max_ratio: f64) -> bool {
        self.assignment_shift > max_shift || self.quantization_ratio > max_ratio
    }
}

/// Default assignment-shift threshold.
pub const DEFAULT_MAX_SHIFT: f64 = 0.25;
/// Default quantization-growth threshold.
pub const DEFAULT_MAX_RATIO: f64 = 1.5;

fn nearest_d2(centers: &[Vec<f64>], p: &[f64]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centers.iter().enumerate() {
        let d: f64 = c
            .iter()
            .zip(p)
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum();
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

fn profile(centers: &[Vec<f64>], rows: &[Vec<f64>]) -> (Vec<f64>, f64) {
    let mut hist = vec![0.0; centers.len()];
    let mut err = 0.0;
    for row in rows {
        let (c, d2) = nearest_d2(centers, row);
        hist[c] += 1.0;
        err += d2.sqrt();
    }
    let n = rows.len().max(1) as f64;
    for h in &mut hist {
        *h /= n;
    }
    (hist, err / n)
}

/// Probe whether `ctx` still summarizes `table` (projected onto the
/// context's subspace). `fresh_n` fresh rows are sampled with `rng`.
pub fn probe_drift<R: Rng + ?Sized>(
    ctx: &SubspaceContext,
    table: &Table,
    fresh_n: usize,
    rng: &mut R,
) -> DriftReport {
    let sub_table = ctx
        .subspace()
        .project_table(table)
        .expect("subspace must fit the table");
    let fresh = sub_table.sample(rng, fresh_n).to_rows();

    let (old_hist, old_err) = profile(ctx.cu(), ctx.sample_rows());
    let (new_hist, new_err) = profile(ctx.cu(), &fresh);

    let assignment_shift = 0.5
        * old_hist
            .iter()
            .zip(&new_hist)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>();
    let quantization_ratio = if old_err <= f64::EPSILON {
        if new_err <= f64::EPSILON {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        new_err / old_err
    };
    DriftReport {
        assignment_shift,
        quantization_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LteConfig;
    use lte_data::generator::generate_sdss;
    use lte_data::rng::seeded;
    use lte_data::schema::Schema;
    use lte_data::subspace::Subspace;

    fn ctx_and_table() -> (SubspaceContext, Table) {
        let table = generate_sdss(4000, 0);
        let cfg = LteConfig::reduced();
        let ctx = SubspaceContext::build(
            &table,
            Subspace::new(vec![0, 1]),
            &cfg.task,
            &cfg.encoder,
            61,
        );
        (ctx, table)
    }

    #[test]
    fn unchanged_data_is_not_stale() {
        let (ctx, table) = ctx_and_table();
        let report = probe_drift(&ctx, &table, 500, &mut seeded(1));
        assert!(report.assignment_shift < 0.2, "{report:?}");
        assert!(report.quantization_ratio < 1.3, "{report:?}");
        assert!(!report.is_stale(DEFAULT_MAX_SHIFT, DEFAULT_MAX_RATIO));
    }

    #[test]
    fn shifted_distribution_is_stale() {
        let (ctx, table) = ctx_and_table();
        // Translate every tuple far outside the summarized region.
        let schema: Schema = table.schema().clone();
        let shifted_rows: Vec<Vec<f64>> = table
            .to_rows()
            .into_iter()
            .map(|mut row| {
                row[0] += 50_000.0;
                row[1] += 50_000.0;
                row
            })
            .collect();
        let shifted = Table::from_rows(schema, &shifted_rows).expect("table");
        let report = probe_drift(&ctx, &shifted, 500, &mut seeded(2));
        assert!(report.quantization_ratio > DEFAULT_MAX_RATIO, "{report:?}");
        assert!(report.is_stale(DEFAULT_MAX_SHIFT, DEFAULT_MAX_RATIO));
    }

    #[test]
    fn mid_session_shift_flips_staleness() {
        // Regression anchor for the refine path: a session starts against
        // data the context summarizes, then the distribution moves
        // mid-session. The probe must report stale strictly *after* the
        // shift, never before — rebuilding on the "before" probe would be
        // a spurious refine, missing the "after" probe a stale serve.
        let (ctx, table) = ctx_and_table();
        let before = probe_drift(&ctx, &table, 500, &mut seeded(7));
        assert!(
            !before.is_stale(DEFAULT_MAX_SHIFT, DEFAULT_MAX_RATIO),
            "pre-shift probe must be clean: {before:?}"
        );

        let schema: Schema = table.schema().clone();
        let rows: Vec<Vec<f64>> = table
            .to_rows()
            .into_iter()
            .map(|mut row| {
                row[0] += 50_000.0;
                row[1] += 50_000.0;
                row
            })
            .collect();
        let shifted = Table::from_rows(schema, &rows).expect("table");
        let after = probe_drift(&ctx, &shifted, 500, &mut seeded(7));
        assert!(
            after.is_stale(DEFAULT_MAX_SHIFT, DEFAULT_MAX_RATIO),
            "post-shift probe must flag stale: {after:?}"
        );
        assert!(after.quantization_ratio > before.quantization_ratio);
    }

    #[test]
    fn mode_mass_shift_is_detected() {
        let (ctx, table) = ctx_and_table();
        // Keep only tuples from the left half of the rowc domain: mass
        // collapses onto a subset of centers without growing distances.
        let schema: Schema = table.schema().clone();
        let rows: Vec<Vec<f64>> = table
            .to_rows()
            .into_iter()
            .filter(|row| row[0] < 800.0)
            .collect();
        let filtered = Table::from_rows(schema, &rows).expect("table");
        let report = probe_drift(&ctx, &filtered, 500, &mut seeded(3));
        assert!(report.assignment_shift > 0.1, "{report:?}");
    }

    #[test]
    fn report_thresholds_are_independent() {
        let r = DriftReport {
            assignment_shift: 0.3,
            quantization_ratio: 1.0,
        };
        assert!(r.is_stale(0.25, 1.5));
        assert!(!r.is_stale(0.4, 1.5));
        let r = DriftReport {
            assignment_shift: 0.0,
            quantization_ratio: 2.0,
        };
        assert!(r.is_stale(0.25, 1.5));
    }
}
