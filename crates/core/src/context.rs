//! Per-meta-subspace offline state (§V-B).
//!
//! A [`SubspaceContext`] is everything LTE precomputes for one meta-subspace
//! before any meta-task can be generated or any user arrives:
//!
//! * a clustering sample of the subspace's tuples (≤1%, bounded),
//! * three k-means center sets: `Cu` (UIS construction), `Cs` (support set
//!   = online initial tuples), `Cq` (query set),
//! * the proximity matrices `Pu` (`ku × ku`) and `Ps` (`ks × ku`),
//! * the fitted tabular encoder (§VII-A) mapping raw subspace rows to
//!   classifier inputs `vτ`.

use crate::config::MetaTaskConfig;
use lte_cluster::{KMeans, ProximityMatrix};
use lte_data::rng::{derive_seed, seeded};
use lte_data::subspace::Subspace;
use lte_data::table::Table;
use lte_preprocess::{EncoderConfig, TableEncoder};

/// Offline-computed state of one meta-subspace.
#[derive(Debug, Clone)]
pub struct SubspaceContext {
    subspace: Subspace,
    sample_rows: Vec<Vec<f64>>,
    cu: Vec<Vec<f64>>,
    cs: Vec<Vec<f64>>,
    cq: Vec<Vec<f64>>,
    pu: ProximityMatrix,
    ps: ProximityMatrix,
    encoder: TableEncoder,
}

impl SubspaceContext {
    /// Build the context for `subspace` of `table`.
    ///
    /// Runs the clustering step of Algorithm 1: three independent k-means
    /// rounds on a fresh sample, plus the two proximity matrices, plus the
    /// Algorithm-3 encoder fit.
    pub fn build(
        table: &Table,
        subspace: Subspace,
        task_cfg: &MetaTaskConfig,
        encoder_cfg: &EncoderConfig,
        seed: u64,
    ) -> Self {
        let sub_table = subspace
            .project_table(table)
            .expect("subspace indices must be valid for the table");

        let mut rng = seeded(derive_seed(seed, 0));
        let sample_table = {
            let frac_rows = ((sub_table.n_rows() as f64 * task_cfg.sample_fraction).ceil()
                as usize)
                .clamp(task_cfg.min_sample, task_cfg.max_sample)
                .min(sub_table.n_rows());
            sub_table.sample(&mut rng, frac_rows)
        };
        let sample_rows = sample_table.to_rows();

        let cu = KMeans::new(task_cfg.ku, derive_seed(seed, 1))
            .fit(&sample_rows)
            .centers;
        let cs = KMeans::new(task_cfg.ks, derive_seed(seed, 2))
            .fit(&sample_rows)
            .centers;
        let cq = KMeans::new(task_cfg.kq, derive_seed(seed, 3))
            .fit(&sample_rows)
            .centers;

        let pu = ProximityMatrix::within(&cu);
        let ps = ProximityMatrix::between(&cs, &cu);

        let encoder = TableEncoder::fit_exact(&sample_table, encoder_cfg);

        Self {
            subspace,
            sample_rows,
            cu,
            cs,
            cq,
            pu,
            ps,
            encoder,
        }
    }

    /// Reassemble a context from persisted parts. Proximity matrices are
    /// recomputed from the centers (cheaper to rebuild than to store).
    pub fn from_parts(
        subspace: Subspace,
        sample_rows: Vec<Vec<f64>>,
        cu: Vec<Vec<f64>>,
        cs: Vec<Vec<f64>>,
        cq: Vec<Vec<f64>>,
        encoder: TableEncoder,
    ) -> Self {
        let pu = ProximityMatrix::within(&cu);
        let ps = ProximityMatrix::between(&cs, &cu);
        Self {
            subspace,
            sample_rows,
            cu,
            cs,
            cq,
            pu,
            ps,
            encoder,
        }
    }

    /// The subspace this context summarizes.
    pub fn subspace(&self) -> &Subspace {
        &self.subspace
    }

    /// Subspace dimensionality.
    pub fn dim(&self) -> usize {
        self.subspace.dim()
    }

    /// The clustering sample (raw subspace rows).
    pub fn sample_rows(&self) -> &[Vec<f64>] {
        &self.sample_rows
    }

    /// `Cu` centers (UIS construction summary).
    pub fn cu(&self) -> &[Vec<f64>] {
        &self.cu
    }

    /// `Cs` centers — the support-set tuples, and the initial tuples a user
    /// labels online (§V-D).
    pub fn cs(&self) -> &[Vec<f64>] {
        &self.cs
    }

    /// `Cq` centers (query-set tuples).
    pub fn cq(&self) -> &[Vec<f64>] {
        &self.cq
    }

    /// `Pu`: `ku × ku` proximities within `Cu`.
    pub fn pu(&self) -> &ProximityMatrix {
        &self.pu
    }

    /// `Ps`: `ks × ku` proximities from `Cs` to `Cu`.
    pub fn ps(&self) -> &ProximityMatrix {
        &self.ps
    }

    /// The fitted per-attribute encoder.
    pub fn encoder(&self) -> &TableEncoder {
        &self.encoder
    }

    /// Encoded width `Nr` of tuple feature vectors.
    pub fn feature_width(&self) -> usize {
        self.encoder.width()
    }

    /// Encode a raw subspace row into the classifier's `vτ`.
    pub fn encode(&self, row: &[f64]) -> Vec<f64> {
        self.encoder.encode_row(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LteConfig;
    use lte_data::generator::generate_sdss;

    fn ctx() -> SubspaceContext {
        let table = generate_sdss(3000, 0);
        let cfg = LteConfig::reduced();
        SubspaceContext::build(
            &table,
            Subspace::new(vec![0, 1]),
            &cfg.task,
            &cfg.encoder,
            42,
        )
    }

    #[test]
    fn center_set_sizes_match_config() {
        let c = ctx();
        let cfg = LteConfig::reduced();
        assert_eq!(c.cu().len(), cfg.task.ku);
        assert_eq!(c.cs().len(), cfg.task.ks);
        assert_eq!(c.cq().len(), cfg.task.kq);
        assert_eq!(c.dim(), 2);
    }

    #[test]
    fn proximity_shapes_are_ku_ku_and_ks_ku() {
        let c = ctx();
        assert_eq!(c.pu().n_rows(), c.cu().len());
        assert_eq!(c.pu().n_cols(), c.cu().len());
        assert_eq!(c.ps().n_rows(), c.cs().len());
        assert_eq!(c.ps().n_cols(), c.cu().len());
    }

    #[test]
    fn encoder_round_trips_sample_rows() {
        let c = ctx();
        let v = c.encode(&c.sample_rows()[0]);
        assert_eq!(v.len(), c.feature_width());
        assert!(
            c.feature_width() > 2,
            "multi-modal encoding widens features"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let table = generate_sdss(2000, 1);
        let cfg = LteConfig::reduced();
        let a = SubspaceContext::build(
            &table,
            Subspace::new(vec![2, 3]),
            &cfg.task,
            &cfg.encoder,
            7,
        );
        let b = SubspaceContext::build(
            &table,
            Subspace::new(vec![2, 3]),
            &cfg.task,
            &cfg.encoder,
            7,
        );
        assert_eq!(a.cu(), b.cu());
        assert_eq!(a.cs(), b.cs());
    }

    #[test]
    fn sample_respects_bounds() {
        let table = generate_sdss(2000, 2);
        let mut cfg = LteConfig::reduced();
        cfg.task.min_sample = 100;
        cfg.task.max_sample = 150;
        let c = SubspaceContext::build(
            &table,
            Subspace::new(vec![0, 1]),
            &cfg.task,
            &cfg.encoder,
            3,
        );
        assert!(c.sample_rows().len() >= 100 && c.sample_rows().len() <= 150);
    }
}
