//! Configuration for every stage of the LTE framework.
//!
//! Two presets are provided: [`LteConfig::paper`] mirrors §VIII-A's bolded
//! defaults (ku=100, kq=200, B=30, α=4/ψ=20, |TM|=5000, Ne=100), and
//! [`LteConfig::reduced`] is a proportionally scaled-down configuration for
//! tests and default benchmark runs (see EXPERIMENTS.md for the scaling
//! rationale). `Default` is the reduced preset.

use crate::uis::UisMode;

/// Meta-task generation parameters (§V, Algorithm 1).
#[derive(Debug, Clone)]
pub struct MetaTaskConfig {
    /// `ku`: cluster count summarizing the subspace for UIS construction.
    pub ku: usize,
    /// `ks`: cluster count for the support set = initial labelled tuples.
    /// The exploration budget is `B = ks + delta`.
    pub ks: usize,
    /// `kq`: cluster count for the query set.
    pub kq: usize,
    /// `Δ`: extra random tuples appended to each support/query set (§V-D).
    pub delta: usize,
    /// UIS mode (α convex parts of ψ-nearest-center hulls) used to *train*
    /// meta-learners.
    pub mode: UisMode,
    /// Clustering-sample fraction of the subspace (§V footnote 6: 1%).
    pub sample_fraction: f64,
    /// Lower bound on the clustering sample (keeps small tables usable).
    pub min_sample: usize,
    /// Upper bound on the clustering sample (keeps huge tables cheap).
    pub max_sample: usize,
    /// Regenerate a simulated UIS if its support labels are single-class
    /// (degenerate for training); give up after this many attempts.
    pub max_uis_retries: usize,
}

impl MetaTaskConfig {
    /// Paper defaults (§VIII-A).
    pub fn paper() -> Self {
        Self {
            ku: 100,
            ks: 25,
            kq: 200,
            delta: 5,
            mode: UisMode::new(4, 20),
            sample_fraction: 0.01,
            min_sample: 800,
            max_sample: 4000,
            max_uis_retries: 20,
        }
    }

    /// Reduced defaults for tests/CI.
    pub fn reduced() -> Self {
        Self {
            ku: 40,
            ks: 25,
            kq: 60,
            delta: 5,
            mode: UisMode::new(4, 10),
            sample_fraction: 0.01,
            min_sample: 500,
            max_sample: 1500,
            max_uis_retries: 20,
        }
    }

    /// The exploration budget `B = ks + Δ` this configuration corresponds to.
    pub fn budget(&self) -> usize {
        self.ks + self.delta
    }

    /// Set `ks` from a target budget `B` (`ks = B − Δ`).
    pub fn with_budget(mut self, budget: usize) -> Self {
        assert!(budget > self.delta, "budget must exceed delta");
        self.ks = budget - self.delta;
        self
    }
}

/// Classifier architecture (§VI-A).
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Embedding size `Ne` shared by both embedding blocks.
    pub ne: usize,
    /// Hidden width of the classification block.
    pub clf_hidden: usize,
    /// Heuristic UIS-feature expansion degree `l` as a fraction of `ku`
    /// (§VI-A: default `l = 0.1·ku`).
    pub expansion_frac: f64,
}

impl NetConfig {
    /// Paper defaults.
    pub fn paper() -> Self {
        Self {
            ne: 100,
            clf_hidden: 64,
            expansion_frac: 0.1,
        }
    }

    /// Reduced defaults.
    pub fn reduced() -> Self {
        Self {
            ne: 32,
            clf_hidden: 32,
            expansion_frac: 0.1,
        }
    }
}

/// Meta-training hyper-parameters (§VI-B/C, Algorithm 2).
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of meta-tasks `|TM|`.
    pub n_tasks: usize,
    /// Training epochs over the task set.
    pub epochs: usize,
    /// Tasks per global update batch.
    pub batch_size: usize,
    /// Local update steps (passes over the support set).
    pub local_steps: usize,
    /// Local learning rate ρ.
    pub rho: f64,
    /// Global (meta) learning rate λ.
    pub lambda: f64,
    /// Memory modes `m`.
    pub m: usize,
    /// Memory write rates: η (UIS-feature matrix), β (parameter matrix),
    /// γ (conversion tensor).
    pub eta: f64,
    /// See [`TrainConfig::eta`].
    pub beta: f64,
    /// See [`TrainConfig::eta`].
    pub gamma: f64,
    /// Initialization blend σ of Eq. 6 (`θR ⇐ φR − σ·ωR`).
    pub sigma: f64,
    /// Enable the memory-augmented optimization of §VI-B. Disabling it
    /// yields the plain-MAML ablation.
    pub use_memories: bool,
    /// Weight of the *direct* (pre-adaptation) query gradient mixed into
    /// the global update: `0` = pure FOMAML (post-adaptation residuals
    /// only), `1` = plain multi-task supervision. A balanced mix teaches
    /// the initialization both to classify from `(vR, vτ)` outright —
    /// which Fig. 8(d) shows the paper's meta-learner can do even at tiny
    /// online rates — and to adapt quickly.
    pub direct_weight: f64,
}

impl TrainConfig {
    /// Paper-scale defaults. Learning rates follow Fig. 8(d): small offline
    /// (deliberate meta-knowledge capture), large online. The global rate λ
    /// was re-calibrated for this from-scratch NN substrate (see
    /// EXPERIMENTS.md): held-out adapted query loss decreases monotonically
    /// and the Meta*>Meta>Basic ordering of §VIII holds.
    pub fn paper() -> Self {
        Self {
            n_tasks: 5000,
            epochs: 6,
            batch_size: 10,
            local_steps: 3,
            rho: 0.05,
            lambda: 0.05,
            m: 4,
            eta: 0.01,
            beta: 0.01,
            gamma: 0.01,
            sigma: 0.1,
            use_memories: true,
            direct_weight: 0.7,
        }
    }

    /// Reduced defaults for tests/CI (calibrated: meta-training visibly
    /// reduces held-out adapted loss within seconds).
    pub fn reduced() -> Self {
        Self {
            n_tasks: 1000,
            epochs: 6,
            batch_size: 10,
            local_steps: 2,
            rho: 0.05,
            lambda: 0.05,
            m: 4,
            eta: 0.01,
            beta: 0.01,
            gamma: 0.01,
            sigma: 0.1,
            use_memories: true,
            direct_weight: 0.7,
        }
    }
}

/// Few-shot prediction optimizer (§VII-B).
#[derive(Debug, Clone)]
pub struct RefineConfig {
    /// Outer-subregion expansion `Nsup` as a fraction of `ku`
    /// (paper searches {20%, 30%, 40%}).
    pub nsup_frac: f64,
    /// Inner-subregion expansion `Nsub` as a fraction of `ku`
    /// (paper searches {5%, 10%, 15%}; must be ≪ `nsup_frac`).
    pub nsub_frac: f64,
}

impl Default for RefineConfig {
    fn default() -> Self {
        Self {
            nsup_frac: 0.3,
            nsub_frac: 0.1,
        }
    }
}

/// Numeric precision of batched pool scoring (see
/// [`UisClassifier::score_pool`](crate::classifier::UisClassifier::score_pool)).
///
/// The online loop re-scores the whole candidate pool through the
/// classifier every round, but only ever *ranks* the results (argmax /
/// threshold at 0) — so the scoring matmuls can run in `f32`, which the
/// compiler vectorizes to twice the SIMD width at half the memory
/// traffic. The `f64` path stays the reference: training, gradient
/// checks, and any consumer that compares raw score values use it.
///
/// **Accuracy contract:** `Fast` logits track `Exact` logits to within
/// `f32` round-off accumulated over the network's layers (empirically
/// ~`1e-4` at reduced scale), and the resulting *ranking* agrees with
/// `Exact` for every pair of candidates whose `f64` scores differ by more
/// than that noise floor — pinned by proptests in
/// `crates/core/tests/scoring_precision.rs`. Candidates inside the noise
/// floor may swap; predictions may differ only for logits within the
/// noise floor of 0.
///
/// **`Ranked` is ranking-only.** The i8-quantized mode's error is
/// proportional to each layer's dynamic range (roughly percent-level, not
/// `1e-4`), so its logits must feed **argmax-order decisions only** —
/// never thresholds, calibration, score deltas, or anything that reads
/// the raw values. Its rank agreement holds above a correspondingly wider
/// noise floor (same proptest suite). Like `Fast`, it is deterministic at
/// any worker count: quantization scales are row-local, and the integer
/// k-sums are exact.
///
/// ```
/// use lte_core::config::{LteConfig, ScoringPrecision};
///
/// let mut cfg = LteConfig::reduced();
/// assert_eq!(cfg.online.precision, ScoringPrecision::Exact); // default
/// cfg.online.precision = ScoringPrecision::Fast; // opt in to f32 ranking
/// cfg.online.precision = ScoringPrecision::Ranked; // i8, argmax-order only
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoringPrecision {
    /// Full `f64` scoring — bit-stable, the gradcheck/training reference.
    #[default]
    Exact,
    /// `f32` scoring for pool ranking — faster, rank-accurate outside the
    /// `f32` noise floor.
    Fast,
    /// i8-quantized scoring (per-row absmax scales, exact `i32`
    /// accumulation) — fastest, valid for argmax-order ranking **only**;
    /// raw logit values carry percent-level quantization error.
    Ranked,
}

/// Online exploration parameters.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Local adaptation steps during online exploration.
    pub adapt_steps: usize,
    /// Online learning rate (Fig. 8(d): larger than the offline rate).
    pub lr: f64,
    /// Training epochs for the `Basic` (from-scratch) variant. Basic gets
    /// the same step budget as Meta for a fair online-compute comparison.
    pub basic_steps: usize,
    /// Pool-scoring precision (see [`ScoringPrecision`]).
    pub precision: ScoringPrecision,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            adapt_steps: 5,
            lr: 0.05,
            basic_steps: 5,
            precision: ScoringPrecision::Exact,
        }
    }
}

/// Aggregate configuration for the whole framework.
#[derive(Debug, Clone)]
pub struct LteConfig {
    /// Meta-task generation (§V).
    pub task: MetaTaskConfig,
    /// Classifier architecture (§VI-A).
    pub net: NetConfig,
    /// Meta-training (§VI-B/C).
    pub train: TrainConfig,
    /// Few-shot optimizer (§VII-B).
    pub refine: RefineConfig,
    /// Online exploration.
    pub online: OnlineConfig,
    /// Encoder settings (§VII-A) forwarded to `lte-preprocess`.
    pub encoder: lte_preprocess::EncoderConfig,
}

impl LteConfig {
    /// §VIII-A parameters at full scale.
    pub fn paper() -> Self {
        Self {
            task: MetaTaskConfig::paper(),
            net: NetConfig::paper(),
            train: TrainConfig::paper(),
            refine: RefineConfig::default(),
            online: OnlineConfig::default(),
            encoder: lte_preprocess::EncoderConfig::default(),
        }
    }

    /// Proportionally scaled-down parameters for tests and default bench
    /// runs; preserves every structural relationship (ks < ku < kq, Δ,
    /// expansion fraction, memory shape).
    pub fn reduced() -> Self {
        Self {
            task: MetaTaskConfig::reduced(),
            net: NetConfig::reduced(),
            train: TrainConfig::reduced(),
            refine: RefineConfig::default(),
            online: OnlineConfig::default(),
            encoder: lte_preprocess::EncoderConfig::default(),
        }
    }

    /// The labelling budget `B = ks + Δ` of this configuration.
    pub fn budget(&self) -> usize {
        self.task.budget()
    }

    /// Re-target the configuration at a different budget `B`.
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.task = self.task.with_budget(budget);
        self
    }
}

impl Default for LteConfig {
    fn default() -> Self {
        Self::reduced()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_viii() {
        let c = LteConfig::paper();
        assert_eq!(c.task.ku, 100);
        assert_eq!(c.task.kq, 200);
        assert_eq!(c.task.delta, 5);
        assert_eq!(c.budget(), 30); // B = ks + Δ = 25 + 5
        assert_eq!(c.net.ne, 100);
        assert_eq!(c.train.n_tasks, 5000);
        assert_eq!(c.task.mode.alpha, 4);
        assert_eq!(c.task.mode.psi, 20);
    }

    #[test]
    fn with_budget_adjusts_ks() {
        let c = LteConfig::reduced().with_budget(50);
        assert_eq!(c.budget(), 50);
        assert_eq!(c.task.ks, 45);
    }

    #[test]
    #[should_panic(expected = "budget must exceed delta")]
    fn budget_below_delta_panics() {
        LteConfig::reduced().with_budget(3);
    }

    #[test]
    fn reduced_preserves_structure() {
        let c = LteConfig::reduced();
        assert!(c.task.ks < c.task.ku);
        assert!(c.task.ku < c.task.kq + c.task.ks);
        assert!(c.refine.nsub_frac < c.refine.nsup_frac);
    }
}
