//! Scratch hyper-parameter probe: held-out adapted query accuracy for
//! Meta vs Basic under varying meta-training budgets.

use lte_core::config::LteConfig;
use lte_core::context::SubspaceContext;
use lte_core::explore::{explore_subspace, Variant};
use lte_core::feature::expansion_degree;
use lte_core::meta_learner::MetaLearner;
use lte_core::meta_task::generate_task_set;
use lte_core::metrics::ConfusionMatrix;
use lte_core::oracle::{RegionOracle, SubspaceOracle};
use lte_core::uis::generate_uis;
use lte_data::generator::generate_sdss;
use lte_data::rng::seeded;
use lte_data::subspace::Subspace;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_tasks: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(400);
    let epochs: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);
    let lambda: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(0.01);
    let local_steps: usize = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(3);
    let online_steps: usize = args.get(5).and_then(|s| s.parse().ok()).unwrap_or(15);
    let use_mem: bool = args.get(6).map(|s| s == "mem").unwrap_or(true);
    let direct: f64 = args.get(7).and_then(|s| s.parse().ok()).unwrap_or(0.5);

    let table = generate_sdss(20_000, 0);
    let mut cfg = LteConfig::reduced();
    cfg.train.n_tasks = n_tasks;
    cfg.train.epochs = epochs;
    cfg.train.lambda = lambda;
    cfg.train.local_steps = local_steps;
    cfg.train.use_memories = use_mem;
    cfg.online.adapt_steps = online_steps;
    cfg.online.basic_steps = online_steps;
    cfg.train.direct_weight = direct;

    let ctx = SubspaceContext::build(
        &table,
        Subspace::new(vec![0, 1]),
        &cfg.task,
        &cfg.encoder,
        1,
    );
    let l = expansion_degree(cfg.task.ku, cfg.net.expansion_frac);
    let tasks = generate_task_set(&ctx, &cfg.task, l, cfg.train.n_tasks, &mut seeded(2));
    let held_out = generate_task_set(&ctx, &cfg.task, l, 40, &mut seeded(999));

    let mut learner = MetaLearner::new(
        cfg.task.ku,
        ctx.feature_width(),
        &cfg.net,
        cfg.train.clone(),
        3,
    );
    let before_loss = learner.evaluate(&held_out);
    let before_acc = learner.evaluate_accuracy(&held_out);
    let t0 = std::time::Instant::now();
    let report = learner.train(&tasks);
    let train_secs = t0.elapsed().as_secs_f64();
    let after_loss = learner.evaluate(&held_out);
    let after_acc = learner.evaluate_accuracy(&held_out);
    println!(
        "tasks={n_tasks} epochs={epochs} lambda={lambda} local={local_steps} online={online_steps} mem={use_mem}"
    );
    println!(
        "  train {:.1}s  epoch losses {:?}",
        train_secs, report.epoch_query_loss
    );
    println!("  held-out loss {before_loss:.4} -> {after_loss:.4}   acc {before_acc:.4} -> {after_acc:.4}");

    // Subspace-level F1 on fresh test UISs.
    let eval: Vec<Vec<f64>> = ctx.sample_rows().to_vec();
    let f1 = |variant: Variant, rep: u64| -> f64 {
        let mut total = 0.0;
        let mut n = 0;
        for r in 0..rep {
            let uis = generate_uis(ctx.cu(), ctx.pu(), cfg.task.mode, &mut seeded(5000 + r));
            let sel = uis.selectivity(&eval);
            if !(0.05..=0.95).contains(&sel) {
                continue;
            }
            let oracle = RegionOracle::new(uis);
            let learner_opt = match variant {
                Variant::Basic => None,
                _ => Some(&learner),
            };
            let out = explore_subspace(&ctx, learner_opt, &oracle, &eval, &cfg, variant, 7000 + r);
            let cm = ConfusionMatrix::from_pairs(
                out.predictions
                    .iter()
                    .zip(&eval)
                    .map(|(&p, row)| (p, oracle.label(row))),
            );
            total += cm.f1();
            n += 1;
        }
        total / n.max(1) as f64
    };
    println!(
        "  F1  basic={:.4}  meta={:.4}  meta*={:.4}",
        f1(Variant::Basic, 10),
        f1(Variant::Meta, 10),
        f1(Variant::MetaStar, 10)
    );

    // Zero-shot probe: how well does the raw initialization classify from
    // (vR, vτ) with NO online adaptation at all?
    let mut zs_total = 0.0;
    let mut zs_n = 0;
    for r in 0..10u64 {
        let uis = generate_uis(ctx.cu(), ctx.pu(), cfg.task.mode, &mut seeded(6000 + r));
        if !(0.05..=0.95).contains(&uis.selectivity(&eval)) {
            continue;
        }
        let oracle = RegionOracle::new(uis);
        let cs_labels: Vec<bool> = ctx.cs().iter().map(|c| oracle.label(c)).collect();
        let vr = lte_core::feature::uis_feature_vector(&cs_labels, ctx.ps(), l);
        let zero = learner.adapt(&vr, &[], 0, 0.0);
        let cm = ConfusionMatrix::from_pairs(eval.iter().map(|row| {
            (
                zero.classifier.predict(&vr, &ctx.encode(row)),
                oracle.label(row),
            )
        }));
        zs_total += cm.f1();
        zs_n += 1;
    }
    println!("  zero-shot F1 = {:.4}", zs_total / zs_n.max(1) as f64);
}
