//! Property tests pinning the reduced-precision scoring contracts against
//! the `f64` reference (see `ScoringPrecision`): Fast logits must track
//! Exact logits within the accumulated-round-off tolerance, pool *ranking*
//! must agree exactly for every pair separated by more than the mode's
//! noise floor (`f32` round-off for `Fast`, percent-level quantization
//! error for `Ranked`), the fused kernel epilogue must be **bitwise**
//! identical to the unfused bias/activation passes, and the row-block
//! parallel dispatch must be bit-identical to the serial pass at any
//! worker count.

use lte_core::classifier::{
    score_pool_fused_with, ClassifierConfig, PoolScoreRequest, UisClassifier,
};
use lte_core::config::ScoringPrecision;
use lte_core::parallel::parallel_flat_map_chunks;
use lte_data::rng::seeded;
use lte_nn::{Activation, Epilogue, Matrix, Matrix32};
use proptest::prelude::*;

/// Build a deterministic classifier plus a pool of encoded tuples from a
/// handful of generator knobs. Inputs stay O(1) in magnitude so the
/// tolerance bound below is meaningful.
fn setup(
    seed: u64,
    ku: usize,
    nr: usize,
    ne: usize,
    use_conversion: bool,
    pool: usize,
) -> (UisClassifier, Vec<f64>, Vec<Vec<f64>>) {
    let cfg = ClassifierConfig {
        ku,
        nr,
        ne,
        clf_hidden: ne,
        use_conversion,
    };
    let clf = UisClassifier::new(cfg, &mut seeded(seed));
    let v_r: Vec<f64> = (0..ku)
        .map(|i| ((i as f64) * 0.37 + seed as f64).sin())
        .collect();
    let tuples: Vec<Vec<f64>> = (0..pool)
        .map(|i| {
            (0..nr)
                .map(|j| (((i * nr + j) as f64) * 0.013 + seed as f64 * 0.1).sin())
                .collect()
        })
        .collect();
    (clf, v_r, tuples)
}

/// Indices of `scores` sorted best-first, ties broken by index so the
/// order is total.
fn ranking(scores: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .expect("finite logits")
            .then(a.cmp(&b))
    });
    idx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fast (f32) logits track Exact (f64) logits within f32 round-off
    /// accumulated over the network depth, for both classifier variants.
    #[test]
    fn fast_logits_track_exact_within_tolerance(
        seed in 0u64..500,
        ku in 2usize..12,
        nr in 2usize..12,
        ne in 4usize..24,
        use_conversion in proptest::bool::ANY,
        pool in 1usize..96,
    ) {
        let (clf, v_r, tuples) = setup(seed, ku, nr, ne, use_conversion, pool);
        let exact = clf.score_pool(&v_r, &tuples, ScoringPrecision::Exact);
        let fast = clf.score_pool(&v_r, &tuples, ScoringPrecision::Fast);
        prop_assert_eq!(exact.len(), fast.len());
        // Per-layer error is ~eps_f32 * k * |activations|; inputs and
        // weights here are O(1), so a generous linear-in-width bound
        // catches real kernel bugs while tolerating round-off.
        let width = ne.max(nr).max(ku) as f64;
        let tol = 1e-5 * width;
        for (i, (&e, &f)) in exact.iter().zip(&fast).enumerate() {
            let scale = e.abs().max(1.0);
            prop_assert!(
                (e - f).abs() <= tol * scale,
                "logit {} diverged: exact {} vs fast {} (tol {})",
                i, e, f, tol * scale
            );
        }
    }

    /// Pool ranking agrees between Exact and Fast for every pair of points
    /// separated by more than the f32 noise floor. Pairs inside the noise
    /// floor may swap — that is the documented contract — so the assertion
    /// only fires when a swapped pair's Exact gap exceeds the tolerance.
    #[test]
    fn fast_ranking_matches_exact_above_noise_floor(
        seed in 0u64..500,
        ne in 4usize..20,
        use_conversion in proptest::bool::ANY,
        pool in 2usize..128,
    ) {
        let (clf, v_r, tuples) = setup(seed, 6, 5, ne, use_conversion, pool);
        let exact = clf.score_pool(&v_r, &tuples, ScoringPrecision::Exact);
        let fast = clf.score_pool(&v_r, &tuples, ScoringPrecision::Fast);
        let noise_floor = 1e-5 * (ne as f64)
            * exact.iter().fold(1.0f64, |m, &v| m.max(v.abs()));
        let exact_rank = ranking(&exact);
        let fast_rank = ranking(&fast);
        // Walk the two orders; any inversion between points whose Exact
        // logits differ by more than the noise floor is a real bug.
        let mut fast_pos = vec![0usize; pool];
        for (pos, &i) in fast_rank.iter().enumerate() {
            fast_pos[i] = pos;
        }
        for w in exact_rank.windows(2) {
            let (hi, lo) = (w[0], w[1]);
            let gap = exact[hi] - exact[lo];
            if gap > noise_floor {
                prop_assert!(
                    fast_pos[hi] < fast_pos[lo],
                    "rank inversion beyond noise floor: point {} (logit {}) \
                     ranked below point {} (logit {}), gap {} > floor {}",
                    hi, exact[hi], lo, exact[lo], gap, noise_floor
                );
            }
        }
    }

    /// Row-block chunked scoring is bit-identical to the serial pass at
    /// every block size and worker count, for both precisions. The public
    /// `score_pool` only parallelizes beyond `PARALLEL_MIN_ROWS`, so this
    /// drives the chunked path directly through `parallel_flat_map_chunks`
    /// with forced thread counts (the CI container may expose one core).
    #[test]
    fn chunked_scoring_is_bitwise_serial(
        seed in 0u64..200,
        ne in 4usize..16,
        use_conversion in proptest::bool::ANY,
        pool in 1usize..160,
        block in 1usize..64,
        threads in 1usize..5,
    ) {
        let (clf, v_r, tuples) = setup(seed, 5, 4, ne, use_conversion, pool);
        let serial_exact = clf.logits_batch(&v_r, &tuples);
        let chunked_exact = parallel_flat_map_chunks(&tuples, block, threads, |chunk| {
            clf.logits_batch(&v_r, chunk)
        });
        prop_assert_eq!(&serial_exact, &chunked_exact);
        let serial_fast = clf.logits_batch_f32(&v_r, &tuples);
        let chunked_fast = parallel_flat_map_chunks(&tuples, block, threads, |chunk| {
            clf.logits_batch_f32(&v_r, chunk)
        });
        prop_assert_eq!(&serial_fast, &chunked_fast);
        // Ranked: quantization scales are row-local and integer k-sums
        // exact, so chunking cannot move a bit either.
        let serial_ranked = clf.logits_batch_ranked(&v_r, &tuples);
        let chunked_ranked = parallel_flat_map_chunks(&tuples, block, threads, |chunk| {
            clf.logits_batch_ranked(&v_r, chunk)
        });
        prop_assert_eq!(&serial_ranked, &chunked_ranked);
    }

    /// The fused kernel epilogue (`matmul_nt_ep` with bias + activation)
    /// must equal the unfused composition `matmul_nt` → `add_row_bias` →
    /// `apply_slice_f32` **bitwise** on every shape and activation — the
    /// fusion is a scheduling change, never a numeric one.
    #[test]
    fn fused_epilogue_is_bitwise_equal_to_unfused_passes(
        seed in 0u64..500,
        n in 1usize..48,
        m in 1usize..48,
        k in 1usize..48,
        act_pick in 0usize..4,
    ) {
        let act = [
            Activation::Identity,
            Activation::Relu,
            Activation::Sigmoid,
            Activation::Tanh,
        ][act_pick];
        let s = seed as f64;
        let a = Matrix32::from_f64(&Matrix::from_fn(n, k, |r, c| {
            ((r * 31 + c * 17) as f64 * 0.11 + s).sin()
        }));
        let b = Matrix32::from_f64(&Matrix::from_fn(m, k, |r, c| {
            ((r * 13 + c * 7) as f64 * 0.23 + s).cos()
        }));
        let bias: Vec<f32> = (0..m).map(|j| ((j as f64 + s) * 0.31).sin() as f32).collect();
        let fused = a.matmul_nt_ep(&b, Epilogue::new(&bias, act));
        let mut unfused = a.matmul_nt(&b);
        unfused.add_row_bias(&bias);
        act.apply_slice_f32(unfused.data_mut());
        for (i, (x, y)) in fused.data().iter().zip(unfused.data()).enumerate() {
            prop_assert_eq!(
                x.to_bits(), y.to_bits(),
                "{}x{}x{} {:?} elem {}: fused {} vs unfused {}",
                n, m, k, act, i, x, y
            );
        }
    }

    /// Ranked (i8) logits track Exact (f64) logits within the quantization
    /// error budget. Per-row absmax quantization loses ~1/254 of each
    /// row's dynamic range per operand; composed over the classifier's
    /// quantized stages the worst observed deviation is ~4% of the pool's
    /// logit scale (measured across 480 seed/shape combinations), so 10%
    /// catches real kernel bugs with >2x headroom.
    #[test]
    fn ranked_logits_track_exact_within_quant_budget(
        seed in 0u64..500,
        ku in 2usize..12,
        nr in 2usize..12,
        ne in 4usize..24,
        use_conversion in proptest::bool::ANY,
        pool in 1usize..96,
    ) {
        let (clf, v_r, tuples) = setup(seed, ku, nr, ne, use_conversion, pool);
        let exact = clf.score_pool(&v_r, &tuples, ScoringPrecision::Exact);
        let ranked = clf.score_pool(&v_r, &tuples, ScoringPrecision::Ranked);
        prop_assert_eq!(exact.len(), ranked.len());
        let scale = exact.iter().fold(1.0f64, |m, &v| m.max(v.abs()));
        for (i, (&e, &r)) in exact.iter().zip(&ranked).enumerate() {
            prop_assert!(
                (e - r).abs() <= 0.1 * scale,
                "logit {} outside quant budget: exact {} vs ranked {} (scale {})",
                i, e, r, scale
            );
        }
    }

    /// Pool ranking agrees between Exact and Ranked for every pair of
    /// points separated by more than the quantization noise floor — the
    /// `Ranked` mode's whole contract is argmax-order fidelity above that
    /// floor. The floor is 20% of the pool's logit scale: ~4.5x the worst
    /// deviation observed per logit (see the tracking test above), i.e.
    /// >2x the worst possible pairwise error.
    #[test]
    fn ranked_ranking_matches_exact_above_quant_noise_floor(
        seed in 0u64..500,
        ne in 4usize..20,
        use_conversion in proptest::bool::ANY,
        pool in 2usize..128,
    ) {
        let (clf, v_r, tuples) = setup(seed, 6, 5, ne, use_conversion, pool);
        let exact = clf.score_pool(&v_r, &tuples, ScoringPrecision::Exact);
        let ranked = clf.score_pool(&v_r, &tuples, ScoringPrecision::Ranked);
        let noise_floor = 0.2 * exact.iter().fold(1.0f64, |m, &v| m.max(v.abs()));
        let exact_rank = ranking(&exact);
        let ranked_rank = ranking(&ranked);
        let mut ranked_pos = vec![0usize; pool];
        for (pos, &i) in ranked_rank.iter().enumerate() {
            ranked_pos[i] = pos;
        }
        // Any inversion between points whose Exact logits differ by more
        // than the floor is a real bug; closer pairs may swap — that is
        // the documented contract.
        for (a_pos, &hi) in exact_rank.iter().enumerate() {
            for &lo in &exact_rank[a_pos + 1..] {
                let gap = exact[hi] - exact[lo];
                if gap > noise_floor {
                    prop_assert!(
                        ranked_pos[hi] < ranked_pos[lo],
                        "rank inversion beyond quant floor: point {} (logit {}) \
                         ranked below point {} (logit {}), gap {} > floor {}",
                        hi, exact[hi], lo, exact[lo], gap, noise_floor
                    );
                }
            }
        }
    }
}

/// Regression (serving bugfix sweep): the parallel-dispatch threshold of a
/// fused call must be checked against the **fused** row total, not any
/// single request's rows. Three sessions of ~680 rows each sit far below
/// `PARALLEL_MIN_ROWS` individually but straddle it together; at every
/// boundary total (2047/2048/2049 for the shipped constant) the fused
/// scores must be bitwise identical to each request's own serial
/// `score_pool` — i.e. crossing the threshold changes scheduling only.
#[test]
fn fused_threshold_counts_fused_rows_at_the_boundary() {
    let min = UisClassifier::PARALLEL_MIN_ROWS;
    for total in [min - 1, min, min + 1] {
        let sizes = [total / 3, total / 3, total - 2 * (total / 3)];
        let precisions = [
            ScoringPrecision::Exact,
            ScoringPrecision::Fast,
            ScoringPrecision::Exact,
        ];
        let setups: Vec<_> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| setup(300 + i as u64, 5, 4, 8, i % 2 == 0, n))
            .collect();
        let requests: Vec<PoolScoreRequest<'_>> = setups
            .iter()
            .zip(&precisions)
            .map(|((clf, v_r, tuples), &precision)| PoolScoreRequest {
                classifier: clf,
                v_r,
                rows: tuples,
                precision,
            })
            .collect();
        // Forced threads > 1: on a single-core CI box `default_threads()`
        // is 1 and the parallel path above the threshold would never run.
        let fused = score_pool_fused_with(&requests, 4);
        assert_eq!(fused.len(), 3);
        for (((clf, v_r, tuples), &precision), got) in setups.iter().zip(&precisions).zip(&fused) {
            let solo = clf.score_pool(v_r, tuples, precision);
            let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                bits(&solo),
                bits(got),
                "fused scores diverged from serial at fused total {total}"
            );
        }
    }
}

/// A pool large enough to cross `PARALLEL_MIN_ROWS` still matches a pool
/// scored through the internal serial block path (exercised per-chunk),
/// proving the public dispatch threshold changes nothing but scheduling.
#[test]
fn large_pool_parallel_dispatch_is_bitwise_serial() {
    let (clf, v_r, tuples) = setup(7, 6, 5, 8, true, UisClassifier::PARALLEL_MIN_ROWS + 123);
    let whole = clf.logits_batch(&v_r, &tuples);
    // Reference: explicit 1-thread chunking at the same block size.
    let reference =
        parallel_flat_map_chunks(&tuples, 1024, 1, |chunk| clf.logits_batch(&v_r, chunk));
    assert_eq!(whole, reference);
    let fast = clf.score_pool(&v_r, &tuples, ScoringPrecision::Fast);
    let fast_ref: Vec<f64> =
        parallel_flat_map_chunks(&tuples, 1024, 1, |chunk| clf.logits_batch_f32(&v_r, chunk))
            .into_iter()
            .map(f64::from)
            .collect();
    assert_eq!(fast, fast_ref);
}
