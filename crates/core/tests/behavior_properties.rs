//! Property tests for the simulated-analyst behavior layer: zero noise and
//! zero shift must degenerate to the wrapped oracle *exactly*, abandonment
//! must never emit labels past its round, and selectivity must stay a
//! probability under any interest shift.

use lte_core::oracle::{
    BehaviorOracle, ConjunctiveOracle, NoisyOracle, RegionOracle, SubspaceOracle,
};
use lte_core::scenario::{DriftSpec, DriftTrigger};
use lte_data::subspace::Subspace;
use lte_geom::{Aabb, Region, RegionUnion};
use proptest::prelude::*;

fn boxed(x0: f64, y0: f64, w: f64, h: f64) -> RegionUnion {
    RegionUnion::new(vec![Region::Box(Aabb::new(
        vec![x0, y0],
        vec![x0 + w, y0 + h],
    ))])
}

fn truth_of(region: RegionUnion) -> ConjunctiveOracle {
    ConjunctiveOracle::new(vec![(Subspace::new(vec![0, 1]), region)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Noise probability 0.0 is the wrapped oracle, label for label — both
    /// through `NoisyOracle` and through a full `BehaviorOracle`.
    #[test]
    fn zero_noise_degenerates_to_the_wrapped_oracle(
        x0 in -100.0..100.0f64, y0 in -100.0..100.0f64,
        w in 0.1..50.0f64, h in 0.1..50.0f64,
        rows in proptest::collection::vec(
            proptest::collection::vec(-200.0..200.0f64, 2), 0..40),
        seed in 0u64..1000,
    ) {
        let inner = RegionOracle::new(boxed(x0, y0, w, h));
        let noisy = NoisyOracle::new(RegionOracle::new(boxed(x0, y0, w, h)), 0.0, seed);
        let analyst = BehaviorOracle::new(truth_of(boxed(x0, y0, w, h)), seed);
        prop_assert!(analyst.begin_round(0));
        for row in &rows {
            prop_assert_eq!(noisy.label(row), inner.label(row));
            prop_assert_eq!(analyst.label_full(row), inner.label(row));
            prop_assert_eq!(analyst.subspace_view(0).label(row), inner.label(row));
        }
    }

    /// Shift magnitude 0.0 is the identity *bitwise*: the shifted truth
    /// compares equal to the original, part for part.
    #[test]
    fn zero_shift_degenerates_to_the_original_truth(
        x0 in -100.0..100.0f64, y0 in -100.0..100.0f64,
        w in 0.1..50.0f64, h in 0.1..50.0f64,
        at in 0usize..5,
    ) {
        let region = boxed(x0, y0, w, h);
        let spec = DriftSpec {
            trigger: DriftTrigger::AtRound(at),
            translate_frac: 0.0,
            scale: 1.0,
        };
        prop_assert!(spec.is_noop());
        prop_assert_eq!(spec.apply(&region), region.clone());
        let truth = truth_of(region);
        let shifted = spec.shift_truth(&truth);
        prop_assert_eq!(shifted.parts(), truth.parts());
    }

    /// Abandonment at round k: rounds `0..k` run, everything later refuses
    /// to start, and the label counter counts exactly the rounds that ran.
    #[test]
    fn abandonment_never_emits_labels_past_round_k(
        k in 0usize..8, total in 0usize..8, seed in 0u64..1000,
    ) {
        let analyst = BehaviorOracle::new(truth_of(boxed(0.0, 0.0, 1.0, 1.0)), seed)
            .with_noise(0.5)
            .with_abandonment(k);
        let mut labelled = 0u64;
        for r in 0..total {
            if analyst.begin_round(r) {
                prop_assert!(r < k, "round {} ran despite abandonment at {}", r, k);
                analyst.subspace_view(0).label(&[0.5, 0.5]);
                labelled += 1;
            } else {
                prop_assert!(r >= k, "round {} refused before abandonment at {}", r, k);
            }
        }
        prop_assert_eq!(analyst.labels_emitted(), labelled);
        prop_assert_eq!(labelled as usize, k.min(total));
    }

    /// Selectivity is a probability under any shift, however extreme —
    /// including negative scales (inverted boxes) and off-domain moves.
    #[test]
    fn selectivity_stays_in_unit_interval_under_any_shift(
        x0 in -100.0..100.0f64, y0 in -100.0..100.0f64,
        w in 0.1..50.0f64, h in 0.1..50.0f64,
        translate in -3.0..3.0f64, scale in -2.0..4.0f64,
        rows in proptest::collection::vec(
            proptest::collection::vec(-500.0..500.0f64, 2), 1..60),
    ) {
        let spec = DriftSpec {
            trigger: DriftTrigger::AtRound(0),
            translate_frac: translate,
            scale,
        };
        let shifted = spec.shift_truth(&truth_of(boxed(x0, y0, w, h)));
        let sel = shifted.selectivity(&rows);
        prop_assert!((0.0..=1.0).contains(&sel), "selectivity {} out of range", sel);
    }
}
