//! Async admission for the scoring service: sessions are **accepted** or
//! **parked** without ever occupying a worker.
//!
//! Submission is a queue operation, not a thread: every submitted session
//! joins one FIFO, and at each tick boundary the service promotes as many
//! parked sessions as the active-capacity budget allows. A session's
//! admission tick is therefore a pure function of the submission order and
//! the completion history — counter-based, never timing-based — which is
//! what keeps the whole service deterministic at any worker count.

use std::collections::VecDeque;

/// What happened to a submitted session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionState {
    /// Within capacity: the session joins the next tick's batch.
    Admitted,
    /// Over capacity: the session waits in FIFO order for completions to
    /// free slots; no worker is held while it waits.
    Parked,
}

/// FIFO admission queue with a bounded active-session budget.
///
/// `T` is the pending-session payload; the queue never inspects it. All
/// state transitions are explicit ([`AdmissionQueue::submit`] →
/// [`AdmissionQueue::admit`] → [`AdmissionQueue::release`]), so the exact
/// admission tick of every session is replayable.
#[derive(Debug)]
pub struct AdmissionQueue<T> {
    max_active: usize,
    active: usize,
    parked: VecDeque<T>,
    submitted: u64,
    admitted_total: u64,
    peak_parked: usize,
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `max_active` concurrent sessions
    /// (clamped to at least 1 so the queue can always drain).
    pub fn bounded(max_active: usize) -> Self {
        Self {
            max_active: max_active.max(1),
            active: 0,
            parked: VecDeque::new(),
            submitted: 0,
            admitted_total: 0,
            peak_parked: 0,
        }
    }

    /// A queue that admits every submission at the next tick.
    pub fn unbounded() -> Self {
        Self::bounded(usize::MAX)
    }

    /// Enqueue a session. Returns [`AdmissionState::Admitted`] when the
    /// session fits the capacity budget at the next tick boundary given
    /// everything queued ahead of it, [`AdmissionState::Parked`] otherwise.
    /// Either way this only touches the queue — no worker is consumed.
    pub fn submit(&mut self, item: T) -> AdmissionState {
        self.submitted += 1;
        let would_run = self.active + self.parked.len();
        self.parked.push_back(item);
        self.peak_parked = self.peak_parked.max(self.parked.len());
        if would_run < self.max_active {
            AdmissionState::Admitted
        } else {
            AdmissionState::Parked
        }
    }

    /// Promote parked sessions into the active set, FIFO, up to the free
    /// capacity. Called once per tick boundary by the service.
    pub fn admit(&mut self) -> Vec<T> {
        let free = self.max_active.saturating_sub(self.active);
        let n = free.min(self.parked.len());
        let batch: Vec<T> = self.parked.drain(..n).collect();
        self.active += batch.len();
        self.admitted_total += batch.len() as u64;
        batch
    }

    /// Return `n` completed sessions' capacity to the pool.
    pub fn release(&mut self, n: usize) {
        debug_assert!(n <= self.active, "releasing more sessions than active");
        self.active = self.active.saturating_sub(n);
    }

    /// Sessions currently admitted and running.
    pub fn active(&self) -> usize {
        self.active
    }

    /// Sessions currently parked.
    pub fn parked(&self) -> usize {
        self.parked.len()
    }

    /// The capacity budget.
    pub fn max_active(&self) -> usize {
        self.max_active
    }

    /// Total sessions ever submitted.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Total sessions ever admitted.
    pub fn admitted_total(&self) -> u64 {
        self.admitted_total
    }

    /// High-water mark of the parked queue.
    pub fn peak_parked(&self) -> usize {
        self.peak_parked
    }

    /// True when nothing is active or parked.
    pub fn is_idle(&self) -> bool {
        self.active == 0 && self.parked.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_in_fifo_order_up_to_capacity() {
        let mut q = AdmissionQueue::bounded(2);
        assert_eq!(q.submit('a'), AdmissionState::Admitted);
        assert_eq!(q.submit('b'), AdmissionState::Admitted);
        assert_eq!(q.submit('c'), AdmissionState::Parked);
        assert_eq!(q.admit(), vec!['a', 'b']);
        assert_eq!(q.active(), 2);
        assert_eq!(q.parked(), 1);
        // No free capacity: nothing promotes.
        assert!(q.admit().is_empty());
        // A completion frees a slot; the parked session promotes FIFO.
        q.release(1);
        assert_eq!(q.admit(), vec!['c']);
        assert_eq!(q.active(), 2);
        q.release(2);
        assert!(q.is_idle());
    }

    #[test]
    fn unbounded_admits_everything_next_tick() {
        let mut q = AdmissionQueue::unbounded();
        for i in 0..100 {
            assert_eq!(q.submit(i), AdmissionState::Admitted);
        }
        assert_eq!(q.admit().len(), 100);
        assert_eq!(q.peak_parked(), 100, "parked until the tick boundary");
        assert_eq!(q.submitted(), 100);
        assert_eq!(q.admitted_total(), 100);
    }

    #[test]
    fn zero_capacity_clamps_to_one_so_the_queue_drains() {
        let mut q = AdmissionQueue::bounded(0);
        assert_eq!(q.max_active(), 1);
        q.submit(1u8);
        q.submit(2u8);
        assert_eq!(q.admit(), vec![1]);
        q.release(1);
        assert_eq!(q.admit(), vec![2]);
    }
}
