//! The session engine: N concurrent online explorations over one shared
//! pipeline.

use crate::stats::ThroughputStats;
use lte_core::explore::Variant;
use lte_core::oracle::ConjunctiveOracle;
use lte_core::parallel::{default_threads, parallel_map};
use lte_core::pipeline::{LtePipeline, UirOutcome};
use lte_core::uis::UisMode;
use lte_data::rng::derive_seed;
use std::sync::Arc;
use std::time::Instant;

/// One user's exploration session: who answers the labelling rounds (the
/// oracle), which LTE variant runs, and the seed driving the session's
/// random choices (the Δ initial tuples).
#[derive(Debug, Clone)]
pub struct SessionRequest {
    /// Caller-chosen session identifier, echoed into the outcome.
    pub id: u64,
    /// The (simulated) user's ground-truth interest region.
    pub truth: ConjunctiveOracle,
    /// Which LTE variant to serve.
    pub variant: Variant,
    /// Session seed; two requests with equal seed, truth, and variant
    /// produce bit-identical outcomes.
    pub seed: u64,
}

/// The completed session: the full per-round exploration outcome plus the
/// engine-side wall-clock.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// The request's identifier.
    pub id: u64,
    /// The conjunctive exploration result (per-subspace rounds inside).
    pub outcome: UirOutcome,
    /// Wall-clock seconds of the whole session as seen by the engine
    /// (labelling rounds + prediction, queueing excluded).
    pub wall_seconds: f64,
}

/// A serving engine over one shared, immutable, meta-trained pipeline.
///
/// The pipeline sits behind an [`Arc`]: meta-trained parameters and
/// memories are read-only at serving time (online adaptation clones the
/// initialization per session; see [`lte_core::meta_learner::MetaLearner::adapt`]),
/// so any number of sessions can share them without locks.
#[derive(Debug, Clone)]
pub struct SessionEngine {
    pipeline: Arc<LtePipeline>,
    workers: usize,
}

impl SessionEngine {
    /// Engine over a shared pipeline with one worker per available core.
    pub fn new(pipeline: Arc<LtePipeline>) -> Self {
        Self::with_workers(pipeline, default_threads())
    }

    /// Engine with an explicit worker count (clamped to at least 1).
    pub fn with_workers(pipeline: Arc<LtePipeline>, workers: usize) -> Self {
        Self {
            pipeline,
            workers: workers.max(1),
        }
    }

    /// The worker count in force.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The shared pipeline.
    pub fn pipeline(&self) -> &LtePipeline {
        &self.pipeline
    }

    /// A clone of the shared pipeline handle — for building a
    /// [`crate::service::ScoringService`] (or a retrainer's
    /// [`crate::swap::SwapCell`]) over the same model.
    pub fn shared_pipeline(&self) -> Arc<LtePipeline> {
        Arc::clone(&self.pipeline)
    }

    /// Generate `n` simulated session requests: one ground-truth UIR each
    /// (selectivity-guarded like [`LtePipeline::generate_truth`]) with
    /// seeds derived from `base_seed`. Request `i` is identical across
    /// calls with the same arguments — the determinism tests rely on this.
    pub fn simulate_requests(
        &self,
        n: usize,
        mode: UisMode,
        min_sel: f64,
        max_sel: f64,
        variant: Variant,
        base_seed: u64,
    ) -> Vec<SessionRequest> {
        (0..n)
            .map(|i| SessionRequest {
                id: i as u64,
                truth: self.pipeline.generate_truth(
                    mode,
                    derive_seed(base_seed, 5_000 + i as u64),
                    min_sel,
                    max_sel,
                ),
                variant,
                seed: derive_seed(base_seed, 9_000 + i as u64),
            })
            .collect()
    }

    /// Run every session to completion across the worker pool. Outcomes
    /// come back **in request order** and their contents (predictions,
    /// scores, confusion, labels) are independent of the worker count;
    /// only the wall-clock fields vary run to run.
    pub fn run_sessions(
        &self,
        requests: Vec<SessionRequest>,
        eval_rows: &[Vec<f64>],
    ) -> Vec<SessionOutcome> {
        let pipeline = &self.pipeline;
        parallel_map(requests, self.workers, move |req| {
            let t0 = Instant::now();
            let outcome = pipeline.explore(&req.truth, eval_rows, req.variant, req.seed);
            SessionOutcome {
                id: req.id,
                outcome,
                wall_seconds: t0.elapsed().as_secs_f64(),
            }
        })
    }

    /// [`SessionEngine::run_sessions`] plus aggregate throughput/latency
    /// statistics for the batch.
    pub fn run_with_stats(
        &self,
        requests: Vec<SessionRequest>,
        eval_rows: &[Vec<f64>],
    ) -> (Vec<SessionOutcome>, ThroughputStats) {
        let t0 = Instant::now();
        let outcomes = self.run_sessions(requests, eval_rows);
        let wall = t0.elapsed().as_secs_f64();
        let stats = ThroughputStats::collect(&outcomes, wall, self.workers);
        (outcomes, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lte_core::config::LteConfig;
    use lte_data::generator::generate_sdss;
    use lte_data::subspace::decompose_sequential;

    fn tiny_pipeline() -> (Arc<LtePipeline>, Vec<Vec<f64>>) {
        let table = generate_sdss(3000, 0);
        let mut cfg = LteConfig::reduced();
        cfg.train.n_tasks = 60;
        cfg.train.epochs = 1;
        let (p, _) = LtePipeline::offline(&table, decompose_sequential(4, 2), cfg, 5);
        let pool: Vec<Vec<f64>> = (0..250).map(|i| table.row(i).unwrap()).collect();
        (Arc::new(p), pool)
    }

    #[test]
    fn eight_concurrent_sessions_match_single_session_runs() {
        let (pipeline, pool) = tiny_pipeline();
        let engine = SessionEngine::with_workers(Arc::clone(&pipeline), 4);
        let requests =
            engine.simulate_requests(8, UisMode::new(1, 10), 0.2, 0.9, Variant::Meta, 77);
        assert_eq!(requests.len(), 8);

        let outcomes = engine.run_sessions(requests.clone(), &pool);
        assert_eq!(outcomes.len(), 8);
        for (req, got) in requests.into_iter().zip(&outcomes) {
            assert_eq!(req.id, got.id, "outcomes must keep request order");
            // The exact single-session path the engine wraps.
            let solo = pipeline.explore(&req.truth, &pool, req.variant, req.seed);
            assert_eq!(solo.confusion, got.outcome.confusion);
            assert_eq!(solo.labels_used, got.outcome.labels_used);
            for (a, b) in solo
                .subspace_outcomes
                .iter()
                .zip(&got.outcome.subspace_outcomes)
            {
                assert_eq!(a.predictions, b.predictions);
                assert_eq!(a.cs_labels, b.cs_labels);
                let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(
                    bits(&a.scores),
                    bits(&b.scores),
                    "scores must be bitwise equal"
                );
            }
        }
    }

    #[test]
    fn stats_cover_every_round() {
        let (pipeline, pool) = tiny_pipeline();
        let engine = SessionEngine::with_workers(Arc::clone(&pipeline), 2);
        let requests =
            engine.simulate_requests(5, UisMode::new(1, 10), 0.2, 0.9, Variant::MetaStar, 3);
        let (outcomes, stats) = engine.run_with_stats(requests, &pool);
        assert_eq!(stats.sessions, 5);
        // One round per subspace per session.
        assert_eq!(stats.rounds, 5 * pipeline.subspaces().len());
        assert_eq!(stats.workers, 2);
        assert!(stats.wall_seconds > 0.0);
        assert!(stats.sessions_per_sec > 0.0);
        assert!(stats.round_p95_seconds >= stats.round_p50_seconds);
        assert!(stats.round_p50_seconds > 0.0);
        assert_eq!(outcomes.len(), 5);
    }

    #[test]
    fn workers_clamp_to_one() {
        let (pipeline, _) = tiny_pipeline();
        assert_eq!(SessionEngine::with_workers(pipeline, 0).workers(), 1);
    }
}
