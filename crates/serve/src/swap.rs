//! Hot-swap cell for the shared pipeline: replace the meta-trained model
//! under live sessions without draining them.
//!
//! An `ArcSwap`-style primitive, hand-rolled on the standard library (the
//! workspace takes no new dependencies): a [`Mutex`] guarding an
//! `(Arc<LtePipeline>, epoch)` pair. [`SwapCell::load`] clones the `Arc`
//! and reads the epoch **under one lock acquisition**, so a reader can
//! never observe a new pipeline with an old epoch or vice versa — the
//! epoch is the torn-read detector the hot-swap tests assert on. Writers
//! ([`SwapCell::swap`]) replace the `Arc` and bump the epoch atomically in
//! the same sense.
//!
//! The lock is held only for the pointer copy (no scoring work happens
//! under it), so contention is negligible next to a labelling round. The
//! scoring service loads each shard's cell **once per tick**, giving every
//! round of every session exactly one pipeline epoch (see
//! `docs/SERVING.md`).

use lte_core::pipeline::LtePipeline;
use std::sync::{Arc, Mutex};

/// A shared, swappable pipeline slot with an epoch counter.
///
/// Epoch 0 is the pipeline the cell was created with; every
/// [`SwapCell::swap`] bumps it by one. Readers get a consistent
/// `(pipeline, epoch)` snapshot from [`SwapCell::load`].
#[derive(Debug)]
pub struct SwapCell {
    inner: Mutex<(Arc<LtePipeline>, u64)>,
}

impl SwapCell {
    /// A cell starting at epoch 0 with the given pipeline.
    pub fn new(pipeline: Arc<LtePipeline>) -> Self {
        Self {
            inner: Mutex::new((pipeline, 0)),
        }
    }

    /// Snapshot the current pipeline and its epoch — one lock acquisition,
    /// so the pair is always mutually consistent.
    pub fn load(&self) -> (Arc<LtePipeline>, u64) {
        let guard = self.inner.lock().expect("swap cell poisoned");
        (Arc::clone(&guard.0), guard.1)
    }

    /// The current epoch (0 until the first swap).
    pub fn epoch(&self) -> u64 {
        self.inner.lock().expect("swap cell poisoned").1
    }

    /// Install a new pipeline, bumping the epoch; returns the new epoch.
    /// In-flight sessions keep their `Arc` clones alive — nothing is
    /// dropped under them; they pick the new epoch up at the next tick
    /// boundary.
    pub fn swap(&self, pipeline: Arc<LtePipeline>) -> u64 {
        let mut guard = self.inner.lock().expect("swap cell poisoned");
        guard.0 = pipeline;
        guard.1 += 1;
        guard.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lte_core::config::LteConfig;
    use lte_core::pipeline::LtePipeline;
    use lte_data::generator::generate_sdss;
    use lte_data::subspace::decompose_sequential;

    fn pipeline(seed: u64) -> Arc<LtePipeline> {
        let table = generate_sdss(1500, seed);
        let mut cfg = LteConfig::reduced();
        cfg.train.n_tasks = 20;
        cfg.train.epochs = 1;
        let (p, _) = LtePipeline::offline(&table, decompose_sequential(2, 2), cfg, seed);
        Arc::new(p)
    }

    #[test]
    fn swap_bumps_epoch_and_replaces_pipeline() {
        let a = pipeline(1);
        let b = pipeline(2);
        let cell = SwapCell::new(Arc::clone(&a));
        assert_eq!(cell.epoch(), 0);
        let (p0, e0) = cell.load();
        assert!(Arc::ptr_eq(&p0, &a));
        assert_eq!(e0, 0);

        assert_eq!(cell.swap(Arc::clone(&b)), 1);
        let (p1, e1) = cell.load();
        assert!(Arc::ptr_eq(&p1, &b));
        assert_eq!(e1, 1);
        assert_eq!(cell.swap(a), 2);
    }

    #[test]
    fn loads_are_consistent_under_concurrent_swaps() {
        let a = pipeline(1);
        let b = pipeline(2);
        let cell = SwapCell::new(Arc::clone(&a));
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for i in 0..50 {
                    let next = if i % 2 == 0 { &b } else { &a };
                    cell.swap(Arc::clone(next));
                }
            });
            scope.spawn(|| {
                let mut last_epoch = 0;
                for _ in 0..200 {
                    let (p, e) = cell.load();
                    // Epochs only move forward, and the pair is coherent:
                    // even epochs (incl. 0) hold `a`, odd epochs hold `b`.
                    assert!(e >= last_epoch, "epoch went backwards");
                    last_epoch = e;
                    let expected = if e % 2 == 0 { &a } else { &b };
                    assert!(Arc::ptr_eq(&p, expected), "torn read at epoch {e}");
                }
            });
        });
        assert_eq!(cell.epoch(), 50);
    }
}
