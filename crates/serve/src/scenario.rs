//! Mixed-traffic scenarios: cohorts of simulated analysts over the engine.
//!
//! A scenario composes [`Cohort`]s — named analyst populations with a
//! [`BehaviorConfig`] and a traffic share — into one reproducible batch of
//! sessions. Cohort assignment is largest-remainder apportionment followed
//! by a seeded Fisher–Yates shuffle, so the exact cohort of every session
//! slot is a pure function of the scenario config; running the batch on 1
//! worker or 32 yields byte-identical per-cohort reports (timing fields
//! aside), pinned by `tests/scenario_determinism.rs`.

use crate::engine::SessionEngine;
use crate::stats::ScenarioReport;
use lte_core::explore::Variant;
use lte_core::oracle::ConjunctiveOracle;
use lte_core::parallel::parallel_map;
use lte_core::scenario::{explore_behavioral, BehaviorConfig, BehavioralOutcome};
use lte_core::uis::UisMode;
use lte_data::rng::{derive_seed, seeded};
use rand::Rng;
use std::time::Instant;

/// One analyst population: a name, a behavior, and its share of traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct Cohort {
    /// Cohort name (appears in reports and JSON).
    pub name: String,
    /// How these analysts behave.
    pub behavior: BehaviorConfig,
    /// Relative traffic share (weights need not sum to 1).
    pub weight: f64,
}

/// A reproducible traffic mix over one serving engine.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Scenario name (appears in reports and JSON).
    pub name: String,
    /// The analyst populations in the mix.
    pub cohorts: Vec<Cohort>,
    /// Total sessions across all cohorts.
    pub sessions: usize,
    /// Simulated-UIS shape for the ground truths.
    pub mode: UisMode,
    /// Ground-truth selectivity guard (lower bound).
    pub min_sel: f64,
    /// Ground-truth selectivity guard (upper bound).
    pub max_sel: f64,
    /// LTE variant every session runs.
    pub variant: Variant,
    /// Master seed; everything in the scenario derives from it.
    pub seed: u64,
    /// F1 threshold for rounds-to-convergence reporting.
    pub convergence_f1: f64,
}

impl ScenarioConfig {
    /// The default mix: 80% steady analysts, 15% drifters, 5% churners —
    /// the shape AIDE-style serving literature assumes (see PAPERS.md).
    pub fn standard_mix(sessions: usize, seed: u64) -> Self {
        Self {
            name: "standard_mix".to_string(),
            cohorts: vec![
                Cohort {
                    name: "steady".to_string(),
                    behavior: BehaviorConfig::steady(),
                    weight: 0.80,
                },
                Cohort {
                    name: "drifters".to_string(),
                    behavior: BehaviorConfig::drifter(),
                    weight: 0.15,
                },
                Cohort {
                    name: "churners".to_string(),
                    behavior: BehaviorConfig::churner(),
                    weight: 0.05,
                },
            ],
            sessions,
            mode: UisMode::new(1, 10),
            min_sel: 0.2,
            max_sel: 0.9,
            variant: Variant::Meta,
            seed,
            convergence_f1: 0.6,
        }
    }

    /// Cohort index per session slot: largest-remainder apportionment of
    /// `sessions` across cohort weights, then a seeded Fisher–Yates
    /// shuffle. Deterministic in the config alone.
    pub fn assignments(&self) -> Vec<usize> {
        assert!(!self.cohorts.is_empty(), "at least one cohort required");
        let total_w: f64 = self.cohorts.iter().map(|c| c.weight.max(0.0)).sum();
        let mut counts = vec![0usize; self.cohorts.len()];
        if total_w > 0.0 {
            let quotas: Vec<f64> = self
                .cohorts
                .iter()
                .map(|c| c.weight.max(0.0) / total_w * self.sessions as f64)
                .collect();
            let mut assigned = 0usize;
            for (count, quota) in counts.iter_mut().zip(&quotas) {
                *count = quota.floor() as usize;
                assigned += *count;
            }
            // Hand leftover slots to the largest fractional remainders,
            // ties broken by the *smaller cohort index* — an explicit
            // total order (`total_cmp` + index), so the layout can never
            // depend on float-comparison quirks (NaN remainders collapsing
            // to `Equal` made the old comparator inconsistent) or on the
            // incidental stability of the sort.
            let mut order: Vec<usize> = (0..self.cohorts.len()).collect();
            order.sort_by(|&a, &b| {
                let ra = quotas[a] - quotas[a].floor();
                let rb = quotas[b] - quotas[b].floor();
                rb.total_cmp(&ra).then(a.cmp(&b))
            });
            // `saturating_sub`: float quotas can floor-sum to `sessions`
            // already (leftover 0) — or, with adversarial weights, a hair
            // above it; never underflow into a giant `take`.
            for &c in order
                .iter()
                .cycle()
                .take(self.sessions.saturating_sub(assigned))
            {
                counts[c] += 1;
            }
        } else {
            counts[0] = self.sessions;
        }

        let mut slots: Vec<usize> = counts
            .iter()
            .enumerate()
            .flat_map(|(c, &n)| std::iter::repeat_n(c, n))
            .collect();
        let mut rng = seeded(derive_seed(self.seed, 17));
        for i in (1..slots.len()).rev() {
            let j = rng.random_range(0..=i);
            slots.swap(i, j);
        }
        slots
    }
}

/// One scenario session: a ground truth plus the cohort it was drawn for.
#[derive(Debug, Clone)]
pub struct ScenarioRequest {
    /// Session identifier (slot index).
    pub id: u64,
    /// Index into the scenario's cohort list.
    pub cohort: usize,
    /// The analyst's initial ground-truth interest region.
    pub truth: ConjunctiveOracle,
    /// Session seed (drives initial tuples, noise, and think-time jitter).
    pub seed: u64,
}

/// A completed scenario session.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The request's identifier.
    pub id: u64,
    /// Index into the scenario's cohort list.
    pub cohort: usize,
    /// The behavioral session result.
    pub outcome: BehavioralOutcome,
    /// Wall-clock seconds of the session as seen by the engine.
    pub wall_seconds: f64,
}

impl SessionEngine {
    /// Materialize a scenario's session requests: one selectivity-guarded
    /// ground truth per slot, cohorts assigned per
    /// [`ScenarioConfig::assignments`]. Request `i` is identical across
    /// calls with the same config.
    pub fn scenario_requests(&self, cfg: &ScenarioConfig) -> Vec<ScenarioRequest> {
        let cohorts = cfg.assignments();
        (0..cfg.sessions)
            .map(|i| ScenarioRequest {
                id: i as u64,
                cohort: cohorts[i],
                truth: self.pipeline().generate_truth(
                    cfg.mode,
                    derive_seed(cfg.seed, 6_000 + i as u64),
                    cfg.min_sel,
                    cfg.max_sel,
                ),
                seed: derive_seed(cfg.seed, 8_000 + i as u64),
            })
            .collect()
    }

    /// Run a full mixed-traffic scenario across the worker pool and
    /// aggregate per-cohort statistics. Outcome contents are independent
    /// of the worker count; only measured timing varies.
    pub fn run_scenario(
        &self,
        cfg: &ScenarioConfig,
        eval_rows: &[Vec<f64>],
    ) -> (Vec<ScenarioOutcome>, ScenarioReport) {
        let requests = self.scenario_requests(cfg);
        let pipeline = self.pipeline();
        let cohorts = &cfg.cohorts;
        let variant = cfg.variant;
        let t0 = Instant::now();
        let outcomes = parallel_map(requests, self.workers(), move |req| {
            let s0 = Instant::now();
            let outcome = explore_behavioral(
                pipeline,
                &req.truth,
                &cohorts[req.cohort].behavior,
                eval_rows,
                variant,
                req.seed,
            );
            ScenarioOutcome {
                id: req.id,
                cohort: req.cohort,
                outcome,
                wall_seconds: s0.elapsed().as_secs_f64(),
            }
        });
        let wall = t0.elapsed().as_secs_f64();
        let report = ScenarioReport::collect(cfg, &outcomes, wall, self.workers());
        (outcomes, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix(sessions: usize) -> ScenarioConfig {
        ScenarioConfig::standard_mix(sessions, 42)
    }

    #[test]
    fn assignments_apportion_and_cover_every_cohort() {
        let cfg = mix(40);
        let slots = cfg.assignments();
        assert_eq!(slots.len(), 40);
        let count = |c: usize| slots.iter().filter(|&&s| s == c).count();
        assert_eq!(count(0), 32, "80% of 40");
        assert_eq!(count(1), 6, "15% of 40");
        assert_eq!(count(2), 2, "5% of 40");
    }

    #[test]
    fn assignments_are_deterministic_and_shuffled() {
        let cfg = mix(64);
        let a = cfg.assignments();
        assert_eq!(a, cfg.assignments());
        // Shuffled: the tail is not all-churners as the unshuffled
        // repeat-layout would make it.
        assert_ne!(
            &a[..],
            &{
                let mut sorted = a.clone();
                sorted.sort_unstable();
                sorted
            }[..],
            "assignment order must be shuffled"
        );
        // A different seed shuffles differently.
        let mut other = mix(64);
        other.seed = 43;
        assert_ne!(a, other.assignments());
    }

    #[test]
    fn zero_weight_mass_falls_back_to_the_first_cohort() {
        let mut cfg = mix(10);
        for c in &mut cfg.cohorts {
            c.weight = 0.0;
        }
        let slots = cfg.assignments();
        assert_eq!(slots, vec![0; 10]);
    }

    /// Regression (serving bugfix sweep): a mix engineered so every cohort
    /// has the *same* fractional remainder. The leftover slots must go to
    /// the smallest cohort indices — a documented total order — not to
    /// whatever the float comparator or sort stability happened to yield.
    #[test]
    fn apportionment_breaks_remainder_ties_by_cohort_index() {
        let mut cfg = mix(6);
        cfg.cohorts = (0..4)
            .map(|i| Cohort {
                name: format!("c{i}"),
                behavior: BehaviorConfig::steady(),
                weight: 1.0,
            })
            .collect();
        // Quotas are 1.5 each: floors assign 4, the 2 leftover slots must
        // land on cohorts 0 and 1 (index tie-break).
        let slots = cfg.assignments();
        let count = |c: usize| slots.iter().filter(|&&s| s == c).count();
        assert_eq!(
            [count(0), count(1), count(2), count(3)],
            [2, 2, 1, 1],
            "ties must resolve by cohort index"
        );
        // Byte-identical across calls (and trivially across worker counts:
        // assignment happens before any worker is involved).
        assert_eq!(slots, cfg.assignments());
        // A NaN weight must not poison the ordering for the others.
        cfg.cohorts[3].weight = f64::NAN;
        let slots = cfg.assignments();
        assert_eq!(slots.len(), 6);
        assert_eq!(slots.iter().filter(|&&s| s == 3).count(), 0);
    }

    #[test]
    fn tiny_session_counts_still_cover_the_big_cohorts() {
        let cfg = mix(3);
        let slots = cfg.assignments();
        assert_eq!(slots.len(), 3);
        assert!(slots.contains(&0), "steady cohort must appear");
    }
}
