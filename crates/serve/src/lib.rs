//! Multi-session serving for LTE: many concurrent online explorations
//! against one shared, immutable set of meta-trained models.
//!
//! The paper's economics (§III) put all the expensive work *offline*: the
//! meta-learners are trained once per dataset, and each online session is a
//! handful of local gradient steps plus one pool prediction. That shape is
//! exactly what interactive serving needs — AIDE-style workloads where many
//! analysts issue labelling rounds at once against the same models — but
//! the core crate only exposes one-session-at-a-time entry points.
//!
//! This crate adds the serving layer:
//!
//! * [`SessionEngine`] — owns an `Arc<LtePipeline>` (the shared read-only
//!   meta-trained state) and drives N concurrent sessions through the
//!   existing `explore_subspace`/pipeline machinery on the worker pool in
//!   [`lte_core::parallel`],
//! * [`SessionRequest`] / [`SessionOutcome`] — one user's exploration in
//!   and out,
//! * [`ThroughputStats`] — sessions/sec and p50/p95 round latency for
//!   capacity planning,
//! * [`ScenarioConfig`] / [`SessionEngine::run_scenario`] — mixed-traffic
//!   workload simulation: cohorts of simulated analysts (steady, drifting,
//!   churning; see [`lte_core::scenario`]) composed into one reproducible
//!   batch, reported per cohort by [`ScenarioReport`],
//! * [`ScoringService`] — the cross-session batched path: sessions from
//!   all shards advance in ticks, every tick's pool-scoring requests fuse
//!   into one wide [`lte_core::classifier::score_pool_fused`] call, and
//!   each shard's encoded pool is cached per pipeline epoch instead of
//!   rebuilt per session per round. Admission is asynchronous
//!   ([`AdmissionQueue`]: submit never occupies a worker) and the served
//!   pipeline hot-swaps under load through a [`SwapCell`] without torn
//!   reads. See `docs/SERVING.md`.
//!
//! **Determinism guarantee:** session results depend only on each request's
//! seed and truth, never on the worker count or scheduling — outputs come
//! back in request order with bit-identical contents at 1 worker or at
//! [`lte_core::parallel::default_threads`] workers (wall-clock timing
//! fields aside). The integration tests pin this down.
//!
//! # Example
//!
//! Train once, then serve many concurrent sessions (this is the README's
//! "Serving" example, compiled here so it cannot drift from the API):
//!
//! ```no_run
//! use lte_core::config::LteConfig;
//! use lte_core::explore::Variant;
//! use lte_core::pipeline::LtePipeline;
//! use lte_core::uis::UisMode;
//! use lte_data::generator::generate_sdss;
//! use lte_data::subspace::decompose_sequential;
//! use lte_serve::SessionEngine;
//! use std::sync::Arc;
//!
//! let table = generate_sdss(20_000, 42);
//! let (pipeline, _) =
//!     LtePipeline::offline(&table, decompose_sequential(4, 2), LteConfig::reduced(), 42);
//!
//! // Share the trained pipeline; one engine serves every analyst.
//! let engine = SessionEngine::new(Arc::new(pipeline));
//! let pool: Vec<Vec<f64>> = (0..1000).map(|i| table.row(i).unwrap()).collect();
//!
//! // 16 concurrent sessions (simulated users here; real sessions would
//! // build `SessionRequest`s from live labelling oracles).
//! let requests =
//!     engine.simulate_requests(16, UisMode::new(1, 20), 0.2, 0.9, Variant::MetaStar, 7);
//! let (outcomes, stats) = engine.run_with_stats(requests, &pool);
//! println!("{}", stats.summary());
//! println!("first session F1: {:.3}", outcomes[0].outcome.f1());
//! ```

pub mod admission;
pub mod engine;
pub mod scenario;
pub mod service;
pub mod stats;
pub mod swap;

pub use admission::{AdmissionQueue, AdmissionState};
pub use engine::{SessionEngine, SessionOutcome, SessionRequest};
pub use scenario::{Cohort, ScenarioConfig, ScenarioOutcome, ScenarioRequest};
pub use service::{
    RoutedSession, ScoringService, ScoringServiceBuilder, ServiceOutcome, ServiceStats, TickReport,
};
pub use stats::{percentile, CohortStats, ScenarioReport, ThroughputStats};
pub use swap::SwapCell;
