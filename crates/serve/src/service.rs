//! Cross-session batched scoring: the tick-driven [`ScoringService`].
//!
//! The per-session engine ([`SessionEngine::run_sessions`]) runs each
//! session end to end on one worker: every round re-encodes the retrieval
//! pool and issues its own small `score_pool` call. At serving scale (64+
//! concurrent sessions over the same pool) that shape wastes the batch
//! structure twice — the pool is projected and encoded once *per session
//! per round*, and the matmul-heavy scoring runs as many narrow calls
//! instead of one wide one.
//!
//! The service inverts the loop. Time advances in **ticks**; each tick:
//!
//! 1. **admit** — promote parked sessions FIFO up to the capacity budget
//!    ([`crate::admission::AdmissionQueue`]); submission itself never
//!    blocks a worker.
//! 2. **refresh** — load each in-use shard's [`SwapCell`] **once** and,
//!    when the epoch moved, rebuild the shard's cached [`EncodedPool`].
//!    Loading once per tick is the no-torn-read guarantee: every round of
//!    every session sees exactly one `(pipeline, epoch)` pair.
//! 3. **prepare** — run the label-and-adapt half of one round per active
//!    session ([`lte_core::explore::prepare_round`]) across the worker
//!    pool.
//! 4. **score** — fuse every session's pool-scoring request into a single
//!    [`lte_core::classifier::score_pool_fused_with`] call. Scores are
//!    bit-identical to the per-session calls (row independence), so fusing
//!    is invisible to outcomes.
//! 5. **finish** — predictions, `Meta*` revision, per-subspace bookkeeping
//!    ([`lte_core::explore::finish_round`]).
//! 6. **drain** — sessions whose last subspace finished emit a
//!    [`ServiceOutcome`] and release their admission slot.
//!
//! Everything that affects outcomes is counter-based (submission order,
//! tick index, per-round seed stream `derive_seed(seed, 2000 + round)` —
//! the same stream [`lte_core::pipeline::LtePipeline::explore`] uses), so
//! results are bit-identical at any worker count; only measured timing
//! varies. Shards make one service serve several datasets (SDSS and Cars)
//! concurrently: requests are grouped per shard but *scored* in one fused
//! batch across all of them.

use crate::admission::{AdmissionQueue, AdmissionState};
use crate::engine::{SessionEngine, SessionOutcome, SessionRequest};
use crate::stats::ThroughputStats;
use crate::swap::SwapCell;
use lte_core::classifier::{score_pool_fused_with, PoolScoreRequest};
use lte_core::explore::{finish_round, prepare_round, ExploreOutcome, PreparedRound, Variant};
use lte_core::metrics::ConfusionMatrix;
use lte_core::oracle::RegionOracle;
use lte_core::parallel::{default_threads, parallel_map};
use lte_core::pipeline::{EncodedPool, LtePipeline, UirOutcome};
use lte_core::routing::{PipelineRegistry, Router, RoutingDecision};
use lte_data::rng::derive_seed;
use std::sync::Arc;
use std::time::Instant;

/// One dataset served by the service: a swappable pipeline, its retrieval
/// pool, and the per-epoch encoded-pool cache.
#[derive(Debug)]
struct Shard {
    name: String,
    cell: Arc<SwapCell>,
    eval_rows: Vec<Vec<f64>>,
    n_subspaces: usize,
    cache: Option<ShardCache>,
}

/// The encoded pool for one `(shard, pipeline epoch)` — rebuilt only when
/// the shard's [`SwapCell`] epoch moves.
#[derive(Debug)]
struct ShardCache {
    epoch: u64,
    pipeline: Arc<LtePipeline>,
    pool: EncodedPool,
}

/// A family of shards fed by one [`Router`]: every entry of the registry
/// became an internal shard at [`ScoringService::add_routed_shard`] time,
/// and [`ScoringService::submit_routed`] picks among them per session.
#[derive(Debug)]
struct RoutedGroup {
    name: String,
    registry: Arc<PipelineRegistry>,
    router: Router,
    eval_rows: Vec<Vec<f64>>,
    /// Internal shard index for each registry entry, in entry order.
    shards: Vec<usize>,
}

/// A session waiting in the admission queue.
#[derive(Debug)]
struct PendingSession {
    shard: usize,
    request: SessionRequest,
    routing: Option<RoutingDecision>,
    submit_seq: u64,
    submit_tick: u64,
}

/// A session currently advancing one subspace round per tick.
#[derive(Debug)]
struct ActiveSession {
    shard: usize,
    request: SessionRequest,
    routing: Option<RoutingDecision>,
    submit_seq: u64,
    submit_tick: u64,
    admitted_tick: u64,
    round: usize,
    uir_pred: Vec<bool>,
    per_subspace_f1: Vec<f64>,
    subspace_outcomes: Vec<ExploreOutcome>,
    epochs: Vec<u64>,
    online_seconds: f64,
}

/// A completed session, with the service-side provenance the per-session
/// engine cannot express: which pipeline epoch served each round and when
/// the session moved through the queue.
#[derive(Debug, Clone)]
pub struct ServiceOutcome {
    /// The request's identifier.
    pub id: u64,
    /// Index of the shard that served the session.
    pub shard: usize,
    /// The full exploration result, bit-identical to what
    /// [`LtePipeline::explore`] would produce against the epoch-matched
    /// pipelines.
    pub outcome: UirOutcome,
    /// The pipeline epoch each round ran against — exactly one per round;
    /// the hot-swap tests assert there is never a torn epoch.
    pub epochs: Vec<u64>,
    /// Global submission sequence number (FIFO position).
    pub submit_seq: u64,
    /// Tick at which the session was submitted.
    pub submit_tick: u64,
    /// Tick at which the session was admitted (== `submit_tick` when it
    /// was never parked).
    pub admitted_tick: u64,
    /// Tick at which the session's last round finished.
    pub completed_tick: u64,
    /// How the session was routed — `Some` for sessions submitted through
    /// [`ScoringService::submit_routed`], `None` for plain shard
    /// submissions. The decision (and its explanation) is computed at
    /// submit time and carried through unchanged.
    pub routing: Option<RoutingDecision>,
}

/// What one tick did — returned by [`ScoringService::tick`] so callers
/// (and the throughput bench) can see the fused batch shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickReport {
    /// The tick index (0-based).
    pub tick: u64,
    /// Sessions promoted from the parked queue this tick.
    pub admitted: usize,
    /// Rounds advanced (== active sessions this tick).
    pub rounds: usize,
    /// Scoring requests fused into the single batched call.
    pub fused_requests: usize,
    /// Total pool rows across the fused call.
    pub fused_rows: usize,
    /// Sessions that completed this tick.
    pub completed: usize,
    /// Sessions still parked after this tick.
    pub parked: usize,
}

/// Lifetime counters for the service — fused batch widths, rounds, and
/// scoring time, for capacity planning and the throughput bench.
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// Ticks executed.
    pub ticks: u64,
    /// Rounds advanced across all sessions.
    pub rounds: u64,
    /// Fused scoring calls issued (at most one per tick).
    pub fused_calls: u64,
    /// Pool rows scored across all fused calls.
    pub fused_rows_total: u64,
    /// Widest fused call, in pool rows.
    pub max_fused_rows: usize,
    /// Widest fused call, in session requests.
    pub max_fused_requests: usize,
    /// Wall-clock seconds inside fused scoring calls.
    pub score_seconds: f64,
    /// Sessions completed.
    pub sessions_completed: u64,
    /// High-water mark of concurrently active sessions.
    pub peak_active: usize,
}

impl ServiceStats {
    /// Mean pool rows per fused scoring call.
    pub fn mean_fused_rows(&self) -> f64 {
        if self.fused_calls == 0 {
            0.0
        } else {
            self.fused_rows_total as f64 / self.fused_calls as f64
        }
    }
}

/// Builds a [`ScoringService`] without constructor creep: worker count,
/// admission capacity, plain shards, and routed shard groups all in one
/// place.
///
/// ```no_run
/// use lte_core::{LtePipeline, PipelineRegistry, Router};
/// use lte_serve::ScoringService;
/// use std::sync::Arc;
///
/// fn build_service(
///     pipeline: Arc<LtePipeline>,
///     registry: Arc<PipelineRegistry>,
///     router: Router,
///     rows: Vec<Vec<f64>>,
/// ) -> ScoringService {
///     ScoringService::builder()
///         .workers(4)
///         .capacity(64)
///         .shard("sdss", pipeline, rows.clone())
///         .routed_shard("analyst", registry, router, rows)
///         .build()
/// }
/// ```
/// A routed-group registration queued by the builder: group name,
/// registry, router, and the group's full-space eval rows.
type RoutedSpec = (String, Arc<PipelineRegistry>, Router, Vec<Vec<f64>>);

#[derive(Debug)]
pub struct ScoringServiceBuilder {
    workers: usize,
    capacity: usize,
    shards: Vec<(String, Arc<LtePipeline>, Vec<Vec<f64>>)>,
    routed: Vec<RoutedSpec>,
}

impl Default for ScoringServiceBuilder {
    fn default() -> Self {
        Self {
            workers: default_threads(),
            capacity: usize::MAX,
            shards: Vec::new(),
            routed: Vec::new(),
        }
    }
}

impl ScoringServiceBuilder {
    /// Worker threads for prepare/score/finish (clamped to at least 1;
    /// defaults to [`default_threads`]).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Admit at most `max_active` concurrent sessions; further
    /// submissions park FIFO (defaults to unbounded).
    pub fn capacity(mut self, max_active: usize) -> Self {
        self.capacity = max_active;
        self
    }

    /// Register a plain dataset shard (see [`ScoringService::add_shard`]).
    pub fn shard(
        mut self,
        name: &str,
        pipeline: Arc<LtePipeline>,
        eval_rows: Vec<Vec<f64>>,
    ) -> Self {
        self.shards.push((name.to_string(), pipeline, eval_rows));
        self
    }

    /// Register a routed shard group (see
    /// [`ScoringService::add_routed_shard`]).
    pub fn routed_shard(
        mut self,
        name: &str,
        registry: Arc<PipelineRegistry>,
        router: Router,
        eval_rows: Vec<Vec<f64>>,
    ) -> Self {
        self.routed
            .push((name.to_string(), registry, router, eval_rows));
        self
    }

    /// Build the service. Shards keep registration order; routed groups
    /// register after plain shards.
    pub fn build(self) -> ScoringService {
        let mut service = ScoringService {
            workers: self.workers,
            admission: AdmissionQueue::bounded(self.capacity),
            shards: Vec::new(),
            groups: Vec::new(),
            active: Vec::new(),
            completed: Vec::new(),
            tick: 0,
            submit_seq: 0,
            stats: ServiceStats::default(),
        };
        for (name, pipeline, rows) in self.shards {
            service.add_shard(&name, pipeline, rows);
        }
        for (name, registry, router, rows) in self.routed {
            service.add_routed_shard(&name, registry, router, rows);
        }
        service
    }
}

/// The cross-session batched scoring service. See the module docs for the
/// tick loop; see `docs/SERVING.md` for the serving architecture.
#[derive(Debug)]
pub struct ScoringService {
    workers: usize,
    admission: AdmissionQueue<PendingSession>,
    shards: Vec<Shard>,
    groups: Vec<RoutedGroup>,
    active: Vec<ActiveSession>,
    completed: Vec<ServiceOutcome>,
    tick: u64,
    submit_seq: u64,
    stats: ServiceStats,
}

impl ScoringService {
    /// Start building a service: [`ScoringServiceBuilder`] gathers worker
    /// count, capacity, shards, and routed groups before construction.
    pub fn builder() -> ScoringServiceBuilder {
        ScoringServiceBuilder::default()
    }

    /// A service with unbounded admission: every submitted session joins
    /// the next tick's batch. Shim over [`ScoringService::builder`].
    pub fn new(workers: usize) -> Self {
        Self::builder().workers(workers).build()
    }

    /// A service admitting at most `max_active` concurrent sessions;
    /// further submissions park (FIFO) without occupying a worker. Shim
    /// over [`ScoringService::builder`].
    pub fn with_capacity(workers: usize, max_active: usize) -> Self {
        Self::builder()
            .workers(workers)
            .capacity(max_active)
            .build()
    }

    /// The worker count in force.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Register a dataset shard: a named pipeline plus the retrieval pool
    /// its sessions predict over. Returns the shard index used by
    /// [`ScoringService::submit`]. The pipeline goes behind a fresh
    /// [`SwapCell`] at epoch 0; grab [`ScoringService::swap_handle`] to
    /// hot-swap it later.
    pub fn add_shard(
        &mut self,
        name: &str,
        pipeline: Arc<LtePipeline>,
        eval_rows: Vec<Vec<f64>>,
    ) -> usize {
        assert!(
            self.shard_index(name).is_none(),
            "shard {name:?} already registered"
        );
        let n_subspaces = pipeline.subspaces().len();
        self.shards.push(Shard {
            name: name.to_string(),
            cell: Arc::new(SwapCell::new(pipeline)),
            eval_rows,
            n_subspaces,
            cache: None,
        });
        self.shards.len() - 1
    }

    /// Register a routed shard group: every entry of `registry` becomes an
    /// internal shard named `"{name}/{entry}"` (same retrieval pool, own
    /// [`SwapCell`]), and [`ScoringService::submit_routed`] lets the
    /// [`Router`] pick among them per session. Returns the group index.
    ///
    /// Routing composes with everything the plain shards already do: the
    /// chosen entry's rounds are fused into the same per-tick scoring call
    /// as every other session, its encoded pool is cached per epoch, and
    /// each entry can still be hot-swapped through
    /// [`ScoringService::swap_handle`] on its internal shard.
    ///
    /// # Panics
    /// Panics when the registry is empty or a name collides.
    pub fn add_routed_shard(
        &mut self,
        name: &str,
        registry: Arc<PipelineRegistry>,
        router: Router,
        eval_rows: Vec<Vec<f64>>,
    ) -> usize {
        assert!(
            !registry.is_empty(),
            "routed shard {name:?} needs a non-empty registry"
        );
        assert!(
            self.group_index(name).is_none(),
            "routed shard {name:?} already registered"
        );
        let shards: Vec<usize> = registry
            .entries()
            .iter()
            .map(|entry| {
                self.add_shard(
                    &format!("{name}/{}", entry.name()),
                    Arc::clone(entry.pipeline()),
                    eval_rows.clone(),
                )
            })
            .collect();
        self.groups.push(RoutedGroup {
            name: name.to_string(),
            registry,
            router,
            eval_rows,
            shards,
        });
        self.groups.len() - 1
    }

    /// Look a shard up by name.
    pub fn shard_index(&self, name: &str) -> Option<usize> {
        self.shards.iter().position(|s| s.name == name)
    }

    /// Look a routed group up by name.
    pub fn group_index(&self, name: &str) -> Option<usize> {
        self.groups.iter().position(|g| g.name == name)
    }

    /// A shard's name.
    pub fn shard_name(&self, shard: usize) -> &str {
        &self.shards[shard].name
    }

    /// The shard's swap cell, for an external retrainer thread: swap a new
    /// pipeline in at any time; in-flight sessions pick it up at the next
    /// tick boundary, never mid-round.
    pub fn swap_handle(&self, shard: usize) -> Arc<SwapCell> {
        Arc::clone(&self.shards[shard].cell)
    }

    /// Submit a session to a shard. Never blocks and never occupies a
    /// worker: the session is parked FIFO and joins a tick when capacity
    /// allows (the returned [`AdmissionState`] says which happens at the
    /// next boundary).
    ///
    /// # Panics
    /// Panics when the shard name is unknown or the request's ground truth
    /// does not have one region per shard subspace.
    pub fn submit(&mut self, shard: &str, request: SessionRequest) -> AdmissionState {
        let shard = self
            .shard_index(shard)
            .unwrap_or_else(|| panic!("unknown shard {shard:?}"));
        self.submit_to(shard, request, None)
    }

    /// Submit a session to a routed group: the group's [`Router`] scores
    /// the session's ground truth against the registry and the session is
    /// parked on the chosen entry's internal shard. The full
    /// [`RoutingDecision`] (with its explanation) is returned immediately
    /// and echoed on the session's [`ServiceOutcome`].
    ///
    /// The decision depends only on the router seed, the session's truth,
    /// and the group's retrieval pool — never on the worker count, tick
    /// phase, or other in-flight sessions.
    ///
    /// # Panics
    /// Panics when the group name is unknown or no registry entry is
    /// compatible with the session's subspace decomposition.
    pub fn submit_routed(
        &mut self,
        group: &str,
        request: SessionRequest,
    ) -> (AdmissionState, RoutingDecision) {
        let g = self
            .group_index(group)
            .unwrap_or_else(|| panic!("unknown routed shard {group:?}"));
        let g = &self.groups[g];
        let decision = g.router.route(&g.registry, &request.truth, &g.eval_rows);
        let shard = g.shards[decision.chosen];
        let state = self.submit_to(shard, request, Some(decision.clone()));
        (state, decision)
    }

    fn submit_to(
        &mut self,
        shard: usize,
        request: SessionRequest,
        routing: Option<RoutingDecision>,
    ) -> AdmissionState {
        assert_eq!(
            request.truth.parts().len(),
            self.shards[shard].n_subspaces,
            "one ground-truth region per shard subspace required"
        );
        let pending = PendingSession {
            shard,
            request,
            routing,
            submit_seq: self.submit_seq,
            submit_tick: self.tick,
        };
        self.submit_seq += 1;
        self.admission.submit(pending)
    }

    /// Sessions currently parked.
    pub fn parked(&self) -> usize {
        self.admission.parked()
    }

    /// High-water mark of the parked queue.
    pub fn peak_parked(&self) -> usize {
        self.admission.peak_parked()
    }

    /// Sessions currently active.
    pub fn active(&self) -> usize {
        self.active.len()
    }

    /// True when no session is active or parked.
    pub fn is_idle(&self) -> bool {
        self.admission.is_idle()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Completed sessions, in completion order (FIFO within a tick).
    pub fn completed(&self) -> &[ServiceOutcome] {
        &self.completed
    }

    /// Drain the completed sessions (completion order; sort by
    /// `submit_seq` to recover submission order).
    pub fn take_completed(&mut self) -> Vec<ServiceOutcome> {
        std::mem::take(&mut self.completed)
    }

    /// Run one tick: admit, refresh shard caches, advance every active
    /// session by one subspace round through a single fused scoring call,
    /// and drain completions.
    pub fn tick(&mut self) -> TickReport {
        let tick = self.tick;

        // (1) Admit parked sessions FIFO up to capacity.
        let newly = self.admission.admit();
        let admitted = newly.len();
        for p in newly {
            let rows = self.shards[p.shard].eval_rows.len();
            self.active.push(ActiveSession {
                shard: p.shard,
                request: p.request,
                routing: p.routing,
                submit_seq: p.submit_seq,
                submit_tick: p.submit_tick,
                admitted_tick: tick,
                round: 0,
                uir_pred: vec![true; rows],
                per_subspace_f1: Vec::new(),
                subspace_outcomes: Vec::new(),
                epochs: Vec::new(),
                online_seconds: 0.0,
            });
        }
        self.stats.peak_active = self.stats.peak_active.max(self.active.len());

        // (2) Refresh in-use shard caches: one SwapCell load per shard per
        // tick, so every round this tick sees exactly one (pipeline, epoch).
        let mut in_use = vec![false; self.shards.len()];
        for s in &self.active {
            in_use[s.shard] = true;
        }
        for (shard, used) in self.shards.iter_mut().zip(&in_use) {
            if !used {
                continue;
            }
            let (pipeline, epoch) = shard.cell.load();
            if shard.cache.as_ref().map(|c| c.epoch) != Some(epoch) {
                assert_eq!(
                    pipeline.subspaces().len(),
                    shard.n_subspaces,
                    "hot-swapped pipeline changed the subspace decomposition"
                );
                let pool = pipeline.encode_pool(&shard.eval_rows);
                shard.cache = Some(ShardCache {
                    epoch,
                    pipeline,
                    pool,
                });
            }
        }

        // (3) Prepare one round per active session across the worker pool.
        let active = &self.active;
        let shards = &self.shards;
        let prepared: Vec<(usize, PreparedRound)> =
            parallel_map((0..active.len()).collect(), self.workers, move |idx| {
                let s = &active[idx];
                let cache = shards[s.shard].cache.as_ref().expect("cache refreshed");
                let pipeline = &cache.pipeline;
                let ctx = &pipeline.contexts()[s.round];
                let (sub, region) = &s.request.truth.parts()[s.round];
                debug_assert_eq!(sub, &pipeline.subspaces()[s.round]);
                let oracle = RegionOracle::new(region.clone());
                let learner = match s.request.variant {
                    Variant::Basic => None,
                    _ => Some(&pipeline.learners()[s.round]),
                };
                let prepared = prepare_round(
                    ctx,
                    learner,
                    &oracle,
                    pipeline.config(),
                    s.request.variant,
                    derive_seed(s.request.seed, 2000 + s.round as u64),
                );
                (idx, prepared)
            });

        // (4) One fused scoring call for every session's pool request.
        let requests: Vec<PoolScoreRequest<'_>> = prepared
            .iter()
            .map(|(idx, p)| {
                let s = &active[*idx];
                let cache = shards[s.shard].cache.as_ref().expect("cache refreshed");
                PoolScoreRequest {
                    classifier: &p.classifier,
                    v_r: &p.v_r,
                    rows: cache.pool.encoded(s.round),
                    precision: cache.pipeline.config().online.precision,
                }
            })
            .collect();
        let fused_requests = requests.len();
        let fused_rows: usize = requests.iter().map(|r| r.rows.len()).sum();
        let t0 = Instant::now();
        let scores = score_pool_fused_with(&requests, self.workers);
        let score_seconds = t0.elapsed().as_secs_f64();
        drop(requests);

        // (5) Finish each round (predictions + Meta* revision) in
        // parallel. The measured scoring time is attributed per session by
        // its share of the fused rows — a report-only split; outcomes
        // never depend on it.
        let finish_jobs: Vec<(usize, PreparedRound, Vec<f64>, f64)> = prepared
            .into_iter()
            .zip(scores)
            .map(|((idx, p), s_scores)| {
                let share = if fused_rows > 0 {
                    score_seconds * s_scores.len() as f64 / fused_rows as f64
                } else {
                    0.0
                };
                (idx, p, s_scores, share)
            })
            .collect();
        let finished: Vec<(usize, ExploreOutcome)> = parallel_map(
            finish_jobs,
            self.workers,
            move |(idx, p, s_scores, share)| {
                let s = &active[idx];
                let cache = shards[s.shard].cache.as_ref().expect("cache refreshed");
                let pipeline = &cache.pipeline;
                let outcome = finish_round(
                    &pipeline.contexts()[s.round],
                    p,
                    cache.pool.proj(s.round),
                    s_scores,
                    pipeline.config(),
                    s.request.variant,
                    share,
                );
                (idx, outcome)
            },
        );

        // Serial bookkeeping: fold each round into its session.
        let shards = &self.shards;
        for (idx, outcome) in finished {
            let s = &mut self.active[idx];
            let cache = shards[s.shard].cache.as_ref().expect("cache refreshed");
            let round = s.round;
            let (_, region) = &s.request.truth.parts()[round];
            let sub_confusion = ConfusionMatrix::from_pairs(
                outcome
                    .predictions
                    .iter()
                    .zip(cache.pool.proj(round))
                    .map(|(&pred, row)| (pred, region.contains(row))),
            );
            s.per_subspace_f1.push(sub_confusion.f1());
            for (pred, &sub_pred) in s.uir_pred.iter_mut().zip(&outcome.predictions) {
                *pred &= sub_pred;
            }
            s.online_seconds += outcome.online_seconds;
            s.epochs.push(cache.epoch);
            s.subspace_outcomes.push(outcome);
            s.round += 1;
        }

        // (6) Drain sessions whose last subspace just finished.
        let mut completed = 0usize;
        let mut still_active = Vec::with_capacity(self.active.len());
        for s in std::mem::take(&mut self.active) {
            let shard = &shards[s.shard];
            if s.round < shard.n_subspaces {
                still_active.push(s);
                continue;
            }
            let cache = shard.cache.as_ref().expect("cache refreshed");
            let confusion = ConfusionMatrix::from_pairs(
                s.uir_pred
                    .iter()
                    .zip(&shard.eval_rows)
                    .map(|(&pred, row)| (pred, s.request.truth.label(row))),
            );
            let outcome = UirOutcome {
                confusion,
                per_subspace_f1: s.per_subspace_f1,
                online_seconds: s.online_seconds,
                labels_used: cache.pipeline.config().budget(),
                subspace_outcomes: s.subspace_outcomes,
            };
            self.completed.push(ServiceOutcome {
                id: s.request.id,
                shard: s.shard,
                outcome,
                epochs: s.epochs,
                submit_seq: s.submit_seq,
                submit_tick: s.submit_tick,
                admitted_tick: s.admitted_tick,
                completed_tick: tick,
                routing: s.routing,
            });
            completed += 1;
        }
        self.active = still_active;
        self.admission.release(completed);

        // Counters.
        let rounds = fused_requests;
        self.stats.ticks += 1;
        self.stats.rounds += rounds as u64;
        if fused_requests > 0 {
            self.stats.fused_calls += 1;
            self.stats.fused_rows_total += fused_rows as u64;
            self.stats.max_fused_rows = self.stats.max_fused_rows.max(fused_rows);
            self.stats.max_fused_requests = self.stats.max_fused_requests.max(fused_requests);
            self.stats.score_seconds += score_seconds;
        }
        self.stats.sessions_completed += completed as u64;
        self.tick += 1;

        TickReport {
            tick,
            admitted,
            rounds,
            fused_requests,
            fused_rows,
            completed,
            parked: self.admission.parked(),
        }
    }

    /// Tick until every submitted session has completed; returns the
    /// per-tick reports.
    pub fn run_until_idle(&mut self) -> Vec<TickReport> {
        let mut reports = Vec::new();
        while !self.is_idle() {
            reports.push(self.tick());
        }
        reports
    }
}

/// One completed routed session: the outcome plus the routing decision
/// that picked its pipeline.
#[derive(Debug, Clone)]
pub struct RoutedSession {
    /// The session result, in the per-session engine's shape.
    pub outcome: SessionOutcome,
    /// Which registry entry served it, and why (see
    /// [`RoutingDecision::explanation`]).
    pub decision: RoutingDecision,
}

impl SessionEngine {
    /// Serve every request through a [`PipelineRegistry`]: the router
    /// picks a pipeline per session (explained in each
    /// [`RoutedSession::decision`]) and the sessions run through the fused
    /// [`ScoringService`] tick loop at this engine's worker count.
    ///
    /// The engine's own pipeline is not consulted — the registry is the
    /// model library — but the worker pool and determinism contract are
    /// the engine's: outcomes come back in request order, bit-identical at
    /// any worker count. With a single-entry registry this degenerates to
    /// [`SessionEngine::run_sessions_fused`] over that entry's pipeline,
    /// bitwise.
    pub fn run_sessions_routed(
        &self,
        requests: Vec<SessionRequest>,
        eval_rows: &[Vec<f64>],
        registry: Arc<PipelineRegistry>,
        router: Router,
    ) -> Vec<RoutedSession> {
        let mut service = ScoringService::builder()
            .workers(self.workers())
            .routed_shard("routed", registry, router, eval_rows.to_vec())
            .build();
        for req in requests {
            service.submit_routed("routed", req);
        }
        service.run_until_idle();
        let mut done = service.take_completed();
        done.sort_by_key(|o| o.submit_seq);
        done.into_iter()
            .map(|o| RoutedSession {
                outcome: SessionOutcome {
                    id: o.id,
                    wall_seconds: o.outcome.online_seconds,
                    outcome: o.outcome,
                },
                decision: o.routing.expect("routed submissions carry a decision"),
            })
            .collect()
    }

    /// [`SessionEngine::run_sessions`] through the fused
    /// [`ScoringService`]: one "default" shard over this engine's
    /// pipeline, every session admitted immediately, pool scoring fused
    /// per tick. Outcomes come back in request order and are bit-identical
    /// to the per-session path (timing fields aside).
    pub fn run_sessions_fused(
        &self,
        requests: Vec<SessionRequest>,
        eval_rows: &[Vec<f64>],
    ) -> Vec<SessionOutcome> {
        self.run_with_stats_fused(requests, eval_rows).0
    }

    /// [`SessionEngine::run_sessions_fused`] plus aggregate throughput
    /// statistics, mirroring [`SessionEngine::run_with_stats`].
    pub fn run_with_stats_fused(
        &self,
        requests: Vec<SessionRequest>,
        eval_rows: &[Vec<f64>],
    ) -> (Vec<SessionOutcome>, ThroughputStats) {
        let t0 = Instant::now();
        let mut service = ScoringService::new(self.workers());
        service.add_shard("default", self.shared_pipeline(), eval_rows.to_vec());
        for req in requests {
            service.submit("default", req);
        }
        service.run_until_idle();
        let mut done = service.take_completed();
        done.sort_by_key(|o| o.submit_seq);
        let outcomes: Vec<SessionOutcome> = done
            .into_iter()
            .map(|o| SessionOutcome {
                id: o.id,
                wall_seconds: o.outcome.online_seconds,
                outcome: o.outcome,
            })
            .collect();
        let wall = t0.elapsed().as_secs_f64();
        let stats = ThroughputStats::collect(&outcomes, wall, self.workers());
        (outcomes, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lte_core::config::LteConfig;
    use lte_core::uis::UisMode;
    use lte_data::generator::generate_sdss;
    use lte_data::subspace::decompose_sequential;

    fn tiny() -> (Arc<LtePipeline>, Vec<Vec<f64>>) {
        let table = generate_sdss(2000, 0);
        let mut cfg = LteConfig::reduced();
        cfg.train.n_tasks = 40;
        cfg.train.epochs = 1;
        let (p, _) = LtePipeline::offline(&table, decompose_sequential(4, 2), cfg, 5);
        let pool: Vec<Vec<f64>> = (0..200).map(|i| table.row(i).unwrap()).collect();
        (Arc::new(p), pool)
    }

    #[test]
    fn capacity_parks_and_completes_in_fifo_waves() {
        let (pipeline, pool) = tiny();
        let engine = SessionEngine::with_workers(Arc::clone(&pipeline), 1);
        let requests = engine.simulate_requests(3, UisMode::new(1, 10), 0.2, 0.9, Variant::Meta, 7);

        let mut service = ScoringService::with_capacity(1, 2);
        service.add_shard("sdss", Arc::clone(&pipeline), pool.clone());
        assert_eq!(
            service.submit("sdss", requests[0].clone()),
            AdmissionState::Admitted
        );
        assert_eq!(
            service.submit("sdss", requests[1].clone()),
            AdmissionState::Admitted
        );
        assert_eq!(
            service.submit("sdss", requests[2].clone()),
            AdmissionState::Parked
        );

        let reports = service.run_until_idle();
        // 2 subspaces: wave one (sessions 0,1) takes ticks 0–1, then the
        // parked session runs ticks 2–3.
        assert_eq!(reports.len(), 4);
        assert_eq!(reports[0].admitted, 2);
        assert_eq!(reports[0].parked, 1);
        assert_eq!(reports[1].completed, 2);
        assert_eq!(reports[2].admitted, 1);
        assert_eq!(reports[3].completed, 1);

        let done = service.take_completed();
        assert_eq!(done.len(), 3);
        assert_eq!(done[2].submit_tick, 0);
        assert_eq!(done[2].admitted_tick, 2, "parked until a slot freed");
        assert_eq!(done[2].completed_tick, 3);
        assert_eq!(service.stats().sessions_completed, 3);
        // All 3 submissions stage in the parked queue until the first tick
        // boundary — peak queue depth is 3, even though only 1 session
        // was parked *for capacity* after that tick.
        assert_eq!(service.peak_parked(), 3);
        // Each round saw epoch 0 (no swap happened).
        for o in &done {
            assert_eq!(o.epochs, vec![0, 0]);
        }
    }

    #[test]
    fn fused_wrapper_matches_per_session_engine() {
        let (pipeline, pool) = tiny();
        let engine = SessionEngine::with_workers(pipeline, 2);
        let requests =
            engine.simulate_requests(4, UisMode::new(1, 10), 0.2, 0.9, Variant::MetaStar, 11);
        let solo = engine.run_sessions(requests.clone(), &pool);
        let fused = engine.run_sessions_fused(requests, &pool);
        assert_eq!(solo.len(), fused.len());
        for (a, b) in solo.iter().zip(&fused) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.outcome.confusion, b.outcome.confusion);
            assert_eq!(a.outcome.per_subspace_f1, b.outcome.per_subspace_f1);
            for (x, y) in a
                .outcome
                .subspace_outcomes
                .iter()
                .zip(&b.outcome.subspace_outcomes)
            {
                assert_eq!(x.predictions, y.predictions);
                let bits = |xs: &[f64]| xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&x.scores), bits(&y.scores));
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown shard")]
    fn submitting_to_an_unknown_shard_panics() {
        let (pipeline, pool) = tiny();
        let engine = SessionEngine::with_workers(Arc::clone(&pipeline), 1);
        let req = engine
            .simulate_requests(1, UisMode::new(1, 10), 0.2, 0.9, Variant::Meta, 7)
            .pop()
            .unwrap();
        let mut service = ScoringService::new(1);
        service.add_shard("sdss", pipeline, pool);
        service.submit("cars", req);
    }
}
