//! Serving throughput and latency aggregates.
//!
//! A **round** is one labelling round of one subspace session — a single
//! `explore_subspace` call (initial labels, fast adaptation, pool
//! prediction). A session over `k` subspaces contributes `k` rounds. Round
//! latencies are the per-subspace `online_seconds` measured inside the
//! core, so they exclude engine queueing and oracle labelling time.

use crate::engine::SessionOutcome;
use crate::scenario::{ScenarioConfig, ScenarioOutcome};

/// Aggregate statistics of one batch of sessions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputStats {
    /// Sessions completed.
    pub sessions: usize,
    /// Total rounds across all sessions (sessions × subspaces).
    pub rounds: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock seconds for the whole batch.
    pub wall_seconds: f64,
    /// Completed sessions per wall-clock second.
    pub sessions_per_sec: f64,
    /// Median round latency in seconds.
    pub round_p50_seconds: f64,
    /// 95th-percentile round latency in seconds.
    pub round_p95_seconds: f64,
}

impl ThroughputStats {
    /// Aggregate a finished batch.
    pub fn collect(outcomes: &[SessionOutcome], wall_seconds: f64, workers: usize) -> Self {
        let mut rounds: Vec<f64> = outcomes
            .iter()
            .flat_map(|o| o.outcome.subspace_outcomes.iter().map(|s| s.online_seconds))
            .collect();
        rounds.sort_by(f64::total_cmp);
        Self {
            sessions: outcomes.len(),
            rounds: rounds.len(),
            workers,
            wall_seconds,
            sessions_per_sec: if wall_seconds > 0.0 {
                outcomes.len() as f64 / wall_seconds
            } else {
                0.0
            },
            round_p50_seconds: percentile(&rounds, 50.0),
            round_p95_seconds: percentile(&rounds, 95.0),
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} sessions / {} workers: {:.1} sessions/s, round p50 {:.2} ms, p95 {:.2} ms",
            self.sessions,
            self.workers,
            self.sessions_per_sec,
            self.round_p50_seconds * 1e3,
            self.round_p95_seconds * 1e3,
        )
    }
}

/// Aggregate statistics of one cohort within a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct CohortStats {
    /// Cohort name.
    pub name: String,
    /// Sessions this cohort ran.
    pub sessions: usize,
    /// Sessions abandoned before exploring every subspace.
    pub abandoned: usize,
    /// Sessions whose interest region shifted during an executed round.
    pub drifted: usize,
    /// Sessions whose running F1 reached the scenario's convergence
    /// threshold.
    pub converged: usize,
    /// Mean final F1 (against each analyst's final truth).
    pub mean_f1: f64,
    /// Mean rounds completed per session.
    pub mean_rounds: f64,
    /// Mean labels drawn per session.
    pub mean_labels: f64,
    /// Mean rounds to reach the convergence threshold, over the sessions
    /// that converged (0 when none did).
    pub mean_rounds_to_convergence: f64,
    /// Mean simulated think seconds per session (deterministic).
    pub mean_think_seconds: f64,
    /// Median measured round latency in seconds.
    pub round_p50_seconds: f64,
    /// 95th-percentile measured round latency in seconds.
    pub round_p95_seconds: f64,
}

/// Aggregate report of one mixed-traffic scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Total sessions across cohorts.
    pub sessions: usize,
    /// Worker threads used.
    pub workers: usize,
    /// F1 threshold used for convergence accounting.
    pub convergence_f1: f64,
    /// Wall-clock seconds for the whole batch.
    pub wall_seconds: f64,
    /// Completed sessions per wall-clock second.
    pub sessions_per_sec: f64,
    /// Per-cohort statistics, in scenario cohort order.
    pub cohorts: Vec<CohortStats>,
}

impl ScenarioReport {
    /// Aggregate a finished scenario batch.
    pub fn collect(
        cfg: &ScenarioConfig,
        outcomes: &[ScenarioOutcome],
        wall_seconds: f64,
        workers: usize,
    ) -> Self {
        let cohorts = cfg
            .cohorts
            .iter()
            .enumerate()
            .map(|(c, cohort)| {
                let members: Vec<&ScenarioOutcome> =
                    outcomes.iter().filter(|o| o.cohort == c).collect();
                let n = members.len();
                let mean = |f: &dyn Fn(&ScenarioOutcome) -> f64| {
                    if n == 0 {
                        0.0
                    } else {
                        members.iter().map(|o| f(o)).sum::<f64>() / n as f64
                    }
                };
                let conv_rounds: Vec<usize> = members
                    .iter()
                    .filter_map(|o| o.outcome.rounds_to_convergence(cfg.convergence_f1))
                    .collect();
                let mut rounds: Vec<f64> = members
                    .iter()
                    .flat_map(|o| o.outcome.subspace_outcomes.iter().map(|s| s.online_seconds))
                    .collect();
                rounds.sort_by(f64::total_cmp);
                CohortStats {
                    name: cohort.name.clone(),
                    sessions: n,
                    abandoned: members.iter().filter(|o| o.outcome.abandoned).count(),
                    drifted: members.iter().filter(|o| o.outcome.drifted).count(),
                    converged: conv_rounds.len(),
                    mean_f1: mean(&|o| o.outcome.f1()),
                    mean_rounds: mean(&|o| o.outcome.rounds_run as f64),
                    mean_labels: mean(&|o| o.outcome.labels_used as f64),
                    mean_rounds_to_convergence: if conv_rounds.is_empty() {
                        0.0
                    } else {
                        conv_rounds.iter().sum::<usize>() as f64 / conv_rounds.len() as f64
                    },
                    mean_think_seconds: mean(&|o| o.outcome.think_seconds),
                    round_p50_seconds: percentile(&rounds, 50.0),
                    round_p95_seconds: percentile(&rounds, 95.0),
                }
            })
            .collect();
        Self {
            scenario: cfg.name.clone(),
            sessions: outcomes.len(),
            workers,
            convergence_f1: cfg.convergence_f1,
            wall_seconds,
            sessions_per_sec: if wall_seconds > 0.0 {
                outcomes.len() as f64 / wall_seconds
            } else {
                0.0
            },
            cohorts,
        }
    }

    /// Full JSON rendering, measured timing included.
    pub fn to_json(&self) -> String {
        self.render_json(true)
    }

    /// JSON with every *measured* timing field omitted (wall clock,
    /// throughput, worker count, round percentiles). Everything left is a
    /// pure function of the scenario config — two runs of the same scenario
    /// at any worker counts render byte-identical strings. Simulated think
    /// time stays: it is deterministic.
    pub fn deterministic_json(&self) -> String {
        self.render_json(false)
    }

    fn render_json(&self, with_timing: bool) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"scenario\": {},\n", json_str(&self.scenario)));
        s.push_str(&format!("  \"sessions\": {},\n", self.sessions));
        if with_timing {
            s.push_str(&format!("  \"workers\": {},\n", self.workers));
            s.push_str(&format!("  \"wall_seconds\": {},\n", self.wall_seconds));
            s.push_str(&format!(
                "  \"sessions_per_sec\": {},\n",
                self.sessions_per_sec
            ));
        }
        s.push_str(&format!("  \"convergence_f1\": {},\n", self.convergence_f1));
        s.push_str("  \"cohorts\": [\n");
        for (i, c) in self.cohorts.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"name\": {},\n", json_str(&c.name)));
            s.push_str(&format!("      \"sessions\": {},\n", c.sessions));
            s.push_str(&format!("      \"abandoned\": {},\n", c.abandoned));
            s.push_str(&format!("      \"drifted\": {},\n", c.drifted));
            s.push_str(&format!("      \"converged\": {},\n", c.converged));
            s.push_str(&format!("      \"mean_f1\": {},\n", c.mean_f1));
            s.push_str(&format!("      \"mean_rounds\": {},\n", c.mean_rounds));
            s.push_str(&format!("      \"mean_labels\": {},\n", c.mean_labels));
            s.push_str(&format!(
                "      \"mean_rounds_to_convergence\": {},\n",
                c.mean_rounds_to_convergence
            ));
            s.push_str(&format!(
                "      \"mean_think_seconds\": {}",
                c.mean_think_seconds
            ));
            if with_timing {
                s.push_str(&format!(
                    ",\n      \"round_p50_seconds\": {},\n",
                    c.round_p50_seconds
                ));
                s.push_str(&format!(
                    "      \"round_p95_seconds\": {}\n",
                    c.round_p95_seconds
                ));
            } else {
                s.push('\n');
            }
            s.push_str(if i + 1 < self.cohorts.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        s.push_str("  ]\n}");
        s
    }

    /// Multi-line human-readable summary (one line per cohort).
    pub fn summary(&self) -> String {
        let mut s = format!(
            "scenario {}: {} sessions / {} workers, {:.1} sessions/s",
            self.scenario, self.sessions, self.workers, self.sessions_per_sec
        );
        for c in &self.cohorts {
            s.push_str(&format!(
                "\n  {:<10} {:>3} sessions: F1 {:.3}, {:.1} rounds, {} abandoned, {} drifted, \
                 {} converged (mean {:.1} rounds), round p50 {:.2} ms p95 {:.2} ms",
                c.name,
                c.sessions,
                c.mean_f1,
                c.mean_rounds,
                c.abandoned,
                c.drifted,
                c.converged,
                c.mean_rounds_to_convergence,
                c.round_p50_seconds * 1e3,
                c.round_p95_seconds * 1e3,
            ));
        }
        s
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Nearest-rank percentile of an **ascending-sorted** slice; `p` in
/// `[0, 100]`. Empty input yields 0; a single sample is every percentile
/// of itself.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    // Nearest rank: the smallest r with 100·r/n ≥ p, i.e. ⌈p·n/100⌉.
    // Multiply *before* dividing: p·n is exact for integer-valued products
    // (95·20 = 1900), whereas (p/100)·n rounds p/100 first and the ceil
    // then lands one rank past the true one (e.g. p95 at n=20 gave rank 20,
    // p55 rank 12) — masked only by the clamp at the top end.
    let rank = ((p * n as f64) / 100.0).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_str("steady"), "\"steady\"");
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("x\ny"), "\"x\\ny\"");
    }

    #[test]
    fn deterministic_json_omits_measured_timing() {
        let report = ScenarioReport {
            scenario: "mix".to_string(),
            sessions: 2,
            workers: 8,
            convergence_f1: 0.6,
            wall_seconds: 1.25,
            sessions_per_sec: 1.6,
            cohorts: vec![CohortStats {
                name: "steady".to_string(),
                sessions: 2,
                abandoned: 0,
                drifted: 0,
                converged: 1,
                mean_f1: 0.75,
                mean_rounds: 2.0,
                mean_labels: 60.0,
                mean_rounds_to_convergence: 1.5,
                mean_think_seconds: 0.0,
                round_p50_seconds: 0.01,
                round_p95_seconds: 0.02,
            }],
        };
        let full = report.to_json();
        for key in [
            "workers",
            "wall_seconds",
            "sessions_per_sec",
            "round_p50_seconds",
        ] {
            assert!(full.contains(key), "to_json must include {key}");
        }
        let det = report.deterministic_json();
        for key in ["workers", "wall_seconds", "sessions_per_sec", "round_p"] {
            assert!(!det.contains(key), "deterministic_json must omit {key}");
        }
        for key in ["mean_f1", "mean_think_seconds", "converged", "\"steady\""] {
            assert!(det.contains(key), "deterministic_json must keep {key}");
        }
        // Timing changes must not touch the deterministic rendering.
        let mut other = report.clone();
        other.wall_seconds = 99.0;
        other.workers = 1;
        other.cohorts[0].round_p95_seconds = 9.0;
        assert_eq!(det, other.deterministic_json());
        assert_ne!(full, other.to_json());
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 2.0);
        assert_eq!(percentile(&xs, 75.0), 3.0);
        assert_eq!(percentile(&xs, 95.0), 4.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 95.0), 7.0);
    }

    /// Regression (serving bugfix sweep): the old `(p/100)·n` form rounded
    /// `p/100` up for p ∈ {5, 55, 95, …}, so integer-valued ranks
    /// overshot by one — p95 at n=20 read `sorted[19]` (the max) instead
    /// of the 19th sample, and the `clamp` quietly absorbed the
    /// one-past-the-end rank instead of flagging it.
    #[test]
    fn percentile_exact_integer_ranks_do_not_overshoot() {
        let xs: Vec<f64> = (1..=20).map(f64::from).collect();
        assert_eq!(percentile(&xs, 95.0), 19.0, "p95·20 = rank 19 exactly");
        assert_eq!(percentile(&xs, 55.0), 11.0, "p55·20 = rank 11 exactly");
        assert_eq!(percentile(&xs, 5.0), 1.0, "p5·20 = rank 1 exactly");
        assert_eq!(percentile(&xs, 50.0), 10.0);
        assert_eq!(percentile(&xs, 100.0), 20.0);
    }

    /// Edge cases across small N, per the serving bugfix sweep:
    /// N ∈ {0, 1, 2, 19, 20, 21}.
    #[test]
    fn percentile_small_n_edge_cases() {
        // N = 0: defined as 0.
        assert_eq!(percentile(&[], 95.0), 0.0);
        // N = 1: every percentile is the sample; p50 == p95.
        let one = [3.5];
        assert_eq!(percentile(&one, 0.0), 3.5);
        assert_eq!(percentile(&one, 50.0), 3.5);
        assert_eq!(percentile(&one, 95.0), 3.5);
        assert_eq!(percentile(&one, 100.0), 3.5);
        // N = 2: p50 is the first sample, p95/p100 the second.
        let two = [1.0, 2.0];
        assert_eq!(percentile(&two, 50.0), 1.0);
        assert_eq!(percentile(&two, 51.0), 2.0);
        assert_eq!(percentile(&two, 95.0), 2.0);
        assert_eq!(percentile(&two, 100.0), 2.0);
        // N = 19: p95 → rank ⌈18.05⌉ = 19, the max.
        let n19: Vec<f64> = (1..=19).map(f64::from).collect();
        assert_eq!(percentile(&n19, 95.0), 19.0);
        assert_eq!(percentile(&n19, 50.0), 10.0);
        // N = 20: p95 → rank 19 exactly (the overshoot case above).
        let n20: Vec<f64> = (1..=20).map(f64::from).collect();
        assert_eq!(percentile(&n20, 95.0), 19.0);
        // N = 21: p95 → rank ⌈19.95⌉ = 20.
        let n21: Vec<f64> = (1..=21).map(f64::from).collect();
        assert_eq!(percentile(&n21, 95.0), 20.0);
        assert_eq!(percentile(&n21, 50.0), 11.0);
    }
}
