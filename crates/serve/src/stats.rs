//! Serving throughput and latency aggregates.
//!
//! A **round** is one labelling round of one subspace session — a single
//! `explore_subspace` call (initial labels, fast adaptation, pool
//! prediction). A session over `k` subspaces contributes `k` rounds. Round
//! latencies are the per-subspace `online_seconds` measured inside the
//! core, so they exclude engine queueing and oracle labelling time.

use crate::engine::SessionOutcome;

/// Aggregate statistics of one batch of sessions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputStats {
    /// Sessions completed.
    pub sessions: usize,
    /// Total rounds across all sessions (sessions × subspaces).
    pub rounds: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock seconds for the whole batch.
    pub wall_seconds: f64,
    /// Completed sessions per wall-clock second.
    pub sessions_per_sec: f64,
    /// Median round latency in seconds.
    pub round_p50_seconds: f64,
    /// 95th-percentile round latency in seconds.
    pub round_p95_seconds: f64,
}

impl ThroughputStats {
    /// Aggregate a finished batch.
    pub fn collect(outcomes: &[SessionOutcome], wall_seconds: f64, workers: usize) -> Self {
        let mut rounds: Vec<f64> = outcomes
            .iter()
            .flat_map(|o| o.outcome.subspace_outcomes.iter().map(|s| s.online_seconds))
            .collect();
        rounds.sort_by(f64::total_cmp);
        Self {
            sessions: outcomes.len(),
            rounds: rounds.len(),
            workers,
            wall_seconds,
            sessions_per_sec: if wall_seconds > 0.0 {
                outcomes.len() as f64 / wall_seconds
            } else {
                0.0
            },
            round_p50_seconds: percentile(&rounds, 50.0),
            round_p95_seconds: percentile(&rounds, 95.0),
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} sessions / {} workers: {:.1} sessions/s, round p50 {:.2} ms, p95 {:.2} ms",
            self.sessions,
            self.workers,
            self.sessions_per_sec,
            self.round_p50_seconds * 1e3,
            self.round_p95_seconds * 1e3,
        )
    }
}

/// Nearest-rank percentile of an **ascending-sorted** slice; `p` in
/// `[0, 100]`. Empty input yields 0.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 2.0);
        assert_eq!(percentile(&xs, 75.0), 3.0);
        assert_eq!(percentile(&xs, 95.0), 4.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 95.0), 7.0);
    }
}
