//! Hot-swap under load (serving bugfix sweep, satellite 5): a retrainer
//! replaces the served pipeline through the shard's [`lte_serve::SwapCell`]
//! while 64 sessions are mid-flight. The service loads each shard's cell
//! once per tick, so the contract is: **every round of every session runs
//! against exactly one pipeline epoch** (no torn reads — a round can never
//! mix epoch-N adaptation with epoch-M scoring), each round's outputs are
//! bitwise those of a solo run on that epoch's pipeline, and the whole
//! swapped schedule is deterministic at 1 worker vs N.

use lte_core::config::LteConfig;
use lte_core::explore::{ExploreOutcome, Variant};
use lte_core::pipeline::LtePipeline;
use lte_core::uis::UisMode;
use lte_data::generator::generate_sdss;
use lte_data::subspace::decompose_sequential;
use lte_serve::{ScoringService, ServiceOutcome, SessionEngine, SessionRequest};
use std::sync::Arc;

fn train(seed: u64) -> Arc<LtePipeline> {
    let table = generate_sdss(3000, 0);
    let mut cfg = LteConfig::reduced();
    cfg.train.n_tasks = 60;
    cfg.train.epochs = 1;
    let (p, _) = LtePipeline::offline(&table, decompose_sequential(4, 2), cfg, seed);
    Arc::new(p)
}

fn pool() -> Vec<Vec<f64>> {
    let table = generate_sdss(3000, 0);
    (0..250).map(|i| table.row(i).unwrap()).collect()
}

fn round_bytes(o: &ExploreOutcome) -> Vec<u64> {
    let mut bytes: Vec<u64> = o.scores.iter().map(|s| s.to_bits()).collect();
    bytes.extend(o.predictions.iter().map(|&p| p as u64));
    bytes.extend(o.cs_labels.iter().map(|&l| l as u64));
    bytes.push(o.labels_used as u64);
    bytes
}

/// Run 64 sessions with a swap from `a` to `b` between the first and
/// second tick; returns outcomes sorted by id.
fn run_swapped(
    a: &Arc<LtePipeline>,
    b: &Arc<LtePipeline>,
    requests: &[SessionRequest],
    eval_rows: &[Vec<f64>],
    workers: usize,
) -> Vec<ServiceOutcome> {
    let mut service = ScoringService::new(workers);
    let shard = service.add_shard("sdss", Arc::clone(a), eval_rows.to_vec());
    let handle = service.swap_handle(shard);
    for req in requests {
        service.submit("sdss", req.clone());
    }
    // Tick 0: all 64 sessions run subspace round 0 against epoch 0.
    let r0 = service.tick();
    assert_eq!(r0.rounds, requests.len());
    assert_eq!(r0.fused_rows, requests.len() * eval_rows.len());
    // The retrainer swaps while every session is mid-flight.
    assert_eq!(handle.swap(Arc::clone(b)), 1);
    // Tick 1: round 1 runs against epoch 1 — picked up at the boundary.
    let r1 = service.tick();
    assert_eq!(r1.completed, requests.len());
    assert!(service.is_idle());
    let mut done = service.take_completed();
    done.sort_by_key(|o| o.id);
    done
}

#[test]
fn swap_under_64_sessions_has_no_torn_rounds_and_is_deterministic() {
    let a = train(21);
    let b = train(22);
    let eval_rows = pool();
    let engine = SessionEngine::with_workers(Arc::clone(&a), 1);
    let requests =
        engine.simulate_requests(64, UisMode::new(1, 10), 0.2, 0.9, Variant::MetaStar, 99);

    let done = run_swapped(&a, &b, &requests, &eval_rows, 1);
    assert_eq!(done.len(), 64);

    for (req, got) in requests.iter().zip(&done) {
        assert_eq!(req.id, got.id);
        // Exactly one epoch per round, and exactly the swap schedule: no
        // round ever saw a half-installed pipeline.
        assert_eq!(got.epochs, vec![0, 1], "session {} tore an epoch", req.id);

        // Round 0 is bitwise the solo run on pipeline `a`; round 1 on `b`.
        // (Solo subspace `i` uses the same per-round seed stream
        // `derive_seed(seed, 2000 + i)` the service uses.)
        let solo_a = a.explore(&req.truth, &eval_rows, req.variant, req.seed);
        let solo_b = b.explore(&req.truth, &eval_rows, req.variant, req.seed);
        assert_eq!(
            round_bytes(&solo_a.subspace_outcomes[0]),
            round_bytes(&got.outcome.subspace_outcomes[0]),
            "session {} round 0 diverged from epoch-0 pipeline",
            req.id
        );
        assert_eq!(
            round_bytes(&solo_b.subspace_outcomes[1]),
            round_bytes(&got.outcome.subspace_outcomes[1]),
            "session {} round 1 diverged from epoch-1 pipeline",
            req.id
        );
    }

    // The same swapped schedule at 4 workers is byte-identical.
    let done_4 = run_swapped(&a, &b, &requests, &eval_rows, 4);
    for (x, y) in done.iter().zip(&done_4) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.epochs, y.epochs);
        assert_eq!(x.outcome.confusion, y.outcome.confusion);
        for (sx, sy) in x
            .outcome
            .subspace_outcomes
            .iter()
            .zip(&y.outcome.subspace_outcomes)
        {
            assert_eq!(round_bytes(sx), round_bytes(sy));
        }
    }
}

/// A swapper thread racing the tick loop: epoch pickup is then
/// timing-dependent, but the invariants are not — every round still gets
/// exactly one epoch, epochs never decrease within a session, and each
/// round's outputs are bitwise those of whichever pipeline its recorded
/// epoch names (even epochs are `a`, odd are `b`).
#[test]
fn concurrent_swapper_never_tears_a_round() {
    let a = train(31);
    let b = train(32);
    let eval_rows = pool();
    let engine = SessionEngine::with_workers(Arc::clone(&a), 1);
    let requests = engine.simulate_requests(8, UisMode::new(1, 10), 0.2, 0.9, Variant::Meta, 55);

    let mut service = ScoringService::new(2);
    let shard = service.add_shard("sdss", Arc::clone(&a), eval_rows.clone());
    let handle = service.swap_handle(shard);
    for req in requests.clone() {
        service.submit("sdss", req);
    }

    let done = std::thread::scope(|scope| {
        let swapper = scope.spawn(|| {
            for i in 0..6 {
                let next = if i % 2 == 0 { &b } else { &a };
                handle.swap(Arc::clone(next));
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        });
        service.run_until_idle();
        swapper.join().expect("swapper panicked");
        service.take_completed()
    });
    assert_eq!(done.len(), 8);

    for o in &done {
        let req = requests.iter().find(|r| r.id == o.id).unwrap();
        assert_eq!(o.epochs.len(), o.outcome.subspace_outcomes.len());
        for w in o.epochs.windows(2) {
            assert!(w[0] <= w[1], "epochs went backwards within a session");
        }
        for (round, (&epoch, got)) in o
            .epochs
            .iter()
            .zip(&o.outcome.subspace_outcomes)
            .enumerate()
        {
            let pipeline = if epoch % 2 == 0 { &a } else { &b };
            let solo = pipeline.explore(&req.truth, &eval_rows, req.variant, req.seed);
            assert_eq!(
                round_bytes(&solo.subspace_outcomes[round]),
                round_bytes(got),
                "session {} round {round} does not match its recorded epoch {epoch}",
                o.id
            );
        }
    }
}
