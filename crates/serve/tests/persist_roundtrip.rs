//! Serving a persisted model: a pipeline (meta-learners included) saved via
//! `lte_core::persist`, reloaded, and served by the engine must produce the
//! same predictions as the in-memory original — the train-once /
//! serve-forever deployment shape.

use lte_core::config::LteConfig;
use lte_core::explore::Variant;
use lte_core::persist::{pipeline_from_bytes, pipeline_to_bytes};
use lte_core::pipeline::LtePipeline;
use lte_core::uis::UisMode;
use lte_data::generator::generate_sdss;
use lte_data::subspace::decompose_sequential;
use lte_serve::SessionEngine;
use std::sync::Arc;

#[test]
fn reloaded_pipeline_serves_identical_predictions() {
    let table = generate_sdss(3000, 0);
    let mut cfg = LteConfig::reduced();
    cfg.train.n_tasks = 60;
    cfg.train.epochs = 1;
    let (original, _) = LtePipeline::offline(&table, decompose_sequential(4, 2), cfg, 23);
    let pool: Vec<Vec<f64>> = (0..300).map(|i| table.row(i).unwrap()).collect();

    let reloaded = pipeline_from_bytes(&pipeline_to_bytes(&original)).expect("round trip");

    let engine_mem = SessionEngine::with_workers(Arc::new(original), 2);
    let engine_disk = SessionEngine::with_workers(Arc::new(reloaded), 2);

    for variant in [Variant::Basic, Variant::Meta, Variant::MetaStar] {
        // Truths regenerate identically because contexts round-trip too.
        let mode = UisMode::new(1, 10);
        let reqs_mem = engine_mem.simulate_requests(4, mode, 0.2, 0.9, variant, 99);
        let reqs_disk = engine_disk.simulate_requests(4, mode, 0.2, 0.9, variant, 99);

        let out_mem = engine_mem.run_sessions(reqs_mem, &pool);
        let out_disk = engine_disk.run_sessions(reqs_disk, &pool);
        for (a, b) in out_mem.iter().zip(&out_disk) {
            assert_eq!(a.id, b.id);
            assert_eq!(
                a.outcome.confusion, b.outcome.confusion,
                "{variant:?}: confusion diverged after persist round trip"
            );
            for (sa, sb) in a
                .outcome
                .subspace_outcomes
                .iter()
                .zip(&b.outcome.subspace_outcomes)
            {
                assert_eq!(sa.predictions, sb.predictions, "{variant:?}");
                let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&sa.scores), bits(&sb.scores), "{variant:?}");
            }
        }
    }
}
