//! Mixed-traffic determinism: a fixed-seed scenario (3 cohorts, 32
//! sessions) must produce byte-identical per-cohort reports at 1 worker
//! and at `default_threads()` workers. Extends `determinism.rs` to
//! drifting/noisy/abandoning sessions — the acceptance gate of the
//! simulated-analyst workload layer.

use lte_core::config::LteConfig;
use lte_core::parallel::default_threads;
use lte_core::pipeline::LtePipeline;
use lte_core::scenario::BehavioralOutcome;
use lte_data::generator::generate_sdss;
use lte_data::subspace::decompose_sequential;
use lte_serve::{ScenarioConfig, SessionEngine};
use std::sync::Arc;

fn trained_pipeline() -> (Arc<LtePipeline>, Vec<Vec<f64>>) {
    let table = generate_sdss(3000, 0);
    let mut cfg = LteConfig::reduced();
    cfg.train.n_tasks = 60;
    cfg.train.epochs = 1;
    let (p, _) = LtePipeline::offline(&table, decompose_sequential(4, 2), cfg, 11);
    let pool: Vec<Vec<f64>> = (0..300).map(|i| table.row(i).unwrap()).collect();
    (Arc::new(p), pool)
}

/// Everything deterministic in a `BehavioralOutcome`, floats as raw bits.
fn outcome_bytes(o: &BehavioralOutcome) -> Vec<u64> {
    let mut bytes = vec![
        o.confusion.tp as u64,
        o.confusion.fp as u64,
        o.confusion.tn as u64,
        o.confusion.fn_ as u64,
        o.labels_used as u64,
        o.rounds_run as u64,
        o.abandoned as u64,
        o.drifted as u64,
        o.think_seconds.to_bits(),
    ];
    bytes.extend(o.per_subspace_f1.iter().map(|f| f.to_bits()));
    bytes.extend(o.f1_by_round.iter().map(|f| f.to_bits()));
    for sub in &o.subspace_outcomes {
        bytes.extend(sub.scores.iter().map(|s| s.to_bits()));
        bytes.extend(sub.predictions.iter().map(|&p| p as u64));
        bytes.extend(sub.cs_labels.iter().map(|&l| l as u64));
        bytes.push(sub.labels_used as u64);
    }
    bytes
}

#[test]
fn worker_count_never_changes_scenario_outcomes() {
    let (pipeline, pool) = trained_pipeline();
    let n_workers = default_threads();
    let cfg = ScenarioConfig::standard_mix(32, 42);
    assert!(cfg.cohorts.len() >= 3, "mixed traffic needs ≥ 3 cohorts");

    let serial = SessionEngine::with_workers(Arc::clone(&pipeline), 1);
    let parallel = SessionEngine::with_workers(Arc::clone(&pipeline), n_workers);

    let (out_a, report_a) = serial.run_scenario(&cfg, &pool);
    let (out_b, report_b) = parallel.run_scenario(&cfg, &pool);

    assert_eq!(out_a.len(), 32);
    assert_eq!(out_b.len(), 32);
    for (a, b) in out_a.iter().zip(&out_b) {
        assert_eq!(a.id, b.id, "ordering diverged");
        assert_eq!(a.cohort, b.cohort, "cohort assignment diverged");
        assert_eq!(
            outcome_bytes(&a.outcome),
            outcome_bytes(&b.outcome),
            "session {} diverged between 1 and {n_workers} workers",
            a.id
        );
    }

    // The per-cohort report renders byte-identically once measured timing
    // is excluded — the scenario acceptance criterion.
    assert_eq!(report_a.deterministic_json(), report_b.deterministic_json());
}

#[test]
fn scenario_report_covers_cohorts_f1_and_latency() {
    let (pipeline, pool) = trained_pipeline();
    let engine = SessionEngine::with_workers(Arc::clone(&pipeline), default_threads());
    let cfg = ScenarioConfig::standard_mix(32, 7);
    let (outcomes, report) = engine.run_scenario(&cfg, &pool);

    assert_eq!(report.sessions, 32);
    assert_eq!(report.cohorts.len(), 3);
    assert_eq!(report.cohorts.iter().map(|c| c.sessions).sum::<usize>(), 32);

    // The mix must actually exercise every behavior: churners abandon,
    // drifters drift, steady analysts do neither.
    let by_name = |n: &str| report.cohorts.iter().find(|c| c.name == n).unwrap();
    assert_eq!(by_name("steady").abandoned, 0);
    assert_eq!(by_name("steady").drifted, 0);
    assert_eq!(by_name("churners").abandoned, by_name("churners").sessions);
    assert_eq!(by_name("drifters").drifted, by_name("drifters").sessions);
    assert!(by_name("drifters").mean_think_seconds > 0.0);

    // F1 and latency are reported per cohort, and appear in the JSON.
    for c in &report.cohorts {
        assert!(c.sessions > 0, "{} cohort got no sessions", c.name);
        assert!(
            (0.0..=1.0).contains(&c.mean_f1),
            "{}: {}",
            c.name,
            c.mean_f1
        );
        assert!(c.round_p95_seconds >= c.round_p50_seconds);
        assert!(c.round_p50_seconds > 0.0);
    }
    let json = report.to_json();
    for key in [
        "\"scenario\"",
        "\"cohorts\"",
        "\"mean_f1\"",
        "\"round_p50_seconds\"",
        "\"round_p95_seconds\"",
        "\"steady\"",
        "\"drifters\"",
        "\"churners\"",
    ] {
        assert!(json.contains(key), "JSON missing {key}");
    }

    // Labels stop at abandonment: churners label one round, steady two.
    let cohort_idx = |n: &str| cfg.cohorts.iter().position(|c| c.name == n).unwrap();
    let churner = cohort_idx("churners");
    let steady = cohort_idx("steady");
    let mean_labels = |c: usize| {
        let xs: Vec<usize> = outcomes
            .iter()
            .filter(|o| o.cohort == c)
            .map(|o| o.outcome.labels_used)
            .collect();
        xs.iter().sum::<usize>() as f64 / xs.len() as f64
    };
    assert!(mean_labels(churner) < mean_labels(steady));
}

#[test]
fn repeated_scenario_runs_are_reproducible() {
    let (pipeline, pool) = trained_pipeline();
    let engine = SessionEngine::with_workers(Arc::clone(&pipeline), default_threads());
    let cfg = ScenarioConfig::standard_mix(12, 99);
    let (first, report_1) = engine.run_scenario(&cfg, &pool);
    let (second, report_2) = engine.run_scenario(&cfg, &pool);
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(outcome_bytes(&a.outcome), outcome_bytes(&b.outcome));
    }
    assert_eq!(report_1.deterministic_json(), report_2.deterministic_json());
}
