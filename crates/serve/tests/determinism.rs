//! The shared-pool determinism guarantee: running the same session set
//! through the engine at 1 worker and at `default_threads()` workers yields
//! byte-identical `UirOutcome` orderings (wall-clock timing fields aside).
//! This guards the promotion of `parallel_map` into `lte_core::parallel` —
//! any scheduling-dependent output would show up here as a bit flip.

use lte_core::config::LteConfig;
use lte_core::explore::Variant;
use lte_core::parallel::default_threads;
use lte_core::pipeline::{LtePipeline, UirOutcome};
use lte_core::uis::UisMode;
use lte_data::generator::generate_sdss;
use lte_data::subspace::decompose_sequential;
use lte_serve::SessionEngine;
use std::sync::Arc;

fn trained_pipeline() -> (Arc<LtePipeline>, Vec<Vec<f64>>) {
    let table = generate_sdss(3000, 0);
    let mut cfg = LteConfig::reduced();
    cfg.train.n_tasks = 60;
    cfg.train.epochs = 1;
    let (p, _) = LtePipeline::offline(&table, decompose_sequential(4, 2), cfg, 11);
    let pool: Vec<Vec<f64>> = (0..300).map(|i| table.row(i).unwrap()).collect();
    (Arc::new(p), pool)
}

/// Everything deterministic in a `UirOutcome`, with floats as raw bits so
/// comparison is exact ("byte-identical"), timing fields excluded.
fn outcome_bytes(o: &UirOutcome) -> Vec<u64> {
    let mut bytes = vec![
        o.confusion.tp as u64,
        o.confusion.fp as u64,
        o.confusion.tn as u64,
        o.confusion.fn_ as u64,
        o.labels_used as u64,
    ];
    bytes.extend(o.per_subspace_f1.iter().map(|f| f.to_bits()));
    for sub in &o.subspace_outcomes {
        bytes.extend(sub.scores.iter().map(|s| s.to_bits()));
        bytes.extend(sub.predictions.iter().map(|&p| p as u64));
        bytes.extend(sub.cs_labels.iter().map(|&l| l as u64));
        bytes.push(sub.labels_used as u64);
    }
    bytes
}

#[test]
fn worker_count_never_changes_session_outcomes() {
    let (pipeline, pool) = trained_pipeline();
    let n_workers = default_threads();

    for variant in [Variant::Basic, Variant::Meta, Variant::MetaStar] {
        let serial = SessionEngine::with_workers(Arc::clone(&pipeline), 1);
        let parallel = SessionEngine::with_workers(Arc::clone(&pipeline), n_workers);

        // Identical request sets (simulate_requests is seed-deterministic).
        let mode = UisMode::new(1, 10);
        let reqs_a = serial.simulate_requests(10, mode, 0.2, 0.9, variant, 42);
        let reqs_b = parallel.simulate_requests(10, mode, 0.2, 0.9, variant, 42);

        let out_a = serial.run_sessions(reqs_a, &pool);
        let out_b = parallel.run_sessions(reqs_b, &pool);
        assert_eq!(out_a.len(), out_b.len());
        for (a, b) in out_a.iter().zip(&out_b) {
            assert_eq!(a.id, b.id, "{variant:?}: ordering diverged");
            assert_eq!(
                outcome_bytes(&a.outcome),
                outcome_bytes(&b.outcome),
                "{variant:?}: session {} diverged between 1 and {n_workers} workers",
                a.id
            );
        }
    }
}

#[test]
fn repeated_runs_are_reproducible() {
    let (pipeline, pool) = trained_pipeline();
    let engine = SessionEngine::with_workers(Arc::clone(&pipeline), default_threads());
    let mode = UisMode::new(4, 8);
    let first = engine.run_sessions(
        engine.simulate_requests(6, mode, 0.2, 0.9, Variant::MetaStar, 7),
        &pool,
    );
    let second = engine.run_sessions(
        engine.simulate_requests(6, mode, 0.2, 0.9, Variant::MetaStar, 7),
        &pool,
    );
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(outcome_bytes(&a.outcome), outcome_bytes(&b.outcome));
    }
}
