//! Routed serving must keep every contract the unrouted service already
//! holds: decisions and their explanations are pure functions of the
//! request (identical at any worker count), a registry survives the LTER
//! persistence round trip without perturbing a single routing bit, and a
//! degenerate single-entry registry is *bitwise invisible* — routing over
//! it produces exactly the unrouted fused path's outputs.

use lte_core::config::LteConfig;
use lte_core::explore::Variant;
use lte_core::persist::{registry_from_bytes, registry_to_bytes};
use lte_core::pipeline::{LtePipeline, UirOutcome};
use lte_core::routing::{PipelineRegistry, Router};
use lte_core::uis::UisMode;
use lte_data::generator::generate_sdss;
use lte_data::rng::derive_seed;
use lte_data::subspace::decompose_sequential;
use lte_serve::{ScoringService, SessionEngine, SessionRequest};
use std::sync::Arc;

fn specialist(mode: UisMode, seed: u64) -> Arc<LtePipeline> {
    let table = generate_sdss(2000, 0);
    let mut cfg = LteConfig::reduced();
    cfg.task.mode = mode;
    cfg.train.n_tasks = 40;
    cfg.train.epochs = 1;
    let (p, _) = LtePipeline::offline(&table, decompose_sequential(4, 2), cfg, seed);
    Arc::new(p)
}

/// A two-specialist registry (broad convex truths vs fragmented narrow
/// ones), the shared retrieval pool, and a mixed request stream drawn from
/// both truth families.
fn setup() -> (Arc<PipelineRegistry>, Vec<Vec<f64>>, Vec<SessionRequest>) {
    let broad = specialist(UisMode::new(1, 12), 5);
    let narrow = specialist(UisMode::new(4, 3), 6);
    let table = generate_sdss(2000, 0);
    let pool: Vec<Vec<f64>> = (0..300).map(|i| table.row(i).unwrap()).collect();

    let mut requests = Vec::new();
    for i in 0..6u64 {
        let mode = if i % 2 == 0 {
            UisMode::new(1, 12)
        } else {
            UisMode::new(4, 3)
        };
        requests.push(SessionRequest {
            id: i,
            truth: broad.generate_truth(mode, derive_seed(33, i), 0.15, 0.9),
            variant: Variant::Meta,
            seed: derive_seed(44, i),
        });
    }

    let mut registry = PipelineRegistry::new();
    registry.register("broad", broad, 8, 100);
    registry.register("narrow", narrow, 8, 100);
    (Arc::new(registry), pool, requests)
}

fn outcome_bytes(o: &UirOutcome) -> Vec<u64> {
    let mut bytes = vec![
        o.confusion.tp as u64,
        o.confusion.fp as u64,
        o.confusion.tn as u64,
        o.confusion.fn_ as u64,
        o.labels_used as u64,
    ];
    bytes.extend(o.per_subspace_f1.iter().map(|f| f.to_bits()));
    for sub in &o.subspace_outcomes {
        bytes.extend(sub.scores.iter().map(|s| s.to_bits()));
        bytes.extend(sub.predictions.iter().map(|&p| p as u64));
        bytes.extend(sub.cs_labels.iter().map(|&l| l as u64));
        bytes.push(sub.labels_used as u64);
    }
    bytes
}

#[test]
fn routed_decisions_and_outcomes_are_identical_at_one_and_four_workers() {
    let (registry, pool, requests) = setup();
    let run = |workers: usize| {
        let engine = SessionEngine::with_workers(Arc::clone(registry.get(0).pipeline()), workers);
        engine.run_sessions_routed(
            requests.clone(),
            &pool,
            Arc::clone(&registry),
            Router::new(42),
        )
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(one.len(), 6);
    for (a, b) in one.iter().zip(&four) {
        assert_eq!(a.outcome.id, b.outcome.id);
        assert_eq!(a.decision, b.decision, "decision diverged across workers");
        assert_eq!(a.decision.explanation(), b.decision.explanation());
        assert_eq!(
            outcome_bytes(&a.outcome.outcome),
            outcome_bytes(&b.outcome.outcome),
            "session {} outcome diverged across workers",
            a.outcome.id
        );
    }
}

#[test]
fn explanations_are_non_empty_and_pinned() {
    let (registry, pool, requests) = setup();
    let engine = SessionEngine::with_workers(Arc::clone(registry.get(0).pipeline()), 2);
    let routed =
        engine.run_sessions_routed(requests, &pool, Arc::clone(&registry), Router::new(42));

    let mut chosen = std::collections::BTreeSet::new();
    for r in &routed {
        let text = r.decision.explanation();
        assert!(!text.is_empty());
        assert!(
            text.starts_with(&format!(
                "routed to '{}' (entry {}) at distance ",
                r.decision.chosen_name, r.decision.chosen
            )),
            "unexpected explanation shape: {text}"
        );
        assert!(text.contains("nearest meta-tasks:"), "{text}");
        assert!(text.contains("top feature deltas:"), "{text}");
        chosen.insert(r.decision.chosen);
    }
    // The mixed broad/narrow stream really exercises both specialists.
    assert_eq!(chosen.len(), 2, "expected both registry entries to serve");
}

#[test]
fn registry_persist_round_trip_preserves_routing_bitwise() {
    let (registry, pool, requests) = setup();
    let reloaded =
        Arc::new(registry_from_bytes(&registry_to_bytes(&registry)).expect("registry round trip"));

    let engine = SessionEngine::with_workers(Arc::clone(registry.get(0).pipeline()), 2);
    let mem = engine.run_sessions_routed(
        requests.clone(),
        &pool,
        Arc::clone(&registry),
        Router::new(7),
    );
    let disk = engine.run_sessions_routed(requests, &pool, reloaded, Router::new(7));
    for (a, b) in mem.iter().zip(&disk) {
        assert_eq!(a.decision, b.decision, "decision diverged after reload");
        assert_eq!(
            outcome_bytes(&a.outcome.outcome),
            outcome_bytes(&b.outcome.outcome),
            "session {} diverged after registry reload",
            a.outcome.id
        );
    }
}

#[test]
fn single_entry_registry_matches_unrouted_path_bitwise() {
    let (_, pool, requests) = setup();
    let only = specialist(UisMode::new(1, 12), 5);
    let mut registry = PipelineRegistry::new();
    registry.register("only", Arc::clone(&only), 8, 100);
    let registry = Arc::new(registry);

    let engine = SessionEngine::with_workers(only, 2);
    let unrouted = engine.run_sessions_fused(requests.clone(), &pool);
    let routed = engine.run_sessions_routed(requests, &pool, registry, Router::new(42));

    assert_eq!(unrouted.len(), routed.len());
    for (a, b) in unrouted.iter().zip(&routed) {
        assert_eq!(a.id, b.outcome.id);
        assert_eq!(b.decision.chosen, 0);
        assert_eq!(
            outcome_bytes(&a.outcome),
            outcome_bytes(&b.outcome.outcome),
            "session {} diverged between unrouted and single-entry routed",
            a.id
        );
    }
}

#[test]
fn routed_group_composes_with_plain_shards_and_builder() {
    let (registry, pool, requests) = setup();
    let plain = specialist(UisMode::new(1, 12), 5);

    let mut service = ScoringService::builder()
        .workers(2)
        .capacity(16)
        .shard("plain", Arc::clone(&plain), pool.clone())
        .routed_shard(
            "mixed",
            Arc::clone(&registry),
            Router::new(42),
            pool.clone(),
        )
        .build();
    assert!(service.shard_index("plain").is_some());
    assert!(service.shard_index("mixed/broad").is_some());
    assert!(service.shard_index("mixed/narrow").is_some());
    assert!(service.group_index("mixed").is_some());

    for req in requests.iter().take(2).cloned() {
        service.submit("plain", req);
    }
    let mut decisions = Vec::new();
    for req in requests.iter().cloned() {
        let (_, d) = service.submit_routed("mixed", req);
        decisions.push(d);
    }
    service.run_until_idle();
    let done = service.take_completed();
    assert_eq!(done.len(), 8);

    for o in &done {
        if service.shard_name(o.shard) == "plain" {
            assert!(o.routing.is_none());
        } else {
            let d = o.routing.as_ref().expect("routed outcome keeps decision");
            // The outcome's decision is the one returned at submit time.
            assert_eq!(d, &decisions[o.id as usize]);
            assert_eq!(
                service.shard_name(o.shard),
                format!("mixed/{}", d.chosen_name)
            );
        }
    }
}

#[test]
#[should_panic(expected = "unknown routed shard")]
fn submitting_to_an_unknown_group_panics() {
    let (registry, pool, requests) = setup();
    let mut service = ScoringService::builder()
        .workers(1)
        .routed_shard("mixed", registry, Router::new(1), pool)
        .build();
    service.submit_routed("nope", requests[0].clone());
}
