//! The cross-session batched scoring service must be *invisible* to
//! outcomes: fusing every session's pool-scoring into one wide call per
//! tick, parking sessions behind the admission queue, or splitting traffic
//! across dataset shards may change scheduling and timing — never a single
//! output bit. These tests pin the four contracts: fused == per-session,
//! 1 worker == N workers, bounded capacity == unbounded, and sharded ==
//! each shard solo.

use lte_core::config::{LteConfig, ScoringPrecision};
use lte_core::explore::Variant;
use lte_core::pipeline::{LtePipeline, UirOutcome};
use lte_core::uis::UisMode;
use lte_data::generator::{generate_car, generate_sdss};
use lte_data::subspace::decompose_sequential;
use lte_data::table::Table;
use lte_serve::{ScoringService, ServiceOutcome, SessionEngine};
use std::sync::Arc;

fn train(table: &Table, seed: u64) -> Arc<LtePipeline> {
    let mut cfg = LteConfig::reduced();
    cfg.train.n_tasks = 60;
    cfg.train.epochs = 1;
    let (p, _) = LtePipeline::offline(table, decompose_sequential(4, 2), cfg, seed);
    Arc::new(p)
}

fn sdss_setup() -> (Arc<LtePipeline>, Vec<Vec<f64>>) {
    let table = generate_sdss(3000, 0);
    let pool: Vec<Vec<f64>> = (0..300).map(|i| table.row(i).unwrap()).collect();
    (train(&table, 11), pool)
}

/// Everything deterministic in a `UirOutcome`, floats as raw bits, timing
/// fields excluded.
fn outcome_bytes(o: &UirOutcome) -> Vec<u64> {
    let mut bytes = vec![
        o.confusion.tp as u64,
        o.confusion.fp as u64,
        o.confusion.tn as u64,
        o.confusion.fn_ as u64,
        o.labels_used as u64,
    ];
    bytes.extend(o.per_subspace_f1.iter().map(|f| f.to_bits()));
    for sub in &o.subspace_outcomes {
        bytes.extend(sub.scores.iter().map(|s| s.to_bits()));
        bytes.extend(sub.predictions.iter().map(|&p| p as u64));
        bytes.extend(sub.cs_labels.iter().map(|&l| l as u64));
        bytes.push(sub.labels_used as u64);
    }
    bytes
}

/// The service-side provenance plus the outcome — the full byte identity a
/// worker-count sweep must preserve.
fn service_bytes(o: &ServiceOutcome) -> Vec<u64> {
    let mut bytes = vec![
        o.id,
        o.shard as u64,
        o.submit_seq,
        o.submit_tick,
        o.admitted_tick,
        o.completed_tick,
    ];
    bytes.extend(&o.epochs);
    bytes.extend(outcome_bytes(&o.outcome));
    bytes
}

#[test]
fn fused_service_matches_per_session_engine_for_every_variant() {
    let (pipeline, pool) = sdss_setup();
    for variant in [Variant::Basic, Variant::Meta, Variant::MetaStar] {
        let engine = SessionEngine::with_workers(Arc::clone(&pipeline), 2);
        let requests = engine.simulate_requests(6, UisMode::new(1, 10), 0.2, 0.9, variant, 42);
        let solo = engine.run_sessions(requests.clone(), &pool);
        let fused = engine.run_sessions_fused(requests, &pool);
        assert_eq!(solo.len(), fused.len());
        for (a, b) in solo.iter().zip(&fused) {
            assert_eq!(a.id, b.id, "{variant:?}: ordering diverged");
            assert_eq!(
                outcome_bytes(&a.outcome),
                outcome_bytes(&b.outcome),
                "{variant:?}: session {} diverged between per-session and fused",
                a.id
            );
        }
    }
}

#[test]
fn service_outcomes_are_identical_at_one_and_four_workers() {
    let (pipeline, pool) = sdss_setup();
    let engine = SessionEngine::with_workers(Arc::clone(&pipeline), 1);
    let requests = engine.simulate_requests(8, UisMode::new(1, 10), 0.2, 0.9, Variant::MetaStar, 7);

    let run = |workers: usize| {
        let mut service = ScoringService::with_capacity(workers, 3);
        service.add_shard("sdss", Arc::clone(&pipeline), pool.clone());
        for req in requests.clone() {
            service.submit("sdss", req);
        }
        let reports = service.run_until_idle();
        (reports, service.take_completed())
    };
    let (reports_1, done_1) = run(1);
    let (reports_4, done_4) = run(4);

    // Tick composition is counter-based, so even the per-tick reports
    // agree exactly — admission waves, fused widths, completions.
    assert_eq!(reports_1, reports_4, "tick schedules diverged");
    assert_eq!(done_1.len(), 8);
    for (a, b) in done_1.iter().zip(&done_4) {
        assert_eq!(
            service_bytes(a),
            service_bytes(b),
            "session {} diverged between 1 and 4 workers",
            a.id
        );
    }
}

#[test]
fn ranked_precision_serves_deterministically_across_worker_counts() {
    // `ScoringPrecision::Ranked` flows from the pipeline config straight
    // through the service's fused scoring path (no serve-side switch), so
    // the worker-sweep determinism contract must hold for it too.
    let table = generate_sdss(3000, 0);
    let pool: Vec<Vec<f64>> = (0..300).map(|i| table.row(i).unwrap()).collect();
    let mut cfg = LteConfig::reduced();
    cfg.train.n_tasks = 60;
    cfg.train.epochs = 1;
    cfg.online.precision = ScoringPrecision::Ranked;
    let (pipeline, _) = LtePipeline::offline(&table, decompose_sequential(4, 2), cfg, 11);
    let pipeline = Arc::new(pipeline);

    let engine = SessionEngine::with_workers(Arc::clone(&pipeline), 1);
    let requests = engine.simulate_requests(6, UisMode::new(1, 10), 0.2, 0.9, Variant::Meta, 23);

    let run = |workers: usize| {
        let mut service = ScoringService::new(workers);
        service.add_shard("sdss", Arc::clone(&pipeline), pool.clone());
        for req in requests.clone() {
            service.submit("sdss", req);
        }
        service.run_until_idle();
        service.take_completed()
    };
    let done_1 = run(1);
    let done_4 = run(4);
    assert_eq!(done_1.len(), 6);
    for (a, b) in done_1.iter().zip(&done_4) {
        assert_eq!(
            service_bytes(a),
            service_bytes(b),
            "ranked session {} diverged between 1 and 4 workers",
            a.id
        );
    }
}

#[test]
fn admission_capacity_never_changes_outcomes() {
    let (pipeline, pool) = sdss_setup();
    let engine = SessionEngine::with_workers(Arc::clone(&pipeline), 1);
    let requests = engine.simulate_requests(7, UisMode::new(1, 10), 0.2, 0.9, Variant::Meta, 19);

    let run = |max_active: usize| {
        let mut service = ScoringService::with_capacity(1, max_active);
        service.add_shard("sdss", Arc::clone(&pipeline), pool.clone());
        for req in requests.clone() {
            service.submit("sdss", req);
        }
        service.run_until_idle();
        let mut done = service.take_completed();
        done.sort_by_key(|o| o.id);
        done
    };
    let unbounded = run(usize::MAX);
    let squeezed = run(2);

    // Squeezing capacity to 2 stretches the schedule (more ticks, parked
    // sessions) but every session's *result* is untouched.
    assert!(squeezed.iter().any(|o| o.admitted_tick > o.submit_tick));
    assert!(unbounded.iter().all(|o| o.admitted_tick == o.submit_tick));
    for (a, b) in unbounded.iter().zip(&squeezed) {
        assert_eq!(a.id, b.id);
        assert_eq!(
            outcome_bytes(&a.outcome),
            outcome_bytes(&b.outcome),
            "session {} diverged under admission pressure",
            a.id
        );
    }
}

#[test]
fn sharded_service_matches_each_pipeline_solo() {
    let sdss_table = generate_sdss(3000, 0);
    let car_table = generate_car(3000, 1);
    let sdss = train(&sdss_table, 11);
    let car = train(&car_table, 13);
    let sdss_pool: Vec<Vec<f64>> = (0..250).map(|i| sdss_table.row(i).unwrap()).collect();
    let car_pool: Vec<Vec<f64>> = (0..250).map(|i| car_table.row(i).unwrap()).collect();

    let sdss_engine = SessionEngine::with_workers(Arc::clone(&sdss), 1);
    let car_engine = SessionEngine::with_workers(Arc::clone(&car), 1);
    let mode = UisMode::new(1, 10);
    let sdss_reqs = sdss_engine.simulate_requests(4, mode, 0.2, 0.9, Variant::Meta, 5);
    let car_reqs = car_engine.simulate_requests(4, mode, 0.2, 0.9, Variant::Meta, 6);

    // One service, both datasets, submissions interleaved — each tick's
    // fused call spans both shards.
    let mut service = ScoringService::new(2);
    service.add_shard("sdss", Arc::clone(&sdss), sdss_pool.clone());
    service.add_shard("car", Arc::clone(&car), car_pool.clone());
    for (s, c) in sdss_reqs.iter().zip(&car_reqs) {
        service.submit("sdss", s.clone());
        service.submit("car", c.clone());
    }
    let reports = service.run_until_idle();
    // Both shards really were fused into one call: 8 requests per tick.
    assert_eq!(reports[0].fused_requests, 8);
    assert_eq!(reports[0].fused_rows, 8 * 250);

    let done = service.take_completed();
    assert_eq!(done.len(), 8);
    for o in &done {
        let (pipeline, pool, reqs, ids_base) = if service.shard_name(o.shard) == "sdss" {
            (&sdss, &sdss_pool, &sdss_reqs, "sdss")
        } else {
            (&car, &car_pool, &car_reqs, "car")
        };
        let req = reqs.iter().find(|r| r.id == o.id).unwrap();
        let solo = pipeline.explore(&req.truth, pool, req.variant, req.seed);
        assert_eq!(
            outcome_bytes(&solo),
            outcome_bytes(&o.outcome),
            "{ids_base} session {} diverged from its solo run",
            o.id
        );
    }
}
