//! Algorithm 3: tuple → composite feature vector.
//!
//! Each attribute value `τj` becomes `one-hot(mode) ⊕ [norm]` where the
//! one-hot names the GMM component / JKC interval the value belongs to and
//! `norm` is the value's position normalized within that mode. Per-tuple
//! vectors concatenate all attribute encodings; their total width is the
//! classifier's tuple-input dimension `Nr` (§VI-A).

use crate::gmm::Gmm;
use crate::jenks::JenksBreaks;
use crate::modality::{probe_modality, Modality};
use lte_data::schema::Attribute;
use lte_data::table::Table;
use rand::Rng;

/// Which mode model to fit per attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EncoderKind {
    /// Probe each attribute and pick GMM (peaked) or JKC (smooth) — the
    /// paper's combined "Basic" representation.
    #[default]
    Auto,
    /// Force GMM on every attribute (Fig. 8(a) ablation arm).
    AllGmm,
    /// Force JKC on every attribute (Fig. 8(a) ablation arm).
    AllJkc,
    /// Plain min-max normalization — the representation the paper shows
    /// "can hardly be trained" (Fig. 8(a) discussion).
    MinMax,
}

/// Encoder configuration.
#[derive(Debug, Clone)]
pub struct EncoderConfig {
    /// Mode-model selection policy.
    pub kind: EncoderKind,
    /// GMM component count `|g|`.
    pub n_components: usize,
    /// JKC interval count `|b|`.
    pub n_intervals: usize,
    /// Fitting-sample fraction (paper caps at 1%).
    pub sample_fraction: f64,
    /// Minimum fitting-sample rows (so small tables stay fittable).
    pub min_sample: usize,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        Self {
            kind: EncoderKind::Auto,
            n_components: 5,
            n_intervals: 5,
            sample_fraction: 0.01,
            min_sample: 500,
        }
    }
}

/// A fitted per-attribute encoder.
#[derive(Debug, Clone)]
pub enum AttributeEncoder {
    /// Peaked attribute → Gaussian mixture modes.
    Gmm(Gmm),
    /// Smooth attribute → Jenks natural-breaks intervals.
    Jenks(JenksBreaks),
    /// Raw min-max over the attribute domain.
    MinMax(Attribute),
}

impl AttributeEncoder {
    /// Output width of this encoder (one-hot + 1, or 1 for min-max).
    pub fn width(&self) -> usize {
        match self {
            AttributeEncoder::Gmm(g) => g.k() + 1,
            AttributeEncoder::Jenks(j) => j.k() + 1,
            AttributeEncoder::MinMax(_) => 1,
        }
    }

    /// Append the encoding of `value` to `out`.
    pub fn encode_into(&self, value: f64, out: &mut Vec<f64>) {
        match self {
            AttributeEncoder::Gmm(g) => {
                let k = g.predict_component(value);
                let base = out.len();
                out.resize(base + g.k(), 0.0);
                out[base + k] = 1.0;
                out.push(g.normalize_in_component(value, k));
            }
            AttributeEncoder::Jenks(j) => {
                let i = j.predict_interval(value);
                let base = out.len();
                out.resize(base + j.k(), 0.0);
                out[base + i] = 1.0;
                out.push(j.normalize_in_interval(value, i));
            }
            AttributeEncoder::MinMax(attr) => {
                out.push(attr.normalize(value));
            }
        }
    }

    /// True when this encoder is a GMM.
    pub fn is_gmm(&self) -> bool {
        matches!(self, AttributeEncoder::Gmm(_))
    }
}

/// Fitted encoders for every attribute of a table.
#[derive(Debug, Clone)]
pub struct TableEncoder {
    encoders: Vec<AttributeEncoder>,
    width: usize,
}

impl TableEncoder {
    /// Fit encoders on a random sample of `table` (one encoder per column).
    pub fn fit<R: Rng + ?Sized>(table: &Table, config: &EncoderConfig, rng: &mut R) -> Self {
        let sample = table.sample_fraction(rng, config.sample_fraction, config.min_sample);
        Self::fit_exact(&sample, config)
    }

    /// Fit encoders on the given table directly (no sampling).
    pub fn fit_exact(sample: &Table, config: &EncoderConfig) -> Self {
        let mut encoders = Vec::with_capacity(sample.n_cols());
        for c in 0..sample.n_cols() {
            let values = sample.column(c).expect("column in range");
            let attr = sample.schema().attr(c).expect("attr in range").clone();
            let enc = match config.kind {
                EncoderKind::MinMax => AttributeEncoder::MinMax(attr),
                EncoderKind::AllGmm => AttributeEncoder::Gmm(Gmm::fit(values, config.n_components)),
                EncoderKind::AllJkc => {
                    AttributeEncoder::Jenks(JenksBreaks::fit(values, config.n_intervals))
                }
                EncoderKind::Auto => match probe_modality(values) {
                    Modality::Peaked => {
                        AttributeEncoder::Gmm(Gmm::fit(values, config.n_components))
                    }
                    Modality::Smooth => {
                        AttributeEncoder::Jenks(JenksBreaks::fit(values, config.n_intervals))
                    }
                },
            };
            encoders.push(enc);
        }
        let width = encoders.iter().map(AttributeEncoder::width).sum();
        Self { encoders, width }
    }

    /// Reconstruct from previously fitted per-attribute encoders (model
    /// persistence).
    pub fn from_encoders(encoders: Vec<AttributeEncoder>) -> Self {
        let width = encoders.iter().map(AttributeEncoder::width).sum();
        Self { encoders, width }
    }

    /// Per-attribute encoders.
    pub fn encoders(&self) -> &[AttributeEncoder] {
        &self.encoders
    }

    /// Total encoded width `Nr` (the classifier's tuple-input dimension).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Encode one row into a fresh vector.
    ///
    /// # Panics
    /// Panics when `row.len()` differs from the fitted column count.
    pub fn encode_row(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.encoders.len(), "row width mismatch");
        let mut out = Vec::with_capacity(self.width);
        for (enc, &v) in self.encoders.iter().zip(row) {
            enc.encode_into(v, &mut out);
        }
        out
    }

    /// Encode many rows.
    pub fn encode_rows(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.encode_row(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lte_data::generator::{generate_car, generate_sdss};
    use lte_data::rng::seeded;
    use lte_data::schema::Schema;

    fn tiny_table() -> Table {
        // Column 0: bimodal; column 1: linear trend.
        let mut c0 = Vec::new();
        let mut c1 = Vec::new();
        for i in 0..400 {
            let jitter = ((i * 31) % 100) as f64 / 100.0 - 0.5;
            c0.push(if i % 2 == 0 { jitter } else { 10.0 + jitter });
            c1.push(i as f64 * 0.1);
        }
        let schema = Schema::new(vec![
            Attribute::new("bimodal", -1.0, 11.0),
            Attribute::new("trend", 0.0, 40.0),
        ]);
        Table::new(schema, vec![c0, c1]).unwrap()
    }

    #[test]
    fn auto_mode_selects_gmm_for_peaked_jkc_for_smooth() {
        let t = tiny_table();
        let enc = TableEncoder::fit_exact(&t, &EncoderConfig::default());
        assert!(enc.encoders()[0].is_gmm(), "bimodal column should use GMM");
        assert!(!enc.encoders()[1].is_gmm(), "trend column should use JKC");
    }

    #[test]
    fn encoded_width_matches_declared_width() {
        let t = tiny_table();
        for kind in [
            EncoderKind::Auto,
            EncoderKind::AllGmm,
            EncoderKind::AllJkc,
            EncoderKind::MinMax,
        ] {
            let cfg = EncoderConfig {
                kind,
                ..EncoderConfig::default()
            };
            let enc = TableEncoder::fit_exact(&t, &cfg);
            let v = enc.encode_row(&t.row(0).unwrap());
            assert_eq!(v.len(), enc.width(), "{kind:?}");
        }
    }

    #[test]
    fn one_hot_block_has_exactly_one_bit() {
        let t = tiny_table();
        let cfg = EncoderConfig {
            kind: EncoderKind::AllGmm,
            n_components: 4,
            ..EncoderConfig::default()
        };
        let enc = TableEncoder::fit_exact(&t, &cfg);
        let v = enc.encode_row(&t.row(5).unwrap());
        // Layout: [onehot×4, norm] × 2 attributes.
        for a in 0..2 {
            let block = &v[a * 5..a * 5 + 4];
            let ones = block.iter().filter(|&&b| b == 1.0).count();
            assert_eq!(ones, 1, "block {a}: {block:?}");
            let norm = v[a * 5 + 4];
            assert!((-1.0..=1.0).contains(&norm));
        }
    }

    #[test]
    fn minmax_is_plain_normalization() {
        let t = tiny_table();
        let cfg = EncoderConfig {
            kind: EncoderKind::MinMax,
            ..EncoderConfig::default()
        };
        let enc = TableEncoder::fit_exact(&t, &cfg);
        assert_eq!(enc.width(), 2);
        let v = enc.encode_row(&[5.0, 20.0]);
        assert!(v.iter().all(|x| (0.0..=1.0).contains(x)));
    }

    #[test]
    fn fits_on_real_generators() {
        let mut rng = seeded(0);
        let sdss = generate_sdss(3000, 0);
        let enc = TableEncoder::fit(&sdss, &EncoderConfig::default(), &mut rng);
        assert_eq!(enc.encoders().len(), 8);
        let v = enc.encode_row(&sdss.row(17).unwrap());
        assert_eq!(v.len(), enc.width());

        let car = generate_car(3000, 0);
        let enc = TableEncoder::fit(&car, &EncoderConfig::default(), &mut rng);
        assert_eq!(enc.encoders().len(), 5);
    }

    #[test]
    fn encode_rows_is_elementwise() {
        let t = tiny_table();
        let enc = TableEncoder::fit_exact(&t, &EncoderConfig::default());
        let rows = t.to_rows();
        let encoded = enc.encode_rows(&rows[..3]);
        assert_eq!(encoded.len(), 3);
        assert_eq!(encoded[1], enc.encode_row(&rows[1]));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_row_width_panics() {
        let t = tiny_table();
        let enc = TableEncoder::fit_exact(&t, &EncoderConfig::default());
        enc.encode_row(&[1.0]);
    }
}
