//! Per-attribute modality heuristic: GMM or JKC?
//!
//! §VII-A: "GMM is suitable for processing numerical attributes with
//! distribution composed of one or more peaks (unimodal and multimodal
//! distributions) [...] there are a large number of numerical attributes
//! with distributions composed of smooth intervals, like trends or time
//! series, which are more suitable for being processed by JKC." We
//! operationalize this with a histogram-peak probe: attributes whose
//! (smoothed) histogram shows pronounced interior peaks are *peaked* → GMM;
//! attributes whose mass changes gradually (monotone trends, plateaus) are
//! *smooth* → JKC.

use lte_data::stats::histogram;

/// Detected distribution character of one attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Modality {
    /// Unimodal/multimodal with pronounced peaks → encode with GMM.
    Peaked,
    /// Smooth, trend-like, or plateau-shaped → encode with JKC.
    Smooth,
}

/// Histogram bins used by the probe.
const PROBE_BINS: usize = 32;
/// Minimum mass fraction for a bin to count as a peak.
const PEAK_MASS: f64 = 0.02;

/// A peak must exceed this multiple of the median bin mass to count as
/// *prominent* (filters the bin-to-bin jitter of flat/uniform histograms).
const PROMINENCE: f64 = 1.6;

/// Probe the modality of a column.
///
/// Decision rule: compute a 32-bin histogram, smooth it with a 3-bin moving
/// average, and count *prominent* local maxima — bins that beat both
/// neighbours, carry at least `PEAK_MASS` of the total mass, and rise
/// `PROMINENCE`× above the median bin. Any prominent interior peak means
/// mass is concentrated around modes → `Peaked` (GMM). Flat, monotone, or
/// plateau-shaped histograms have no prominent interior peaks → `Smooth`
/// (JKC).
pub fn probe_modality(values: &[f64]) -> Modality {
    if values.len() < 8 {
        return Modality::Smooth;
    }
    let hist = histogram(values, PROBE_BINS);
    let total: usize = hist.iter().sum();
    if total == 0 {
        return Modality::Smooth;
    }

    // 3-bin moving average.
    let smooth: Vec<f64> = (0..hist.len())
        .map(|i| {
            let lo = i.saturating_sub(1);
            let hi = (i + 1).min(hist.len() - 1);
            (lo..=hi).map(|j| hist[j] as f64).sum::<f64>() / (hi - lo + 1) as f64
        })
        .collect();

    let mut sorted = smooth.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median = sorted[sorted.len() / 2].max(1.0);
    let mass_floor = PEAK_MASS * total as f64;

    let prominent = |i: usize| smooth[i] >= mass_floor && smooth[i] >= PROMINENCE * median;
    let mut peaks = 0;
    for i in 1..smooth.len() - 1 {
        if smooth[i] > smooth[i - 1] && smooth[i] >= smooth[i + 1] && prominent(i) {
            peaks += 1;
        }
    }
    if peaks >= 1 {
        return Modality::Peaked;
    }

    // Edge-mode rescue: interior-peak detection misses modes that sit at the
    // histogram boundary (e.g. two blobs at the domain extremes). A *valley*
    // — a run of near-empty bins with prominent mass on both sides — still
    // reveals multi-modality, while monotone trends (mass fading towards one
    // end with nothing beyond) produce no valley.
    let low = |i: usize| smooth[i] < mass_floor / 2.0;
    let mut i = 0;
    while i < smooth.len() {
        if low(i) {
            let start = i;
            while i < smooth.len() && low(i) {
                i += 1;
            }
            let has_left = (0..start).any(prominent);
            let has_right = (i..smooth.len()).any(prominent);
            if has_left && has_right {
                return Modality::Peaked;
            }
        } else {
            i += 1;
        }
    }
    Modality::Smooth
}

#[cfg(test)]
mod tests {
    use super::*;
    use lte_data::rng::{randn_scaled, seeded};
    use rand::RngExt;

    #[test]
    fn bimodal_gaussians_are_peaked() {
        let mut rng = seeded(0);
        let mut v = Vec::new();
        for _ in 0..3000 {
            v.push(randn_scaled(&mut rng, -5.0, 0.4));
            v.push(randn_scaled(&mut rng, 5.0, 0.4));
        }
        assert_eq!(probe_modality(&v), Modality::Peaked);
    }

    #[test]
    fn tight_unimodal_gaussian_is_peaked() {
        let mut rng = seeded(1);
        // Narrow peak with long uniform tails → concentrated.
        let mut v: Vec<f64> = (0..3000)
            .map(|_| randn_scaled(&mut rng, 0.0, 0.2))
            .collect();
        for _ in 0..300 {
            v.push(rng.random::<f64>() * 20.0 - 10.0);
        }
        assert_eq!(probe_modality(&v), Modality::Peaked);
    }

    #[test]
    fn linear_trend_is_smooth() {
        let v: Vec<f64> = (0..4000).map(|i| i as f64 * 0.01).collect();
        assert_eq!(probe_modality(&v), Modality::Smooth);
    }

    #[test]
    fn exponential_decay_is_smooth() {
        // Monotone density: lots of small values, few large.
        let v: Vec<f64> = (0..4000)
            .map(|i| ((i as f64 + 1.0) / 4000.0).powi(4) * 100.0)
            .collect();
        assert_eq!(probe_modality(&v), Modality::Smooth);
    }

    #[test]
    fn tiny_or_empty_columns_default_to_smooth() {
        assert_eq!(probe_modality(&[]), Modality::Smooth);
        assert_eq!(probe_modality(&[1.0, 2.0]), Modality::Smooth);
    }
}
