//! Jenks natural-breaks classification (Fisher's optimal 1-D partition).
//!
//! JKC (§VII-A) splits a numeric attribute into `|b|` intervals minimizing
//! within-interval variance and maximizing between-interval variance — the
//! classic choropleth-map optimization of Jenks & Caspall. We implement the
//! exact dynamic program (Fisher's algorithm) in O(k·n²) over the sorted
//! sample, which is cheap at the paper's ≤1% sampling ratio.

/// A fitted natural-breaks model: `k` contiguous intervals covering the
/// sample range.
#[derive(Debug, Clone, PartialEq)]
pub struct JenksBreaks {
    /// Interval boundaries, ascending: `bounds[i]..bounds[i+1]` is interval
    /// `i`; `bounds.len() == k + 1`.
    bounds: Vec<f64>,
}

impl JenksBreaks {
    /// Fit `k` natural-breaks intervals to `values`.
    ///
    /// # Panics
    /// Panics when `values` is empty or `k == 0`.
    pub fn fit(values: &[f64], k: usize) -> Self {
        assert!(!values.is_empty(), "JKC needs at least one value");
        assert!(k > 0, "k must be positive");
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        sorted.dedup();
        let n = sorted.len();
        let k = k.min(n);

        if k == n {
            // Each distinct value is its own class.
            let mut bounds = Vec::with_capacity(n + 1);
            bounds.push(sorted[0]);
            for w in sorted.windows(2) {
                bounds.push((w[0] + w[1]) / 2.0);
            }
            bounds.push(sorted[n - 1]);
            // Ensure the last bound is the max itself.
            let last = bounds.len() - 1;
            bounds[last] = sorted[n - 1];
            return Self { bounds };
        }

        // Prefix sums for O(1) segment SSE:
        // sse(i..j) = Σx² − (Σx)²/len over sorted[i..=j].
        let mut pref = vec![0.0; n + 1];
        let mut pref2 = vec![0.0; n + 1];
        for (i, &v) in sorted.iter().enumerate() {
            pref[i + 1] = pref[i] + v;
            pref2[i + 1] = pref2[i] + v * v;
        }
        let sse = |i: usize, j: usize| -> f64 {
            // inclusive i..=j
            let len = (j - i + 1) as f64;
            let s = pref[j + 1] - pref[i];
            let s2 = pref2[j + 1] - pref2[i];
            (s2 - s * s / len).max(0.0)
        };

        // dp[c][j] = min SSE partitioning sorted[0..=j] into c+1 classes.
        let mut dp = vec![vec![f64::INFINITY; n]; k];
        let mut cut = vec![vec![0usize; n]; k];
        for (j, cell) in dp[0].iter_mut().enumerate() {
            *cell = sse(0, j);
        }
        for c in 1..k {
            for j in c..n {
                let mut best = f64::INFINITY;
                let mut best_i = c;
                for i in c..=j {
                    let cost = dp[c - 1][i - 1] + sse(i, j);
                    if cost < best {
                        best = cost;
                        best_i = i;
                    }
                }
                dp[c][j] = best;
                cut[c][j] = best_i;
            }
        }

        // Backtrack class start indices.
        let mut starts = vec![0usize; k];
        let mut j = n - 1;
        for c in (1..k).rev() {
            starts[c] = cut[c][j];
            j = starts[c] - 1;
        }
        // Boundaries between classes at midpoints of adjacent values.
        let mut bounds = Vec::with_capacity(k + 1);
        bounds.push(sorted[0]);
        for &s in &starts[1..] {
            bounds.push((sorted[s - 1] + sorted[s]) / 2.0);
        }
        bounds.push(sorted[n - 1]);
        Self { bounds }
    }

    /// Reconstruct from previously fitted bounds (model persistence).
    ///
    /// # Panics
    /// Panics when fewer than two bounds are given or bounds descend.
    pub fn from_bounds(bounds: Vec<f64>) -> Self {
        assert!(bounds.len() >= 2, "need at least one interval");
        assert!(
            bounds.windows(2).all(|w| w[0] <= w[1]),
            "bounds must ascend"
        );
        Self { bounds }
    }

    /// Number of intervals.
    pub fn k(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Interval boundaries (length `k + 1`, ascending).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Index of the interval containing `x`; values outside the fitted range
    /// clamp to the first/last interval ("comparing with boundary values",
    /// Algorithm 3).
    pub fn predict_interval(&self, x: f64) -> usize {
        let k = self.k();
        // Binary search over interior boundaries.
        let interior = &self.bounds[1..k];
        match interior.binary_search_by(|b| b.partial_cmp(&x).unwrap_or(std::cmp::Ordering::Less)) {
            Ok(i) => (i + 1).min(k - 1),
            Err(i) => i.min(k - 1),
        }
    }

    /// Normalize `x` within interval `i`:
    /// `(x − b.min) / (b.max − b.min)` per Algorithm 3, clamped to `[0, 1]`.
    pub fn normalize_in_interval(&self, x: f64, interval: usize) -> f64 {
        let lo = self.bounds[interval];
        let hi = self.bounds[interval + 1];
        if hi - lo <= f64::EPSILON {
            0.0
        } else {
            ((x - lo) / (hi - lo)).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_two_obvious_groups() {
        let values = [1.0, 1.1, 1.2, 9.0, 9.1, 9.2];
        let j = JenksBreaks::fit(&values, 2);
        assert_eq!(j.k(), 2);
        // The break must fall in the large gap.
        let mid = j.bounds()[1];
        assert!(mid > 1.2 && mid < 9.0, "break at {mid}");
        assert_eq!(j.predict_interval(1.15), 0);
        assert_eq!(j.predict_interval(9.05), 1);
    }

    #[test]
    fn three_groups_found_exactly() {
        let mut values = Vec::new();
        for i in 0..20 {
            values.push(0.0 + i as f64 * 0.01);
            values.push(5.0 + i as f64 * 0.01);
            values.push(10.0 + i as f64 * 0.01);
        }
        let j = JenksBreaks::fit(&values, 3);
        assert!(j.bounds()[1] > 0.2 && j.bounds()[1] < 5.0);
        assert!(j.bounds()[2] > 5.2 && j.bounds()[2] < 10.0);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let j = JenksBreaks::fit(&[0.0, 1.0, 2.0, 10.0, 11.0], 2);
        assert_eq!(j.predict_interval(-100.0), 0);
        assert_eq!(j.predict_interval(100.0), j.k() - 1);
    }

    #[test]
    fn normalize_maps_interval_to_unit() {
        let j = JenksBreaks::fit(&[0.0, 1.0, 2.0, 10.0, 11.0, 12.0], 2);
        let i = j.predict_interval(11.0);
        let lo = j.bounds()[i];
        let hi = j.bounds()[i + 1];
        assert_eq!(j.normalize_in_interval(lo, i), 0.0);
        assert_eq!(j.normalize_in_interval(hi, i), 1.0);
        let v = j.normalize_in_interval(11.0, i);
        assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn k_larger_than_distinct_values() {
        let j = JenksBreaks::fit(&[1.0, 1.0, 2.0, 2.0], 10);
        assert_eq!(j.k(), 2);
        assert_eq!(j.predict_interval(1.0), 0);
        assert_eq!(j.predict_interval(2.0), 1);
    }

    #[test]
    fn single_value_column() {
        let j = JenksBreaks::fit(&[7.0, 7.0, 7.0], 3);
        assert_eq!(j.k(), 1);
        assert_eq!(j.predict_interval(7.0), 0);
        assert_eq!(j.normalize_in_interval(7.0, 0), 0.0);
    }

    #[test]
    fn dp_is_optimal_for_small_case() {
        // Optimal 2-split of [0, 1, 10] is {0,1} | {10}: SSE = 0.5.
        let j = JenksBreaks::fit(&[0.0, 1.0, 10.0], 2);
        assert_eq!(j.predict_interval(0.0), 0);
        assert_eq!(j.predict_interval(1.0), 0);
        assert_eq!(j.predict_interval(10.0), 1);
    }

    #[test]
    fn intervals_partition_the_range() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64).sqrt() * 3.7).collect();
        let j = JenksBreaks::fit(&values, 5);
        let b = j.bounds();
        assert_eq!(b.len(), 6);
        for w in b.windows(2) {
            assert!(w[0] <= w[1], "bounds must ascend: {b:?}");
        }
        // Every value maps to the interval whose bounds bracket it.
        for &v in &values {
            let i = j.predict_interval(v);
            assert!(v >= b[i] - 1e-9 && v <= b[i + 1] + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn empty_input_panics() {
        JenksBreaks::fit(&[], 2);
    }
}
