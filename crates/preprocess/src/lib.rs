//! Tabular data preprocessing (paper §VII-A, Algorithm 3).
//!
//! Simple min-max normalization "is far from providing feature
//! representations that guarantee the essential performance of NN
//! classifiers" and causes gradient saturation in few-shot training; the
//! paper instead encodes every attribute value as a *multi-modal feature*:
//! a one-hot vector naming the mode the value falls in, concatenated with
//! the value's position normalized **within** that mode. Two mode models are
//! used, chosen per attribute:
//!
//! * [`gmm`] — a 1-D Gaussian mixture fitted by EM, suited to peaked
//!   (unimodal/multimodal) attributes, following CTGAN's mode-specific
//!   normalization;
//! * [`jenks`] — Jenks natural-breaks intervals (Fisher's optimal 1-D
//!   partition), suited to smooth / trend-like attributes.
//!
//! [`encoder::TableEncoder`] fits one encoder per attribute on a ≤1% sample
//! (the paper's scalability cap), picks GMM vs JKC with the modality
//! heuristic of [`modality`], and turns tuples into the classifier's input
//! vectors `vτ`. A raw min-max encoder is kept for the Fig. 8(a) ablation.

pub mod encoder;
pub mod gmm;
pub mod jenks;
pub mod modality;

pub use encoder::{AttributeEncoder, EncoderConfig, EncoderKind, TableEncoder};
pub use gmm::Gmm;
pub use jenks::JenksBreaks;
pub use modality::Modality;
