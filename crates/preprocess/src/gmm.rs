//! One-dimensional Gaussian mixture models fitted by EM.
//!
//! Per §VII-A, a GMM with `|g|` components captures the feature of a peaked
//! numeric attribute: given a value, the component maximizing the posterior
//! likelihood is its *mode*, and the value is re-expressed relative to that
//! component's mean and spread. 1-D suffices because encoding is always
//! per-attribute.

/// One Gaussian component.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// Mixture weight (sums to 1 across components).
    pub weight: f64,
    /// Component mean µ.
    pub mean: f64,
    /// Component standard deviation (σ, not variance), floored for
    /// numerical stability.
    pub std: f64,
}

/// A fitted 1-D Gaussian mixture.
#[derive(Debug, Clone, PartialEq)]
pub struct Gmm {
    components: Vec<Component>,
    log_likelihood: f64,
    iterations: usize,
}

/// Log-density of N(µ, σ²) at x.
fn log_normal_pdf(x: f64, mean: f64, std: f64) -> f64 {
    let z = (x - mean) / std;
    -0.5 * z * z - std.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
}

impl Gmm {
    /// Fit a mixture with `k` components by EM.
    ///
    /// Initialization is deterministic: means at evenly spaced quantiles,
    /// uniform weights, pooled standard deviation. EM runs until the average
    /// log-likelihood improves by less than `1e-6` or 100 iterations.
    ///
    /// # Panics
    /// Panics when `values` is empty or `k == 0`.
    pub fn fit(values: &[f64], k: usize) -> Self {
        assert!(!values.is_empty(), "GMM needs at least one value");
        assert!(k > 0, "k must be positive");
        let n = values.len();
        let k = k.min(n);

        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));

        let mean_all = values.iter().sum::<f64>() / n as f64;
        let var_all = values
            .iter()
            .map(|v| (v - mean_all) * (v - mean_all))
            .sum::<f64>()
            / n as f64;
        let std_floor = (var_all.sqrt() * 1e-3).max(1e-9);
        let init_std = (var_all.sqrt() / k as f64).max(std_floor);

        let mut comps: Vec<Component> = (0..k)
            .map(|j| {
                // Quantile-based means: (j + 0.5) / k.
                let q = ((j as f64 + 0.5) / k as f64 * (n - 1) as f64).round() as usize;
                Component {
                    weight: 1.0 / k as f64,
                    mean: sorted[q.min(n - 1)],
                    std: init_std,
                }
            })
            .collect();

        let mut resp = vec![0.0; n * k];
        let mut last_ll = f64::NEG_INFINITY;
        let mut iterations = 0;
        for it in 0..100 {
            iterations = it + 1;
            // E-step: responsibilities via log-sum-exp.
            let mut ll = 0.0;
            for (i, &x) in values.iter().enumerate() {
                let row = &mut resp[i * k..(i + 1) * k];
                let mut max_log = f64::NEG_INFINITY;
                for (j, c) in comps.iter().enumerate() {
                    row[j] = c.weight.max(1e-300).ln() + log_normal_pdf(x, c.mean, c.std);
                    max_log = max_log.max(row[j]);
                }
                let mut sum = 0.0;
                for r in row.iter_mut() {
                    *r = (*r - max_log).exp();
                    sum += *r;
                }
                for r in row.iter_mut() {
                    *r /= sum;
                }
                ll += max_log + sum.ln();
            }
            // M-step.
            for (j, c) in comps.iter_mut().enumerate() {
                let nj: f64 = (0..n).map(|i| resp[i * k + j]).sum();
                if nj <= 1e-12 {
                    // Dead component: keep its parameters, zero weight.
                    c.weight = 1e-12;
                    continue;
                }
                let mu = (0..n).map(|i| resp[i * k + j] * values[i]).sum::<f64>() / nj;
                let var = (0..n)
                    .map(|i| resp[i * k + j] * (values[i] - mu) * (values[i] - mu))
                    .sum::<f64>()
                    / nj;
                c.weight = nj / n as f64;
                c.mean = mu;
                c.std = var.sqrt().max(std_floor);
            }
            // Renormalize weights (dead components were floored).
            let wsum: f64 = comps.iter().map(|c| c.weight).sum();
            for c in &mut comps {
                c.weight /= wsum;
            }

            let avg_ll = ll / n as f64;
            if (avg_ll - last_ll).abs() < 1e-6 {
                last_ll = avg_ll;
                break;
            }
            last_ll = avg_ll;
        }

        Self {
            components: comps,
            log_likelihood: last_ll,
            iterations,
        }
    }

    /// Reconstruct a mixture from previously fitted components (model
    /// persistence). Weights are re-normalized; stds floored.
    ///
    /// # Panics
    /// Panics when `components` is empty.
    pub fn from_components(components: Vec<Component>) -> Self {
        assert!(!components.is_empty(), "GMM needs at least one component");
        let mut components = components;
        let wsum: f64 = components.iter().map(|c| c.weight).sum();
        for c in &mut components {
            c.weight = if wsum > 0.0 {
                c.weight / wsum
            } else {
                1.0 / 1.0f64.max(wsum)
            };
            c.std = c.std.max(1e-12);
        }
        Self {
            components,
            log_likelihood: f64::NAN,
            iterations: 0,
        }
    }

    /// The fitted components.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Number of components.
    pub fn k(&self) -> usize {
        self.components.len()
    }

    /// Final average log-likelihood.
    pub fn avg_log_likelihood(&self) -> f64 {
        self.log_likelihood
    }

    /// EM iterations executed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Index of the component maximizing the posterior for `x`
    /// (`k = argmax_κ p_κ` in Algorithm 3).
    pub fn predict_component(&self, x: f64) -> usize {
        let mut best = (0usize, f64::NEG_INFINITY);
        for (j, c) in self.components.iter().enumerate() {
            let lp = c.weight.max(1e-300).ln() + log_normal_pdf(x, c.mean, c.std);
            if lp > best.1 {
                best = (j, lp);
            }
        }
        best.0
    }

    /// Mode-specific normalized value: `(x − µk) / (2·σk)` per Algorithm 3,
    /// clamped to `[-1, 1]` for bounded classifier inputs.
    pub fn normalize_in_component(&self, x: f64, component: usize) -> f64 {
        let c = &self.components[component];
        ((x - c.mean) / (2.0 * c.std)).clamp(-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight blobs at 0 and 10.
    fn bimodal() -> Vec<f64> {
        let mut v = Vec::new();
        for i in 0..200 {
            let jitter = ((i * 37) % 100) as f64 / 100.0 - 0.5;
            v.push(0.0 + jitter * 0.8);
            v.push(10.0 + jitter * 0.8);
        }
        v
    }

    #[test]
    fn recovers_bimodal_means() {
        let gmm = Gmm::fit(&bimodal(), 2);
        let mut means: Vec<f64> = gmm.components().iter().map(|c| c.mean).collect();
        means.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(means[0].abs() < 0.5, "{means:?}");
        assert!((means[1] - 10.0).abs() < 0.5, "{means:?}");
        // Balanced data → roughly equal weights.
        for c in gmm.components() {
            assert!((c.weight - 0.5).abs() < 0.1, "{:?}", c.weight);
        }
    }

    #[test]
    fn predict_component_separates_modes() {
        let gmm = Gmm::fit(&bimodal(), 2);
        let c_low = gmm.predict_component(0.1);
        let c_high = gmm.predict_component(9.9);
        assert_ne!(c_low, c_high);
        assert_eq!(gmm.predict_component(-1.0), c_low);
        assert_eq!(gmm.predict_component(11.0), c_high);
    }

    #[test]
    fn normalize_is_centered_and_clamped() {
        let gmm = Gmm::fit(&bimodal(), 2);
        let c = gmm.predict_component(10.0);
        let at_mean = gmm.normalize_in_component(gmm.components()[c].mean, c);
        assert!(at_mean.abs() < 1e-9);
        assert_eq!(gmm.normalize_in_component(1e9, c), 1.0);
        assert_eq!(gmm.normalize_in_component(-1e9, c), -1.0);
    }

    #[test]
    fn k_clamped_to_sample_size() {
        let gmm = Gmm::fit(&[1.0, 2.0], 10);
        assert_eq!(gmm.k(), 2);
    }

    #[test]
    fn constant_column_is_stable() {
        let gmm = Gmm::fit(&vec![5.0; 100], 3);
        assert!(gmm.components().iter().all(|c| c.std > 0.0));
        let c = gmm.predict_component(5.0);
        // The std floor amplifies float accumulation error; "close to the
        // component center" is the property that matters.
        assert!(gmm.normalize_in_component(5.0, c).abs() < 1e-3);
    }

    #[test]
    fn loglik_not_worse_with_more_components() {
        let data = bimodal();
        let g1 = Gmm::fit(&data, 1);
        let g2 = Gmm::fit(&data, 2);
        assert!(
            g2.avg_log_likelihood() >= g1.avg_log_likelihood() - 1e-9,
            "k=2 ll {} < k=1 ll {}",
            g2.avg_log_likelihood(),
            g1.avg_log_likelihood()
        );
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn empty_input_panics() {
        Gmm::fit(&[], 2);
    }
}
