//! Property-based tests for the preprocessing substrate.

use lte_data::schema::{Attribute, Schema};
use lte_data::table::Table;
use lte_preprocess::{EncoderConfig, EncoderKind, Gmm, JenksBreaks, TableEncoder};
use proptest::prelude::*;

fn arb_values() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e4..1e4f64, 2..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Jenks bounds ascend and every value maps to an interval that
    /// brackets it.
    #[test]
    fn jenks_partitions_the_range(values in arb_values(), k in 1usize..8) {
        let j = JenksBreaks::fit(&values, k);
        let b = j.bounds();
        for w in b.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        for &v in &values {
            let i = j.predict_interval(v);
            prop_assert!(i < j.k());
            prop_assert!(v >= b[i] - 1e-9 && v <= b[i + 1] + 1e-9);
            let norm = j.normalize_in_interval(v, i);
            prop_assert!((0.0..=1.0).contains(&norm));
        }
    }

    /// GMM components have positive std and weights that sum to one;
    /// predictions are valid indices and mode-normalized values bounded.
    #[test]
    fn gmm_is_well_formed(values in arb_values(), k in 1usize..6) {
        let g = Gmm::fit(&values, k);
        let wsum: f64 = g.components().iter().map(|c| c.weight).sum();
        prop_assert!((wsum - 1.0).abs() < 1e-6, "weights sum {wsum}");
        prop_assert!(g.components().iter().all(|c| c.std > 0.0));
        for &v in &values {
            let comp = g.predict_component(v);
            prop_assert!(comp < g.k());
            let norm = g.normalize_in_component(v, comp);
            prop_assert!((-1.0..=1.0).contains(&norm));
        }
    }

    /// Any encoder kind produces vectors of its declared width, for any
    /// in-domain or out-of-domain value.
    #[test]
    fn encoder_width_is_stable(
        col in proptest::collection::vec(-100.0..100.0f64, 16..120),
        probe in -1e3..1e3f64,
        kind_idx in 0usize..4,
    ) {
        let kind = [
            EncoderKind::Auto,
            EncoderKind::AllGmm,
            EncoderKind::AllJkc,
            EncoderKind::MinMax,
        ][kind_idx];
        let schema = Schema::new(vec![Attribute::new("x", -100.0, 100.0)]);
        let table = Table::new(schema, vec![col]).expect("table");
        let cfg = EncoderConfig { kind, ..EncoderConfig::default() };
        let enc = TableEncoder::fit_exact(&table, &cfg);
        let v = enc.encode_row(&[probe]);
        prop_assert_eq!(v.len(), enc.width());
        prop_assert!(v.iter().all(|x| x.is_finite()));
    }
}
