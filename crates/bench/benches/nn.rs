//! Micro-benchmark: the UIS classifier's forward/backward passes (§VI-A) at
//! paper-scale widths (ku=100, Ne=100).

use criterion::{criterion_group, criterion_main, Criterion};
use lte_core::classifier::{ClassifierConfig, Grads, UisClassifier};
use lte_data::rng::seeded;
use std::hint::black_box;

fn bench_nn(c: &mut Criterion) {
    let cfg = ClassifierConfig {
        ku: 100,
        nr: 24,
        ne: 100,
        clf_hidden: 64,
        use_conversion: true,
    };
    let mut rng = seeded(0);
    let clf = UisClassifier::new(cfg, &mut rng);
    let v_r: Vec<f64> = (0..100).map(|i| (i % 3 == 0) as u8 as f64).collect();
    let v_t: Vec<f64> = (0..24).map(|i| 0.05 * i as f64).collect();

    c.bench_function("classifier_forward_ku100_ne100", |b| {
        b.iter(|| clf.forward(black_box(&v_r), black_box(&v_t)).logit);
    });

    c.bench_function("classifier_forward_backward", |b| {
        b.iter(|| {
            let mut grads = Grads::zeros_like(&clf);
            clf.loss_backward(black_box(&v_r), black_box(&(v_t.clone(), true)), &mut grads);
            grads.g_clf[0]
        });
    });
}

/// Pool scoring at serving scale: 4096 tuples × 64 features through one
/// shared classifier. The per-point loop is the pre-batching online path
/// (one `logit` call per tuple, with its forward-cache allocations); the
/// batched pass is what `explore_subspace` now runs. The batch form must be
/// at least ~2× faster here — it agrees with the per-point logits to within
/// rounding (the conversion split regroups one sum; see
/// `UisClassifier::logits_batch`), so the win is overhead removal plus the
/// 8-column matmul kernel, never different predictions.
fn bench_pool_scoring(c: &mut Criterion) {
    let cfg = ClassifierConfig {
        ku: 40,
        nr: 64,
        ne: 64,
        clf_hidden: 64,
        use_conversion: true,
    };
    let mut rng = seeded(1);
    let clf = UisClassifier::new(cfg, &mut rng);
    let v_r: Vec<f64> = (0..40).map(|i| (i % 2) as f64).collect();
    let pool: Vec<Vec<f64>> = (0..4096)
        .map(|i| {
            (0..64)
                .map(|j| ((i * 64 + j) as f64 * 0.013).sin())
                .collect()
        })
        .collect();

    c.bench_function("pool_scoring_per_point_4096x64", |b| {
        b.iter(|| {
            let scores: Vec<f64> = pool
                .iter()
                .map(|row| clf.logit(black_box(&v_r), black_box(row)))
                .collect();
            scores[0]
        });
    });

    c.bench_function("pool_scoring_batched_4096x64", |b| {
        b.iter(|| clf.logits_batch(black_box(&v_r), black_box(&pool))[0]);
    });
}

criterion_group!(benches, bench_nn, bench_pool_scoring);
criterion_main!(benches);
