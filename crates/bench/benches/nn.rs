//! Micro-benchmark: the UIS classifier's forward/backward passes (§VI-A) at
//! paper-scale widths (ku=100, Ne=100).

use criterion::{criterion_group, criterion_main, Criterion};
use lte_core::classifier::{ClassifierConfig, Grads, UisClassifier};
use lte_data::rng::seeded;
use std::hint::black_box;

fn bench_nn(c: &mut Criterion) {
    let cfg = ClassifierConfig {
        ku: 100,
        nr: 24,
        ne: 100,
        clf_hidden: 64,
        use_conversion: true,
    };
    let mut rng = seeded(0);
    let clf = UisClassifier::new(cfg, &mut rng);
    let v_r: Vec<f64> = (0..100).map(|i| (i % 3 == 0) as u8 as f64).collect();
    let v_t: Vec<f64> = (0..24).map(|i| 0.05 * i as f64).collect();

    c.bench_function("classifier_forward_ku100_ne100", |b| {
        b.iter(|| clf.forward(black_box(&v_r), black_box(&v_t)).logit);
    });

    c.bench_function("classifier_forward_backward", |b| {
        b.iter(|| {
            let mut grads = Grads::zeros_like(&clf);
            clf.loss_backward(black_box(&v_r), black_box(&(v_t.clone(), true)), &mut grads);
            grads.g_clf[0]
        });
    });
}

criterion_group!(benches, bench_nn);
criterion_main!(benches);
