//! Micro-benchmark: the UIS classifier's forward/backward passes (§VI-A) at
//! paper-scale widths (ku=100, Ne=100), pool scoring at serving scale
//! across the precision ladder, and the raw matmul kernels under it.
//!
//! For machine-readable numbers (the committed `BENCH_pool_scoring.json`
//! snapshot), use `cargo run --release -p lte-bench --bin pool_scoring`
//! instead — vendored criterion has no JSON output.

use criterion::{criterion_group, criterion_main, Criterion};
use lte_core::classifier::{ClassifierConfig, Grads, UisClassifier};
use lte_core::config::ScoringPrecision;
use lte_data::rng::seeded;
use lte_nn::{matmul_nt_ranked, Activation, Epilogue, Matrix, Matrix32};
use std::hint::black_box;

fn bench_nn(c: &mut Criterion) {
    let cfg = ClassifierConfig {
        ku: 100,
        nr: 24,
        ne: 100,
        clf_hidden: 64,
        use_conversion: true,
    };
    let mut rng = seeded(0);
    let clf = UisClassifier::new(cfg, &mut rng);
    let v_r: Vec<f64> = (0..100).map(|i| (i % 3 == 0) as u8 as f64).collect();
    let v_t: Vec<f64> = (0..24).map(|i| 0.05 * i as f64).collect();

    c.bench_function("classifier_forward_ku100_ne100", |b| {
        b.iter(|| clf.forward(black_box(&v_r), black_box(&v_t)).logit);
    });

    c.bench_function("classifier_forward_backward", |b| {
        b.iter(|| {
            let mut grads = Grads::zeros_like(&clf);
            clf.loss_backward(black_box(&v_r), black_box(&(v_t.clone(), true)), &mut grads);
            grads.g_clf[0]
        });
    });
}

/// Pool scoring at serving scale: 4096 tuples × 64 features through one
/// shared classifier. The per-point loop is the pre-batching online path
/// (one `logit` call per tuple, with its forward-cache allocations); the
/// batched pass is what `explore_subspace` now runs. The batch form must be
/// at least ~2× faster here — it agrees with the per-point logits to within
/// rounding (the conversion split regroups one sum; see
/// `UisClassifier::logits_batch`), so the win is overhead removal plus the
/// 8-column matmul kernel, never different predictions.
fn bench_pool_scoring(c: &mut Criterion) {
    let cfg = ClassifierConfig {
        ku: 40,
        nr: 64,
        ne: 64,
        clf_hidden: 64,
        use_conversion: true,
    };
    let mut rng = seeded(1);
    let clf = UisClassifier::new(cfg, &mut rng);
    let v_r: Vec<f64> = (0..40).map(|i| (i % 2) as f64).collect();
    let pool: Vec<Vec<f64>> = (0..4096)
        .map(|i| {
            (0..64)
                .map(|j| ((i * 64 + j) as f64 * 0.013).sin())
                .collect()
        })
        .collect();

    c.bench_function("pool_scoring_per_point_4096x64", |b| {
        b.iter(|| {
            let scores: Vec<f64> = pool
                .iter()
                .map(|row| clf.logit(black_box(&v_r), black_box(row)))
                .collect();
            scores[0]
        });
    });

    c.bench_function("pool_scoring_batched_4096x64", |b| {
        b.iter(|| clf.logits_batch(black_box(&v_r), black_box(&pool))[0]);
    });

    c.bench_function("pool_scoring_f32_4096x64", |b| {
        b.iter(|| clf.score_pool(black_box(&v_r), black_box(&pool), ScoringPrecision::Fast)[0]);
    });

    c.bench_function("pool_scoring_ranked_i8_4096x64", |b| {
        b.iter(|| clf.score_pool(black_box(&v_r), black_box(&pool), ScoringPrecision::Ranked)[0]);
    });
}

/// The raw matmul kernels under pool scoring, isolated from the classifier:
/// a naive triple loop as the pre-tiling baseline, the tiled f64 kernel
/// (`Matrix::matmul_nt`, bit-identical to per-row matvec by contract), and
/// the 8-lane f32 kernel (`Matrix32::matmul_nt`, tolerance contract). The
/// 512×64·64×64 shape is one classifier layer at pool-block scale.
fn bench_matmul_kernels(c: &mut Criterion) {
    let (n, m, k) = (512, 64, 64);
    let a = Matrix::from_fn(n, k, |i, j| ((i * k + j) as f64 * 0.017).sin());
    let b_mat = Matrix::from_fn(m, k, |i, j| ((i * k + j) as f64 * 0.029).cos());
    let a32 = Matrix32::from_f64(&a);
    let b32 = Matrix32::from_f64(&b_mat);

    c.bench_function("matmul_nt_naive_512x64x64", |bench| {
        bench.iter(|| {
            let (a, b_mat) = (black_box(&a), black_box(&b_mat));
            let mut out = Matrix::zeros(n, m);
            for i in 0..n {
                for j in 0..m {
                    let mut s = 0.0;
                    for kk in 0..k {
                        s += a.row(i)[kk] * b_mat.row(j)[kk];
                    }
                    out.row_mut(i)[j] = s;
                }
            }
            out.row(0)[0]
        });
    });

    c.bench_function("matmul_nt_tiled_f64_512x64x64", |bench| {
        bench.iter(|| black_box(&a).matmul_nt(black_box(&b_mat)).row(0)[0]);
    });

    c.bench_function("matmul_nt_f32_512x64x64", |bench| {
        bench.iter(|| black_box(&a32).matmul_nt(black_box(&b32)).row(0)[0]);
    });

    // One dense layer with bias + ReLU: the old three-pass pipeline vs the
    // fused epilogue (bias add and ReLU in-register before the store).
    let bias: Vec<f32> = (0..m).map(|j| (j as f32 * 0.07).sin()).collect();
    c.bench_function("layer_f32_unfused_512x64x64", |bench| {
        bench.iter(|| {
            let mut out = black_box(&a32).matmul_nt(black_box(&b32));
            out.add_row_bias(black_box(&bias));
            Activation::Relu.apply_slice_f32(out.data_mut());
            out.row(0)[0]
        });
    });

    c.bench_function("layer_f32_fused_512x64x64", |bench| {
        bench.iter(|| {
            black_box(&a32)
                .matmul_nt_ep(black_box(&b32), Epilogue::new(&bias, Activation::Relu))
                .row(0)[0]
        });
    });

    c.bench_function("layer_i8_ranked_512x64x64", |bench| {
        bench.iter(|| {
            matmul_nt_ranked(
                black_box(&a32),
                black_box(&b32),
                Epilogue::new(&bias, Activation::Relu),
            )
            .row(0)[0]
        });
    });
}

criterion_group!(benches, bench_nn, bench_pool_scoring, bench_matmul_kernels);
criterion_main!(benches);
