//! Micro-benchmark: UIS geometry (§V-C) — convex hulls of ψ-nearest center
//! sets and membership tests, the O(ψ log ψ) / O(α log ψ) costs the paper
//! quotes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lte_geom::{convex_hull, ConvexPolygon, Point2, Region, RegionUnion};
use std::hint::black_box;

fn scatter(n: usize) -> Vec<Point2> {
    (0..n)
        .map(|i| {
            Point2::new(
                (i as f64 * 0.7371).sin() * 10.0,
                (i as f64 * 1.3113).cos() * 10.0,
            )
        })
        .collect()
}

fn bench_hull(c: &mut Criterion) {
    let mut group = c.benchmark_group("convex_hull");
    for psi in [5usize, 20, 50] {
        let pts = scatter(psi);
        group.bench_with_input(BenchmarkId::new("psi", psi), &pts, |b, pts| {
            b.iter(|| convex_hull(black_box(pts)));
        });
    }
    group.finish();

    // α=4 union membership (the UIS contains() of meta-task labelling).
    let uis = RegionUnion::new(
        (0..4)
            .map(|i| {
                let pts: Vec<Point2> = scatter(20)
                    .into_iter()
                    .map(|p| Point2::new(p.x + i as f64 * 5.0, p.y))
                    .collect();
                Region::Polygon(ConvexPolygon::from_points(&pts))
            })
            .collect(),
    );
    c.bench_function("uis_contains_alpha4_psi20", |b| {
        b.iter(|| uis.contains(black_box(&[3.0, 1.0])));
    });
}

criterion_group!(benches, bench_hull);
criterion_main!(benches);
