//! Micro-benchmark: baseline costs — SMO SVM training at budget-sized
//! training sets and the DSM polytope classification step. DSM's per-round
//! retraining is what makes its online cost grow with `B` in Fig. 6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lte_baselines::kernel::Kernel;
use lte_baselines::svm::{Svm, SvmConfig};
use lte_data::rng::seeded;
use lte_geom::polytope::DualSpaceModel;
use rand::RngExt;
use std::hint::black_box;

fn labeled_set(n: usize) -> (Vec<Vec<f64>>, Vec<bool>) {
    let mut rng = seeded(5);
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let a: f64 = rng.random::<f64>();
        let b: f64 = rng.random::<f64>();
        x.push(vec![a, b]);
        y.push(a + b > 1.0);
    }
    (x, y)
}

fn bench_svm(c: &mut Criterion) {
    let mut group = c.benchmark_group("smo_train");
    for n in [30usize, 105, 205] {
        let (x, y) = labeled_set(n);
        let cfg = SvmConfig {
            kernel: Kernel::Rbf { gamma: 0.5 },
            ..SvmConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("labels", n), &n, |b, _| {
            b.iter(|| Svm::train(black_box(&x), black_box(&y), &cfg));
        });
    }
    group.finish();

    // DSM dual-space classification of one tuple.
    let mut dual = DualSpaceModel::new();
    let (x, y) = labeled_set(40);
    for (xi, &yi) in x.iter().zip(&y) {
        dual.add_labeled(xi, yi);
    }
    c.bench_function("dsm_three_set_classify", |b| {
        b.iter(|| dual.classify(black_box(&[0.4, 0.7])));
    });
}

criterion_group!(benches, bench_svm);
criterion_main!(benches);
