//! Micro-benchmark: the clustering step of meta-task generation (§V-B).
//!
//! Three k-means rounds (ku/ks/kq) plus the two proximity matrices — the
//! per-subspace offline cost that precedes any meta-task.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lte_cluster::{KMeans, ProximityMatrix};
use lte_data::generator::generate_sdss;
use std::hint::black_box;

fn bench_kmeans(c: &mut Criterion) {
    let table = generate_sdss(20_000, 0);
    let sub = table.project(&[0, 1]).expect("projection");
    let mut rng = lte_data::rng::seeded(1);
    let rows = sub.sample(&mut rng, 1_000).to_rows();

    let mut group = c.benchmark_group("kmeans");
    for k in [25usize, 40, 100] {
        group.bench_with_input(BenchmarkId::new("fit_1k_rows", k), &k, |b, &k| {
            b.iter(|| KMeans::new(k, 7).fit(black_box(&rows)));
        });
    }
    group.finish();

    let cu = KMeans::new(100, 7).fit(&rows).centers;
    let cs = KMeans::new(25, 8).fit(&rows).centers;
    c.bench_function("proximity_pu_100x100", |b| {
        b.iter(|| ProximityMatrix::within(black_box(&cu)));
    });
    c.bench_function("proximity_ps_25x100", |b| {
        b.iter(|| ProximityMatrix::between(black_box(&cs), black_box(&cu)));
    });
    let pu = ProximityMatrix::within(&cu);
    c.bench_function("knn_psi20_of_100", |b| {
        b.iter(|| pu.k_nearest(black_box(3), 20, true));
    });
}

criterion_group!(benches, bench_kmeans);
criterion_main!(benches);
