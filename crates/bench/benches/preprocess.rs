//! Micro-benchmark: tabular preprocessing (§VII-A) — GMM / Jenks fitting on
//! the ≤1% sample and per-tuple encoding.

use criterion::{criterion_group, criterion_main, Criterion};
use lte_data::generator::{generate_car, generate_sdss};
use lte_preprocess::{EncoderConfig, Gmm, JenksBreaks, TableEncoder};
use std::hint::black_box;

fn bench_preprocess(c: &mut Criterion) {
    let sdss = generate_sdss(20_000, 0);
    let values: Vec<f64> = sdss.column_by_name("ra").expect("ra column")[..1000].to_vec();

    c.bench_function("gmm_fit_1k_values_k5", |b| {
        b.iter(|| Gmm::fit(black_box(&values), 5));
    });
    c.bench_function("jenks_fit_1k_values_k5", |b| {
        b.iter(|| JenksBreaks::fit(black_box(&values), 5));
    });

    let gmm = Gmm::fit(&values, 5);
    c.bench_function("gmm_predict_component", |b| {
        b.iter(|| gmm.predict_component(black_box(150.0)));
    });

    let car = generate_car(10_000, 0);
    let mut rng = lte_data::rng::seeded(3);
    let encoder = TableEncoder::fit(&car, &EncoderConfig::default(), &mut rng);
    let row = car.row(17).expect("row");
    c.bench_function("encode_row_car_5attrs", |b| {
        b.iter(|| encoder.encode_row(black_box(&row)));
    });
}

criterion_group!(benches, bench_preprocess);
criterion_main!(benches);
