//! Micro-benchmark: one local adaptation (Eq. 6, 10–12) — the entire
//! *online* cost of LTE's initial exploration, and the inner loop of
//! meta-training. This is the number behind Fig. 6's two-orders-of-magnitude
//! claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lte_core::config::LteConfig;
use lte_core::context::SubspaceContext;
use lte_core::feature::expansion_degree;
use lte_core::meta_learner::MetaLearner;
use lte_core::meta_task::generate_task;
use lte_data::generator::generate_sdss;
use lte_data::rng::seeded;
use lte_data::subspace::Subspace;
use std::hint::black_box;

fn bench_meta_step(c: &mut Criterion) {
    let table = generate_sdss(20_000, 0);
    let cfg = LteConfig::reduced();
    let ctx = SubspaceContext::build(
        &table,
        Subspace::new(vec![0, 1]),
        &cfg.task,
        &cfg.encoder,
        1,
    );
    let l = expansion_degree(cfg.task.ku, cfg.net.expansion_frac);
    let task = generate_task(&ctx, cfg.task.mode, cfg.task.delta, l, &mut seeded(2));
    let learner = MetaLearner::new(
        cfg.task.ku,
        ctx.feature_width(),
        &cfg.net,
        cfg.train.clone(),
        3,
    );

    let mut group = c.benchmark_group("local_adaptation");
    for steps in [1usize, 5, 10] {
        group.bench_with_input(BenchmarkId::new("steps", steps), &steps, |b, &steps| {
            b.iter(|| learner.adapt(black_box(&task.v_r), black_box(&task.support), steps, 0.05));
        });
    }
    group.finish();

    c.bench_function("meta_task_generation", |b| {
        let mut rng = seeded(9);
        b.iter(|| generate_task(&ctx, cfg.task.mode, cfg.task.delta, l, &mut rng));
    });
}

criterion_group!(benches, bench_meta_step);
criterion_main!(benches);
