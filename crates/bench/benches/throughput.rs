//! Micro-benchmark: the `lte-serve` session engine driving a batch of
//! concurrent Meta* sessions over one shared meta-trained pipeline — the
//! per-batch cost behind the sessions/sec numbers of the `throughput`
//! experiment binary.

use criterion::{criterion_group, criterion_main, Criterion};
use lte_core::config::LteConfig;
use lte_core::explore::Variant;
use lte_core::pipeline::LtePipeline;
use lte_core::uis::UisMode;
use lte_data::generator::generate_sdss;
use lte_data::subspace::decompose_sequential;
use lte_serve::SessionEngine;
use std::sync::Arc;

fn bench_engine(c: &mut Criterion) {
    let table = generate_sdss(3000, 0);
    let mut cfg = LteConfig::reduced();
    cfg.train.n_tasks = 60;
    cfg.train.epochs = 1;
    let (pipeline, _) = LtePipeline::offline(&table, decompose_sequential(4, 2), cfg, 5);
    let pipeline = Arc::new(pipeline);
    let pool: Vec<Vec<f64>> = (0..500).map(|i| table.row(i).unwrap()).collect();

    for workers in [1usize, 4] {
        let engine = SessionEngine::with_workers(Arc::clone(&pipeline), workers);
        let requests =
            engine.simulate_requests(8, UisMode::new(1, 10), 0.2, 0.9, Variant::MetaStar, 77);
        c.bench_function(&format!("engine_8_sessions_{workers}w"), |b| {
            b.iter(|| engine.run_sessions(requests.clone(), &pool).len());
        });
    }
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
