//! Meta-feature task routing: a pipeline library vs any fixed pipeline.
//!
//! Not a paper figure — this measures the ROADMAP's routing item. The
//! paper trains one meta-learner per dataset and serves every session with
//! it, but a deployment rarely has one task population: region scale
//! varies (the §VIII-C modes), and different analysts explore different
//! conjunctive decompositions — and a pipeline trained on one
//! decomposition *cannot serve* a session over another (its contexts,
//! k-means centers, and meta-learners are all per-subspace). This bench
//! builds a three-pipeline SDSS library
//!
//! * `wide` — 2D decomposition, meta-trained on large convex tasks,
//! * `small` — 2D decomposition, meta-trained on small convex tasks,
//! * `fine` — 1D (per-attribute) decomposition, convex tasks,
//!
//! and serves a held-out mix drawn from all three task families:
//!
//! 1. **fixed_&ast;** — every session served by one pipeline (the status
//!    quo: whichever pipeline you happened to deploy). Sessions whose
//!    conjunctive decomposition the pipeline cannot serve score F1 = 0 —
//!    that deployment simply cannot answer them.
//! 2. **routed** — [`lte_core::routing::Router`] filters by decomposition
//!    compatibility, then matches each session's meta-features
//!    (selectivity, modality, dispersion, …) against the registry
//!    centroids, explaining every decision.
//!
//! The committed snapshot (`BENCH_routing.json`) reports mean F1 per path
//! plus `routed_minus_best_fixed` — the routed path must not lose to the
//! best fixed pipeline — and `routing_accuracy`, the fraction of sessions
//! sent to their own family's pipeline. `--smoke` shrinks training and the
//! session mix so CI can drive the full path in seconds.

use crate::env::BenchEnv;
use crate::report::{fmt_secs, Report};
use crate::runner::{default_threads, eval_pool};
use lte_core::explore::Variant;
use lte_core::pipeline::LtePipeline;
use lte_core::routing::{PipelineRegistry, Router};
use lte_core::uis::UisMode;
use lte_data::rng::derive_seed;
use lte_data::subspace::decompose_sequential;
use lte_serve::{RoutedSession, SessionEngine, SessionRequest};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Registry entries / truth families, in registry order.
const FAMILIES: [&str; 3] = ["wide", "small", "fine"];
/// Held-out sessions in the full-scale run (a third per family).
const SESSIONS: usize = 24;
/// Held-out sessions under `--smoke`.
const SMOKE_SESSIONS: usize = 6;

/// Per-path scores: mean F1 over the full mix (unservable sessions count
/// 0.0), per-family means, and the fraction of sessions served at all.
struct PathResult {
    mean_f1: f64,
    family_f1: [f64; 3],
    served_fraction: f64,
    wall_seconds: f64,
}

/// Fold `(f1, served)` per session (request order) into per-family means.
fn summarize(scores: &[(f64, bool)], families: &[usize], wall_seconds: f64) -> PathResult {
    let mut sums = [0.0f64; 3];
    let mut counts = [0usize; 3];
    let mut served = 0usize;
    for (&(f1, ok), &fam) in scores.iter().zip(families) {
        sums[fam] += f1;
        counts[fam] += 1;
        served += ok as usize;
    }
    let mut family_f1 = [0.0; 3];
    for (f, (&s, &c)) in family_f1.iter_mut().zip(sums.iter().zip(&counts)) {
        *f = s / c.max(1) as f64;
    }
    PathResult {
        mean_f1: sums.iter().sum::<f64>() / scores.len().max(1) as f64,
        family_f1,
        served_fraction: served as f64 / scores.len().max(1) as f64,
        wall_seconds,
    }
}

/// Build the three-pipeline library, route the held-out mix, and write the
/// snapshot.
pub fn run(env: &BenchEnv, out: Option<&Path>, smoke: bool) {
    let workers = default_threads();
    let sessions = if smoke { SMOKE_SESSIONS } else { SESSIONS };
    let pool_rows = if smoke { 400 } else { env.eval_size };
    let tag_tasks = if smoke { 6 } else { 12 };

    // Per family: training mode, per-subspace selectivity window for
    // held-out truths, and subspace dimensionality.
    let family_params = [
        (UisMode::new(1, env.scale_psi(75)), 0.55, 0.9, 2usize),
        (UisMode::new(1, env.scale_psi(25)), 0.12, 0.4, 2),
        (env.convex_mode(), 0.2, 0.9, 1),
    ];

    let table = env.table("sdss");
    let mut cfg = env.lte_config(30);
    if smoke {
        cfg.train.n_tasks = 60;
        cfg.train.epochs = 1;
    }

    let pipelines: Vec<Arc<LtePipeline>> = family_params
        .iter()
        .enumerate()
        .map(|(i, (mode, _, _, dim))| {
            let mut cfg = cfg.clone();
            cfg.task.mode = *mode;
            let subspaces = decompose_sequential(4, *dim);
            let (p, _) =
                LtePipeline::offline(table, subspaces, cfg, derive_seed(env.seed, 920 + i as u64));
            Arc::new(p)
        })
        .collect();
    let pool = eval_pool(table, pool_rows, derive_seed(env.seed, 922));

    // Held-out mix: session i belongs to family i % 3 — seeds disjoint
    // from training and tagging. Per-subspace guards don't bound the
    // *conjunctive* selectivity (correlated attributes can make the
    // intersection empty), so retry until the UIR keeps enough positives
    // on the pool for F1 and the routing features to be meaningful.
    let uir_min = 0.04;
    let gen_truth = |i: u64, fam: usize| {
        let (mode, lo, hi, _) = family_params[fam];
        let mut truth = None;
        for attempt in 0..50u64 {
            let t = pipelines[fam].generate_truth(
                mode,
                derive_seed(env.seed, 10_000 + i * 64 + attempt),
                lo,
                hi,
            );
            if t.selectivity(&pool) >= uir_min {
                return t;
            }
            truth = Some(t);
        }
        truth.expect("at least one attempt")
    };
    let families: Vec<usize> = (0..sessions).map(|i| i % 3).collect();
    let requests: Vec<SessionRequest> = families
        .iter()
        .enumerate()
        .map(|(i, &fam)| SessionRequest {
            id: i as u64,
            truth: gen_truth(i as u64, fam),
            variant: Variant::Meta,
            seed: derive_seed(env.seed, 960 + i as u64),
        })
        .collect();

    let mut registry = PipelineRegistry::new();
    for (i, name) in FAMILIES.iter().enumerate() {
        registry.register(
            name,
            Arc::clone(&pipelines[i]),
            tag_tasks,
            derive_seed(env.seed, 940 + i as u64),
        );
    }
    let registry = Arc::new(registry);

    // Fixed baselines: one pipeline serves what it can; sessions over a
    // different decomposition are unanswerable and score 0.
    let fixed = |pipeline: &Arc<LtePipeline>| -> PathResult {
        let servable: Vec<SessionRequest> = requests
            .iter()
            .filter(|r| {
                let subs: Vec<_> = r.truth.parts().iter().map(|(s, _)| s.clone()).collect();
                pipeline.subspaces() == subs.as_slice()
            })
            .cloned()
            .collect();
        let engine = SessionEngine::with_workers(Arc::clone(pipeline), workers);
        let t0 = Instant::now();
        let outcomes = engine.run_sessions_fused(servable, &pool);
        let wall = t0.elapsed().as_secs_f64();
        let mut scores = vec![(0.0, false); sessions];
        for o in &outcomes {
            scores[o.id as usize] = (o.outcome.f1(), true);
        }
        summarize(&scores, &families, wall)
    };
    let fixed_results: Vec<PathResult> = pipelines.iter().map(fixed).collect();

    let engine = SessionEngine::with_workers(Arc::clone(&pipelines[0]), workers);
    let t0 = Instant::now();
    let routed: Vec<RoutedSession> = engine.run_sessions_routed(
        requests,
        &pool,
        Arc::clone(&registry),
        Router::new(derive_seed(env.seed, 950)),
    );
    let routed_wall = t0.elapsed().as_secs_f64();
    let routed_scores: Vec<(f64, bool)> = routed
        .iter()
        .map(|r| (r.outcome.outcome.f1(), true))
        .collect();
    let routed_result = summarize(&routed_scores, &families, routed_wall);

    // Routing accuracy: each family belongs on its own registry entry.
    let correct = routed
        .iter()
        .zip(&families)
        .filter(|(r, &fam)| r.decision.chosen == fam)
        .count();
    let routing_accuracy = correct as f64 / sessions as f64;
    let mut chosen_counts = vec![0usize; registry.len()];
    for r in &routed {
        chosen_counts[r.decision.chosen] += 1;
    }
    let mean_distance = routed
        .iter()
        .map(|r| r.decision.candidates[r.decision.chosen].distance)
        .sum::<f64>()
        / sessions as f64;

    let best_fixed = fixed_results
        .iter()
        .map(|r| r.mean_f1)
        .fold(f64::NEG_INFINITY, f64::max);
    let margin = routed_result.mean_f1 - best_fixed;

    let mut report = Report::new(
        format!(
            "Meta-feature routing ({sessions} Meta sessions, wide/small/fine SDSS mix, {workers} worker(s){})",
            if smoke { ", smoke" } else { "" }
        ),
        &["path", "mean F1", "wide F1", "small F1", "fine F1", "served", "wall"],
    );
    let rows: Vec<(String, &PathResult)> = FAMILIES
        .iter()
        .zip(&fixed_results)
        .map(|(name, r)| (format!("fixed_{name}"), r))
        .chain(std::iter::once(("routed".to_string(), &routed_result)))
        .collect();
    for (name, r) in rows {
        report.push_row(vec![
            name,
            format!("{:.3}", r.mean_f1),
            format!("{:.3}", r.family_f1[0]),
            format!("{:.3}", r.family_f1[1]),
            format!("{:.3}", r.family_f1[2]),
            format!("{:.0}%", r.served_fraction * 100.0),
            fmt_secs(r.wall_seconds),
        ]);
    }
    report.print();
    println!("routed vs best fixed: {margin:+.3} F1, routing accuracy {routing_accuracy:.2}");
    println!("example decision:\n{}", routed[0].decision.explanation());
    if let Some(dir) = out {
        let _ = report.write_csv(dir);
    }

    let json = snapshot_json(
        smoke,
        sessions,
        workers,
        pool_rows,
        tag_tasks,
        &family_params,
        &fixed_results,
        &routed_result,
        margin,
        routing_accuracy,
        &chosen_counts,
        mean_distance,
        &routed[0].decision.explanation(),
    );
    let path = out
        .map(|d| d.join("BENCH_routing.json"))
        .unwrap_or_else(|| Path::new("BENCH_routing.json").to_path_buf());
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    match std::fs::write(&path, json) {
        Ok(()) => println!("snapshot written to {}", path.display()),
        Err(e) => eprintln!("could not write snapshot {}: {e}", path.display()),
    }
}

fn path_json(s: &mut String, indent: &str, r: &PathResult) {
    let _ = writeln!(s, "{indent}\"mean_f1\": {:.4},", r.mean_f1);
    let fams: Vec<String> = r.family_f1.iter().map(|f| format!("{f:.4}")).collect();
    let _ = writeln!(s, "{indent}\"family_f1\": [{}],", fams.join(", "));
    let _ = writeln!(s, "{indent}\"served_fraction\": {:.4},", r.served_fraction);
    let _ = writeln!(s, "{indent}\"wall_seconds\": {:.4}", r.wall_seconds);
}

/// Hand-rolled JSON (the workspace deliberately has no serde). Keys are
/// schema-checked by CI against the committed `BENCH_routing.json`.
#[allow(clippy::too_many_arguments)]
fn snapshot_json(
    smoke: bool,
    sessions: usize,
    workers: usize,
    pool_rows: usize,
    tag_tasks: usize,
    family_params: &[(UisMode, f64, f64, usize); 3],
    fixed_results: &[PathResult],
    routed: &PathResult,
    margin: f64,
    routing_accuracy: f64,
    chosen_counts: &[usize],
    mean_distance: f64,
    example_explanation: &str,
) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"bench\": \"routing\",");
    let _ = writeln!(s, "  \"smoke\": {smoke},");
    let _ = writeln!(s, "  \"sessions\": {sessions},");
    let _ = writeln!(s, "  \"workers\": {workers},");
    let _ = writeln!(s, "  \"threads\": {},", default_threads());
    let _ = writeln!(s, "  \"cpu_features\": \"{}\",", lte_nn::cpu_features());
    let _ = writeln!(s, "  \"pool_rows\": {pool_rows},");
    let _ = writeln!(s, "  \"variant\": \"Meta\",");
    let _ = writeln!(s, "  \"registry\": {{");
    let names: Vec<String> = FAMILIES.iter().map(|n| format!("\"{n}\"")).collect();
    let _ = writeln!(s, "    \"entries\": [{}],", names.join(", "));
    let modes: Vec<String> = family_params
        .iter()
        .map(|(m, _, _, _)| format!("\"{m}\""))
        .collect();
    let _ = writeln!(s, "    \"modes\": [{}],", modes.join(", "));
    let dims: Vec<String> = family_params
        .iter()
        .map(|(_, _, _, d)| d.to_string())
        .collect();
    let _ = writeln!(s, "    \"subspace_dims\": [{}],", dims.join(", "));
    let _ = writeln!(s, "    \"tag_tasks_per_subspace\": {tag_tasks}");
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"fixed\": {{");
    for (i, (name, r)) in FAMILIES.iter().zip(fixed_results).enumerate() {
        let _ = writeln!(s, "    \"{name}\": {{");
        path_json(&mut s, "      ", r);
        let _ = writeln!(s, "    }}{}", if i + 1 < FAMILIES.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"routed\": {{");
    path_json(&mut s, "    ", routed);
    let trimmed = s.trim_end().len();
    s.truncate(trimmed);
    s.push_str(",\n");
    let _ = writeln!(s, "    \"routing_accuracy\": {routing_accuracy:.4},");
    let counts: Vec<String> = chosen_counts.iter().map(|c| c.to_string()).collect();
    let _ = writeln!(s, "    \"chosen_counts\": [{}],", counts.join(", "));
    let _ = writeln!(s, "    \"mean_distance\": {mean_distance:.4}");
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"routed_minus_best_fixed\": {margin:.4},");
    let _ = writeln!(
        s,
        "  \"example_explanation\": \"{}\"",
        example_explanation
            .replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n")
    );
    s.push_str("}\n");
    s
}

/// Dispatch a CLI subcommand; unknown names list the options and exit.
pub fn subcommand(env: &BenchEnv, out: Option<&Path>, smoke: bool, sub: &str) {
    match sub {
        "all" => run(env, out, smoke),
        other => {
            eprintln!("unknown subcommand `{other}`; available: all");
            std::process::exit(2);
        }
    }
}
