//! Table II: accuracy w.r.t. UIS modes M1–M7 at B=30 (§VIII-C).
//!
//! Per-subspace UIS prediction on CAR and SDSS over the seven Table III
//! modes (α, ψ combinations). The meta-learners are trained *once* under
//! the generalized mode (α=4, ψ=20) — the paper's point is that learners
//! trained on complex tasks transfer to simpler modes. Paper shape:
//! Meta* > Meta > Basic > SVMr > SVM everywhere; the Meta-over-Basic gain
//! is largest at small α (M5 > M6 > M7); larger ψ (simpler, bigger regions)
//! is easier for everyone.

use crate::env::BenchEnv;
use crate::report::{fmt3, Report};
use crate::runner::TruthPolicy;
use crate::runner::{average_over_truths, build_cell, run_initial_tuple_svm, run_lte, Cell};
use lte_core::explore::Variant;
use lte_data::rng::derive_seed;
use std::path::Path;

/// Run the mode grid for both datasets.
pub fn run(env: &BenchEnv, out: Option<&Path>) {
    let modes = env.paper_modes();
    for dataset in ["car", "sdss"] {
        // One 2D subspace: Table II measures UIS-level accuracy.
        let cell: Cell = build_cell(
            env,
            dataset,
            2,
            30,
            env.general_mode(),
            derive_seed(env.seed, 820),
        );
        let mut report = Report::new(
            format!("Table II: accuracy per UIS mode, B=30 ({dataset})"),
            &["method", "M1", "M2", "M3", "M4", "M5", "M6", "M7"],
        );
        let methods = ["Meta*", "Meta", "Basic", "SVMr", "SVM"];
        for method in methods {
            let mut row = vec![method.to_string()];
            for (mi, (_, mode)) in modes.iter().enumerate() {
                let seed = derive_seed(env.seed, 830 + mi as u64);
                let f1 = average_over_truths(
                    &cell.pipeline,
                    *mode,
                    TruthPolicy::relaxed(),
                    &cell.pool,
                    env.reps,
                    seed,
                    |t, s| match method {
                        "Meta*" => run_lte(&cell.pipeline, t, &cell.pool, Variant::MetaStar, s).f1,
                        "Meta" => run_lte(&cell.pipeline, t, &cell.pool, Variant::Meta, s).f1,
                        "Basic" => run_lte(&cell.pipeline, t, &cell.pool, Variant::Basic, s).f1,
                        "SVMr" => run_initial_tuple_svm(&cell.pipeline, t, &cell.pool, true, s).f1,
                        "SVM" => run_initial_tuple_svm(&cell.pipeline, t, &cell.pool, false, s).f1,
                        other => panic!("unknown method {other}"),
                    },
                );
                row.push(fmt3(f1));
            }
            report.push_row(row);
        }
        report.print();
        if let Some(dir) = out {
            let _ = report.write_csv(dir);
        }
    }
}

/// Dispatch a CLI subcommand; unknown names list the options and exit.
pub fn subcommand(env: &BenchEnv, out: Option<&Path>, sub: &str) {
    match sub {
        "all" => run(env, out),
        other => {
            eprintln!("unknown subcommand `{other}`; available: all");
            std::process::exit(2);
        }
    }
}
