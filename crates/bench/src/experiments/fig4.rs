//! Figure 4: Learn-to-explore vs baselines on SDSS (§VIII-B).
//!
//! * **4(a)** Accuracy w.r.t. dimensionality: F1 at fixed `B = 30` for
//!   |Du| ∈ {2, 4, 6, 8}; paper shape — every method degrades with
//!   dimension, SVM-based methods (DSM, AL-SVM) fall off a cliff (≈ −75%
//!   from 2D→8D) while NN-based methods stay within ≈ −40% and Meta* within
//!   ≈ −18%.
//! * **4(b)** Efficiency w.r.t. dimensionality: the smallest budget reaching
//!   F1 ≥ 0.75 per method and dimension; paper shape — Meta* needs < 150
//!   labels everywhere, DSM/AL-SVM exceed the cap at 6–8D.

use crate::env::BenchEnv;
use crate::report::{fmt3, Report};
use crate::runner::TruthPolicy;
use crate::runner::{
    average_over_truths, build_cell, default_threads, parallel_map, run_alsvm, run_dsm, run_lte,
};
use lte_core::explore::Variant;
use lte_data::rng::derive_seed;
use std::path::Path;

const DATASET: &str = "sdss";
const TARGET_F1: f64 = 0.75;

/// All methods of Fig. 4 in paper order.
const METHODS: [&str; 5] = ["Meta*", "Meta", "Basic", "DSM", "AL-SVM"];

fn run_method(
    env: &BenchEnv,
    cell: &crate::runner::Cell,
    dims: usize,
    budget: usize,
    method: &str,
    seed: u64,
) -> f64 {
    let mode = env.convex_mode();
    average_over_truths(
        &cell.pipeline,
        mode,
        TruthPolicy::default(),
        &cell.pool,
        env.reps,
        seed,
        |truth, s| match method {
            "Meta*" => run_lte(&cell.pipeline, truth, &cell.pool, Variant::MetaStar, s).f1,
            "Meta" => run_lte(&cell.pipeline, truth, &cell.pool, Variant::Meta, s).f1,
            "Basic" => run_lte(&cell.pipeline, truth, &cell.pool, Variant::Basic, s).f1,
            "DSM" => run_dsm(env.table(DATASET), dims, truth, &cell.pool, budget, s).f1,
            "AL-SVM" => run_alsvm(env.table(DATASET), dims, truth, &cell.pool, budget, s).f1,
            other => panic!("unknown method {other}"),
        },
    )
}

/// Fig. 4(a): F1 per dimension at B = 30.
pub fn run_accuracy(env: &BenchEnv, out: Option<&Path>) {
    let budget = 30;
    let dim_grid = [2usize, 4, 6, 8];

    let cells = parallel_map(dim_grid.to_vec(), default_threads(), |dims| {
        (
            dims,
            build_cell(
                env,
                DATASET,
                dims,
                budget,
                env.convex_mode(),
                derive_seed(env.seed, dims as u64),
            ),
        )
    });

    let mut report = Report::new(
        "Fig 4(a): accuracy vs dimensionality (SDSS, B=30)",
        &["|Du|", "Meta*", "Meta", "Basic", "DSM", "AL-SVM"],
    );
    for (dims, cell) in &cells {
        let f1s: Vec<f64> = METHODS
            .iter()
            .map(|m| {
                run_method(
                    env,
                    cell,
                    *dims,
                    budget,
                    m,
                    derive_seed(env.seed, 40 + *dims as u64),
                )
            })
            .collect();
        let mut row = vec![format!("{dims}D")];
        row.extend(f1s.iter().map(|&v| fmt3(v)));
        report.push_row(row);
    }
    report.print();
    if let Some(dir) = out {
        let _ = report.write_csv(dir);
    }
}

/// Fig. 4(b): label budget to reach F1 ≥ 0.75 per dimension.
pub fn run_efficiency(env: &BenchEnv, out: Option<&Path>) {
    let budgets: Vec<usize> = match env.scale {
        crate::env::Scale::Reduced => vec![30, 80, 130, 180],
        crate::env::Scale::Paper => vec![30, 55, 80, 105, 130, 155, 180, 205],
    };
    let cap = *budgets.last().expect("non-empty grid");
    let dim_grid = [4usize, 6, 8];

    let mut report = Report::new(
        "Fig 4(b): label budget to reach F1>=0.75 (SDSS)",
        &["|Du|", "Meta*", "Meta", "Basic", "DSM", "AL-SVM"],
    );
    for dims in dim_grid {
        // LTE variants share a pipeline per budget; baselines only need a
        // truth generator, so reuse the first cell's contexts for those.
        let mut needed: Vec<Option<usize>> = vec![None; METHODS.len()];
        for &budget in &budgets {
            if needed.iter().all(Option::is_some) {
                break;
            }
            let cell = build_cell(
                env,
                DATASET,
                dims,
                budget,
                env.convex_mode(),
                derive_seed(env.seed, 60 + dims as u64),
            );
            for (mi, method) in METHODS.iter().enumerate() {
                if needed[mi].is_some() {
                    continue;
                }
                let f1 = run_method(
                    env,
                    &cell,
                    dims,
                    budget,
                    method,
                    derive_seed(env.seed, 80 + dims as u64 + budget as u64),
                );
                if f1 >= TARGET_F1 {
                    needed[mi] = Some(budget);
                }
            }
        }
        let mut row = vec![format!("{dims}D")];
        row.extend(
            needed
                .iter()
                .map(|n| n.map(|b| b.to_string()).unwrap_or(format!(">{cap}"))),
        );
        report.push_row(row);
    }
    report.print();
    if let Some(dir) = out {
        let _ = report.write_csv(dir);
    }
}

/// Run both panels.
pub fn run(env: &BenchEnv, out: Option<&Path>) {
    run_accuracy(env, out);
    run_efficiency(env, out);
}

/// Dispatch a CLI subcommand; unknown names list the options and exit.
pub fn subcommand(env: &BenchEnv, out: Option<&Path>, sub: &str) {
    match sub {
        "accuracy" => run_accuracy(env, out),
        "efficiency" => run_efficiency(env, out),
        "all" => run(env, out),
        other => {
            eprintln!("unknown subcommand `{other}`; available: accuracy, efficiency, all");
            std::process::exit(2);
        }
    }
}
