//! Pool-scoring latency ladder with a machine-readable snapshot.
//!
//! Measures the serving-scale pool prediction (4096 tuples × 64 features
//! through one UIS classifier) across the four scoring modes this repo
//! has grown, worst to best:
//!
//! 1. **per_point** — one `UisClassifier::logit` call per tuple, the
//!    original online path (per-call forward-cache allocations),
//! 2. **batched_f64** — `logits_batch`: one `forward_batch` pass per block
//!    on the tiled f64 kernel, bit-compatible with per-point logits,
//! 3. **fast_f32** — `score_pool(.., ScoringPrecision::Fast)`: the SIMD
//!    f32 kernels with the fused bias+activation epilogue, rank-stable
//!    within the documented noise floor,
//! 4. **ranked_i8** — `score_pool(.., ScoringPrecision::Ranked)`: i8
//!    dynamic quantization, valid for argmax-order ranking only.
//!
//! The raw kernels under those paths are timed alongside at one
//! classifier-layer shape so kernel-level and end-to-end wins can be told
//! apart: naive/tiled f64, the f32 path unfused (matmul → bias pass →
//! ReLU pass) vs fused (one epilogue kernel), each SIMD microkernel pinned
//! individually (AVX-512F, AVX2+FMA — emitted with an `unsupported` marker
//! when the host lacks the feature), and the quantized i8 kernel.
//!
//! Unlike the criterion benches (vendored criterion has no JSON output),
//! this experiment writes `BENCH_pool_scoring.json` — a committed snapshot
//! future PRs regenerate on comparable hardware to track the perf
//! trajectory. The snapshot records `threads` and `cpu_features` so the
//! numbers carry their hardware context. See `docs/PERFORMANCE.md` for how
//! to produce and compare snapshots. Numbers move with the machine;
//! speedup *ratios* are the stable signal.

use crate::env::BenchEnv;
use crate::report::Report;
use lte_core::classifier::{ClassifierConfig, UisClassifier};
use lte_core::config::ScoringPrecision;
use lte_core::parallel::default_threads;
use lte_data::rng::seeded;
use lte_nn::{cpu_features, matmul_nt_ranked, Activation, Epilogue, KernelKind, Matrix, Matrix32};
use std::fmt::Write as _;
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

/// One snapshot row: median + mean wall time over the run's iteration
/// count, or an explicit `unsupported` marker for a SIMD kernel the host
/// cannot execute (so its absence is recorded, not silent).
struct Timing {
    name: &'static str,
    median_ns: u128,
    mean_ns: u128,
    unsupported: bool,
}

/// Median/mean wall time of `f` over `iters` timed runs (after one warmup).
fn time_ns(iters: usize, mut f: impl FnMut()) -> (u128, u128) {
    f(); // warmup: touch caches, fault pages
    let mut samples: Vec<u128> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<u128>() / samples.len() as u128;
    (median, mean)
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.1} µs", ns as f64 / 1e3)
    }
}

/// Run the ladder and write the snapshot. `smoke` shrinks the pool and the
/// iteration count so CI can exercise the full code path in seconds.
pub fn run(env: &BenchEnv, out: Option<&Path>, smoke: bool) {
    let (pool_rows, iters) = if smoke { (512, 3) } else { (4096, 30) };
    let (nr, ku, ne) = (64, 40, 64);

    let cfg = ClassifierConfig {
        ku,
        nr,
        ne,
        clf_hidden: ne,
        use_conversion: true,
    };
    let clf = UisClassifier::new(cfg, &mut seeded(env.seed));
    let v_r: Vec<f64> = (0..ku).map(|i| (i % 2) as f64).collect();
    let pool: Vec<Vec<f64>> = (0..pool_rows)
        .map(|i| {
            (0..nr)
                .map(|j| ((i * nr + j) as f64 * 0.013).sin())
                .collect()
        })
        .collect();

    let mut timings: Vec<Timing> = Vec::new();
    // `None` marks a SIMD kernel the host cannot run.
    let mut push = |name, timed: Option<(u128, u128)>| {
        let (median_ns, mean_ns) = timed.unwrap_or((0, 0));
        timings.push(Timing {
            name,
            median_ns,
            mean_ns,
            unsupported: timed.is_none(),
        })
    };

    push(
        "per_point",
        Some(time_ns(iters, || {
            let scores: Vec<f64> = pool
                .iter()
                .map(|row| clf.logit(black_box(&v_r), black_box(row)))
                .collect();
            black_box(scores[0]);
        })),
    );
    push(
        "batched_f64",
        Some(time_ns(iters, || {
            black_box(clf.score_pool(black_box(&v_r), black_box(&pool), ScoringPrecision::Exact));
        })),
    );
    push(
        "fast_f32",
        Some(time_ns(iters, || {
            black_box(clf.score_pool(black_box(&v_r), black_box(&pool), ScoringPrecision::Fast));
        })),
    );
    push(
        "ranked_i8",
        Some(time_ns(iters, || {
            black_box(clf.score_pool(black_box(&v_r), black_box(&pool), ScoringPrecision::Ranked));
        })),
    );

    // Raw kernels at one classifier-layer shape (pool-block × Ne · Ne × Ne).
    let (kn, km, kk) = (if smoke { 128 } else { 512 }, ne, ne);
    let a = Matrix::from_fn(kn, kk, |i, j| ((i * kk + j) as f64 * 0.017).sin());
    let b = Matrix::from_fn(km, kk, |i, j| ((i * kk + j) as f64 * 0.029).cos());
    let (a32, b32) = (Matrix32::from_f64(&a), Matrix32::from_f64(&b));
    let bias: Vec<f32> = (0..km).map(|j| (j as f32 * 0.07).sin()).collect();
    push(
        "kernel_naive_f64",
        Some(time_ns(iters, || {
            let mut out = Matrix::zeros(kn, km);
            for i in 0..kn {
                for j in 0..km {
                    let mut s = 0.0;
                    for l in 0..kk {
                        s += a.row(i)[l] * b.row(j)[l];
                    }
                    out.row_mut(i)[j] = s;
                }
            }
            black_box(out.row(0)[0]);
        })),
    );
    push(
        "kernel_tiled_f64",
        Some(time_ns(iters, || {
            black_box(black_box(&a).matmul_nt(black_box(&b)).row(0)[0]);
        })),
    );
    // Bare matmul on the auto-detected kernel — the row committed
    // snapshots have tracked since the f32 path landed.
    push(
        "kernel_f32",
        Some(time_ns(iters, || {
            black_box(black_box(&a32).matmul_nt(black_box(&b32)).row(0)[0]);
        })),
    );
    // One dense layer, old pipeline: matmul, then a full bias pass, then a
    // full ReLU pass over the output.
    push(
        "kernel_f32_unfused",
        Some(time_ns(iters, || {
            let mut out = black_box(&a32).matmul_nt(black_box(&b32));
            out.add_row_bias(black_box(&bias));
            Activation::Relu.apply_slice_f32(out.data_mut());
            black_box(out.row(0)[0]);
        })),
    );
    // Same layer, fused epilogue: bias + ReLU in-register before store.
    push(
        "kernel_f32_fused",
        Some(time_ns(iters, || {
            let out = black_box(&a32)
                .matmul_nt_ep(black_box(&b32), Epilogue::new(&bias, Activation::Relu));
            black_box(out.row(0)[0]);
        })),
    );
    // Each SIMD microkernel pinned explicitly (same fused layer). Hosts
    // without the feature record the row as unsupported rather than
    // silently dropping it.
    for (name, kind) in [
        ("kernel_f32_avx512", KernelKind::Avx512f),
        ("kernel_f32_avx2", KernelKind::Avx2Fma),
    ] {
        if kind.supported() {
            push(
                name,
                Some(time_ns(iters, || {
                    let out = black_box(&a32).matmul_nt_ep_with(
                        black_box(&b32),
                        Epilogue::new(&bias, Activation::Relu),
                        kind,
                    );
                    black_box(out.row(0)[0]);
                })),
            );
        } else {
            push(name, None);
        }
    }
    // Quantized layer: per-row absmax quantization of both operands plus
    // the i8 multiply — the per-call cost the Ranked path actually pays.
    push(
        "kernel_i8",
        Some(time_ns(iters, || {
            let out = matmul_nt_ranked(
                black_box(&a32),
                black_box(&b32),
                Epilogue::new(&bias, Activation::Relu),
            );
            black_box(out.row(0)[0]);
        })),
    );

    let per_point_ns = timings[0].median_ns;
    let mut report = Report::new(
        format!("Pool scoring ladder ({pool_rows}×{nr} pool, median of {iters})"),
        &["mode", "median", "mean", "vs per_point"],
    );
    for t in &timings {
        if t.unsupported {
            report.push_row(vec![
                t.name.to_string(),
                "n/a".to_string(),
                "n/a".to_string(),
                "unsupported".to_string(),
            ]);
            continue;
        }
        let speedup = if t.name.starts_with("kernel") {
            "-".to_string()
        } else {
            format!("{:.1}×", per_point_ns as f64 / t.median_ns as f64)
        };
        report.push_row(vec![
            t.name.to_string(),
            fmt_ns(t.median_ns),
            fmt_ns(t.mean_ns),
            speedup,
        ]);
    }
    report.print();
    if let Some(dir) = out {
        let _ = report.write_csv(dir);
    }

    let json = snapshot_json(pool_rows, nr, iters, &timings);
    let path = out
        .map(|d| d.join("BENCH_pool_scoring.json"))
        .unwrap_or_else(|| Path::new("BENCH_pool_scoring.json").to_path_buf());
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    match std::fs::write(&path, json) {
        Ok(()) => println!("snapshot written to {}", path.display()),
        Err(e) => eprintln!("could not write snapshot {}: {e}", path.display()),
    }
}

/// Hand-rolled JSON (the workspace deliberately has no serde): a flat
/// object keyed by mode with median/mean nanoseconds plus run metadata.
/// Kernels the host cannot run appear as `{ "unsupported": true }`.
fn snapshot_json(pool_rows: usize, nr: usize, iters: usize, timings: &[Timing]) -> String {
    let per_point_ns = timings[0].median_ns;
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"bench\": \"pool_scoring\",");
    let _ = writeln!(s, "  \"pool_rows\": {pool_rows},");
    let _ = writeln!(s, "  \"features\": {nr},");
    let _ = writeln!(s, "  \"iters\": {iters},");
    let _ = writeln!(s, "  \"threads\": {},", default_threads());
    let _ = writeln!(s, "  \"cpu_features\": \"{}\",", cpu_features());
    let _ = writeln!(s, "  \"kernel\": \"{}\",", KernelKind::detect());
    let _ = writeln!(s, "  \"modes\": {{");
    for (i, t) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        if t.unsupported {
            let _ = writeln!(
                s,
                "    \"{}\": {{ \"unsupported\": true }}{}",
                t.name, comma
            );
            continue;
        }
        // Speedup only makes sense within the scoring modes; the kernel
        // rows time a different (single-matmul) workload.
        let speedup = if t.name.starts_with("kernel") {
            String::new()
        } else {
            format!(
                ", \"speedup_vs_per_point\": {:.2}",
                per_point_ns as f64 / t.median_ns as f64
            )
        };
        let _ = writeln!(
            s,
            "    \"{}\": {{ \"median_ns\": {}, \"mean_ns\": {}{} }}{}",
            t.name, t.median_ns, t.mean_ns, speedup, comma
        );
    }
    let _ = writeln!(s, "  }}");
    s.push_str("}\n");
    s
}

/// Dispatch a CLI subcommand; unknown names list the options and exit.
pub fn subcommand(env: &BenchEnv, out: Option<&Path>, smoke: bool, sub: &str) {
    match sub {
        "all" => run(env, out, smoke),
        other => {
            eprintln!("unknown subcommand `{other}`; available: all");
            std::process::exit(2);
        }
    }
}
