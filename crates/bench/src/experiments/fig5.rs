//! Figure 5: accuracy w.r.t. budget `B` per dimensionality (SDSS, §VIII-B).
//!
//! Four panels (2/4/6/8D), F1 for DSM, Meta*, Meta, Basic as `B` grows.
//! Paper shape: everyone improves with budget; DSM wins at 2D (its polytope
//! optimization exactly fits convex+conjunctive truths) but collapses with
//! dimensionality — at 8D, B=30 the paper reports Meta* ≈ 2.67× DSM.

use crate::env::BenchEnv;
use crate::report::{fmt3, Report};
use crate::runner::TruthPolicy;
use crate::runner::{
    average_over_truths, build_cell, default_threads, parallel_map, run_dsm, run_lte, Cell,
};
use lte_core::explore::Variant;
use lte_data::rng::derive_seed;
use std::path::Path;

/// Budget grid (paper plots 30..105).
pub fn budget_grid(env: &BenchEnv) -> Vec<usize> {
    match env.scale {
        crate::env::Scale::Reduced => vec![30, 55, 80, 105],
        crate::env::Scale::Paper => vec![30, 40, 50, 60, 70, 80, 90, 100],
    }
}

/// Run the four panels.
pub fn run(env: &BenchEnv, out: Option<&Path>) {
    let budgets = budget_grid(env);
    let dims_grid = [2usize, 4, 6, 8];

    // Build all (dims, budget) pipelines in parallel.
    let combos: Vec<(usize, usize)> = dims_grid
        .iter()
        .flat_map(|&d| budgets.iter().map(move |&b| (d, b)))
        .collect();
    let cells: Vec<((usize, usize), Cell)> =
        parallel_map(combos, default_threads(), |(dims, budget)| {
            let cell = build_cell(
                env,
                "sdss",
                dims,
                budget,
                env.convex_mode(),
                derive_seed(env.seed, (dims * 1000 + budget) as u64),
            );
            ((dims, budget), cell)
        });

    for dims in dims_grid {
        let mut report = Report::new(
            format!("Fig 5: accuracy vs budget (SDSS, {dims}D)"),
            &["B", "DSM", "Meta*", "Meta", "Basic"],
        );
        for &budget in &budgets {
            let cell = &cells
                .iter()
                .find(|((d, b), _)| *d == dims && *b == budget)
                .expect("cell built")
                .1;
            let seed = derive_seed(env.seed, (dims * 77 + budget) as u64);
            let mode = env.convex_mode();
            let f1 = |variant: Option<Variant>| {
                average_over_truths(
                    &cell.pipeline,
                    mode,
                    TruthPolicy::default(),
                    &cell.pool,
                    env.reps,
                    seed,
                    |t, s| match variant {
                        Some(v) => run_lte(&cell.pipeline, t, &cell.pool, v, s).f1,
                        None => run_dsm(env.table("sdss"), dims, t, &cell.pool, budget, s).f1,
                    },
                )
            };
            report.push_row(vec![
                budget.to_string(),
                fmt3(f1(None)),
                fmt3(f1(Some(Variant::MetaStar))),
                fmt3(f1(Some(Variant::Meta))),
                fmt3(f1(Some(Variant::Basic))),
            ]);
        }
        report.print();
        if let Some(dir) = out {
            let _ = report.write_csv(dir);
        }
    }
}

/// Dispatch a CLI subcommand; unknown names list the options and exit.
pub fn subcommand(env: &BenchEnv, out: Option<&Path>, sub: &str) {
    match sub {
        "all" => run(env, out),
        other => {
            eprintln!("unknown subcommand `{other}`; available: all");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Scale;

    #[test]
    fn budget_grids_match_scales() {
        let reduced = BenchEnv::new(Scale::Reduced, 1);
        assert_eq!(budget_grid(&reduced), vec![30, 55, 80, 105]);
        let paper = BenchEnv::new(Scale::Paper, 1);
        let grid = budget_grid(&paper);
        assert_eq!(grid.first(), Some(&30));
        assert_eq!(grid.last(), Some(&100));
        assert_eq!(grid.len(), 8);
    }
}
