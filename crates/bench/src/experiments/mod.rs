//! One module per §VIII table/figure, plus the [`throughput`] serving
//! sweep. Each exposes `run(&BenchEnv, Option<&Path>)` printing the
//! reproduction table (and writing CSV when an output directory is given);
//! the thin binaries in `src/bin/` and the `run_all` binary call these.

pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod table2;
pub mod throughput;
