//! One module per §VIII table/figure, plus the [`throughput`] serving
//! sweep, the [`scenarios`] mixed-traffic workload simulation, and the
//! [`pool_scoring`] latency ladder. Each exposes
//! `run(&BenchEnv, Option<&Path>)` (plus a `smoke` flag for [`scenarios`]
//! and [`pool_scoring`]) printing the reproduction table (and writing CSV
//! when an output directory is given); the thin binaries in `src/bin/` and
//! the `run_all` binary call these.

pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod pool_scoring;
pub mod routing;
pub mod scenarios;
pub mod table2;
pub mod throughput;
