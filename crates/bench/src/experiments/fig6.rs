//! Figure 6: online exploration runtime w.r.t. budget (SDSS, §VIII-B).
//!
//! Wall-clock seconds of the *online* phase for DSM and Meta* at 4D and 8D
//! as the budget grows. Paper shape: DSM's cost grows roughly linearly in
//! `B` (it retrains an SVM and re-evaluates polytopes every labelling
//! round — ≈ 50–60 s at B=105 on their testbed) and grows with
//! dimensionality, while Meta*'s cost is two orders of magnitude lower and
//! nearly flat (0.127 s → 0.130 s from 4D to 8D): adaptation is a handful
//! of local gradient steps regardless of budget spent.

use crate::env::BenchEnv;
use crate::report::{fmt_secs, Report};
use crate::runner::TruthPolicy;
use crate::runner::{average_over_truths_counted, build_cell, run_dsm, run_lte};
use lte_core::explore::Variant;
use lte_data::rng::derive_seed;
use std::path::Path;

/// Run the runtime comparison.
pub fn run(env: &BenchEnv, out: Option<&Path>) {
    let budgets = crate::experiments::fig5::budget_grid(env);
    let dims_grid = [4usize, 8];

    let mut report = Report::new(
        "Fig 6: online exploration runtime vs budget (SDSS)",
        &["B", "DSM(4D)", "DSM(8D)", "Meta*(4D)", "Meta*(8D)"],
    );
    // Column-major collection: per dims, per budget, (dsm_secs, meta_secs).
    let mut columns: Vec<Vec<(f64, f64)>> = Vec::new();
    for &dims in &dims_grid {
        let mut col = Vec::new();
        for &budget in &budgets {
            let cell = build_cell(
                env,
                "sdss",
                dims,
                budget,
                env.convex_mode(),
                derive_seed(env.seed, (600 + dims * 10 + budget) as u64),
            );
            let mode = env.convex_mode();
            let seed = derive_seed(env.seed, (660 + dims + budget) as u64);
            // Average seconds over truths (F1 ignored here).
            let mut dsm_secs = 0.0;
            let mut meta_secs = 0.0;
            let (_, runs) = average_over_truths_counted(
                &cell.pipeline,
                mode,
                TruthPolicy::default(),
                &cell.pool,
                env.reps,
                seed,
                |t, s| {
                    dsm_secs +=
                        run_dsm(env.table("sdss"), dims, t, &cell.pool, budget, s).online_seconds;
                    meta_secs +=
                        run_lte(&cell.pipeline, t, &cell.pool, Variant::MetaStar, s).online_seconds;
                    0.0
                },
            );
            // Divide by the repetitions actually run: a degenerate cell can
            // accept fewer than `env.reps` truths, and dividing by `reps`
            // would under-report per-truth online seconds.
            let runs = runs.max(1) as f64;
            col.push((dsm_secs / runs, meta_secs / runs));
        }
        columns.push(col);
    }
    for (bi, &budget) in budgets.iter().enumerate() {
        report.push_row(vec![
            budget.to_string(),
            fmt_secs(columns[0][bi].0),
            fmt_secs(columns[1][bi].0),
            fmt_secs(columns[0][bi].1),
            fmt_secs(columns[1][bi].1),
        ]);
    }
    report.print();
    if let Some(dir) = out {
        let _ = report.write_csv(dir);
    }
}

/// Dispatch a CLI subcommand; unknown names list the options and exit.
pub fn subcommand(env: &BenchEnv, out: Option<&Path>, sub: &str) {
    match sub {
        "all" => run(env, out),
        other => {
            eprintln!("unknown subcommand `{other}`; available: all");
            std::process::exit(2);
        }
    }
}
