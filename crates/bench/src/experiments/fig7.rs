//! Figure 7: performance on generalized UIRs (§VIII-C).
//!
//! Ground truths here are concave / disconnected UISs (the Table III
//! modes); DSM degenerates to a plain SVM in this regime, so the
//! competitors are SVM (raw features) and SVMr (preprocessed features),
//! both trained on exactly LTE's initial tuples.
//!
//! * **7(a,b)** F1 vs budget on CAR and SDSS: paper shape —
//!   Meta* > Meta > Basic > SVMr > SVM, all but SVM improving with budget
//!   (SVM struggles to pick kernels/hyper-parameters for complex UISs).
//! * **7(c)** F1 vs UIR dimensionality at B=30 on SDSS: NN methods stay
//!   relatively stable.

use crate::env::BenchEnv;
use crate::report::{fmt3, Report};
use crate::runner::TruthPolicy;
use crate::runner::{
    average_over_truths, build_cell, default_threads, parallel_map, run_initial_tuple_svm, run_lte,
    Cell,
};
use lte_core::explore::Variant;
use lte_data::rng::derive_seed;
use std::path::Path;

fn methods_f1(env: &BenchEnv, cell: &Cell, seed: u64) -> Vec<f64> {
    let mode = env.general_mode();
    let f1 = |which: &str| {
        average_over_truths(
            &cell.pipeline,
            mode,
            TruthPolicy::default(),
            &cell.pool,
            env.reps,
            seed,
            |t, s| match which {
                "Meta*" => run_lte(&cell.pipeline, t, &cell.pool, Variant::MetaStar, s).f1,
                "Meta" => run_lte(&cell.pipeline, t, &cell.pool, Variant::Meta, s).f1,
                "Basic" => run_lte(&cell.pipeline, t, &cell.pool, Variant::Basic, s).f1,
                "SVMr" => run_initial_tuple_svm(&cell.pipeline, t, &cell.pool, true, s).f1,
                "SVM" => run_initial_tuple_svm(&cell.pipeline, t, &cell.pool, false, s).f1,
                other => panic!("unknown method {other}"),
            },
        )
    };
    ["Meta*", "Meta", "Basic", "SVMr", "SVM"]
        .iter()
        .map(|m| f1(m))
        .collect()
}

/// Fig. 7(a,b): F1 vs budget on generalized UIRs (4D = two 2D subspaces).
pub fn run_budget(env: &BenchEnv, out: Option<&Path>) {
    let budgets = [30usize, 55, 80, 105];
    for dataset in ["car", "sdss"] {
        let cells: Vec<(usize, Cell)> =
            parallel_map(budgets.to_vec(), default_threads(), |budget| {
                (
                    budget,
                    build_cell(
                        env,
                        dataset,
                        4,
                        budget,
                        env.general_mode(),
                        derive_seed(env.seed, (700 + budget) as u64),
                    ),
                )
            });
        let mut report = Report::new(
            format!("Fig 7: accuracy vs budget, generalized UIRs ({dataset})"),
            &["B", "Meta*", "Meta", "Basic", "SVMr", "SVM"],
        );
        for (budget, cell) in &cells {
            let f1s = methods_f1(env, cell, derive_seed(env.seed, (720 + budget) as u64));
            let mut row = vec![budget.to_string()];
            row.extend(f1s.iter().map(|&v| fmt3(v)));
            report.push_row(row);
        }
        report.print();
        if let Some(dir) = out {
            let _ = report.write_csv(dir);
        }
    }
}

/// Fig. 7(c): F1 vs UIR dimensionality at B=30 on SDSS.
pub fn run_dimension(env: &BenchEnv, out: Option<&Path>) {
    let dims_grid = [4usize, 6, 8];
    let cells: Vec<(usize, Cell)> = parallel_map(dims_grid.to_vec(), default_threads(), |dims| {
        (
            dims,
            build_cell(
                env,
                "sdss",
                dims,
                30,
                env.general_mode(),
                derive_seed(env.seed, (760 + dims) as u64),
            ),
        )
    });
    let mut report = Report::new(
        "Fig 7(c): accuracy vs UIR dimensionality, generalized UIRs (SDSS, B=30)",
        &["|Du|", "Meta*", "Meta", "Basic", "SVM"],
    );
    for (dims, cell) in &cells {
        let f1s = methods_f1(env, cell, derive_seed(env.seed, (780 + dims) as u64));
        report.push_row(vec![
            format!("{dims}D"),
            fmt3(f1s[0]),
            fmt3(f1s[1]),
            fmt3(f1s[2]),
            fmt3(f1s[4]),
        ]);
    }
    report.print();
    if let Some(dir) = out {
        let _ = report.write_csv(dir);
    }
}

/// Run all panels.
pub fn run(env: &BenchEnv, out: Option<&Path>) {
    run_budget(env, out);
    run_dimension(env, out);
}

/// Dispatch a CLI subcommand; unknown names list the options and exit.
pub fn subcommand(env: &BenchEnv, out: Option<&Path>, sub: &str) {
    match sub {
        "budget" => run_budget(env, out),
        "dimension" => run_dimension(env, out),
        "all" => run(env, out),
        other => {
            eprintln!("unknown subcommand `{other}`; available: budget, dimension, all");
            std::process::exit(2);
        }
    }
}
