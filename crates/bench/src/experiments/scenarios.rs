//! Mixed-traffic scenario runs: per-cohort F1, convergence, and round
//! latency of the simulated-analyst workload layer, with JSON output.
//!
//! Not a paper figure — this drives the ROADMAP's workload-simulation
//! item: a standard 80/15/5 mix of steady analysts, drifters, and churners
//! (see `lte_core::scenario`) served through `lte-serve`, reported per
//! cohort. The `--smoke` flag runs a minutes-to-seconds reduced scale so
//! CI can keep the runner honest.

use crate::env::BenchEnv;
use crate::report::{fmt_secs, Report};
use crate::runner::{build_pipeline, eval_pool};
use lte_data::rng::derive_seed;
use lte_serve::{ScenarioConfig, SessionEngine};
use std::path::Path;
use std::sync::Arc;

/// Sessions in the full-scale mix.
const SESSIONS: usize = 48;
/// Sessions in the `--smoke` mix (still ≥ one per cohort).
const SMOKE_SESSIONS: usize = 9;

/// Run the standard mixed-traffic scenario and report per cohort.
pub fn run(env: &BenchEnv, out: Option<&Path>, smoke: bool) {
    let table = env.table("sdss");
    let mut cfg = env.lte_config(30);
    cfg.task.mode = env.convex_mode();
    if smoke {
        cfg.train.n_tasks = 60;
        cfg.train.epochs = 1;
    }
    let (pipeline, _) = build_pipeline(table, 4, cfg, derive_seed(env.seed, 900));
    let pool = eval_pool(
        table,
        if smoke { 400 } else { env.eval_size },
        derive_seed(env.seed, 901),
    );

    let sessions = if smoke { SMOKE_SESSIONS } else { SESSIONS };
    let scenario = ScenarioConfig::standard_mix(sessions, derive_seed(env.seed, 920));

    // Cohort apportionment is deterministic in the config alone
    // (largest-remainder, ties broken by cohort index) — print it up front
    // so a changed layout is visible before any session runs.
    let slots = scenario.assignments();
    let layout: Vec<String> = scenario
        .cohorts
        .iter()
        .enumerate()
        .map(|(c, cohort)| {
            let n = slots.iter().filter(|&&s| s == c).count();
            format!("{} {}", n, cohort.name)
        })
        .collect();
    println!("cohort layout: {}", layout.join(", "));

    let engine = SessionEngine::new(Arc::new(pipeline));
    let (_, report) = engine.run_scenario(&scenario, &pool);

    let mut table_out = Report::new(
        format!(
            "Mixed-traffic scenario `{}` ({sessions} sessions, SDSS 4D{})",
            scenario.name,
            if smoke { ", smoke" } else { "" }
        ),
        &[
            "cohort",
            "sessions",
            "F1",
            "rounds",
            "abandoned",
            "drifted",
            "converged",
            "think",
            "round p50",
            "round p95",
        ],
    );
    for c in &report.cohorts {
        table_out.push_row(vec![
            c.name.clone(),
            c.sessions.to_string(),
            format!("{:.3}", c.mean_f1),
            format!("{:.1}", c.mean_rounds),
            c.abandoned.to_string(),
            c.drifted.to_string(),
            c.converged.to_string(),
            fmt_secs(c.mean_think_seconds),
            fmt_secs(c.round_p50_seconds),
            fmt_secs(c.round_p95_seconds),
        ]);
    }
    table_out.print();
    println!("{}", report.summary());
    println!("{}", report.to_json());

    if let Some(dir) = out {
        let _ = table_out.write_csv(dir);
        if std::fs::create_dir_all(dir).is_ok() {
            let path = dir.join("scenarios.json");
            match std::fs::write(&path, report.to_json()) {
                Ok(()) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("could not write {}: {e}", path.display()),
            }
        }
    }
}

/// Dispatch a CLI subcommand; unknown names list the options and exit.
pub fn subcommand(env: &BenchEnv, out: Option<&Path>, smoke: bool, sub: &str) {
    match sub {
        "all" => run(env, out, smoke),
        other => {
            eprintln!("unknown subcommand `{other}`; available: all");
            std::process::exit(2);
        }
    }
}
