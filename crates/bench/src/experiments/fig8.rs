//! Figure 8: analysis experiments (§VIII-D).
//!
//! * **8(a)** GMM vs JKC vs combined (Auto) tabular representations, plus
//!   raw min-max as the "can hardly be trained" control — F1 of the Basic
//!   classifier on three 2D subspaces.
//! * **8(b)** pre-training cost vs |TM|: task-generation and training time
//!   both linear in the number of meta-tasks, near-independent of dataset
//!   size.
//! * **8(c)** accuracy vs |TM|: improves then flattens — the "sweet point"
//!   where early stopping is safe.
//! * **8(d)** accuracy vs the *online* learning rate: Meta (good
//!   initialization) is stable across rates, Basic needs a large rate and
//!   still trails.

use crate::env::BenchEnv;
use crate::report::{fmt3, Report};
use crate::runner::TruthPolicy;
use crate::runner::{average_over_truths, eval_pool, run_lte};
use lte_core::config::OnlineConfig;
use lte_core::context::SubspaceContext;
use lte_core::explore::{explore_subspace, Variant};
use lte_core::metrics::ConfusionMatrix;
use lte_core::oracle::{RegionOracle, SubspaceOracle};
use lte_core::uis::generate_uis;
use lte_data::rng::{derive_seed, seeded};
use lte_data::subspace::Subspace;
use lte_preprocess::EncoderKind;
use std::path::Path;

/// Fig. 8(a): encoder ablation on three 2D subspaces per dataset with the
/// Basic classifier (representation quality isolated from meta-learning).
/// SDSS subspaces are peak-dominated (GMM's home turf); CAR subspaces are
/// smooth/trend-dominated (JKC's home turf) — together they show why the
/// combined Auto representation is the right default.
pub fn run_encoding(env: &BenchEnv, out: Option<&Path>) {
    for dataset in ["sdss", "car"] {
        run_encoding_on(env, out, dataset);
    }
}

fn run_encoding_on(env: &BenchEnv, out: Option<&Path>, dataset: &str) {
    let table = env.table(dataset);
    let subspace_attrs: [[usize; 2]; 3] = if dataset == "sdss" {
        [[0, 1], [2, 3], [4, 5]]
    } else {
        // price/mileage, year/power, mileage/engine.
        [[0, 1], [2, 3], [1, 4]]
    };
    let kinds = [
        ("GMM", EncoderKind::AllGmm),
        ("JKC", EncoderKind::AllJkc),
        ("Basic(GMM+JKC)", EncoderKind::Auto),
        ("MinMax", EncoderKind::MinMax),
    ];

    let mut report = Report::new(
        format!("Fig 8(a): tabular representation ablation ({dataset}, Basic classifier, B=30)"),
        &["representation", "D1", "D2", "D3"],
    );
    for (kind_name, kind) in kinds {
        let mut row = vec![kind_name.to_string()];
        for (si, attrs) in subspace_attrs.iter().enumerate() {
            let mut cfg = env.lte_config(30);
            cfg.encoder.kind = kind;
            let ctx = SubspaceContext::build(
                table,
                Subspace::new(attrs.to_vec()),
                &cfg.task,
                &cfg.encoder,
                derive_seed(env.seed, 840 + si as u64),
            );
            let eval: Vec<Vec<f64>> = ctx.sample_rows().to_vec();
            let mut total = 0.0;
            let mut n = 0;
            for rep in 0..env.reps as u64 {
                let uis = generate_uis(
                    ctx.cu(),
                    ctx.pu(),
                    env.general_mode(),
                    &mut seeded(derive_seed(env.seed, 850 + 10 * si as u64 + rep)),
                );
                let sel = uis.selectivity(&eval);
                if !(0.1..=0.9).contains(&sel) {
                    continue;
                }
                let oracle = RegionOracle::new(uis);
                let outcome = explore_subspace(
                    &ctx,
                    None,
                    &oracle,
                    &eval,
                    &cfg,
                    Variant::Basic,
                    derive_seed(env.seed, 860 + rep),
                );
                let cm = ConfusionMatrix::from_pairs(
                    outcome
                        .predictions
                        .iter()
                        .zip(&eval)
                        .map(|(&p, row)| (p, oracle.label(row))),
                );
                total += cm.f1();
                n += 1;
            }
            row.push(fmt3(total / n.max(1) as f64));
        }
        report.push_row(row);
    }
    report.print();
    if let Some(dir) = out {
        let _ = report.write_csv(dir);
    }
}

/// Task-count grid (paper: {1 000, 5 000, 10 000, 15 000}).
fn task_grid(env: &BenchEnv) -> Vec<usize> {
    match env.scale {
        crate::env::Scale::Reduced => vec![250, 500, 1000, 1500],
        crate::env::Scale::Paper => vec![1000, 5000, 10_000, 15_000],
    }
}

/// Fig. 8(b,c): pre-training cost and accuracy vs |TM| on both datasets.
pub fn run_pretrain(env: &BenchEnv, out: Option<&Path>) {
    let grid = task_grid(env);
    let mut cost = Report::new(
        "Fig 8(b): pre-training cost vs number of meta-tasks",
        &["|TM|", "gen(CAR)", "train(CAR)", "gen(SDSS)", "train(SDSS)"],
    );
    let mut acc = Report::new(
        "Fig 8(c): accuracy vs number of meta-tasks",
        &["|TM|", "CAR", "SDSS"],
    );
    for &n_tasks in &grid {
        let mut cost_row = vec![n_tasks.to_string()];
        let mut acc_row = vec![n_tasks.to_string()];
        for dataset in ["car", "sdss"] {
            let mut cfg = env.lte_config(30);
            cfg.task.mode = env.general_mode();
            cfg.train.n_tasks = n_tasks;
            let table = env.table(dataset);
            let (pipeline, offline) = crate::runner::build_pipeline(
                table,
                4,
                cfg,
                derive_seed(env.seed, 870 + n_tasks as u64),
            );
            cost_row.push(format!("{:.1}s", offline.task_gen_seconds));
            cost_row.push(format!("{:.1}s", offline.train_seconds));

            let pool = eval_pool(table, env.eval_size, derive_seed(env.seed, 880));
            let f1 = average_over_truths(
                &pipeline,
                env.general_mode(),
                TruthPolicy::default(),
                &pool,
                env.reps,
                derive_seed(env.seed, 890 + n_tasks as u64),
                |t, s| run_lte(&pipeline, t, &pool, Variant::Meta, s).f1,
            );
            acc_row.push(fmt3(f1));
        }
        cost.push_row(cost_row);
        acc.push_row(acc_row);
    }
    cost.print();
    acc.print();
    if let Some(dir) = out {
        let _ = cost.write_csv(dir);
        let _ = acc.write_csv(dir);
    }
}

/// Fig. 8(d): accuracy vs online learning rate, Meta vs Basic.
pub fn run_lr(env: &BenchEnv, out: Option<&Path>) {
    let rates = [1e-4, 1e-3, 1e-2, 5e-2];
    let mut report = Report::new(
        "Fig 8(d): accuracy vs online learning rate (B=30)",
        &["lr", "Meta(CAR)", "Basic(CAR)", "Meta(SDSS)", "Basic(SDSS)"],
    );
    // One single-subspace pipeline per dataset, trained once. This panel
    // isolates the *meta-knowledge* effect, which needs pre-training volume
    // (the paper used |TM| = 5000): train its pipelines at 2× the reduced
    // default so the learned initialization carries real zero-shot skill.
    let cells: Vec<(&str, crate::runner::Cell)> = ["car", "sdss"]
        .iter()
        .map(|ds| {
            let table = env.table(ds);
            let mut cfg = env.lte_config(30);
            cfg.task.mode = env.general_mode();
            if matches!(env.scale, crate::env::Scale::Reduced) {
                cfg.train.n_tasks = cfg.train.n_tasks.max(2000);
                cfg.train.epochs = cfg.train.epochs.max(8);
            }
            let (pipeline, offline) =
                crate::runner::build_pipeline(table, 2, cfg, derive_seed(env.seed, 900));
            let pool = crate::runner::eval_pool(table, env.eval_size, derive_seed(env.seed, 901));
            (
                *ds,
                crate::runner::Cell {
                    pipeline,
                    offline,
                    pool,
                },
            )
        })
        .collect();
    for &lr in &rates {
        let mut row = vec![format!("{lr}")];
        for (_, cell) in &cells {
            let mut pipeline = cell.pipeline.clone();
            pipeline.set_online(OnlineConfig {
                lr,
                ..OnlineConfig::default()
            });
            for variant in [Variant::Meta, Variant::Basic] {
                let f1 = average_over_truths(
                    &pipeline,
                    env.general_mode(),
                    TruthPolicy::default(),
                    &cell.pool,
                    env.reps,
                    derive_seed(env.seed, 910),
                    |t, s| run_lte(&pipeline, t, &cell.pool, variant, s).f1,
                );
                row.push(fmt3(f1));
            }
        }
        report.push_row(row);
    }
    report.print();
    if let Some(dir) = out {
        let _ = report.write_csv(dir);
    }
}

/// Run all analysis panels.
pub fn run(env: &BenchEnv, out: Option<&Path>) {
    run_encoding(env, out);
    run_pretrain(env, out);
    run_lr(env, out);
}

/// Dispatch a CLI subcommand; unknown names list the options and exit.
pub fn subcommand(env: &BenchEnv, out: Option<&Path>, sub: &str) {
    match sub {
        "encoding" => run_encoding(env, out),
        "pretrain" => run_pretrain(env, out),
        "lr" => run_lr(env, out),
        "all" => run(env, out),
        other => {
            eprintln!("unknown subcommand `{other}`; available: encoding, pretrain, lr, all");
            std::process::exit(2);
        }
    }
}
