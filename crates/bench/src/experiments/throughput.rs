//! Serving throughput: per-session engine vs the cross-session batched
//! [`ScoringService`], with a machine-readable snapshot.
//!
//! Not a paper figure — this measures the ROADMAP's serving north star at
//! serving scale (64 concurrent Meta* sessions). Three paths over the same
//! request set:
//!
//! 1. **per_session** — [`SessionEngine::run_with_stats`]: each session
//!    runs end to end on a worker, re-encoding the retrieval pool and
//!    issuing its own narrow scoring calls,
//! 2. **fused** — the [`ScoringService`] tick loop: one shard, every
//!    session admitted immediately, each tick's pool-scoring fused into a
//!    single wide call and the encoded pool cached per pipeline epoch,
//! 3. **fused_sharded** — one service serving SDSS *and* CAR concurrently;
//!    each tick's fused call spans both shards.
//!
//! Outcomes are asserted bitwise-equal between (1) and (2) before any
//! number is reported — the fused path must beat the per-session path on
//! sessions/s *without touching a single output bit*.
//!
//! Like `pool_scoring`, this writes a committed snapshot
//! (`BENCH_throughput.json`) that future PRs regenerate on comparable
//! hardware; absolute numbers move with the machine, the
//! `fused.speedup_vs_per_session` ratio is the stable signal. `--smoke`
//! shrinks training and session count so CI can drive the full path in
//! seconds.

use crate::env::BenchEnv;
use crate::report::{fmt_secs, Report};
use crate::runner::{build_pipeline, default_threads, eval_pool};
use lte_core::explore::Variant;
use lte_core::pipeline::LtePipeline;
use lte_data::rng::derive_seed;
use lte_serve::{ScoringService, SessionEngine, SessionOutcome, SessionRequest, ThroughputStats};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Concurrent sessions in the full-scale run (the ISSUE gate: ≥ 64).
const SESSIONS: usize = 64;
/// Concurrent sessions under `--smoke`.
const SMOKE_SESSIONS: usize = 8;

/// One fused run: throughput stats plus the service's batch-shape counters.
struct FusedRun {
    stats: ThroughputStats,
    outcomes: Vec<SessionOutcome>,
    ticks: u64,
    fused_calls: u64,
    max_fused_requests: usize,
    max_fused_rows: usize,
    mean_fused_rows: f64,
}

/// Drive `requests` through a single-shard [`ScoringService`].
fn run_fused(
    pipeline: &Arc<LtePipeline>,
    requests: &[SessionRequest],
    pool: &[Vec<f64>],
    workers: usize,
) -> FusedRun {
    let t0 = Instant::now();
    let mut service = ScoringService::new(workers);
    service.add_shard("sdss", Arc::clone(pipeline), pool.to_vec());
    for req in requests {
        service.submit("sdss", req.clone());
    }
    service.run_until_idle();
    let mut done = service.take_completed();
    done.sort_by_key(|o| o.submit_seq);
    let outcomes: Vec<SessionOutcome> = done
        .into_iter()
        .map(|o| SessionOutcome {
            id: o.id,
            wall_seconds: o.outcome.online_seconds,
            outcome: o.outcome,
        })
        .collect();
    let wall = t0.elapsed().as_secs_f64();
    let stats = ThroughputStats::collect(&outcomes, wall, workers);
    let s = service.stats();
    FusedRun {
        stats,
        outcomes,
        ticks: s.ticks,
        fused_calls: s.fused_calls,
        max_fused_requests: s.max_fused_requests,
        max_fused_rows: s.max_fused_rows,
        mean_fused_rows: s.mean_fused_rows(),
    }
}

/// Run the per-session vs fused comparison and write the snapshot.
pub fn run(env: &BenchEnv, out: Option<&Path>, smoke: bool) {
    let workers = default_threads();
    let sessions = if smoke { SMOKE_SESSIONS } else { SESSIONS };
    let pool_rows = if smoke { 400 } else { env.eval_size };
    let mode = env.convex_mode();

    let sdss_table = env.table("sdss");
    let mut cfg = env.lte_config(30);
    cfg.task.mode = mode;
    if smoke {
        cfg.train.n_tasks = 60;
        cfg.train.epochs = 1;
    }
    let (pipeline, _) = build_pipeline(sdss_table, 4, cfg.clone(), derive_seed(env.seed, 900));
    let pipeline = Arc::new(pipeline);
    let pool = eval_pool(sdss_table, pool_rows, derive_seed(env.seed, 901));

    let engine = SessionEngine::with_workers(Arc::clone(&pipeline), workers);
    let requests = engine.simulate_requests(
        sessions,
        mode,
        0.2,
        0.9,
        Variant::MetaStar,
        derive_seed(env.seed, 910),
    );

    let (solo_outcomes, solo) = engine.run_with_stats(requests.clone(), &pool);
    let fused = run_fused(&pipeline, &requests, &pool, workers);

    // The fused path is only a throughput optimization: before reporting a
    // single number, hold it to the bitwise contract the integration tests
    // pin (here at bench scale, on the bench's exact request set).
    assert_eq!(solo_outcomes.len(), fused.outcomes.len());
    for (a, b) in solo_outcomes.iter().zip(&fused.outcomes) {
        assert_eq!(a.id, b.id, "fused path reordered sessions");
        assert_eq!(
            a.outcome.confusion, b.outcome.confusion,
            "fused path changed session {} outputs",
            a.id
        );
    }

    // Sharded: the same service class serving SDSS and CAR concurrently.
    let car_table = env.table("car");
    let (car_pipeline, _) = build_pipeline(car_table, 4, cfg, derive_seed(env.seed, 902));
    let car_pipeline = Arc::new(car_pipeline);
    let car_pool = eval_pool(car_table, pool_rows, derive_seed(env.seed, 903));
    let car_engine = SessionEngine::with_workers(Arc::clone(&car_pipeline), workers);
    let car_requests = car_engine.simulate_requests(
        sessions / 2,
        mode,
        0.2,
        0.9,
        Variant::MetaStar,
        derive_seed(env.seed, 911),
    );

    let t0 = Instant::now();
    let mut service = ScoringService::new(workers);
    service.add_shard("sdss", Arc::clone(&pipeline), pool.clone());
    service.add_shard("car", Arc::clone(&car_pipeline), car_pool);
    for (s, c) in requests.iter().take(sessions / 2).zip(&car_requests) {
        service.submit("sdss", s.clone());
        service.submit("car", c.clone());
    }
    service.run_until_idle();
    let sharded_sessions = service.stats().sessions_completed;
    let sharded_wall = t0.elapsed().as_secs_f64();
    let sharded = service.stats().clone();

    let speedup = fused.stats.sessions_per_sec / solo.sessions_per_sec;
    let mut report = Report::new(
        format!(
            "Serving throughput ({sessions} Meta* sessions, SDSS 4D, {workers} worker(s){})",
            if smoke { ", smoke" } else { "" }
        ),
        &[
            "path",
            "sessions",
            "sessions/s",
            "round p50",
            "round p95",
            "wall",
            "max fused width",
        ],
    );
    report.push_row(vec![
        "per_session".to_string(),
        sessions.to_string(),
        format!("{:.2}", solo.sessions_per_sec),
        fmt_secs(solo.round_p50_seconds),
        fmt_secs(solo.round_p95_seconds),
        fmt_secs(solo.wall_seconds),
        "-".to_string(),
    ]);
    report.push_row(vec![
        "fused".to_string(),
        sessions.to_string(),
        format!("{:.2}", fused.stats.sessions_per_sec),
        fmt_secs(fused.stats.round_p50_seconds),
        fmt_secs(fused.stats.round_p95_seconds),
        fmt_secs(fused.stats.wall_seconds),
        format!(
            "{} reqs / {} rows",
            fused.max_fused_requests, fused.max_fused_rows
        ),
    ]);
    report.push_row(vec![
        "fused_sharded".to_string(),
        sharded_sessions.to_string(),
        format!("{:.2}", sharded_sessions as f64 / sharded_wall),
        "-".to_string(),
        "-".to_string(),
        fmt_secs(sharded_wall),
        format!(
            "{} reqs / {} rows",
            sharded.max_fused_requests, sharded.max_fused_rows
        ),
    ]);
    report.print();
    println!("fused speedup vs per_session: {speedup:.2}×");
    if let Some(dir) = out {
        let _ = report.write_csv(dir);
    }

    let json = snapshot_json(
        smoke,
        sessions,
        workers,
        pool_rows,
        &mode.to_string(),
        &solo,
        &fused,
        speedup,
        sharded_sessions,
        sharded_wall,
        &sharded,
    );
    let path = out
        .map(|d| d.join("BENCH_throughput.json"))
        .unwrap_or_else(|| Path::new("BENCH_throughput.json").to_path_buf());
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    match std::fs::write(&path, json) {
        Ok(()) => println!("snapshot written to {}", path.display()),
        Err(e) => eprintln!("could not write snapshot {}: {e}", path.display()),
    }
}

/// Hand-rolled JSON (the workspace deliberately has no serde). Keys are
/// schema-checked by CI against the committed `BENCH_throughput.json`.
#[allow(clippy::too_many_arguments)]
fn snapshot_json(
    smoke: bool,
    sessions: usize,
    workers: usize,
    pool_rows: usize,
    mode: &str,
    solo: &ThroughputStats,
    fused: &FusedRun,
    speedup: f64,
    sharded_sessions: u64,
    sharded_wall: f64,
    sharded: &lte_serve::ServiceStats,
) -> String {
    let ms = |secs: f64| secs * 1e3;
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"bench\": \"throughput\",");
    let _ = writeln!(s, "  \"smoke\": {smoke},");
    let _ = writeln!(s, "  \"sessions\": {sessions},");
    let _ = writeln!(s, "  \"workers\": {workers},");
    let _ = writeln!(s, "  \"threads\": {},", default_threads());
    let _ = writeln!(s, "  \"cpu_features\": \"{}\",", lte_nn::cpu_features());
    let _ = writeln!(s, "  \"pool_rows\": {pool_rows},");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(s, "  \"variant\": \"Meta*\",");
    let _ = writeln!(s, "  \"per_session\": {{");
    let _ = writeln!(s, "    \"sessions_per_sec\": {:.4},", solo.sessions_per_sec);
    let _ = writeln!(s, "    \"wall_seconds\": {:.4},", solo.wall_seconds);
    let _ = writeln!(
        s,
        "    \"round_p50_ms\": {:.4},",
        ms(solo.round_p50_seconds)
    );
    let _ = writeln!(s, "    \"round_p95_ms\": {:.4}", ms(solo.round_p95_seconds));
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"fused\": {{");
    let _ = writeln!(
        s,
        "    \"sessions_per_sec\": {:.4},",
        fused.stats.sessions_per_sec
    );
    let _ = writeln!(s, "    \"wall_seconds\": {:.4},", fused.stats.wall_seconds);
    let _ = writeln!(
        s,
        "    \"round_p50_ms\": {:.4},",
        ms(fused.stats.round_p50_seconds)
    );
    let _ = writeln!(
        s,
        "    \"round_p95_ms\": {:.4},",
        ms(fused.stats.round_p95_seconds)
    );
    let _ = writeln!(s, "    \"ticks\": {},", fused.ticks);
    let _ = writeln!(s, "    \"fused_calls\": {},", fused.fused_calls);
    let _ = writeln!(
        s,
        "    \"max_fused_requests\": {},",
        fused.max_fused_requests
    );
    let _ = writeln!(s, "    \"max_fused_rows\": {},", fused.max_fused_rows);
    let _ = writeln!(s, "    \"mean_fused_rows\": {:.1},", fused.mean_fused_rows);
    let _ = writeln!(s, "    \"speedup_vs_per_session\": {speedup:.3}");
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"sharded\": {{");
    let _ = writeln!(s, "    \"shards\": 2,");
    let _ = writeln!(s, "    \"sessions\": {sharded_sessions},");
    let _ = writeln!(
        s,
        "    \"sessions_per_sec\": {:.4},",
        sharded_sessions as f64 / sharded_wall
    );
    let _ = writeln!(s, "    \"wall_seconds\": {sharded_wall:.4},");
    let _ = writeln!(
        s,
        "    \"max_fused_requests\": {},",
        sharded.max_fused_requests
    );
    let _ = writeln!(s, "    \"max_fused_rows\": {}", sharded.max_fused_rows);
    let _ = writeln!(s, "  }}");
    s.push_str("}\n");
    s
}

/// Dispatch a CLI subcommand; unknown names list the options and exit.
pub fn subcommand(env: &BenchEnv, out: Option<&Path>, smoke: bool, sub: &str) {
    match sub {
        "all" => run(env, out, smoke),
        other => {
            eprintln!("unknown subcommand `{other}`; available: all");
            std::process::exit(2);
        }
    }
}
