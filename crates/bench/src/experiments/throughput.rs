//! Serving throughput: concurrent sessions/sec and round-latency
//! percentiles of the `lte-serve` session engine.
//!
//! Not a paper figure — this measures the ROADMAP's serving north star.
//! One meta-trained pipeline is shared (read-only) by every session, the
//! engine fans sessions across a worker pool, and each row reports one
//! worker count: completed sessions per second plus p50/p95 latency of a
//! *round* (one subspace's labelling round: fast adaptation + batched pool
//! prediction). The paper's claim that online cost is a handful of gradient
//! steps (§VIII-B, Fig. 6) is what makes the rounds cheap enough for the
//! engine to sustain many analysts at once.

use crate::env::BenchEnv;
use crate::report::{fmt_secs, Report};
use crate::runner::{build_cell, default_threads};
use lte_core::explore::Variant;
use lte_data::rng::derive_seed;
use lte_serve::SessionEngine;
use std::path::Path;
use std::sync::Arc;

/// Sessions per batch at each worker count.
const SESSIONS: usize = 16;

/// Run the serving-throughput sweep.
pub fn run(env: &BenchEnv, out: Option<&Path>) {
    let cell = build_cell(
        env,
        "sdss",
        4,
        30,
        env.convex_mode(),
        derive_seed(env.seed, 900),
    );
    let pipeline = Arc::new(cell.pipeline);

    let mut workers: Vec<usize> = vec![1, 2, 4, default_threads()];
    workers.retain(|&w| w <= default_threads());
    workers.dedup();

    let mut report = Report::new(
        format!("Serving throughput ({SESSIONS} Meta* sessions, SDSS 4D)"),
        &["workers", "sessions/s", "round p50", "round p95", "wall"],
    );
    for &w in &workers {
        let engine = SessionEngine::with_workers(Arc::clone(&pipeline), w);
        let requests = engine.simulate_requests(
            SESSIONS,
            env.convex_mode(),
            0.2,
            0.9,
            Variant::MetaStar,
            derive_seed(env.seed, 910),
        );
        let (_, stats) = engine.run_with_stats(requests, &cell.pool);
        report.push_row(vec![
            w.to_string(),
            format!("{:.1}", stats.sessions_per_sec),
            fmt_secs(stats.round_p50_seconds),
            fmt_secs(stats.round_p95_seconds),
            fmt_secs(stats.wall_seconds),
        ]);
    }
    report.print();
    if let Some(dir) = out {
        let _ = report.write_csv(dir);
    }
}

/// Dispatch a CLI subcommand; unknown names list the options and exit.
pub fn subcommand(env: &BenchEnv, out: Option<&Path>, sub: &str) {
    match sub {
        "all" => run(env, out),
        other => {
            eprintln!("unknown subcommand `{other}`; available: all");
            std::process::exit(2);
        }
    }
}
