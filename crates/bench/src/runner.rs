//! Shared experiment protocol.
//!
//! Every §VIII experiment follows one shape: build an LTE pipeline offline
//! over the first `n_attrs` attributes (2D subspace decomposition, like the
//! paper), generate ground-truth test UIRs with the relevant (α, ψ) mode,
//! let each method explore with budget `B`, and score F1 over a shared
//! evaluation pool. Baselines (DSM, AL-SVM) explore the same pool with
//! min-max-normalized features; SVM/SVMr (§VIII-C) are trained on exactly
//! LTE's initial tuples for the fair "same inputs" comparison.

use crate::env::BenchEnv;
use lte_baselines::kernel::Kernel;
use lte_baselines::svm::{Svm, SvmConfig};
use lte_baselines::{AlSvmExplorer, DsmExplorer};
use lte_core::config::LteConfig;
use lte_core::explore::Variant;
use lte_core::metrics::ConfusionMatrix;
use lte_core::oracle::ConjunctiveOracle;
use lte_core::pipeline::{LtePipeline, OfflineReport};
use lte_core::uis::UisMode;
use lte_data::rng::{derive_seed, seeded};
use lte_data::subspace::decompose_sequential;
use lte_data::table::Table;
use rand::RngExt;
use std::time::Instant;

/// Selectivity windows for accepted test regions: degenerate regions
/// (almost nothing / almost everything interesting) make F1 uninformative.
/// Experiments with intrinsically tiny test regions (Table II's M4 mode)
/// use [`TruthPolicy::relaxed`].
#[derive(Debug, Clone, Copy)]
pub struct TruthPolicy {
    /// Per-subspace minimum selectivity.
    pub sub_min: f64,
    /// Per-subspace maximum selectivity.
    pub sub_max: f64,
    /// UIR-level (conjunctive) minimum selectivity over the pool.
    pub uir_min: f64,
}

impl Default for TruthPolicy {
    fn default() -> Self {
        Self {
            sub_min: 0.2,
            sub_max: 0.9,
            uir_min: 0.01,
        }
    }
}

impl TruthPolicy {
    /// Relaxed bounds for small-region modes (e.g. α=4, ψ=5).
    pub fn relaxed() -> Self {
        Self {
            sub_min: 0.02,
            sub_max: 0.9,
            uir_min: 0.005,
        }
    }
}

/// F1 and wall-clock of one exploration run.
#[derive(Debug, Clone, Copy)]
pub struct MethodResult {
    /// F1 over the evaluation pool.
    pub f1: f64,
    /// Online seconds (labelling excluded, adaptation + retrieval included).
    pub online_seconds: f64,
}

/// Build the offline LTE pipeline over the first `n_attrs` attributes.
pub fn build_pipeline(
    table: &Table,
    n_attrs: usize,
    cfg: LteConfig,
    seed: u64,
) -> (LtePipeline, OfflineReport) {
    let subspaces = decompose_sequential(n_attrs, 2);
    LtePipeline::offline(table, subspaces, cfg, seed)
}

/// Sample the shared evaluation pool (full table rows).
pub fn eval_pool(table: &Table, n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = seeded(seed);
    table.sample(&mut rng, n).to_rows()
}

/// Ground-truth test UIR for a pipeline (selectivity-guarded per subspace).
pub fn gen_truth(
    pipeline: &LtePipeline,
    mode: UisMode,
    policy: TruthPolicy,
    seed: u64,
) -> ConjunctiveOracle {
    pipeline.generate_truth(mode, seed, policy.sub_min, policy.sub_max)
}

/// Run one LTE variant.
pub fn run_lte(
    pipeline: &LtePipeline,
    truth: &ConjunctiveOracle,
    pool: &[Vec<f64>],
    variant: Variant,
    seed: u64,
) -> MethodResult {
    let outcome = pipeline.explore(truth, pool, variant, seed);
    MethodResult {
        f1: outcome.f1(),
        online_seconds: outcome.online_seconds,
    }
}

/// Min-max normalize pool rows over the first `n_attrs` attributes using
/// the table's schema domains (baseline feature space; monotone per
/// coordinate, so DSM's convexity geometry is unaffected).
pub fn normalized_pool(table: &Table, n_attrs: usize, pool: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let schema = table.schema();
    pool.iter()
        .map(|row| {
            (0..n_attrs)
                .map(|c| schema.attr(c).expect("attr in range").normalize(row[c]))
                .collect()
        })
        .collect()
}

/// Run the DSM baseline over the shared pool.
pub fn run_dsm(
    table: &Table,
    n_attrs: usize,
    truth: &ConjunctiveOracle,
    pool: &[Vec<f64>],
    budget: usize,
    seed: u64,
) -> MethodResult {
    let norm = normalized_pool(table, n_attrs, pool);
    let mut explorer = DsmExplorer::new(decompose_sequential(n_attrs, 2));
    explorer.seed = seed;
    explorer.svm = SvmConfig {
        kernel: Kernel::rbf_for_dim(n_attrs),
        seed,
        ..SvmConfig::default()
    };
    let oracle = |i: usize, _row: &[f64]| truth.label(&pool[i]);
    let t0 = Instant::now();
    let model = explorer.explore(&norm, &oracle, budget);
    let confusion = ConfusionMatrix::from_pairs(
        norm.iter()
            .zip(pool)
            .map(|(nrow, raw)| (model.predict(nrow), truth.label(raw))),
    );
    MethodResult {
        f1: confusion.f1(),
        online_seconds: t0.elapsed().as_secs_f64(),
    }
}

/// Run the AL-SVM baseline over the shared pool.
pub fn run_alsvm(
    table: &Table,
    n_attrs: usize,
    truth: &ConjunctiveOracle,
    pool: &[Vec<f64>],
    budget: usize,
    seed: u64,
) -> MethodResult {
    let norm = normalized_pool(table, n_attrs, pool);
    let explorer = AlSvmExplorer {
        svm: SvmConfig {
            kernel: Kernel::rbf_for_dim(n_attrs),
            seed,
            ..SvmConfig::default()
        },
        seed,
        ..AlSvmExplorer::default()
    };
    let oracle = |i: usize, _row: &[f64]| truth.label(&pool[i]);
    let t0 = Instant::now();
    let model = explorer.explore(&norm, &oracle, budget);
    let confusion = ConfusionMatrix::from_pairs(
        norm.iter()
            .zip(pool)
            .map(|(nrow, raw)| (model.predict(nrow), truth.label(raw))),
    );
    MethodResult {
        f1: confusion.f1(),
        online_seconds: t0.elapsed().as_secs_f64(),
    }
}

/// §VIII-C's SVM / SVMr: a plain RBF SVM trained on *exactly LTE's initial
/// tuples* (the `Cs` centers plus Δ random sample tuples of each subspace),
/// with raw min-max features (`SVM`) or the Algorithm-3 multi-modal encoding
/// (`SVMr`). Prediction is conjunctive across subspaces like every other
/// method.
pub fn run_initial_tuple_svm(
    pipeline: &LtePipeline,
    truth: &ConjunctiveOracle,
    pool: &[Vec<f64>],
    encoded: bool,
    seed: u64,
) -> MethodResult {
    let cfg = pipeline.config();
    let t0 = Instant::now();
    let mut uir_pred = vec![true; pool.len()];
    for (i, ctx) in pipeline.contexts().iter().enumerate() {
        let (sub, region) = &truth.parts()[i];
        let mut rng = seeded(derive_seed(seed, 31 + i as u64));

        // Per-dimension min/max over the clustering sample for raw features.
        let dim = ctx.dim();
        let (mut lo, mut hi) = (vec![f64::INFINITY; dim], vec![f64::NEG_INFINITY; dim]);
        for row in ctx.sample_rows() {
            for d in 0..dim {
                lo[d] = lo[d].min(row[d]);
                hi[d] = hi[d].max(row[d]);
            }
        }
        let featurize = |row: &[f64]| -> Vec<f64> {
            if encoded {
                ctx.encode(row)
            } else {
                (0..dim)
                    .map(|d| {
                        if hi[d] - lo[d] <= f64::EPSILON {
                            0.0
                        } else {
                            ((row[d] - lo[d]) / (hi[d] - lo[d])).clamp(0.0, 1.0)
                        }
                    })
                    .collect()
            }
        };

        // The same initial tuples LTE labels: Cs centers + Δ random rows.
        let mut x: Vec<Vec<f64>> = ctx.cs().iter().map(|r| featurize(r)).collect();
        let mut y: Vec<bool> = ctx.cs().iter().map(|r| region.contains(r)).collect();
        let sample = ctx.sample_rows();
        for _ in 0..cfg.task.delta {
            let row = &sample[rng.random_range(0..sample.len())];
            x.push(featurize(row));
            y.push(region.contains(row));
        }

        let feat_dim = x[0].len();
        // Class-weight the soft margin like LTE weights its online loss:
        // with a small interest region, 30 labels hold very few positives.
        let pos = y.iter().filter(|&&b| b).count();
        let neg = y.len() - pos;
        let pos_weight = if pos == 0 || neg == 0 {
            1.0
        } else {
            (neg as f64 / pos as f64).clamp(1.0, 10.0)
        };
        let svm_cfg = SvmConfig {
            kernel: Kernel::rbf_for_dim(feat_dim),
            pos_weight,
            seed,
            ..SvmConfig::default()
        };
        let model = Svm::train(&x, &y, &svm_cfg);
        let fallback = y.iter().filter(|&&b| b).count() * 2 > y.len();
        for (pred, row) in uir_pred.iter_mut().zip(pool) {
            let proj = sub.project_row(row);
            let sub_pred = match &model {
                Some(m) => m.predict(&featurize(&proj)),
                None => fallback,
            };
            *pred &= sub_pred;
        }
    }
    let confusion = ConfusionMatrix::from_pairs(
        uir_pred
            .iter()
            .zip(pool)
            .map(|(&pred, row)| (pred, truth.label(row))),
    );
    MethodResult {
        f1: confusion.f1(),
        online_seconds: t0.elapsed().as_secs_f64(),
    }
}

/// Average a per-repetition measurement over `reps` test UIRs; repetitions
/// whose truth is degenerate on the pool (selectivity outside the window at
/// UIR level) are skipped but counted against a bounded retry allowance.
pub fn average_over_truths(
    pipeline: &LtePipeline,
    mode: UisMode,
    policy: TruthPolicy,
    pool: &[Vec<f64>],
    reps: usize,
    seed: u64,
    f: impl FnMut(&ConjunctiveOracle, u64) -> f64,
) -> f64 {
    average_over_truths_counted(pipeline, mode, policy, pool, reps, seed, f).0
}

/// [`average_over_truths`] that also reports how many repetitions actually
/// ran. With a degenerate selectivity floor the retry allowance can exhaust
/// before `reps` truths are accepted; callers that divide *accumulated*
/// per-repetition measurements (e.g. fig6's timing columns) must divide by
/// this count, not by `reps`, or they under-report per-truth values.
pub fn average_over_truths_counted(
    pipeline: &LtePipeline,
    mode: UisMode,
    policy: TruthPolicy,
    pool: &[Vec<f64>],
    reps: usize,
    seed: u64,
    mut f: impl FnMut(&ConjunctiveOracle, u64) -> f64,
) -> (f64, usize) {
    let mut total = 0.0;
    let mut n = 0usize;
    let mut attempt = 0u64;
    while n < reps && attempt < (reps as u64) * 10 {
        let truth = gen_truth(pipeline, mode, policy, derive_seed(seed, attempt));
        attempt += 1;
        // UIR-level selectivity floor: need enough positives for stable F1.
        if truth.selectivity(pool) < policy.uir_min {
            continue;
        }
        total += f(&truth, derive_seed(seed, 7_000 + attempt));
        n += 1;
    }
    if n == 0 {
        (0.0, 0)
    } else {
        (total / n as f64, n)
    }
}

// The worker pool lives in `lte_core::parallel` so the serving engine and
// this harness share one implementation; re-exported here because every
// experiment module imports it from the runner.
pub use lte_core::parallel::{default_threads, parallel_map};

/// Convenience bundle: pipeline + shared pool for a (dataset, dims, budget)
/// cell of an experiment grid.
pub struct Cell {
    /// The trained pipeline.
    pub pipeline: LtePipeline,
    /// Offline timing report.
    pub offline: OfflineReport,
    /// Shared evaluation pool (full-space raw rows).
    pub pool: Vec<Vec<f64>>,
}

/// Build a grid cell. `train_mode` is the (α, ψ) mode used to *generate the
/// training meta-tasks*: §VIII-B experiments meta-train on convex tasks
/// (α=1, ψ=50) to match the baselines' assumptions, §VIII-C on the
/// generalized mode (α=4, ψ=20).
pub fn build_cell(
    env: &BenchEnv,
    dataset: &str,
    n_attrs: usize,
    budget: usize,
    train_mode: UisMode,
    seed: u64,
) -> Cell {
    let table = env.table(dataset);
    let mut cfg = env.lte_config(budget);
    cfg.task.mode = train_mode;
    let (pipeline, offline) = build_pipeline(table, n_attrs, cfg, seed);
    let pool = eval_pool(table, env.eval_size, derive_seed(seed, 99));
    Cell {
        pipeline,
        offline,
        pool,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Scale;

    fn tiny_env() -> BenchEnv {
        let mut env = BenchEnv::new(Scale::Reduced, 7);
        env.eval_size = 400;
        env
    }

    fn fast_cfg(env: &BenchEnv, budget: usize) -> LteConfig {
        let mut cfg = env.lte_config(budget);
        cfg.train.n_tasks = 60;
        cfg.train.epochs = 1;
        cfg
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..50).collect::<Vec<_>>(), 4, |x| x * 2);
        assert_eq!(out, (0..50).map(|x| x * 2).collect::<Vec<_>>());
        let out = parallel_map(vec![1, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
        let empty: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |x| x);
        assert!(empty.is_empty());
    }

    #[test]
    fn normalized_pool_is_unit_range() {
        let env = tiny_env();
        let pool = eval_pool(&env.sdss.table, 100, 3);
        let norm = normalized_pool(&env.sdss.table, 4, &pool);
        assert_eq!(norm[0].len(), 4);
        for row in &norm {
            for &v in row {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn full_protocol_smoke_test() {
        // One tiny cell: every method runs and produces a finite F1.
        let env = tiny_env();
        let cfg = fast_cfg(&env, 30);
        let (pipeline, _) = build_pipeline(&env.sdss.table, 4, cfg, 11);
        let pool = eval_pool(&env.sdss.table, 300, 12);
        let truth = gen_truth(&pipeline, env.convex_mode(), TruthPolicy::default(), 13);

        let lte = run_lte(&pipeline, &truth, &pool, Variant::MetaStar, 14);
        assert!(lte.f1.is_finite() && lte.f1 >= 0.0 && lte.f1 <= 1.0);

        let dsm = run_dsm(&env.sdss.table, 4, &truth, &pool, 30, 15);
        assert!(dsm.f1.is_finite());
        assert!(dsm.online_seconds > 0.0);

        let alsvm = run_alsvm(&env.sdss.table, 4, &truth, &pool, 30, 16);
        assert!(alsvm.f1.is_finite());

        let svm = run_initial_tuple_svm(&pipeline, &truth, &pool, false, 17);
        let svmr = run_initial_tuple_svm(&pipeline, &truth, &pool, true, 18);
        assert!(svm.f1.is_finite());
        assert!(svmr.f1.is_finite());
    }

    /// Regression for the fig6 timing quirk: with a selectivity floor that
    /// rejects most truths, accumulated per-repetition seconds must be
    /// divided by the repetitions *actually run* — the old code divided by
    /// `reps` and under-reported per-truth online time.
    #[test]
    fn degenerate_floor_divides_by_actual_runs() {
        let env = tiny_env();
        let cfg = fast_cfg(&env, 30);
        let (pipeline, _) = build_pipeline(&env.sdss.table, 2, cfg, 31);
        let pool = eval_pool(&env.sdss.table, 200, 32);
        let seed = 33u64;
        let mode = env.convex_mode();
        let base = TruthPolicy::default();

        // Selectivity of every truth the retry loop can generate, in the
        // exact attempt order `average_over_truths_counted` uses.
        let sels: Vec<f64> = (0..60u64)
            .map(|a| gen_truth(&pipeline, mode, base, derive_seed(seed, a)).selectivity(&pool))
            .collect();
        let mut distinct = sels.clone();
        distinct.sort_by(f64::total_cmp);
        distinct.dedup();
        assert!(distinct.len() >= 2, "need at least two selectivity levels");

        // Pick a (reps, floor) pair under which the retry allowance
        // (`reps * 10` attempts) exhausts with 0 < accepted < reps truths —
        // selectivity over a finite pool is quantized, so floors sit between
        // adjacent distinct levels.
        let mut chosen = None;
        'outer: for reps in 2..=6usize {
            let cap = (reps * 10).min(sels.len());
            for w in distinct.windows(2).rev() {
                let floor = (w[0] + w[1]) / 2.0;
                let accepted = sels[..cap].iter().filter(|&&s| s >= floor).count();
                if accepted > 0 && accepted < reps {
                    chosen = Some((reps, floor, accepted));
                    break 'outer;
                }
            }
        }
        let (reps, floor, expected) = chosen.expect("some floor yields partial acceptance");
        let policy = TruthPolicy {
            uir_min: floor,
            ..base
        };
        // fig6's accumulation pattern: each accepted truth adds 1.0 "secs".
        let mut secs = 0.0;
        let (_, runs) =
            average_over_truths_counted(&pipeline, mode, policy, &pool, reps, seed, |_t, _s| {
                secs += 1.0;
                0.0
            });
        assert_eq!(runs, expected, "accepted-truth count disagrees");
        // Correct per-truth seconds divide by `runs` (1.0 s per truth);
        // dividing by `reps` (the old fig6 divisor) under-reports.
        assert!((secs / runs as f64 - 1.0).abs() < 1e-12);
        assert!(
            (secs / reps as f64 - 1.0).abs() > 0.1,
            "old divisor would have passed"
        );
    }

    #[test]
    fn average_over_truths_counts_reps() {
        let env = tiny_env();
        let cfg = fast_cfg(&env, 30);
        let (pipeline, _) = build_pipeline(&env.sdss.table, 2, cfg, 21);
        let pool = eval_pool(&env.sdss.table, 200, 22);
        let mut calls = 0;
        let avg = average_over_truths(
            &pipeline,
            env.convex_mode(),
            TruthPolicy::default(),
            &pool,
            2,
            23,
            |_t, _s| {
                calls += 1;
                0.5
            },
        );
        assert_eq!(calls, 2);
        assert!((avg - 0.5).abs() < 1e-12);
    }
}
