//! Console tables and CSV output for experiment results.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A result table: named columns, stringly-typed cells.
#[derive(Debug, Clone)]
pub struct Report {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Start a report with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; must match the header arity.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned console table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// CSV rendering (headers + rows, comma-separated, quoted when needed).
    pub fn to_csv(&self) -> String {
        let quote = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Write the CSV into `dir/<slug>.csv` (directory created on demand).
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        fs::create_dir_all(dir)?;
        let slug: String = self
            .title
            .to_lowercase()
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        let path = dir.join(format!("{slug}.csv"));
        fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Format a float with 3 decimals (the paper's table precision).
pub fn fmt3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format seconds adaptively (ms below 1s).
pub fn fmt_secs(v: f64) -> String {
    if v < 1.0 {
        format!("{:.1}ms", v * 1e3)
    } else {
        format!("{v:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut r = Report::new("demo", &["method", "f1"]);
        r.push_row(vec!["Meta*".into(), "0.866".into()]);
        r.push_row(vec!["DSM".into(), "0.2".into()]);
        let s = r.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("Meta*"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[3].len(), lines[4].len(), "rows align");
    }

    #[test]
    fn csv_quotes_when_needed() {
        let mut r = Report::new("t", &["a", "b"]);
        r.push_row(vec!["x,y".into(), "plain".into()]);
        let csv = r.to_csv();
        assert!(csv.contains("\"x,y\",plain"));
    }

    #[test]
    fn write_csv_creates_file() {
        let mut r = Report::new("Fig 4(a) accuracy", &["a"]);
        r.push_row(vec!["1".into()]);
        let dir = std::env::temp_dir().join("lte_bench_test_csv");
        let path = r.write_csv(&dir).unwrap();
        assert!(path.exists());
        let content = fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("a\n"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_arity_checked() {
        let mut r = Report::new("t", &["a", "b"]);
        r.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt3(0.12345), "0.123");
        assert_eq!(fmt_secs(0.1234), "123.4ms");
        assert_eq!(fmt_secs(12.3), "12.30s");
    }
}
