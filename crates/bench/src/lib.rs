//! Experiment harness for the LTE reproduction.
//!
//! One binary per table/figure of §VIII (see `src/bin/`), all built from the
//! shared pieces here:
//!
//! * [`cli`] — a tiny flag parser (`--paper`, `--seed`, `--reps`, `--out`),
//! * [`crate::env`] — datasets and configurations at *reduced* (default) or
//!   *paper* scale,
//! * [`report`] — aligned console tables plus CSV output,
//! * [`runner`] — pipeline construction, ground-truth generation, and
//!   method runners (LTE variants, DSM, AL-SVM, SVM/SVMr) sharing one
//!   evaluation protocol.
//!
//! Criterion micro-benchmarks for the substrates live in `benches/`.

pub mod cli;
pub mod env;
pub mod experiments;
pub mod report;
pub mod runner;

pub use cli::Options;
pub use env::{BenchEnv, Scale};
pub use report::Report;
