//! Minimal command-line option parsing shared by all experiment binaries.
//!
//! Flags (all optional):
//! * `--paper` — run at the paper's full scale (slow!),
//! * `--smoke` — reduced CI scale (tiny training, few sessions),
//! * `--seed <u64>` — master seed (default 42),
//! * `--reps <n>` — repetitions (test UIRs) per configuration,
//! * `--out <dir>` — also write CSV files into `<dir>`,
//! * positional arguments — experiment-specific subcommands.

use std::path::PathBuf;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Full paper scale instead of the reduced default.
    pub paper: bool,
    /// Reduced CI smoke scale (honoured by experiments that support it).
    pub smoke: bool,
    /// Master seed.
    pub seed: u64,
    /// Repetitions per configuration (0 = scale default).
    pub reps: usize,
    /// Optional CSV output directory.
    pub out: Option<PathBuf>,
    /// Remaining positional arguments (subcommands).
    pub positional: Vec<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            paper: false,
            smoke: false,
            seed: 42,
            reps: 0,
            out: None,
            positional: Vec::new(),
        }
    }
}

impl Options {
    /// Parse from an argument iterator (excluding the program name).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Result<Options, String> {
        let mut opts = Options::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--paper" => opts.paper = true,
                "--smoke" => opts.smoke = true,
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    opts.seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
                }
                "--reps" => {
                    let v = it.next().ok_or("--reps needs a value")?;
                    opts.reps = v.parse().map_err(|_| format!("bad reps `{v}`"))?;
                }
                "--out" => {
                    let v = it.next().ok_or("--out needs a value")?;
                    opts.out = Some(PathBuf::from(v));
                }
                flag if flag.starts_with("--") => {
                    return Err(format!("unknown flag `{flag}`"));
                }
                positional => opts.positional.push(positional.to_string()),
            }
        }
        Ok(opts)
    }

    /// Parse from the process arguments, exiting with a message on error.
    pub fn parse() -> Options {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("argument error: {e}");
                eprintln!(
                    "usage: [subcommand] [--paper] [--smoke] [--seed N] [--reps N] [--out DIR]"
                );
                std::process::exit(2);
            }
        }
    }

    /// First positional argument, if any.
    pub fn subcommand(&self) -> Option<&str> {
        self.positional.first().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        Options::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert!(!o.paper);
        assert!(!o.smoke);
        assert_eq!(o.seed, 42);
        assert_eq!(o.reps, 0);
        assert!(o.out.is_none());
        assert!(o.subcommand().is_none());
    }

    #[test]
    fn full_flag_set() {
        let o = parse(&[
            "accuracy", "--paper", "--smoke", "--seed", "7", "--reps", "5", "--out", "/tmp/x",
        ])
        .unwrap();
        assert!(o.paper);
        assert!(o.smoke);
        assert_eq!(o.seed, 7);
        assert_eq!(o.reps, 5);
        assert_eq!(o.out.unwrap().to_str().unwrap(), "/tmp/x");
        assert_eq!(o.positional, vec!["accuracy"]);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--seed", "abc"]).is_err());
        assert!(parse(&["--wat"]).is_err());
    }
}
