//! Experiment environments at two scales.
//!
//! The paper's full-scale evaluation (100K-tuple SDSS, 50K-tuple CAR,
//! |TM| up to 20 000, 2 500 test UIRs) takes hours; the default *reduced*
//! scale shrinks dataset size, cluster counts, and task counts
//! proportionally so every structural relationship — and every
//! qualitative comparison — is preserved while a full experiment binary
//! finishes in minutes on two cores. `--paper` restores §VIII-A's values.

use lte_core::config::LteConfig;
use lte_core::uis::UisMode;
use lte_data::table::Table;
use lte_data::Dataset;

/// Which scale to run at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Default: minutes on a laptop.
    Reduced,
    /// §VIII-A's full parameters.
    Paper,
}

impl Scale {
    /// From the `--paper` flag.
    pub fn from_flag(paper: bool) -> Self {
        if paper {
            Scale::Paper
        } else {
            Scale::Reduced
        }
    }
}

/// Datasets plus scale-appropriate configuration.
pub struct BenchEnv {
    /// Which scale this environment was built at.
    pub scale: Scale,
    /// SDSS-like dataset.
    pub sdss: Dataset,
    /// CAR-like dataset.
    pub car: Dataset,
    /// Master seed.
    pub seed: u64,
    /// Default repetitions (test UIRs per configuration).
    pub reps: usize,
    /// Evaluation-pool size (tuples scored per exploration).
    pub eval_size: usize,
}

impl BenchEnv {
    /// Build datasets for a scale.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let (sdss_n, car_n, reps, eval_size) = match scale {
            Scale::Reduced => (20_000, 10_000, 3, 1_500),
            Scale::Paper => (100_000, 50_000, 10, 5_000),
        };
        Self {
            scale,
            sdss: Dataset::sdss(sdss_n, seed),
            car: Dataset::car(car_n, seed ^ 0xCA7),
            seed,
            reps,
            eval_size,
        }
    }

    /// Build from CLI options (honouring `--reps` override).
    pub fn from_options(opts: &crate::cli::Options) -> Self {
        let mut env = Self::new(Scale::from_flag(opts.paper), opts.seed);
        if opts.reps > 0 {
            env.reps = opts.reps;
        }
        env
    }

    /// Base LTE configuration for this scale, re-targeted at budget `B`.
    pub fn lte_config(&self, budget: usize) -> LteConfig {
        let base = match self.scale {
            Scale::Reduced => LteConfig::reduced(),
            Scale::Paper => LteConfig::paper(),
        };
        base.with_budget(budget)
    }

    /// Scale a paper-quoted ψ (defined against `ku = 100`) to this
    /// environment's `ku`, flooring at 3 so every hull keeps positive area
    /// (2-point "hulls" are segments, i.e. zero-selectivity regions).
    pub fn scale_psi(&self, psi_paper: usize) -> usize {
        let ku = self.lte_config(30).task.ku;
        ((psi_paper * ku + 50) / 100).max(3)
    }

    /// The paper's §VIII-B convex test mode (α=1, ψ=50) at this scale.
    pub fn convex_mode(&self) -> UisMode {
        UisMode::new(1, self.scale_psi(50))
    }

    /// The paper's §VIII-C generalized mode (α=4, ψ=20) at this scale.
    pub fn general_mode(&self) -> UisMode {
        UisMode::new(4, self.scale_psi(20))
    }

    /// Table III's benchmark modes M1–M7, ψ scaled to this environment.
    pub fn paper_modes(&self) -> Vec<(String, UisMode)> {
        UisMode::paper_modes()
            .into_iter()
            .map(|(name, m)| (name, UisMode::new(m.alpha, self.scale_psi(m.psi))))
            .collect()
    }

    /// A dataset by name (`"sdss"` or `"car"`).
    pub fn dataset(&self, name: &str) -> &Dataset {
        match name {
            "sdss" => &self.sdss,
            "car" => &self.car,
            other => panic!("unknown dataset `{other}`"),
        }
    }

    /// The table behind a dataset name.
    pub fn table(&self, name: &str) -> &Table {
        &self.dataset(name).table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_env_has_smaller_datasets() {
        let env = BenchEnv::new(Scale::Reduced, 1);
        assert_eq!(env.sdss.n_rows(), 20_000);
        assert_eq!(env.car.n_rows(), 10_000);
        assert_eq!(env.reps, 3);
    }

    #[test]
    fn psi_scaling_tracks_ku() {
        let env = BenchEnv::new(Scale::Reduced, 1);
        // Reduced ku = 40 → ψ=50 becomes 20, ψ=5 becomes 2.
        assert_eq!(env.scale_psi(50), 20);
        assert_eq!(env.scale_psi(5), 3);
        assert_eq!(env.convex_mode(), UisMode::new(1, 20));
        assert_eq!(env.general_mode(), UisMode::new(4, 8));
    }

    #[test]
    fn modes_preserve_alpha() {
        let env = BenchEnv::new(Scale::Reduced, 1);
        let modes = env.paper_modes();
        assert_eq!(modes.len(), 7);
        assert_eq!(modes[4].1.alpha, 1);
        assert_eq!(modes[0].1.alpha, 4);
    }

    #[test]
    fn config_budget_is_applied() {
        let env = BenchEnv::new(Scale::Reduced, 1);
        assert_eq!(env.lte_config(55).budget(), 55);
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_dataset_panics() {
        BenchEnv::new(Scale::Reduced, 1).dataset("mnist");
    }
}
