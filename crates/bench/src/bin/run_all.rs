//! Regenerates every table and figure of the paper's evaluation in one run.
//!
//! ```text
//! cargo run -p lte-bench --release --bin run_all -- [--paper] [--out results/]
//! ```

use lte_bench::{cli::Options, env::BenchEnv, experiments};

fn main() {
    let opts = Options::parse();
    let env = BenchEnv::from_options(&opts);
    let out = opts.out.as_deref();

    let t0 = std::time::Instant::now();
    println!(
        "LTE reproduction — scale: {:?}, seed: {}, reps: {}\n",
        env.scale, env.seed, env.reps
    );

    experiments::fig4::run(&env, out);
    experiments::fig5::run(&env, out);
    experiments::fig6::run(&env, out);
    experiments::fig7::run(&env, out);
    experiments::table2::run(&env, out);
    experiments::fig8::run(&env, out);
    experiments::throughput::run(&env, out, opts.smoke);
    experiments::scenarios::run(&env, out, opts.smoke);
    experiments::pool_scoring::run(&env, out, opts.smoke);
    experiments::routing::run(&env, out, opts.smoke);

    println!(
        "\nall experiments regenerated in {:.1} min",
        t0.elapsed().as_secs_f64() / 60.0
    );
}
