//! Pool-scoring latency ladder + `BENCH_pool_scoring.json` snapshot
//! (see lte_bench::experiments::pool_scoring).

use lte_bench::{cli::Options, env::BenchEnv};

fn main() {
    let opts = Options::parse();
    let env = BenchEnv::from_options(&opts);
    let out = opts.out.as_deref();
    match opts.subcommand() {
        None => lte_bench::experiments::pool_scoring::run(&env, out, opts.smoke),
        Some(sub) => lte_bench::experiments::pool_scoring::subcommand(&env, out, opts.smoke, sub),
    }
}
