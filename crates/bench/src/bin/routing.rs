//! Meta-feature task routing: a two-specialist pipeline library routed per
//! session vs each fixed pipeline, writing `BENCH_routing.json`
//! (see lte_bench::experiments::routing).

use lte_bench::{cli::Options, env::BenchEnv};

fn main() {
    let opts = Options::parse();
    let env = BenchEnv::from_options(&opts);
    let out = opts.out.as_deref();
    match opts.subcommand() {
        None => lte_bench::experiments::routing::run(&env, out, opts.smoke),
        Some(sub) => lte_bench::experiments::routing::subcommand(&env, out, opts.smoke, sub),
    }
}
