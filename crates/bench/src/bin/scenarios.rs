//! Mixed-traffic scenario runner (see lte_bench::experiments::scenarios).

use lte_bench::{cli::Options, env::BenchEnv};

fn main() {
    let opts = Options::parse();
    let env = BenchEnv::from_options(&opts);
    let out = opts.out.as_deref();
    match opts.subcommand() {
        None => lte_bench::experiments::scenarios::run(&env, out, opts.smoke),
        Some(sub) => lte_bench::experiments::scenarios::subcommand(&env, out, opts.smoke, sub),
    }
}
