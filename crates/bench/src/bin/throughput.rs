//! Serving-throughput sweep (see lte_bench::experiments::throughput).

use lte_bench::{cli::Options, env::BenchEnv};

fn main() {
    let opts = Options::parse();
    let env = BenchEnv::from_options(&opts);
    let out = opts.out.as_deref();
    match opts.subcommand() {
        None => lte_bench::experiments::throughput::run(&env, out),
        Some(sub) => dispatch(&env, out, sub),
    }
}

fn dispatch(env: &BenchEnv, out: Option<&std::path::Path>, sub: &str) {
    lte_bench::experiments::throughput::subcommand(env, out, sub);
}
