//! Serving-throughput comparison: per-session engine vs the fused
//! cross-session scoring service, writing `BENCH_throughput.json`
//! (see lte_bench::experiments::throughput).

use lte_bench::{cli::Options, env::BenchEnv};

fn main() {
    let opts = Options::parse();
    let env = BenchEnv::from_options(&opts);
    let out = opts.out.as_deref();
    match opts.subcommand() {
        None => lte_bench::experiments::throughput::run(&env, out, opts.smoke),
        Some(sub) => lte_bench::experiments::throughput::subcommand(&env, out, opts.smoke, sub),
    }
}
