//! Property-based tests for the clustering substrate.

use lte_cluster::{KMeans, ProximityMatrix};
use proptest::prelude::*;

fn arb_points() -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(-100.0..100.0f64, 2), 2..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every point is assigned to its nearest center, and inertia equals
    /// the sum of those squared distances.
    #[test]
    fn assignments_are_nearest(points in arb_points(), k in 1usize..6, seed in 0u64..100) {
        let model = KMeans::new(k, seed).fit(&points);
        let mut inertia = 0.0;
        for (i, p) in points.iter().enumerate() {
            let assigned = model.assignments[i];
            let d_assigned: f64 = p.iter().zip(&model.centers[assigned])
                .map(|(a, b)| (a - b) * (a - b)).sum();
            for c in &model.centers {
                let d: f64 = p.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum();
                prop_assert!(d_assigned <= d + 1e-9, "closer center exists");
            }
            inertia += d_assigned;
        }
        prop_assert!((inertia - model.inertia).abs() < 1e-6 * (1.0 + inertia));
    }

    /// Centers lie inside the bounding box of the data (means of subsets).
    #[test]
    fn centers_inside_bounding_box(points in arb_points(), k in 1usize..6) {
        let model = KMeans::new(k, 7).fit(&points);
        for d in 0..2 {
            let lo = points.iter().map(|p| p[d]).fold(f64::INFINITY, f64::min);
            let hi = points.iter().map(|p| p[d]).fold(f64::NEG_INFINITY, f64::max);
            for c in &model.centers {
                prop_assert!(c[d] >= lo - 1e-9 && c[d] <= hi + 1e-9);
            }
        }
    }

    /// Proximity matrices satisfy metric basics: non-negativity, symmetry
    /// (self-matrix), zero diagonal, and k_nearest returns ascending
    /// distances.
    #[test]
    fn proximity_metric_properties(points in arb_points(), row in 0usize..60, k in 1usize..10) {
        let m = ProximityMatrix::within(&points);
        let row = row % points.len();
        for i in 0..points.len() {
            prop_assert!(m.get(row, i) >= 0.0);
            prop_assert!((m.get(row, i) - m.get(i, row)).abs() < 1e-9);
        }
        prop_assert!(m.get(row, row) < 1e-12);
        let nn = m.k_nearest(row, k, true);
        for w in nn.windows(2) {
            prop_assert!(m.get(row, w[0]) <= m.get(row, w[1]) + 1e-12);
        }
    }
}
