//! Lloyd's k-means with k-means++ seeding.
//!
//! The paper uses k-means as the clustering-based sampling method behind
//! meta-task generation because it is "primitive and effective for
//! summarizing data insights" (§V-A, citing AIDE). Determinism matters for
//! reproducibility, so the seeding RNG is supplied by the caller.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Squared Euclidean distance.
fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// K-means configuration.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Number of clusters requested. If the input has fewer distinct points,
    /// the model holds fewer centers.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iter: usize,
    /// Convergence tolerance on total center movement (squared distance).
    pub tol: f64,
    /// RNG seed for k-means++ initialization.
    pub seed: u64,
}

impl KMeans {
    /// Standard configuration: 50 iterations, 1e-8 tolerance.
    pub fn new(k: usize, seed: u64) -> Self {
        Self {
            k,
            max_iter: 50,
            tol: 1e-8,
            seed,
        }
    }

    /// Run k-means over row vectors.
    ///
    /// # Panics
    /// Panics when `points` is empty or `k == 0`.
    pub fn fit(&self, points: &[Vec<f64>]) -> KMeansModel {
        assert!(!points.is_empty(), "k-means needs at least one point");
        assert!(self.k > 0, "k must be positive");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let k = self.k.min(points.len());
        let mut centers = plus_plus_init(&mut rng, points, k);

        let mut assignments = vec![0usize; points.len()];
        let mut iterations = 0;
        for it in 0..self.max_iter {
            iterations = it + 1;
            // Assignment step.
            for (i, p) in points.iter().enumerate() {
                assignments[i] = nearest(&centers, p).0;
            }
            // Update step.
            let dim = points[0].len();
            let mut sums = vec![vec![0.0; dim]; centers.len()];
            let mut counts = vec![0usize; centers.len()];
            for (i, p) in points.iter().enumerate() {
                let c = assignments[i];
                counts[c] += 1;
                for (s, &v) in sums[c].iter_mut().zip(p) {
                    *s += v;
                }
            }
            let mut movement = 0.0;
            for (c, center) in centers.iter_mut().enumerate() {
                if counts[c] == 0 {
                    // Re-seed an empty cluster at a random point; keeps k
                    // centers alive on degenerate data.
                    let j = rng.random_range(0..points.len());
                    movement += dist2(center, &points[j]);
                    center.clone_from(&points[j]);
                    continue;
                }
                let inv = 1.0 / counts[c] as f64;
                let mut moved = 0.0;
                for (ci, s) in center.iter_mut().zip(&sums[c]) {
                    let nv = s * inv;
                    let d = *ci - nv;
                    moved += d * d;
                    *ci = nv;
                }
                movement += moved;
            }
            if movement <= self.tol {
                break;
            }
        }

        // Final assignment + inertia against the converged centers.
        let mut inertia = 0.0;
        for (i, p) in points.iter().enumerate() {
            let (c, d2) = nearest(&centers, p);
            assignments[i] = c;
            inertia += d2;
        }

        KMeansModel {
            centers,
            assignments,
            inertia,
            iterations,
        }
    }
}

/// k-means++ initialization: spread initial centers proportionally to the
/// squared distance from already chosen centers.
fn plus_plus_init<R: Rng + ?Sized>(rng: &mut R, points: &[Vec<f64>], k: usize) -> Vec<Vec<f64>> {
    let mut centers: Vec<Vec<f64>> = Vec::with_capacity(k);
    let first = rng.random_range(0..points.len());
    centers.push(points[first].clone());

    let mut d2: Vec<f64> = points.iter().map(|p| dist2(p, &centers[0])).collect();
    while centers.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= f64::EPSILON {
            // All remaining points coincide with existing centers.
            rng.random_range(0..points.len())
        } else {
            let mut t = rng.random::<f64>() * total;
            let mut chosen = points.len() - 1;
            for (i, &w) in d2.iter().enumerate() {
                t -= w;
                if t <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centers.push(points[next].clone());
        let c = centers.last().expect("just pushed");
        for (i, p) in points.iter().enumerate() {
            let d = dist2(p, c);
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    centers
}

/// Index and squared distance of the nearest center.
fn nearest(centers: &[Vec<f64>], p: &[f64]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centers.iter().enumerate() {
        let d = dist2(c, p);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

/// A fitted k-means model.
#[derive(Debug, Clone)]
pub struct KMeansModel {
    /// Cluster centers (may be fewer than requested `k` on tiny inputs).
    pub centers: Vec<Vec<f64>>,
    /// Cluster index per input point.
    pub assignments: Vec<usize>,
    /// Sum of squared distances from points to their assigned centers.
    pub inertia: f64,
    /// Number of Lloyd iterations executed.
    pub iterations: usize,
}

impl KMeansModel {
    /// Number of centers.
    pub fn k(&self) -> usize {
        self.centers.len()
    }

    /// Index of the nearest center to an arbitrary point.
    pub fn predict(&self, p: &[f64]) -> usize {
        nearest(&self.centers, p).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs on a line.
    fn blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..30 {
            let jitter = (i % 7) as f64 * 0.01;
            pts.push(vec![0.0 + jitter, 0.0]);
            pts.push(vec![10.0 + jitter, 0.0]);
            pts.push(vec![20.0 + jitter, 0.0]);
        }
        pts
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let model = KMeans::new(3, 0).fit(&blobs());
        assert_eq!(model.k(), 3);
        let mut xs: Vec<f64> = model.centers.iter().map(|c| c[0]).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((xs[0] - 0.03).abs() < 0.5, "{xs:?}");
        assert!((xs[1] - 10.03).abs() < 0.5, "{xs:?}");
        assert!((xs[2] - 20.03).abs() < 0.5, "{xs:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = KMeans::new(3, 42).fit(&blobs());
        let b = KMeans::new(3, 42).fit(&blobs());
        assert_eq!(a.centers, b.centers);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn k_clamped_to_point_count() {
        let pts = vec![vec![0.0], vec![1.0]];
        let model = KMeans::new(10, 0).fit(&pts);
        assert_eq!(model.k(), 2);
    }

    #[test]
    fn assignments_map_points_to_nearest_center() {
        let model = KMeans::new(3, 1).fit(&blobs());
        for (i, p) in blobs().iter().enumerate() {
            assert_eq!(model.assignments[i], model.predict(p));
        }
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let pts = blobs();
        let m1 = KMeans::new(1, 0).fit(&pts);
        let m3 = KMeans::new(3, 0).fit(&pts);
        assert!(m3.inertia < m1.inertia);
    }

    #[test]
    fn identical_points_yield_zero_inertia() {
        let pts = vec![vec![5.0, 5.0]; 20];
        let model = KMeans::new(4, 0).fit(&pts);
        assert!(model.inertia <= 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_input_panics() {
        KMeans::new(2, 0).fit(&[]);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        KMeans::new(0, 0).fit(&[vec![1.0]]);
    }
}
