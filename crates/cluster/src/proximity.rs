//! Dense proximity matrices over cluster centers.
//!
//! §V-B maintains two matrices for efficiency: `Pu` (`ku × ku`) between the
//! centers of `Cu`, used to fetch ψ-nearest-neighbor sets during UIS
//! construction in O(ku), and `Ps` (`ks × ku`) between `Cs` and `Cu`, used
//! to expand UIS feature vectors (§VI-A) and to build the optimizer's
//! outer/inner subregions (§VII-B). Building them costs
//! O(ku² + ks·ku), exactly the complexity the paper reports.

/// A dense `rows × cols` matrix of Euclidean distances between two point
/// sets, with k-nearest-neighbor queries per row.
#[derive(Debug, Clone, PartialEq)]
pub struct ProximityMatrix {
    rows: usize,
    cols: usize,
    /// Row-major distances.
    dist: Vec<f64>,
}

impl ProximityMatrix {
    /// Distances from every point of `a` (rows) to every point of `b`
    /// (columns).
    pub fn between(a: &[Vec<f64>], b: &[Vec<f64>]) -> Self {
        let rows = a.len();
        let cols = b.len();
        let mut dist = Vec::with_capacity(rows * cols);
        for pa in a {
            for pb in b {
                let d2: f64 = pa
                    .iter()
                    .zip(pb)
                    .map(|(x, y)| {
                        let d = x - y;
                        d * d
                    })
                    .sum();
                dist.push(d2.sqrt());
            }
        }
        Self { rows, cols, dist }
    }

    /// Symmetric self-distance matrix (the paper's `Pu`).
    pub fn within(points: &[Vec<f64>]) -> Self {
        Self::between(points, points)
    }

    /// Number of rows (source points).
    pub fn n_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (target points).
    pub fn n_cols(&self) -> usize {
        self.cols
    }

    /// Distance between source `row` and target `col`.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.dist[row * self.cols + col]
    }

    /// Column indices of the `k` nearest targets to source `row`,
    /// ascending by distance. `include_self` controls whether a zero-distance
    /// self-match (same index in a square self-matrix) is kept.
    pub fn k_nearest(&self, row: usize, k: usize, include_self: bool) -> Vec<usize> {
        assert!(row < self.rows, "row out of bounds");
        let offset = row * self.cols;
        let mut idx: Vec<usize> = (0..self.cols)
            .filter(|&c| include_self || self.rows != self.cols || c != row)
            .collect();
        idx.sort_by(|&a, &b| {
            self.dist[offset + a]
                .partial_cmp(&self.dist[offset + b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx.truncate(k);
        idx
    }

    /// All column indices within `radius` of source `row`.
    pub fn within_radius(&self, row: usize, radius: f64) -> Vec<usize> {
        assert!(row < self.rows, "row out of bounds");
        let offset = row * self.cols;
        (0..self.cols)
            .filter(|&c| self.dist[offset + c] <= radius)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_points(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64, 0.0]).collect()
    }

    #[test]
    fn distances_are_euclidean() {
        let a = vec![vec![0.0, 0.0]];
        let b = vec![vec![3.0, 4.0], vec![0.0, 1.0]];
        let m = ProximityMatrix::between(&a, &b);
        assert_eq!(m.n_rows(), 1);
        assert_eq!(m.n_cols(), 2);
        assert!((m.get(0, 0) - 5.0).abs() < 1e-12);
        assert!((m.get(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn self_matrix_is_symmetric_with_zero_diagonal() {
        let pts = line_points(5);
        let m = ProximityMatrix::within(&pts);
        for i in 0..5 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..5 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
    }

    #[test]
    fn k_nearest_orders_by_distance() {
        let pts = line_points(6);
        let m = ProximityMatrix::within(&pts);
        // From point 0 excluding itself: 1, 2, 3.
        assert_eq!(m.k_nearest(0, 3, false), vec![1, 2, 3]);
        // Including itself the zero-distance self-match leads.
        assert_eq!(m.k_nearest(0, 3, true), vec![0, 1, 2]);
    }

    #[test]
    fn k_nearest_caps_at_available_columns() {
        let pts = line_points(3);
        let m = ProximityMatrix::within(&pts);
        assert_eq!(m.k_nearest(1, 99, false).len(), 2);
        assert_eq!(m.k_nearest(1, 99, true).len(), 3);
    }

    #[test]
    fn rectangular_matrix_keeps_same_index_columns() {
        // In a non-square matrix, row index == column index is a coincidence,
        // not a self-match, so it must be kept even with include_self=false.
        let a = vec![vec![0.0]];
        let b = vec![vec![0.0], vec![5.0]];
        let m = ProximityMatrix::between(&a, &b);
        assert_eq!(m.k_nearest(0, 2, false), vec![0, 1]);
    }

    #[test]
    fn within_radius_filters() {
        let pts = line_points(10);
        let m = ProximityMatrix::within(&pts);
        assert_eq!(m.within_radius(0, 2.5), vec![0, 1, 2]);
        assert!(m.within_radius(0, -1.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let m = ProximityMatrix::within(&line_points(2));
        m.get(5, 0);
    }
}
