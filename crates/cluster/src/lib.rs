//! Clustering substrate for LTE.
//!
//! Cluster centers act as a *lightweight summary* of a meta-subspace
//! (paper §V-B): meta-task generation runs three independent rounds of
//! k-means (with `k = ku, ks, kq`) and keeps two proximity matrices —
//! `Pu` (`ku × ku`, center-to-center distances within `Cu`) used for UIS
//! construction, and `Ps` (`ks × ku`, distances from `Cs` to `Cu`) used for
//! UIS-feature-vector expansion (§VI-A) and the few-shot optimizer (§VII-B).
//!
//! * [`KMeans`] — Lloyd's algorithm with k-means++ initialization,
//! * [`ProximityMatrix`] — dense pairwise distances with k-nearest queries.

pub mod kmeans;
pub mod proximity;

pub use kmeans::{KMeans, KMeansModel};
pub use proximity::ProximityMatrix;
