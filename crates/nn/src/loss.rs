//! Loss functions for the binary UIS classification objective.
//!
//! The classifier predicts whether a tuple lies inside the UIS (label 1) or
//! not (label 0); local and global meta-updates both minimize this
//! classification loss (Eqs. 12–13). We compute binary cross-entropy on the
//! *logit* via the log-sum-exp form, which is stable for large |logit|.

use crate::activation::sigmoid;

/// Binary cross-entropy on a logit. Returns `(loss, dloss/dlogit)`.
///
/// `target` must be 0.0 or 1.0.
pub fn bce_with_logits(logit: f64, target: f64) -> (f64, f64) {
    debug_assert!(target == 0.0 || target == 1.0, "target must be binary");
    // loss = max(z, 0) - z*y + ln(1 + e^{-|z|})  (the standard stable form)
    let loss = logit.max(0.0) - logit * target + (-logit.abs()).exp().ln_1p();
    let grad = sigmoid(logit) - target;
    (loss, grad)
}

/// Mean squared error. Returns `(loss, dloss/dpred)`.
pub fn mse(pred: f64, target: f64) -> (f64, f64) {
    let d = pred - target;
    (d * d, 2.0 * d)
}

/// Average BCE loss of a batch of logits.
pub fn mean_bce(logits: &[f64], targets: &[f64]) -> f64 {
    debug_assert_eq!(logits.len(), targets.len());
    if logits.is_empty() {
        return 0.0;
    }
    logits
        .iter()
        .zip(targets)
        .map(|(&z, &y)| bce_with_logits(z, y).0)
        .sum::<f64>()
        / logits.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bce_at_zero_logit_is_ln2() {
        let (l0, _) = bce_with_logits(0.0, 0.0);
        let (l1, _) = bce_with_logits(0.0, 1.0);
        assert!((l0 - std::f64::consts::LN_2).abs() < 1e-12);
        assert!((l1 - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn bce_is_stable_for_extreme_logits() {
        let (l, g) = bce_with_logits(1e4, 1.0);
        assert!(l.abs() < 1e-12, "confident correct prediction ≈ 0 loss");
        assert!(g.abs() < 1e-12);
        let (l, g) = bce_with_logits(-1e4, 1.0);
        assert!(l > 1e3, "confident wrong prediction has huge loss");
        assert!((g + 1.0).abs() < 1e-12);
        assert!(!l.is_nan() && !g.is_nan());
    }

    #[test]
    fn bce_gradient_matches_finite_differences() {
        let h = 1e-6;
        for &z in &[-3.0, -0.5, 0.0, 0.5, 3.0] {
            for &y in &[0.0, 1.0] {
                let (_, g) = bce_with_logits(z, y);
                let numeric =
                    (bce_with_logits(z + h, y).0 - bce_with_logits(z - h, y).0) / (2.0 * h);
                assert!((g - numeric).abs() < 1e-6, "z={z} y={y}");
            }
        }
    }

    #[test]
    fn mse_and_gradient() {
        let (l, g) = mse(3.0, 1.0);
        assert_eq!(l, 4.0);
        assert_eq!(g, 4.0);
    }

    #[test]
    fn mean_bce_averages() {
        let logits = [10.0, -10.0];
        let targets = [1.0, 0.0];
        assert!(mean_bce(&logits, &targets) < 1e-4);
        assert_eq!(mean_bce(&[], &[]), 0.0);
    }
}
