//! Element-wise activations.
//!
//! The paper uses ReLU between all layers of the UIS classifier (§VIII-A);
//! `Identity` serves final logit layers, and `Sigmoid`/`Tanh` are provided
//! for completeness and ablations.

/// Supported element-wise activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// `max(0, x)` — the paper's default hidden activation.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Pass-through (used for logit outputs).
    Identity,
}

impl Activation {
    /// Apply the activation to a pre-activation value.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => sigmoid(x),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x,
        }
    }

    /// Derivative with respect to the pre-activation value `x`.
    #[inline]
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => {
                let s = sigmoid(x);
                s * (1.0 - s)
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Identity => 1.0,
        }
    }

    /// Apply in place over a slice.
    pub fn apply_slice(self, xs: &mut [f64]) {
        for x in xs {
            *x = self.apply(*x);
        }
    }

    /// Apply the activation to a single-precision pre-activation value
    /// (the pool-scoring fast path). Matches [`Activation::apply`] to
    /// within `f32` round-off.
    #[inline]
    pub fn apply_f32(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => sigmoid_f32(x),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x,
        }
    }

    /// Apply in place over an `f32` slice.
    pub fn apply_slice_f32(self, xs: &mut [f32]) {
        for x in xs {
            *x = self.apply_f32(*x);
        }
    }
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable single-precision logistic sigmoid.
#[inline]
pub fn sigmoid_f32(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply(-2.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
        assert_eq!(Activation::Relu.derivative(-1.0), 0.0);
        assert_eq!(Activation::Relu.derivative(1.0), 1.0);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(!sigmoid(-745.0).is_nan());
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let h = 1e-6;
        for act in [
            Activation::Relu,
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Identity,
        ] {
            for &x in &[-1.7, -0.3, 0.4, 2.2] {
                let numeric = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                let analytic = act.derivative(x);
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "{act:?} at {x}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn apply_slice_transforms_all() {
        let mut xs = [-1.0, 0.5, 2.0];
        Activation::Relu.apply_slice(&mut xs);
        assert_eq!(xs, [0.0, 0.5, 2.0]);
    }

    #[test]
    fn f32_activations_track_f64() {
        for act in [
            Activation::Relu,
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Identity,
        ] {
            for &x in &[-100.0f64, -1.7, -0.3, 0.0, 0.4, 2.2, 100.0] {
                let exact = act.apply(x);
                let fast = act.apply_f32(x as f32) as f64;
                assert!(
                    (exact - fast).abs() < 1e-6,
                    "{act:?} at {x}: {exact} vs {fast}"
                );
            }
        }
        assert!(!sigmoid_f32(-100.0).is_nan());
        let mut xs = [-1.0f32, 0.5, 2.0];
        Activation::Relu.apply_slice_f32(&mut xs);
        assert_eq!(xs, [0.0f32, 0.5, 2.0]);
    }
}
