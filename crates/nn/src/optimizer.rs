//! First-order optimizers over flat parameter vectors.
//!
//! Local task adaptation uses plain SGD with learning rate ρ (Eq. 12); the
//! global meta-update is a single aggregated SGD step with learning rate λ
//! (Eq. 13). Adam is provided for the `Basic` (non-meta) classifier variant
//! and ablations.

/// Plain stochastic gradient descent.
#[derive(Debug, Clone, Copy)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
}

impl Sgd {
    /// Create an SGD optimizer.
    pub fn new(lr: f64) -> Self {
        Self { lr }
    }

    /// `params -= lr * grads`.
    pub fn step(&self, params: &mut [f64], grads: &[f64]) {
        debug_assert_eq!(params.len(), grads.len());
        for (p, g) in params.iter_mut().zip(grads) {
            *p -= self.lr * g;
        }
    }
}

/// Adam optimizer with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// Exponential decay for the first moment.
    pub beta1: f64,
    /// Exponential decay for the second moment.
    pub beta2: f64,
    /// Numerical stabilizer.
    pub eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Adam with the standard (0.9, 0.999) moment decays.
    pub fn new(lr: f64, dim: usize) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; dim],
            v: vec![0.0; dim],
            t: 0,
        }
    }

    /// One Adam update step.
    ///
    /// # Panics
    /// Panics when the dimension differs from construction.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len(), "dimension mismatch");
        assert_eq!(params.len(), grads.len(), "dimension mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grads[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grads[i] * grads[i];
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            params[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// f(x, y) = (x-3)² + (y+1)²; gradient (2(x-3), 2(y+1)).
    fn quad_grad(p: &[f64]) -> Vec<f64> {
        vec![2.0 * (p[0] - 3.0), 2.0 * (p[1] + 1.0)]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let opt = Sgd::new(0.1);
        let mut p = vec![0.0, 0.0];
        for _ in 0..100 {
            let g = quad_grad(&p);
            opt.step(&mut p, &g);
        }
        assert!((p[0] - 3.0).abs() < 1e-4);
        assert!((p[1] + 1.0).abs() < 1e-4);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.2, 2);
        let mut p = vec![0.0, 0.0];
        for _ in 0..300 {
            let g = quad_grad(&p);
            opt.step(&mut p, &g);
        }
        assert!((p[0] - 3.0).abs() < 1e-2, "{p:?}");
        assert!((p[1] + 1.0).abs() < 1e-2, "{p:?}");
    }

    #[test]
    fn adam_first_step_magnitude_is_lr() {
        // With bias correction the very first Adam step ≈ lr in each coord.
        let mut opt = Adam::new(0.1, 1);
        let mut p = vec![0.0];
        opt.step(&mut p, &[123.0]);
        assert!((p[0] + 0.1).abs() < 1e-6, "{p:?}");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn adam_checks_dimensions() {
        let mut opt = Adam::new(0.1, 2);
        let mut p = vec![0.0];
        opt.step(&mut p, &[1.0]);
    }
}
