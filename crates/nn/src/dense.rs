//! A single fully connected layer.

use crate::activation::Activation;
use crate::init;
use crate::matrix::Matrix;
use crate::matrix32::{Epilogue, Matrix32};
use crate::qmatmul;
use rand::Rng;

/// A dense layer `z = W·x + b` with `W: out × in`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    /// Weight matrix, `out_dim × in_dim`.
    pub w: Matrix,
    /// Bias vector, `out_dim`.
    pub b: Vec<f64>,
}

impl Dense {
    /// He-uniform initialized layer (suits the ReLU stacks of §VI-A).
    pub fn he_init<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        let bound = init::he_bound(in_dim);
        Self {
            w: Matrix::uniform(out_dim, in_dim, bound, rng),
            b: vec![0.0; out_dim],
        }
    }

    /// Zero-initialized layer (placeholder shape for parameter loading).
    pub fn zeros(in_dim: usize, out_dim: usize) -> Self {
        Self {
            w: Matrix::zeros(out_dim, in_dim),
            b: vec![0.0; out_dim],
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.cols()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.rows()
    }

    /// Number of scalar parameters (`w` then `b` in the flat layout).
    pub fn param_count(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }

    /// Forward pass: `z = W·x + b`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut z = self.w.matvec(x);
        for (zi, bi) in z.iter_mut().zip(&self.b) {
            *zi += bi;
        }
        z
    }

    /// Batched forward pass: `Z = X·Wᵀ + b` with one input tuple per row of
    /// `x` (`batch × in_dim`). Each output row agrees with
    /// [`Dense::forward`] on the corresponding input row **bitwise** (the
    /// batch kernel sums each output over the inputs in the same index
    /// order; see [`Matrix::matmul_nt`]) and depends only on that input
    /// row, never on the rest of the batch.
    ///
    /// ```
    /// use lte_nn::{Dense, Matrix};
    ///
    /// let mut layer = Dense::zeros(3, 2);
    /// layer.b = vec![1.0, -1.0];
    /// let batch = Matrix::from_rows(&[vec![0.1, 0.2, 0.3], vec![0.4, 0.5, 0.6]], 3);
    /// let z = layer.forward_batch(&batch);
    /// assert_eq!(z.rows(), 2);
    /// assert_eq!(z.row(0), layer.forward(&[0.1, 0.2, 0.3]).as_slice());
    /// ```
    ///
    /// # Panics
    /// Panics when `x.cols() != in_dim()`.
    pub fn forward_batch(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.in_dim(), "batch input width mismatch");
        let mut z = x.matmul_nt(&self.w);
        z.add_row_bias(&self.b);
        z
    }

    /// Single-precision batched forward pass (the pool-scoring fast path).
    /// Weights and biases are demoted to `f32` on the fly — they are tiny
    /// next to the `batch × in_dim` operand — and the product runs on the
    /// SIMD [`Matrix32::matmul_nt_ep`] kernel with the bias add fused into
    /// the epilogue (one pass over the output instead of two). Results
    /// match [`Dense::forward_batch`] to within `f32` round-off; see
    /// [`lte_nn::matrix32`](crate::matrix32) for the accuracy contract.
    ///
    /// # Panics
    /// Panics when `x.cols() != in_dim()`.
    pub fn forward_batch_f32(&self, x: &Matrix32) -> Matrix32 {
        self.forward_batch_f32_act(x, Activation::Identity)
    }

    /// [`Dense::forward_batch_f32`] with the layer activation fused into
    /// the kernel epilogue as well: `act(X·Wᵀ + b)` in a single sweep.
    /// Bitwise identical to `forward_batch_f32` followed by
    /// [`Activation::apply_slice_f32`] (see the epilogue contract in
    /// [`lte_nn::matrix32`](crate::matrix32)).
    ///
    /// # Panics
    /// Panics when `x.cols() != in_dim()`.
    pub fn forward_batch_f32_act(&self, x: &Matrix32, act: Activation) -> Matrix32 {
        assert_eq!(x.cols(), self.in_dim(), "batch input width mismatch");
        let w32 = Matrix32::from_f64(&self.w);
        let b32: Vec<f32> = self.b.iter().map(|&v| v as f32).collect();
        x.matmul_nt_ep(&w32, Epilogue::new(&b32, act))
    }

    /// i8-quantized batched forward pass (the `Ranked` scoring mode):
    /// both the input batch and the demoted weights are dynamically
    /// quantized per row (absmax scale), multiplied with exact `i32`
    /// accumulation, and dequantized through the fused `f32` epilogue
    /// (`act(dequant + b)`). Valid for **argmax-order ranking only** —
    /// see [`lte_nn::qmatmul`](crate::qmatmul) for the contract.
    ///
    /// # Panics
    /// Panics when `x.cols() != in_dim()`.
    pub fn forward_batch_ranked(&self, x: &Matrix32, act: Activation) -> Matrix32 {
        assert_eq!(x.cols(), self.in_dim(), "batch input width mismatch");
        let w32 = Matrix32::from_f64(&self.w);
        let b32: Vec<f32> = self.b.iter().map(|&v| v as f32).collect();
        qmatmul::matmul_nt_ranked(x, &w32, Epilogue::new(&b32, act))
    }

    /// Backward pass. Given `dL/dz` and the cached input `x`, accumulates
    /// `dL/dW` and `dL/db` into the provided flat gradient slice (laid out
    /// `w` row-major then `b`) and returns `dL/dx`.
    pub fn backward(&self, x: &[f64], dz: &[f64], grad: &mut [f64]) -> Vec<f64> {
        let (rows, cols) = (self.w.rows(), self.w.cols());
        debug_assert_eq!(x.len(), cols);
        debug_assert_eq!(dz.len(), rows);
        debug_assert_eq!(grad.len(), self.param_count());

        // dW[r][c] += dz[r] * x[c]; db[r] += dz[r].
        for r in 0..rows {
            let d = dz[r];
            if d != 0.0 {
                let row = &mut grad[r * cols..(r + 1) * cols];
                for (g, &xv) in row.iter_mut().zip(x) {
                    *g += d * xv;
                }
            }
        }
        let b_off = rows * cols;
        for (r, &d) in dz.iter().enumerate() {
            grad[b_off + r] += d;
        }

        // dx = Wᵀ·dz.
        self.w.matvec_t(dz)
    }

    /// Copy parameters into a flat slice (`w` row-major then `b`).
    pub fn write_params(&self, out: &mut [f64]) {
        let wn = self.w.rows() * self.w.cols();
        out[..wn].copy_from_slice(self.w.data());
        out[wn..wn + self.b.len()].copy_from_slice(&self.b);
    }

    /// Load parameters from a flat slice (`w` row-major then `b`).
    pub fn read_params(&mut self, src: &[f64]) {
        let wn = self.w.rows() * self.w.cols();
        let bn = self.b.len();
        self.w.data_mut().copy_from_slice(&src[..wn]);
        self.b.copy_from_slice(&src[wn..wn + bn]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_hand_computation() {
        let mut layer = Dense::zeros(2, 2);
        layer.w = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        layer.b = vec![0.5, -0.5];
        assert_eq!(layer.forward(&[1.0, 1.0]), vec![3.5, 6.5]);
    }

    #[test]
    fn param_round_trip() {
        let mut rng = StdRng::seed_from_u64(0);
        let layer = Dense::he_init(3, 2, &mut rng);
        let mut flat = vec![0.0; layer.param_count()];
        layer.write_params(&mut flat);
        let mut other = Dense::zeros(3, 2);
        other.read_params(&flat);
        assert_eq!(layer, other);
    }

    #[test]
    fn backward_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Dense::he_init(3, 2, &mut rng);
        let x = [0.3, -0.7, 1.1];
        // Scalar loss L = sum(z).
        let dz = [1.0, 1.0];
        let mut grad = vec![0.0; layer.param_count()];
        let dx = layer.backward(&x, &dz, &mut grad);

        let h = 1e-6;
        let loss = |l: &Dense, x: &[f64]| -> f64 { l.forward(x).iter().sum() };

        // Check dW and db numerically.
        let mut flat = vec![0.0; layer.param_count()];
        layer.write_params(&mut flat);
        for i in 0..flat.len() {
            let mut plus = layer.clone();
            let mut fp = flat.clone();
            fp[i] += h;
            plus.read_params(&fp);
            let mut minus = layer.clone();
            let mut fm = flat.clone();
            fm[i] -= h;
            minus.read_params(&fm);
            let numeric = (loss(&plus, &x) - loss(&minus, &x)) / (2.0 * h);
            assert!(
                (numeric - grad[i]).abs() < 1e-5,
                "param {i}: numeric {numeric} vs analytic {}",
                grad[i]
            );
        }

        // Check dx numerically.
        for i in 0..x.len() {
            let mut xp = x;
            xp[i] += h;
            let mut xm = x;
            xm[i] -= h;
            let numeric = (loss(&layer, &xp) - loss(&layer, &xm)) / (2.0 * h);
            assert!((numeric - dx[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn forward_batch_rows_match_forward() {
        let mut rng = StdRng::seed_from_u64(3);
        let layer = Dense::he_init(5, 4, &mut rng);
        let rows: Vec<Vec<f64>> = (0..9)
            .map(|i| (0..5).map(|j| ((i * 5 + j) as f64 * 0.3).sin()).collect())
            .collect();
        let batch = layer.forward_batch(&Matrix::from_rows(&rows, 5));
        assert_eq!(batch.rows(), 9);
        assert_eq!(batch.cols(), 4);
        for (i, row) in rows.iter().enumerate() {
            for (a, b) in batch.row(i).iter().zip(&layer.forward(row)) {
                assert!((a - b).abs() <= 1e-12, "row {i}: {a} vs {b}");
            }
        }
        // Empty batch keeps the output width.
        let empty = layer.forward_batch(&Matrix::from_rows(&[], 5));
        assert_eq!(empty.rows(), 0);
        assert_eq!(empty.cols(), 4);
    }

    #[test]
    fn he_init_bounds_scale_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(2);
        let wide = Dense::he_init(1000, 4, &mut rng);
        let bound = crate::init::he_bound(1000);
        assert!(wide.w.data().iter().all(|v| v.abs() <= bound));
        assert!(wide.b.iter().all(|&v| v == 0.0));
    }
}
