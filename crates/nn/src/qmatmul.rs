//! Quantized i8 matmul for the argmax-order ranking mode.
//!
//! Pool ranking only consumes the *order* of logits (the explore loop
//! takes the top-scoring candidates; the raw values are discarded), so the
//! ranked fast path trades the last two decimal digits for bandwidth:
//! operands are dynamically quantized to `i8` with a **per-row absmax
//! scale** (`scale = absmax / 127`, `q = round(v / scale)`), products
//! accumulate in `i32` (exact integer arithmetic — no rounding inside the
//! k-sum), and each output dequantizes as
//! `c[i][j] = qsum · a_scale[i] · b_scale[j]` before the usual f32
//! epilogue.
//!
//! Two properties matter for the rest of the stack:
//!
//! * **Ranking-only accuracy.** Quantization error is on the order of
//!   `1%` of each row's dynamic range — far outside the f32 noise floor —
//!   so `Ranked` results must only ever feed argmax-order decisions, never
//!   thresholds, calibration, or training. The `lte-core` proptests pin
//!   rank agreement with the `f64` reference above a `Ranked`-specific
//!   noise floor.
//! * **Block-independent determinism.** The scale for row `i` depends only
//!   on row `i`, and the integer k-sum is exact, so splitting a pool into
//!   row blocks cannot change any output bit — the same invariant that
//!   makes the f32 path's parallel dispatch bitwise equal to the serial
//!   pass carries over unchanged.
//!
//! The kernel dispatches to an AVX2 path
//! (`i8 → i16` widening, `_mm256_madd_epi16` pair-sums, `i32` lanes) when
//! the CPU supports it, with a portable scalar fallback. Both accumulate
//! exactly (integers), so they agree **bitwise** on any machine.

use crate::matrix32::{Epilogue, Matrix32};

/// Maximum inner dimension the i32 accumulator provably cannot overflow:
/// each product is at most `127² = 16129`, so `k ≤ 2³¹ / 16129 ≈ 1.3e5`.
/// Classifier shapes are `k ≤ a few hundred`; the guard is a debug assert
/// plus a documented contract, not a hot-path branch.
pub const MAX_QUANT_K: usize = (i32::MAX as usize) / (127 * 127);

/// A row-major `i8` matrix quantized from a [`Matrix32`] with one absmax
/// scale per row: `original[i][j] ≈ q[i][j] · scale[i]`.
#[derive(Debug, Clone)]
pub struct QuantizedMat {
    rows: usize,
    cols: usize,
    q: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantizedMat {
    /// Dynamically quantize `m` with a per-row absmax scale. An all-zero
    /// row gets scale `0` (its quantized values are all zero, and every
    /// product through it dequantizes to exactly `0.0`).
    pub fn quantize(m: &Matrix32) -> Self {
        let (rows, cols) = (m.rows(), m.cols());
        debug_assert!(cols <= MAX_QUANT_K, "k too large for i32 accumulation");
        let mut q = vec![0i8; rows * cols];
        let mut scales = vec![0.0f32; rows];
        for r in 0..rows {
            let row = m.row(r);
            let absmax = row.iter().fold(0.0f32, |mx, &v| mx.max(v.abs()));
            if absmax > 0.0 {
                scales[r] = absmax / 127.0;
                let inv = 127.0 / absmax;
                for (dst, &v) in q[r * cols..(r + 1) * cols].iter_mut().zip(row) {
                    // |v·inv| ≤ 127, so the saturating `as` cast is exact.
                    *dst = (v * inv).round() as i8;
                }
            }
        }
        Self {
            rows,
            cols,
            q,
            scales,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Quantized row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[i8] {
        debug_assert!(r < self.rows);
        &self.q[r * self.cols..(r + 1) * self.cols]
    }

    /// Dequantization scale for row `r`.
    #[inline]
    pub fn scale(&self, r: usize) -> f32 {
        self.scales[r]
    }
}

/// `C = act(dequant(Aq·Bqᵀ) + bias)`: the quantized counterpart of
/// [`Matrix32::matmul_nt_ep`]. `A` is `n × k`, `B` is `m × k`, and
/// `C[i][j] = act(qsum(i, j) · a.scale(i) · b.scale(j) + bias[j])` with an
/// exact `i32` integer k-sum.
///
/// Every output row depends only on its own input row (row-local scales,
/// exact integer sums), so block-parallel dispatch is bitwise identical to
/// the serial pass — and the AVX2 and scalar kernels agree bitwise too.
///
/// # Panics
/// Panics when the inner dimensions disagree or the epilogue bias width
/// differs from `b.rows()`.
pub fn matmul_nt_q(a: &QuantizedMat, b: &QuantizedMat, ep: Epilogue<'_>) -> Matrix32 {
    assert_eq!(
        a.cols, b.cols,
        "quantized matmul_nt inner dimension mismatch"
    );
    if let Some(bias) = ep.bias {
        assert_eq!(bias.len(), b.rows, "epilogue bias width mismatch");
    }
    let (n, m) = (a.rows, b.rows);
    let mut out = Matrix32::zeros(n, m);
    if n == 0 || m == 0 {
        return out;
    }
    #[cfg(target_arch = "x86_64")]
    if is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 presence was just verified at runtime.
        mm_loop(a, b, &mut out, ep, |x, y| unsafe { dot_i8_avx2(x, y) });
        return out;
    }
    mm_loop(a, b, &mut out, ep, dot_i8_scalar);
    out
}

/// The shared outer loop: one integer dot per output, dequantized and run
/// through the epilogue. Generic over the dot kernel so the AVX2 and
/// scalar paths share every non-kernel instruction.
fn mm_loop(
    a: &QuantizedMat,
    b: &QuantizedMat,
    out: &mut Matrix32,
    ep: Epilogue<'_>,
    dot: impl Fn(&[i8], &[i8]) -> i32,
) {
    let n = a.rows;
    for i in 0..n {
        let arow = a.row(i);
        let sa = a.scale(i);
        let orow = out.row_mut(i);
        for (j, o) in orow.iter_mut().enumerate() {
            let qsum = dot(arow, b.row(j));
            let mut v = qsum as f32 * (sa * b.scale(j));
            if let Some(bias) = ep.bias {
                v += bias[j];
            }
            *o = ep.activation.apply_f32(v);
        }
    }
}

/// Exact scalar i8·i8 → i32 dot product.
#[inline]
fn dot_i8_scalar(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| x as i32 * y as i32)
        .sum::<i32>()
}

/// AVX2 i8 dot product: 16 bytes per step, widened to `i16` lanes
/// (`_mm256_cvtepi8_epi16`), pair-summed into `i32` lanes
/// (`_mm256_madd_epi16` — exact: `i16` products fit `i32`), reduced once
/// at the end. Integer arithmetic is associative, so this is bitwise
/// identical to [`dot_i8_scalar`].
///
/// # Safety
/// The CPU must support AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_i8_avx2(a: &[i8], b: &[i8]) -> i32 {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len(), b.len());
    let k = a.len();
    let mut acc = _mm256_setzero_si256();
    let mut kk = 0;
    while kk + 16 <= k {
        let va = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(kk) as *const __m128i));
        let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(kk) as *const __m128i));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
        kk += 16;
    }
    let mut lanes = [0i32; 8];
    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
    let mut s: i32 = lanes.iter().sum();
    while kk < k {
        s += *a.get_unchecked(kk) as i32 * *b.get_unchecked(kk) as i32;
        kk += 1;
    }
    s
}

/// Quantize both operands and multiply: the one-call form used by the
/// `Ranked` forward path (`A` is the activations batch, `B` the weights).
pub fn matmul_nt_ranked(a: &Matrix32, b: &Matrix32, ep: Epilogue<'_>) -> Matrix32 {
    matmul_nt_q(&QuantizedMat::quantize(a), &QuantizedMat::quantize(b), ep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::matrix::Matrix;

    fn test_pair(n: usize, m: usize, k: usize) -> (Matrix32, Matrix32) {
        let a = Matrix32::from_f64(&Matrix::from_fn(n, k, |r, c| {
            ((r * 31 + c * 17) as f64).sin() * (1.0 + r as f64)
        }));
        let b = Matrix32::from_f64(&Matrix::from_fn(m, k, |r, c| {
            ((r * 13 + c * 7) as f64).cos() * 0.5
        }));
        (a, b)
    }

    #[test]
    fn quantize_bounds_and_round_trip() {
        let m = Matrix32::from_rows(&[vec![1.0, -2.0, 0.5], vec![0.0, 0.0, 0.0]], 3);
        let q = QuantizedMat::quantize(&m);
        assert_eq!((q.rows(), q.cols()), (2, 3));
        // Row 0: absmax 2.0 → scale 2/127; the absmax element hits ±127.
        assert_eq!(q.row(0)[1], -127);
        assert!((q.scale(0) - 2.0 / 127.0).abs() < 1e-9);
        for (&qv, &v) in q.row(0).iter().zip(m.row(0)) {
            assert!((qv as f32 * q.scale(0) - v).abs() <= q.scale(0) * 0.5 + 1e-6);
        }
        // All-zero row: scale 0, all-zero quants.
        assert_eq!(q.scale(1), 0.0);
        assert!(q.row(1).iter().all(|&v| v == 0));
    }

    #[test]
    fn quantized_matmul_tracks_f32_within_quant_error() {
        for (n, m, k) in [(1, 1, 1), (3, 5, 7), (8, 9, 16), (5, 33, 64), (2, 17, 40)] {
            let (a, b) = test_pair(n, m, k);
            let exact = a.matmul_nt(&b);
            let ranked = matmul_nt_ranked(&a, &b, Epilogue::none());
            // Each operand's quantization error is ≤ scale/2 per element;
            // the dot accumulates ≤ k·(|a|·eb + |b|·ea) of it.
            for i in 0..n {
                let ea = QuantizedMat::quantize(&a).scale(i) * 0.5;
                for j in 0..m {
                    let eb = QuantizedMat::quantize(&b).scale(j) * 0.5;
                    let amax = a.row(i).iter().fold(0.0f32, |mx, &v| mx.max(v.abs()));
                    let bmax = b.row(j).iter().fold(0.0f32, |mx, &v| mx.max(v.abs()));
                    let tol = (k as f32) * (amax * eb + bmax * ea) + 1e-6;
                    let (x, y) = (exact.row(i)[j], ranked.row(i)[j]);
                    assert!((x - y).abs() <= tol, "{n}x{m}x{k} [{i}][{j}]: {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn avx2_and_scalar_dots_agree_bitwise() {
        for k in [0, 1, 15, 16, 17, 40, 64, 100] {
            let a: Vec<i8> = (0..k).map(|i| ((i * 37 + 11) % 255) as i8).collect();
            let b: Vec<i8> = (0..k).map(|i| ((i * 91 + 5) % 255) as i8).collect();
            let scalar = dot_i8_scalar(&a, &b);
            #[cfg(target_arch = "x86_64")]
            if is_x86_feature_detected!("avx2") {
                // SAFETY: guarded by the feature check above.
                let simd = unsafe { dot_i8_avx2(&a, &b) };
                assert_eq!(simd, scalar, "k={k}");
            }
            // Cross-check against a naive i64 sum (no overflow possible).
            let wide: i64 = a.iter().zip(&b).map(|(&x, &y)| x as i64 * y as i64).sum();
            assert_eq!(scalar as i64, wide, "k={k}");
        }
    }

    #[test]
    fn epilogue_applies_after_dequant() {
        let a = Matrix32::from_rows(&[vec![1.0, 1.0]], 2);
        let b = Matrix32::from_rows(&[vec![1.0, 1.0], vec![-1.0, -1.0]], 2);
        let bias = [0.25f32, 0.25];
        let z = matmul_nt_ranked(&a, &b, Epilogue::new(&bias, Activation::Relu));
        // Exactly representable values quantize exactly: 2 + 0.25 and
        // relu(-2 + 0.25).
        assert_eq!(z.row(0), &[2.25f32, 0.0]);
    }

    #[test]
    fn degenerate_shapes() {
        let a = Matrix32::zeros(0, 4);
        let b = Matrix32::zeros(3, 4);
        let z = matmul_nt_ranked(&a, &b, Epilogue::none());
        assert_eq!((z.rows(), z.cols()), (0, 3));
        let z = matmul_nt_ranked(&b, &a, Epilogue::none());
        assert_eq!((z.rows(), z.cols()), (3, 0));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn checks_inner_dims() {
        let a = QuantizedMat::quantize(&Matrix32::zeros(2, 3));
        let b = QuantizedMat::quantize(&Matrix32::zeros(2, 4));
        matmul_nt_q(&a, &b, Epilogue::none());
    }
}
