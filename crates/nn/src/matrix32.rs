//! Single-precision matrices for the pool-scoring fast path.
//!
//! Pool ranking only needs the *order* of logits, not their 16th decimal:
//! [`Matrix32`] stores `f32` and its [`Matrix32::matmul_nt`] kernel
//! accumulates in lane-parallel partial sums, which (unlike the strictly
//! ordered `f64` kernel in [`Matrix::matmul_nt`]) can run as packed FMAs —
//! twice the SIMD width and half the memory traffic of the `f64` path.
//!
//! Three kernels sit behind [`Matrix32::matmul_nt`] /
//! [`Matrix32::matmul_nt_ep`], picked at runtime by [`KernelKind::detect`]
//! (`is_x86_feature_detected!`, so the portable build baseline stays SSE2):
//!
//! * an explicit AVX-512F microkernel processing an 8-row × 16-column
//!   register tile of fused 16-lane multiply-adds,
//! * an explicit AVX2+FMA microkernel processing an 8-row × 8-column
//!   register tile of fused 8-lane multiply-adds,
//! * a portable lane-parallel fallback the autovectorizer can turn into
//!   packed (unfused) multiplies and adds on any target.
//!
//! ## Fused epilogue
//!
//! The classifier's per-layer pipeline used to be `matmul → bias pass →
//! activation pass` — two extra full sweeps over every layer output.
//! [`Matrix32::matmul_nt_ep`] takes an [`Epilogue`] instead and applies the
//! bias add and a ReLU/identity activation **in-register on each output
//! tile before it is stored**, eliminating both sweeps. The fused result is
//! **bitwise identical** to the unfused three-pass composition on the same
//! machine (the epilogue performs exactly the same `f32` add and max, just
//! before the store instead of in a later pass) — pinned by
//! `fused_epilogue_matches_unfused_passes_bitwise` here and by proptests in
//! `lte-core`. Sigmoid/Tanh epilogues are honored too, but run as a
//! post-store pass (only the ReLU/identity family is register-friendly).
//!
//! ## Accuracy contract
//!
//! `f32` results agree with the `f64` reference to within a few units of
//! `f32` round-off, i.e. a relative error on the order of `1e-6` scaled by
//! the dot-product magnitude (`k · max|a| · max|b|`). They are **not**
//! bit-comparable across kernel *families* — the fused paths round once per
//! multiply-add, the portable path twice, so the same machine-level result
//! is only guaranteed *within* one kernel family, not across CPU
//! generations (the AVX-512F and AVX2+FMA tiles do agree bitwise with each
//! other: both accumulate each output as one strictly ordered fused chain)
//! — and must never feed gradient checks or parameter updates: training and
//! gradcheck stay on the `f64` path. What the fast path *does* guarantee
//! (pinned by proptests in `lte-core`) is that pool-scoring ranks agree
//! with the `f64` path for every pair of candidates whose `f64` scores are
//! separated by more than the `f32` noise floor.

use crate::activation::Activation;
use crate::matrix::{l1_block_rows_sized, Matrix};

/// SIMD lanes per accumulator chain: 8 × `f32` is one AVX2 register.
const LANES: usize = 8;

/// Which `f32` microkernel [`Matrix32::matmul_nt`] dispatches to on the
/// running CPU — detected once per call via `is_x86_feature_detected!`
/// (a cached CPUID probe, so detection is a load + branch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// 16-lane AVX-512F register tiles (x86-64 with `avx512f`).
    Avx512f,
    /// 8-lane AVX2+FMA register tiles (x86-64 with `avx2` + `fma`).
    Avx2Fma,
    /// The autovectorized lane-parallel fallback (any target; SSE2 on the
    /// x86-64 build baseline).
    Portable,
}

impl KernelKind {
    /// The best kernel the running CPU supports, in preference order
    /// AVX-512F → AVX2+FMA → portable.
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx512f") {
                return KernelKind::Avx512f;
            }
            if avx::available() {
                return KernelKind::Avx2Fma;
            }
        }
        KernelKind::Portable
    }

    /// Whether the running CPU can execute this kernel —
    /// [`KernelKind::detect`] picks the best supported one, but benchmarks
    /// force specific kernels via [`Matrix32::matmul_nt_ep_with`] and must
    /// check support first.
    pub fn supported(self) -> bool {
        match self {
            KernelKind::Portable => true,
            #[cfg(target_arch = "x86_64")]
            KernelKind::Avx512f => is_x86_feature_detected!("avx512f"),
            #[cfg(target_arch = "x86_64")]
            KernelKind::Avx2Fma => avx::available(),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// Stable snake-case name, used by benchmark snapshots.
    pub fn as_str(self) -> &'static str {
        match self {
            KernelKind::Avx512f => "avx512f",
            KernelKind::Avx2Fma => "avx2_fma",
            KernelKind::Portable => "portable",
        }
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Comma-separated list of the SIMD features the scoring kernels probe
/// for on the running CPU — recorded in `BENCH_*.json` snapshots so
/// committed numbers carry their hardware context.
pub fn cpu_features() -> String {
    #[cfg(target_arch = "x86_64")]
    {
        let mut features: Vec<&str> = vec!["sse2"];
        if is_x86_feature_detected!("avx2") {
            features.push("avx2");
        }
        if is_x86_feature_detected!("fma") {
            features.push("fma");
        }
        if is_x86_feature_detected!("avx512f") {
            features.push("avx512f");
        }
        features.join(",")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        "portable".to_string()
    }
}

/// A fused kernel epilogue: the per-output operations
/// (`out[i][j] = act(sum + bias[j])`) that [`Matrix32::matmul_nt_ep`]
/// applies to each output tile in-register before storing it, instead of
/// as separate full passes over the output.
///
/// The fused result is bitwise identical to the unfused composition
/// `matmul_nt` → [`Matrix32::add_row_bias`] →
/// [`Activation::apply_slice_f32`] on the same machine; see the module
/// docs for the contract.
#[derive(Debug, Clone, Copy)]
pub struct Epilogue<'a> {
    /// Per-output-column bias added to every row (`None` = no bias).
    pub bias: Option<&'a [f32]>,
    /// Activation applied after the bias add. ReLU and identity run
    /// in-register; other activations run as a post-store pass.
    pub activation: Activation,
}

impl<'a> Epilogue<'a> {
    /// The no-op epilogue: no bias, identity activation.
    pub fn none() -> Epilogue<'static> {
        Epilogue {
            bias: None,
            activation: Activation::Identity,
        }
    }

    /// Bias add followed by an activation.
    pub fn new(bias: &'a [f32], activation: Activation) -> Self {
        Self {
            bias: Some(bias),
            activation,
        }
    }

    /// Bias add only (identity activation).
    pub fn bias_only(bias: &'a [f32]) -> Self {
        Self::new(bias, Activation::Identity)
    }
}

/// A dense row-major `rows × cols` matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix32 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix32 {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Demote an `f64` matrix (each element rounded to nearest `f32`).
    pub fn from_f64(m: &Matrix) -> Self {
        Self {
            rows: m.rows(),
            cols: m.cols(),
            data: m.data().iter().map(|&v| v as f32).collect(),
        }
    }

    /// Build from a slice of equally sized `f64` rows, demoting each value.
    /// `cols` must be passed explicitly so the empty batch keeps its width.
    ///
    /// # Panics
    /// Panics when any row's length differs from `cols`.
    pub fn from_rows(rows: &[Vec<f64>], cols: usize) -> Self {
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "row width mismatch");
            data.extend(row.iter().map(|&v| v as f32));
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Promote back to `f64` (exact: every `f32` is representable).
    pub fn to_f64(&self) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&v| v as f64).collect(),
        )
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Tiled `f32` matrix product with a transposed right operand:
    /// `C = A·Bᵀ` (`A` is `n × k`, `B` is `m × k`,
    /// `C[i][j] = ⟨A.row(i), B.row(j)⟩`).
    ///
    /// Dispatches at runtime to an explicit AVX2+FMA register-tile
    /// microkernel when the CPU supports it, and otherwise to a portable
    /// kernel with the same cache tiling as [`Matrix::matmul_nt`]
    /// (L1-resident slabs of `B`) whose inner loop keeps eight
    /// *lane-parallel* partial sums per output. Both kernels reassociate
    /// the `k`-sum, so results differ from a strictly ordered scalar sum —
    /// and between the two kernels — by normal `f32` round-off (see the
    /// module docs for the accuracy contract). Each output row still
    /// depends only on its own input row.
    ///
    /// ```
    /// use lte_nn::{Matrix, Matrix32};
    ///
    /// let a = Matrix::from_fn(3, 40, |r, c| ((r * 40 + c) as f64 * 0.1).sin());
    /// let b = Matrix::from_fn(5, 40, |r, c| ((r * 40 + c) as f64 * 0.2).cos());
    /// let exact = a.matmul_nt(&b);
    /// let fast = Matrix32::from_f64(&a).matmul_nt(&Matrix32::from_f64(&b));
    /// for (x, y) in exact.data().iter().zip(fast.data()) {
    ///     assert!((x - *y as f64).abs() < 1e-4); // f32 round-off, not drift
    /// }
    /// ```
    ///
    /// # Panics
    /// Panics when the inner dimensions (`cols`) disagree.
    pub fn matmul_nt(&self, other: &Matrix32) -> Matrix32 {
        self.matmul_nt_ep(other, Epilogue::none())
    }

    /// [`Matrix32::matmul_nt`] with a fused [`Epilogue`]:
    /// `C[i][j] = act(⟨A.row(i), B.row(j)⟩ + bias[j])`, with the bias add
    /// and a ReLU/identity activation applied in-register on each output
    /// tile before it is stored. Bitwise identical to the unfused
    /// composition `matmul_nt` → [`Matrix32::add_row_bias`] →
    /// [`Activation::apply_slice_f32`] on the same machine.
    ///
    /// ```
    /// use lte_nn::{Activation, Epilogue, Matrix32};
    ///
    /// let a = Matrix32::from_rows(&[vec![1.0, 2.0]], 2);
    /// let w = Matrix32::from_rows(&[vec![1.0, 0.0], vec![0.0, -1.0]], 2);
    /// let bias = [0.5f32, -0.5];
    /// let z = a.matmul_nt_ep(&w, Epilogue::new(&bias, Activation::Relu));
    /// assert_eq!(z.row(0), &[1.5f32, 0.0]); // relu(1 + 0.5), relu(-2 - 0.5)
    /// ```
    ///
    /// # Panics
    /// Panics when the inner dimensions (`cols`) disagree or the epilogue
    /// bias width differs from `other.rows`.
    pub fn matmul_nt_ep(&self, other: &Matrix32, ep: Epilogue<'_>) -> Matrix32 {
        self.matmul_nt_ep_with(other, ep, KernelKind::detect())
    }

    /// [`Matrix32::matmul_nt_ep`] pinned to a specific microkernel instead
    /// of the auto-detected best one. All supported kernels produce
    /// bitwise-identical output; this entry point exists so benchmarks and
    /// tests can time or compare them individually.
    ///
    /// # Panics
    /// Panics when `kernel` is not supported on the running CPU (check
    /// [`KernelKind::supported`] first), and on the same dimension
    /// mismatches as [`Matrix32::matmul_nt_ep`].
    pub fn matmul_nt_ep_with(
        &self,
        other: &Matrix32,
        ep: Epilogue<'_>,
        kernel: KernelKind,
    ) -> Matrix32 {
        assert!(
            kernel.supported(),
            "kernel {kernel} is not supported on this CPU"
        );
        assert_eq!(self.cols, other.cols, "matmul_nt inner dimension mismatch");
        if let Some(b) = ep.bias {
            assert_eq!(b.len(), other.rows, "epilogue bias width mismatch");
        }
        let (n, m) = (self.rows, other.rows);
        let mut out = Matrix32::zeros(n, m);
        if n == 0 || m == 0 {
            return out;
        }
        // Only the ReLU/identity family fuses in-register; transcendental
        // activations keep the fused bias but run as a post-store pass.
        let (fused, post) = match ep.activation {
            Activation::Relu | Activation::Identity => (ep, None),
            act => (
                Epilogue {
                    bias: ep.bias,
                    activation: Activation::Identity,
                },
                Some(act),
            ),
        };
        match kernel {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: the matching CPU features were just verified at runtime.
            KernelKind::Avx512f => unsafe { avx512::matmul_nt(self, other, &mut out, fused) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above.
            KernelKind::Avx2Fma => unsafe { avx::matmul_nt(self, other, &mut out, fused) },
            _ => self.matmul_nt_portable(other, &mut out, fused),
        }
        if let Some(act) = post {
            act.apply_slice_f32(&mut out.data);
        }
        out
    }

    /// Portable lane-parallel kernel behind [`Matrix32::matmul_nt_ep`] —
    /// the fallback when no SIMD microkernel is available; the test suite
    /// also pins it against the microkernels directly. `out` must already
    /// be `n × m`; `ep.activation` must be ReLU or identity (the dispatcher
    /// strips anything else into a post-pass).
    fn matmul_nt_portable(&self, other: &Matrix32, out: &mut Matrix32, ep: Epilogue<'_>) {
        const COLS: usize = 8;
        let (n, m, k) = (self.rows, other.rows, self.cols);
        let k_main = k - k % LANES;
        let slab = l1_block_rows_sized(k, COLS, std::mem::size_of::<f32>());
        let mut j0 = 0;
        while j0 < m {
            let j1 = (j0 + slab).min(m);
            for i in 0..n {
                let a = &self.data[i * k..(i + 1) * k];
                let orow = &mut out.data[i * m..(i + 1) * m];
                let mut j = j0;
                while j + COLS <= j1 {
                    let cols: [&[f32]; COLS] =
                        std::array::from_fn(|c| &other.data[(j + c) * k..(j + c + 1) * k]);
                    // Eight lane-parallel partial sums per column; the
                    // innermost loop is a packed FMA after vectorization.
                    let mut acc = [[0.0f32; LANES]; COLS];
                    let mut kk = 0;
                    while kk < k_main {
                        let ca: &[f32; LANES] = a[kk..kk + LANES].try_into().expect("lane chunk");
                        for c in 0..COLS {
                            let cb: &[f32; LANES] =
                                cols[c][kk..kk + LANES].try_into().expect("lane chunk");
                            let s = &mut acc[c];
                            for l in 0..LANES {
                                s[l] += ca[l] * cb[l];
                            }
                        }
                        kk += LANES;
                    }
                    let mut vals = [0.0f32; COLS];
                    for c in 0..COLS {
                        let mut s = 0.0f32;
                        for lane in acc[c] {
                            s += lane;
                        }
                        for kk in k_main..k {
                            s += a[kk] * cols[c][kk];
                        }
                        vals[c] = s;
                    }
                    store_cols_ep(orow, j, &vals, ep);
                    j += COLS;
                }
                if j < j1 {
                    // Ragged column tail: same per-column dot, stored
                    // through the same helper as the full blocks.
                    let tail = j1 - j;
                    let mut vals = [0.0f32; COLS];
                    for (c, v) in vals[..tail].iter_mut().enumerate() {
                        *v = dot_f32(a, &other.data[(j + c) * k..(j + c + 1) * k]);
                    }
                    store_cols_ep(orow, j, &vals[..tail], ep);
                }
            }
            j0 = j1;
        }
    }

    /// Add a bias vector to every row in place (`A.row(i) += b` for all i).
    ///
    /// This is the *unfused* bias pass — the hot path fuses it into the
    /// kernel epilogue via [`Matrix32::matmul_nt_ep`]; this method remains
    /// for cold paths and as the reference the fusion tests pin against.
    ///
    /// # Panics
    /// Panics when `b.len() != cols`.
    pub fn add_row_bias(&mut self, b: &[f32]) {
        assert_eq!(b.len(), self.cols, "bias width mismatch");
        for r in 0..self.rows {
            for (v, bi) in self.row_mut(r).iter_mut().zip(b) {
                *v += bi;
            }
        }
    }
}

/// The portable kernel's single store helper, shared by the full-block and
/// ragged-tail column paths: applies the epilogue (`act(v + bias[j + c])`)
/// to each accumulated value and stores it at `orow[j..j + vals.len()]`.
/// Mirrors the masked epilogue-store in the SIMD kernels so both tails run
/// the exact same per-element ops as full blocks.
#[inline]
fn store_cols_ep(orow: &mut [f32], j: usize, vals: &[f32], ep: Epilogue<'_>) {
    for (c, &v) in vals.iter().enumerate() {
        let mut x = v;
        if let Some(b) = ep.bias {
            x += b[j + c];
        }
        orow[j + c] = ep.activation.apply_f32(x);
    }
}

/// Explicit AVX2+FMA microkernel for [`Matrix32::matmul_nt`].
///
/// The build baseline is plain SSE2 so the workspace stays portable; this
/// module upgrades the hot kernel at *runtime* when the CPU reports AVX2
/// and FMA (`is_x86_feature_detected!` caches the CPUID probe, so the
/// check is a load + branch per matmul).
///
/// The classifier's matmuls are tall and skinny (thousands of pool rows,
/// `k = m = Ne ≈ 64`), where a dot-product kernel drowns in horizontal
/// reductions: at `k = 64` each output is only eight 8-lane FMAs, against
/// a ~6-op `hsum` + scalar store epilogue. This kernel is *broadcast*
/// -structured instead: `B` is transposed once per call (`k × m`,
/// L1-resident at classifier shapes, amortized over the row sweep), and
/// each 8-row × 8-column register tile accumulates
/// `acc[r] += broadcast(A[i+r][kk]) · Bᵀ[kk][j..j+8]` over the full `k`
/// before eight plain vector stores — no horizontal reduction anywhere.
/// Eight independent chains cover the FMA latency, and each `Bᵀ` load is
/// shared by all eight rows. Ragged column tails use masked loads/stores,
/// so any `m` (including the classifier head's `m = 1`) stays on the same
/// path.
///
/// Each output's `k`-sum is strictly ordered but *fused* (one rounding
/// per multiply-add, where the portable kernel rounds twice and
/// reassociates into lanes), so the two kernels agree only within the
/// module-level accuracy contract, never bitwise — pinned by
/// `avx_and_portable_kernels_agree`.
#[cfg(target_arch = "x86_64")]
mod avx {
    use super::{Activation, Epilogue, Matrix32};
    use std::arch::x86_64::*;

    /// True when the running CPU supports the fused 8-lane path.
    #[inline]
    pub fn available() -> bool {
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
    }

    /// Rows per register tile: 8 accumulators is enough independent FMA
    /// chains to saturate both FMA ports past the instruction latency,
    /// while leaving registers for the shared `Bᵀ` load.
    const ROWS: usize = 8;

    /// Lane mask with the low `tail` of 8 lanes active (for ragged `m`).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn tail_mask(tail: usize) -> __m256i {
        let lanes: [i32; 8] = std::array::from_fn(|l| if l < tail { -1 } else { 0 });
        _mm256_loadu_si256(lanes.as_ptr() as *const __m256i)
    }

    /// Apply the fused epilogue to one accumulated output vector:
    /// `act(v + bias)`. `_mm256_max_ps(x, 0)` returns `0` for a NaN `x`,
    /// matching scalar `f32::max(x, 0.0)` lane for lane, so fused ReLU is
    /// bitwise-identical to the unfused pass.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn apply_ep(v: __m256, vbias: Option<__m256>, relu: bool) -> __m256 {
        let mut x = v;
        if let Some(b) = vbias {
            x = _mm256_add_ps(x, b);
        }
        if relu {
            x = _mm256_max_ps(x, _mm256_setzero_ps());
        }
        x
    }

    /// Score `R` consecutive `A` rows starting at `i` against every column
    /// block of `bt` (the `k × m` transpose of `B`), applying the fused
    /// epilogue in-register before each store.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn row_tile<const R: usize>(
        a: &Matrix32,
        bt: &[f32],
        out: &mut Matrix32,
        i: usize,
        m: usize,
        mask: __m256i,
        ep: Epilogue<'_>,
    ) {
        let k = a.cols;
        let arows: [&[f32]; R] = std::array::from_fn(|r| &a.data[(i + r) * k..(i + r + 1) * k]);
        let relu = matches!(ep.activation, Activation::Relu);
        let m_main = m - m % 8;
        let mut jb = 0;
        while jb < m_main {
            let mut acc = [_mm256_setzero_ps(); R];
            for kk in 0..k {
                let vb = _mm256_loadu_ps(bt.as_ptr().add(kk * m + jb));
                for r in 0..R {
                    let va = _mm256_set1_ps(*arows[r].get_unchecked(kk));
                    acc[r] = _mm256_fmadd_ps(va, vb, acc[r]);
                }
            }
            let vbias = ep.bias.map(|b| _mm256_loadu_ps(b.as_ptr().add(jb)));
            for (r, &v) in acc.iter().enumerate() {
                let v = apply_ep(v, vbias, relu);
                _mm256_storeu_ps(out.data.as_mut_ptr().add((i + r) * m + jb), v);
            }
            jb += 8;
        }
        if jb < m {
            // Ragged column tail: inactive mask lanes neither fault on
            // load nor write on store, and the epilogue runs on the same
            // masked vector as the full blocks.
            let mut acc = [_mm256_setzero_ps(); R];
            for kk in 0..k {
                let vb = _mm256_maskload_ps(bt.as_ptr().add(kk * m + jb), mask);
                for r in 0..R {
                    let va = _mm256_set1_ps(*arows[r].get_unchecked(kk));
                    acc[r] = _mm256_fmadd_ps(va, vb, acc[r]);
                }
            }
            let vbias = ep
                .bias
                .map(|b| _mm256_maskload_ps(b.as_ptr().add(jb), mask));
            for (r, &v) in acc.iter().enumerate() {
                let v = apply_ep(v, vbias, relu);
                _mm256_maskstore_ps(out.data.as_mut_ptr().add((i + r) * m + jb), mask, v);
            }
        }
    }

    /// `out = act(A·Bᵀ + bias)` with fused 8-lane multiply-adds and the
    /// epilogue applied in-register. `out` must already be
    /// `A.rows × B.rows`; shapes and the ReLU/identity-only epilogue are
    /// the caller's contract ([`Matrix32::matmul_nt_ep`] checks them).
    ///
    /// # Safety
    /// The CPU must support AVX2 and FMA (check [`available`] first).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn matmul_nt(a: &Matrix32, b: &Matrix32, out: &mut Matrix32, ep: Epilogue<'_>) {
        let (n, m, k) = (a.rows, b.rows, a.cols);
        // Transpose B once so the inner loop reads 8 consecutive output
        // columns per load; O(m·k) against the O(n·m·k) sweep below.
        let mut bt = vec![0.0f32; k * m];
        for j in 0..m {
            for kk in 0..k {
                bt[kk * m + j] = b.data[j * k + kk];
            }
        }
        let mask = tail_mask(m % 8);
        let mut i = 0;
        while i + ROWS <= n {
            row_tile::<ROWS>(a, &bt, out, i, m, mask, ep);
            i += ROWS;
        }
        while i < n {
            row_tile::<1>(a, &bt, out, i, m, mask, ep);
            i += 1;
        }
    }
}

/// Explicit AVX-512F microkernel for [`Matrix32::matmul_nt_ep`].
///
/// Same broadcast structure as the AVX2 kernel — `B` transposed once per
/// call, 8-row register tiles, fused epilogue before every store — but each
/// tile covers **16** output columns per `zmm` register instead of 8, so
/// the inner loop issues half the loads and stores per output. Ragged
/// column tails use `__mmask16` masked loads/stores instead of a separate
/// scalar path.
///
/// Per output, the `k`-accumulation is the *same* strictly ordered fused
/// chain as the AVX2 kernel (one FMA per `k` step; only the column blocking
/// differs, and blocking never touches the `k`-sum order), so the two SIMD
/// kernels agree **bitwise** — pinned by `avx512_and_avx2_agree_bitwise`.
#[cfg(target_arch = "x86_64")]
mod avx512 {
    use super::{Activation, Epilogue, Matrix32};
    use std::arch::x86_64::*;

    /// Rows per register tile; see the AVX2 kernel's rationale. AVX-512
    /// doubles the architectural register count, so 8 accumulators + the
    /// shared `Bᵀ` load leave plenty of headroom.
    const ROWS: usize = 8;

    /// Apply the fused epilogue to one accumulated output vector; see
    /// `avx::apply_ep` for the NaN contract of `max(x, 0)`.
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn apply_ep(v: __m512, vbias: Option<__m512>, relu: bool) -> __m512 {
        let mut x = v;
        if let Some(b) = vbias {
            x = _mm512_add_ps(x, b);
        }
        if relu {
            x = _mm512_max_ps(x, _mm512_setzero_ps());
        }
        x
    }

    /// Score `R` consecutive `A` rows starting at `i` against every
    /// 16-column block of `bt` (the `k × m` transpose of `B`), applying
    /// the fused epilogue in-register before each store.
    #[target_feature(enable = "avx512f")]
    unsafe fn row_tile<const R: usize>(
        a: &Matrix32,
        bt: &[f32],
        out: &mut Matrix32,
        i: usize,
        m: usize,
        mask: __mmask16,
        ep: Epilogue<'_>,
    ) {
        let k = a.cols;
        let arows: [&[f32]; R] = std::array::from_fn(|r| &a.data[(i + r) * k..(i + r + 1) * k]);
        let relu = matches!(ep.activation, Activation::Relu);
        let m_main = m - m % 16;
        let mut jb = 0;
        while jb < m_main {
            let mut acc = [_mm512_setzero_ps(); R];
            for kk in 0..k {
                let vb = _mm512_loadu_ps(bt.as_ptr().add(kk * m + jb));
                for r in 0..R {
                    let va = _mm512_set1_ps(*arows[r].get_unchecked(kk));
                    acc[r] = _mm512_fmadd_ps(va, vb, acc[r]);
                }
            }
            let vbias = ep.bias.map(|b| _mm512_loadu_ps(b.as_ptr().add(jb)));
            for (r, &v) in acc.iter().enumerate() {
                let v = apply_ep(v, vbias, relu);
                _mm512_storeu_ps(out.data.as_mut_ptr().add((i + r) * m + jb), v);
            }
            jb += 16;
        }
        if jb < m {
            // Ragged column tail: `maskz` loads zero the inactive lanes
            // (they never reach memory) and the masked store writes only
            // the active ones.
            let mut acc = [_mm512_setzero_ps(); R];
            for kk in 0..k {
                let vb = _mm512_maskz_loadu_ps(mask, bt.as_ptr().add(kk * m + jb));
                for r in 0..R {
                    let va = _mm512_set1_ps(*arows[r].get_unchecked(kk));
                    acc[r] = _mm512_fmadd_ps(va, vb, acc[r]);
                }
            }
            let vbias = ep
                .bias
                .map(|b| _mm512_maskz_loadu_ps(mask, b.as_ptr().add(jb)));
            for (r, &v) in acc.iter().enumerate() {
                let v = apply_ep(v, vbias, relu);
                _mm512_mask_storeu_ps(out.data.as_mut_ptr().add((i + r) * m + jb), mask, v);
            }
        }
    }

    /// `out = act(A·Bᵀ + bias)` with fused 16-lane multiply-adds and the
    /// epilogue applied in-register. `out` must already be
    /// `A.rows × B.rows`; shapes and the ReLU/identity-only epilogue are
    /// the caller's contract ([`Matrix32::matmul_nt_ep`] checks them).
    ///
    /// # Safety
    /// The CPU must support AVX-512F (`is_x86_feature_detected!`).
    #[target_feature(enable = "avx512f")]
    pub unsafe fn matmul_nt(a: &Matrix32, b: &Matrix32, out: &mut Matrix32, ep: Epilogue<'_>) {
        let (n, m, k) = (a.rows, b.rows, a.cols);
        let mut bt = vec![0.0f32; k * m];
        for j in 0..m {
            for kk in 0..k {
                bt[kk * m + j] = b.data[j * k + kk];
            }
        }
        let tail = m % 16;
        let mask: __mmask16 = if tail == 0 { 0 } else { 0xFFFF >> (16 - tail) };
        let mut i = 0;
        while i + ROWS <= n {
            row_tile::<ROWS>(a, &bt, out, i, m, mask, ep);
            i += ROWS;
        }
        while i < n {
            row_tile::<1>(a, &bt, out, i, m, mask, ep);
            i += 1;
        }
    }
}

/// Lane-parallel `f32` dot product (eight partial sums, reduced at the
/// end); vectorizes to packed FMAs. Same reassociation caveat as
/// [`Matrix32::matmul_nt`].
#[inline]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let mut ach = a.chunks_exact(LANES);
    let mut bch = b.chunks_exact(LANES);
    for (ca, cb) in (&mut ach).zip(&mut bch) {
        for l in 0..LANES {
            acc[l] += ca[l] * cb[l];
        }
    }
    let mut s = 0.0f32;
    for lane in acc {
        s += lane;
    }
    for (x, y) in ach.remainder().iter().zip(bch.remainder()) {
        s += x * y;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_round_trip() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.5, -3.0, 0.0, 4.0, 5.5]);
        let m32 = Matrix32::from_f64(&m);
        assert_eq!(m32.rows(), 2);
        assert_eq!(m32.cols(), 3);
        assert_eq!(m32.row(1), &[0.0f32, 4.0, 5.5]);
        // These values are exactly representable, so the round trip is exact.
        assert_eq!(m32.to_f64(), m);
    }

    #[test]
    fn from_rows_demotes_and_keeps_width() {
        let m = Matrix32::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]], 2);
        assert_eq!(m.data(), &[1.0f32, 2.0, 3.0, 4.0]);
        let empty = Matrix32::from_rows(&[], 5);
        assert_eq!(empty.rows(), 0);
        assert_eq!(empty.cols(), 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn from_rows_checks_widths() {
        Matrix32::from_rows(&[vec![1.0], vec![1.0, 2.0]], 1);
    }

    #[test]
    fn matmul_nt_matches_f64_reference_within_tolerance() {
        // Shapes straddling the 8-column tile, the 8-lane k chunking, and
        // the L1 slab boundary.
        for (n, m, k) in [
            (1, 1, 1),
            (3, 5, 7),
            (8, 8, 8),
            (13, 9, 21),
            (4, 3, 64),
            (2, 513, 3),
            (7, 70, 33),
            (1, 16, 1000),
        ] {
            let a = Matrix::from_fn(n, k, |r, c| ((r * 31 + c * 17) as f64).sin());
            let b = Matrix::from_fn(m, k, |r, c| ((r * 13 + c * 7) as f64).cos());
            let exact = a.matmul_nt(&b);
            let fast = Matrix32::from_f64(&a).matmul_nt(&Matrix32::from_f64(&b));
            assert_eq!(fast.rows(), n);
            assert_eq!(fast.cols(), m);
            let tol = 1e-6 * (k as f64).max(1.0) * 4.0;
            for (x, y) in exact.data().iter().zip(fast.data()) {
                assert!(
                    (x - *y as f64).abs() <= tol,
                    "{n}x{m}x{k}: {x} vs {y} (tol {tol})"
                );
            }
        }
    }

    #[test]
    fn matmul_nt_degenerate_shapes() {
        let c = Matrix32::zeros(0, 4).matmul_nt(&Matrix32::zeros(3, 4));
        assert_eq!((c.rows(), c.cols()), (0, 3));
        let c = Matrix32::zeros(3, 4).matmul_nt(&Matrix32::zeros(0, 4));
        assert_eq!((c.rows(), c.cols()), (3, 0));
        let c = Matrix32::zeros(2, 0).matmul_nt(&Matrix32::zeros(5, 0));
        assert_eq!((c.rows(), c.cols()), (2, 5));
        assert!(c.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_nt_checks_inner_dims() {
        Matrix32::zeros(2, 3).matmul_nt(&Matrix32::zeros(2, 4));
    }

    /// Shapes straddling the 8- and 16-column tiles, the 8-lane k
    /// chunking, and the L1 slab boundary.
    const SHAPES: [(usize, usize, usize); 9] = [
        (1, 1, 1),
        (2, 4, 8),
        (3, 5, 7),
        (13, 9, 21),
        (5, 6, 64),
        (2, 513, 3),
        (7, 70, 33),
        (9, 17, 40),
        (1, 16, 1000),
    ];

    fn test_pair(n: usize, m: usize, k: usize) -> (Matrix32, Matrix32) {
        let a = Matrix32::from_f64(&Matrix::from_fn(n, k, |r, c| {
            ((r * 31 + c * 17) as f64).sin()
        }));
        let b = Matrix32::from_f64(&Matrix::from_fn(m, k, |r, c| {
            ((r * 13 + c * 7) as f64).cos()
        }));
        (a, b)
    }

    fn test_bias(m: usize) -> Vec<f32> {
        (0..m).map(|j| ((j as f32) * 0.21).sin() - 0.3).collect()
    }

    /// The runtime-dispatched microkernel and the portable fallback must
    /// agree within the accuracy contract on every tile shape (they are
    /// not bit-comparable: fused vs unfused rounding). No-op off x86_64 or
    /// on CPUs without AVX2+FMA, where dispatch already takes the portable
    /// path.
    #[test]
    #[cfg(target_arch = "x86_64")]
    fn avx_and_portable_kernels_agree() {
        if !avx::available() {
            return;
        }
        for (n, m, k) in SHAPES {
            let (a, b) = test_pair(n, m, k);
            let mut fused = Matrix32::zeros(n, m);
            // SAFETY: guarded by the `avx::available()` check above.
            unsafe { avx::matmul_nt(&a, &b, &mut fused, Epilogue::none()) };
            let mut portable = Matrix32::zeros(n, m);
            a.matmul_nt_portable(&b, &mut portable, Epilogue::none());
            let tol = 1e-6 * (k as f32).max(1.0) * 4.0;
            for (x, y) in fused.data().iter().zip(portable.data()) {
                assert!((x - y).abs() <= tol, "{n}x{m}x{k}: {x} vs {y} (tol {tol})");
            }
        }
    }

    /// The AVX-512F and AVX2 tiles accumulate each output as the same
    /// strictly ordered fused chain — only the column blocking differs —
    /// so on a CPU with both, they must agree **bitwise**, epilogue
    /// included. No-op without avx512f.
    #[test]
    #[cfg(target_arch = "x86_64")]
    fn avx512_and_avx2_agree_bitwise() {
        if !is_x86_feature_detected!("avx512f") || !avx::available() {
            return;
        }
        for (n, m, k) in SHAPES {
            let (a, b) = test_pair(n, m, k);
            let bias = test_bias(m);
            for ep in [
                Epilogue::none(),
                Epilogue::bias_only(&bias),
                Epilogue::new(&bias, Activation::Relu),
            ] {
                let mut wide = Matrix32::zeros(n, m);
                // SAFETY: guarded by the feature checks above.
                unsafe { avx512::matmul_nt(&a, &b, &mut wide, ep) };
                let mut narrow = Matrix32::zeros(n, m);
                // SAFETY: as above.
                unsafe { avx::matmul_nt(&a, &b, &mut narrow, ep) };
                for (x, y) in wide.data().iter().zip(narrow.data()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{n}x{m}x{k}: {x} vs {y}");
                }
            }
        }
    }

    /// Fused epilogue == unfused `matmul → add_row_bias → activation`
    /// composition, bitwise, for every kernel the dispatcher can pick on
    /// this machine (exercised through the public entry points, so this
    /// covers whichever kernel `KernelKind::detect()` selects) and for the
    /// post-pass (sigmoid) epilogue family too.
    #[test]
    fn fused_epilogue_matches_unfused_passes_bitwise() {
        for (n, m, k) in SHAPES {
            let (a, b) = test_pair(n, m, k);
            let bias = test_bias(m);
            for act in [
                Activation::Identity,
                Activation::Relu,
                Activation::Sigmoid,
                Activation::Tanh,
            ] {
                let fused = a.matmul_nt_ep(&b, Epilogue::new(&bias, act));
                let mut unfused = a.matmul_nt(&b);
                unfused.add_row_bias(&bias);
                act.apply_slice_f32(unfused.data_mut());
                for (x, y) in fused.data().iter().zip(unfused.data()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{n}x{m}x{k} {act:?}: {x} vs {y}");
                }
            }
        }
    }

    /// The portable kernel's fused epilogue must match the unfused passes
    /// bitwise as well — dispatch never picks it on a SIMD host, so pin it
    /// directly (this is the kernel every non-x86 target runs).
    #[test]
    fn portable_fused_epilogue_matches_unfused_bitwise() {
        for (n, m, k) in SHAPES {
            let (a, b) = test_pair(n, m, k);
            let bias = test_bias(m);
            let mut fused = Matrix32::zeros(n, m);
            a.matmul_nt_portable(&b, &mut fused, Epilogue::new(&bias, Activation::Relu));
            let mut unfused = Matrix32::zeros(n, m);
            a.matmul_nt_portable(&b, &mut unfused, Epilogue::none());
            unfused.add_row_bias(&bias);
            Activation::Relu.apply_slice_f32(unfused.data_mut());
            for (x, y) in fused.data().iter().zip(unfused.data()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{n}x{m}x{k}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn epilogue_bias_width_is_checked() {
        let a = Matrix32::zeros(2, 3);
        let b = Matrix32::zeros(4, 3);
        let bias = vec![0.0f32; 3]; // should be 4 (= b.rows)
        let err = std::panic::catch_unwind(|| a.matmul_nt_ep(&b, Epilogue::bias_only(&bias)));
        assert!(err.is_err());
    }

    #[test]
    fn kernel_kind_detect_is_coherent() {
        let kind = KernelKind::detect();
        let features = cpu_features();
        match kind {
            KernelKind::Avx512f => assert!(features.contains("avx512f")),
            KernelKind::Avx2Fma => {
                assert!(features.contains("avx2") && features.contains("fma"));
                assert!(!features.contains("avx512f"));
            }
            KernelKind::Portable => assert!(!features.contains("avx2")),
        }
        assert_eq!(kind.to_string(), kind.as_str());
    }

    #[test]
    fn dot_f32_matches_scalar() {
        for len in [0, 1, 7, 8, 9, 31, 64] {
            let a: Vec<f32> = (0..len).map(|i| (i as f32 * 0.3).sin()).collect();
            let b: Vec<f32> = (0..len).map(|i| (i as f32 * 0.7).cos()).collect();
            let scalar: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot_f32(&a, &b) - scalar).abs() < 1e-4, "len {len}");
        }
    }

    #[test]
    fn add_row_bias_broadcasts() {
        let mut m = Matrix32::zeros(2, 3);
        m.add_row_bias(&[1.0, 2.0, 3.0]);
        assert_eq!(m.row(0), &[1.0f32, 2.0, 3.0]);
        assert_eq!(m.row(1), &[1.0f32, 2.0, 3.0]);
    }
}
