//! Single-precision matrices for the pool-scoring fast path.
//!
//! Pool ranking only needs the *order* of logits, not their 16th decimal:
//! [`Matrix32`] stores `f32` and its [`Matrix32::matmul_nt`] kernel
//! accumulates in lane-parallel partial sums, which (unlike the strictly
//! ordered `f64` kernel in [`Matrix::matmul_nt`]) can run as packed FMAs —
//! twice the SIMD width and half the memory traffic of the `f64` path.
//!
//! Two kernels sit behind [`Matrix32::matmul_nt`]:
//!
//! * an explicit AVX2+FMA microkernel (`std::arch`, runtime-detected with
//!   `is_x86_feature_detected!`, so the portable build baseline stays
//!   SSE2) processing a 2-row × 4-column register tile of fused 8-lane
//!   multiply-adds,
//! * a portable lane-parallel fallback the autovectorizer can turn into
//!   packed (unfused) multiplies and adds on any target.
//!
//! ## Accuracy contract
//!
//! `f32` results agree with the `f64` reference to within a few units of
//! `f32` round-off, i.e. a relative error on the order of `1e-6` scaled by
//! the dot-product magnitude (`k · max|a| · max|b|`). They are **not**
//! bit-comparable across kernels — the fused path rounds once per
//! multiply-add, the portable path twice, so the same machine-level result
//! is only guaranteed *within* one kernel, not across CPU generations —
//! and must never feed gradient checks or parameter updates: training and
//! gradcheck stay on the `f64` path. What the fast path *does* guarantee
//! (pinned by proptests in `lte-core`) is that pool-scoring ranks agree
//! with the `f64` path for every pair of candidates whose `f64` scores are
//! separated by more than the `f32` noise floor.

use crate::matrix::{l1_block_rows_sized, Matrix};

/// SIMD lanes per accumulator chain: 8 × `f32` is one AVX2 register.
const LANES: usize = 8;

/// A dense row-major `rows × cols` matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix32 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix32 {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Demote an `f64` matrix (each element rounded to nearest `f32`).
    pub fn from_f64(m: &Matrix) -> Self {
        Self {
            rows: m.rows(),
            cols: m.cols(),
            data: m.data().iter().map(|&v| v as f32).collect(),
        }
    }

    /// Build from a slice of equally sized `f64` rows, demoting each value.
    /// `cols` must be passed explicitly so the empty batch keeps its width.
    ///
    /// # Panics
    /// Panics when any row's length differs from `cols`.
    pub fn from_rows(rows: &[Vec<f64>], cols: usize) -> Self {
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "row width mismatch");
            data.extend(row.iter().map(|&v| v as f32));
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Promote back to `f64` (exact: every `f32` is representable).
    pub fn to_f64(&self) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&v| v as f64).collect(),
        )
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Tiled `f32` matrix product with a transposed right operand:
    /// `C = A·Bᵀ` (`A` is `n × k`, `B` is `m × k`,
    /// `C[i][j] = ⟨A.row(i), B.row(j)⟩`).
    ///
    /// Dispatches at runtime to an explicit AVX2+FMA register-tile
    /// microkernel when the CPU supports it, and otherwise to a portable
    /// kernel with the same cache tiling as [`Matrix::matmul_nt`]
    /// (L1-resident slabs of `B`) whose inner loop keeps eight
    /// *lane-parallel* partial sums per output. Both kernels reassociate
    /// the `k`-sum, so results differ from a strictly ordered scalar sum —
    /// and between the two kernels — by normal `f32` round-off (see the
    /// module docs for the accuracy contract). Each output row still
    /// depends only on its own input row.
    ///
    /// ```
    /// use lte_nn::{Matrix, Matrix32};
    ///
    /// let a = Matrix::from_fn(3, 40, |r, c| ((r * 40 + c) as f64 * 0.1).sin());
    /// let b = Matrix::from_fn(5, 40, |r, c| ((r * 40 + c) as f64 * 0.2).cos());
    /// let exact = a.matmul_nt(&b);
    /// let fast = Matrix32::from_f64(&a).matmul_nt(&Matrix32::from_f64(&b));
    /// for (x, y) in exact.data().iter().zip(fast.data()) {
    ///     assert!((x - *y as f64).abs() < 1e-4); // f32 round-off, not drift
    /// }
    /// ```
    ///
    /// # Panics
    /// Panics when the inner dimensions (`cols`) disagree.
    pub fn matmul_nt(&self, other: &Matrix32) -> Matrix32 {
        assert_eq!(self.cols, other.cols, "matmul_nt inner dimension mismatch");
        let (n, m) = (self.rows, other.rows);
        let mut out = Matrix32::zeros(n, m);
        if n == 0 || m == 0 {
            return out;
        }
        #[cfg(target_arch = "x86_64")]
        if avx::available() {
            // SAFETY: AVX2 and FMA presence was just verified at runtime.
            unsafe { avx::matmul_nt(self, other, &mut out) };
            return out;
        }
        self.matmul_nt_portable(other, &mut out);
        out
    }

    /// Portable lane-parallel kernel behind [`Matrix32::matmul_nt`] — the
    /// fallback when the AVX2+FMA microkernel is unavailable; the test
    /// suite also pins it against the microkernel directly. `out` must
    /// already be `n × m`.
    fn matmul_nt_portable(&self, other: &Matrix32, out: &mut Matrix32) {
        const COLS: usize = 8;
        let (n, m, k) = (self.rows, other.rows, self.cols);
        let k_main = k - k % LANES;
        let slab = l1_block_rows_sized(k, COLS, std::mem::size_of::<f32>());
        let mut j0 = 0;
        while j0 < m {
            let j1 = (j0 + slab).min(m);
            for i in 0..n {
                let a = &self.data[i * k..(i + 1) * k];
                let orow = &mut out.data[i * m..(i + 1) * m];
                let mut j = j0;
                while j + COLS <= j1 {
                    let cols: [&[f32]; COLS] =
                        std::array::from_fn(|c| &other.data[(j + c) * k..(j + c + 1) * k]);
                    // Eight lane-parallel partial sums per column; the
                    // innermost loop is a packed FMA after vectorization.
                    let mut acc = [[0.0f32; LANES]; COLS];
                    let mut kk = 0;
                    while kk < k_main {
                        let ca: &[f32; LANES] = a[kk..kk + LANES].try_into().expect("lane chunk");
                        for c in 0..COLS {
                            let cb: &[f32; LANES] =
                                cols[c][kk..kk + LANES].try_into().expect("lane chunk");
                            let s = &mut acc[c];
                            for l in 0..LANES {
                                s[l] += ca[l] * cb[l];
                            }
                        }
                        kk += LANES;
                    }
                    for c in 0..COLS {
                        let mut s = 0.0f32;
                        for lane in acc[c] {
                            s += lane;
                        }
                        for kk in k_main..k {
                            s += a[kk] * cols[c][kk];
                        }
                        orow[j + c] = s;
                    }
                    j += COLS;
                }
                while j < j1 {
                    orow[j] = dot_f32(a, &other.data[j * k..(j + 1) * k]);
                    j += 1;
                }
            }
            j0 = j1;
        }
    }

    /// Add a bias vector to every row in place (`A.row(i) += b` for all i).
    ///
    /// # Panics
    /// Panics when `b.len() != cols`.
    pub fn add_row_bias(&mut self, b: &[f32]) {
        assert_eq!(b.len(), self.cols, "bias width mismatch");
        for r in 0..self.rows {
            for (v, bi) in self.row_mut(r).iter_mut().zip(b) {
                *v += bi;
            }
        }
    }
}

/// Explicit AVX2+FMA microkernel for [`Matrix32::matmul_nt`].
///
/// The build baseline is plain SSE2 so the workspace stays portable; this
/// module upgrades the hot kernel at *runtime* when the CPU reports AVX2
/// and FMA (`is_x86_feature_detected!` caches the CPUID probe, so the
/// check is a load + branch per matmul).
///
/// The classifier's matmuls are tall and skinny (thousands of pool rows,
/// `k = m = Ne ≈ 64`), where a dot-product kernel drowns in horizontal
/// reductions: at `k = 64` each output is only eight 8-lane FMAs, against
/// a ~6-op `hsum` + scalar store epilogue. This kernel is *broadcast*
/// -structured instead: `B` is transposed once per call (`k × m`,
/// L1-resident at classifier shapes, amortized over the row sweep), and
/// each 8-row × 8-column register tile accumulates
/// `acc[r] += broadcast(A[i+r][kk]) · Bᵀ[kk][j..j+8]` over the full `k`
/// before eight plain vector stores — no horizontal reduction anywhere.
/// Eight independent chains cover the FMA latency, and each `Bᵀ` load is
/// shared by all eight rows. Ragged column tails use masked loads/stores,
/// so any `m` (including the classifier head's `m = 1`) stays on the same
/// path.
///
/// Each output's `k`-sum is strictly ordered but *fused* (one rounding
/// per multiply-add, where the portable kernel rounds twice and
/// reassociates into lanes), so the two kernels agree only within the
/// module-level accuracy contract, never bitwise — pinned by
/// `avx_and_portable_kernels_agree`.
#[cfg(target_arch = "x86_64")]
mod avx {
    use super::Matrix32;
    use std::arch::x86_64::*;

    /// True when the running CPU supports the fused 8-lane path.
    #[inline]
    pub fn available() -> bool {
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
    }

    /// Rows per register tile: 8 accumulators is enough independent FMA
    /// chains to saturate both FMA ports past the instruction latency,
    /// while leaving registers for the shared `Bᵀ` load.
    const ROWS: usize = 8;

    /// Lane mask with the low `tail` of 8 lanes active (for ragged `m`).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn tail_mask(tail: usize) -> __m256i {
        let lanes: [i32; 8] = std::array::from_fn(|l| if l < tail { -1 } else { 0 });
        _mm256_loadu_si256(lanes.as_ptr() as *const __m256i)
    }

    /// Score `R` consecutive `A` rows starting at `i` against every column
    /// block of `bt` (the `k × m` transpose of `B`).
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn row_tile<const R: usize>(
        a: &Matrix32,
        bt: &[f32],
        out: &mut Matrix32,
        i: usize,
        m: usize,
        mask: __m256i,
    ) {
        let k = a.cols;
        let arows: [&[f32]; R] = std::array::from_fn(|r| &a.data[(i + r) * k..(i + r + 1) * k]);
        let m_main = m - m % 8;
        let mut jb = 0;
        while jb < m_main {
            let mut acc = [_mm256_setzero_ps(); R];
            for kk in 0..k {
                let vb = _mm256_loadu_ps(bt.as_ptr().add(kk * m + jb));
                for r in 0..R {
                    let va = _mm256_set1_ps(*arows[r].get_unchecked(kk));
                    acc[r] = _mm256_fmadd_ps(va, vb, acc[r]);
                }
            }
            for (r, &v) in acc.iter().enumerate() {
                _mm256_storeu_ps(out.data.as_mut_ptr().add((i + r) * m + jb), v);
            }
            jb += 8;
        }
        if jb < m {
            // Ragged column tail: inactive mask lanes neither fault on
            // load nor write on store.
            let mut acc = [_mm256_setzero_ps(); R];
            for kk in 0..k {
                let vb = _mm256_maskload_ps(bt.as_ptr().add(kk * m + jb), mask);
                for r in 0..R {
                    let va = _mm256_set1_ps(*arows[r].get_unchecked(kk));
                    acc[r] = _mm256_fmadd_ps(va, vb, acc[r]);
                }
            }
            for (r, &v) in acc.iter().enumerate() {
                _mm256_maskstore_ps(out.data.as_mut_ptr().add((i + r) * m + jb), mask, v);
            }
        }
    }

    /// `out = A·Bᵀ` with fused 8-lane multiply-adds. `out` must already be
    /// `A.rows × B.rows`; shapes are the caller's contract
    /// ([`Matrix32::matmul_nt`] checks them).
    ///
    /// # Safety
    /// The CPU must support AVX2 and FMA (check [`available`] first).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn matmul_nt(a: &Matrix32, b: &Matrix32, out: &mut Matrix32) {
        let (n, m, k) = (a.rows, b.rows, a.cols);
        // Transpose B once so the inner loop reads 8 consecutive output
        // columns per load; O(m·k) against the O(n·m·k) sweep below.
        let mut bt = vec![0.0f32; k * m];
        for j in 0..m {
            for kk in 0..k {
                bt[kk * m + j] = b.data[j * k + kk];
            }
        }
        let mask = tail_mask(m % 8);
        let mut i = 0;
        while i + ROWS <= n {
            row_tile::<ROWS>(a, &bt, out, i, m, mask);
            i += ROWS;
        }
        while i < n {
            row_tile::<1>(a, &bt, out, i, m, mask);
            i += 1;
        }
    }
}

/// Lane-parallel `f32` dot product (eight partial sums, reduced at the
/// end); vectorizes to packed FMAs. Same reassociation caveat as
/// [`Matrix32::matmul_nt`].
#[inline]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let mut ach = a.chunks_exact(LANES);
    let mut bch = b.chunks_exact(LANES);
    for (ca, cb) in (&mut ach).zip(&mut bch) {
        for l in 0..LANES {
            acc[l] += ca[l] * cb[l];
        }
    }
    let mut s = 0.0f32;
    for lane in acc {
        s += lane;
    }
    for (x, y) in ach.remainder().iter().zip(bch.remainder()) {
        s += x * y;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_round_trip() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.5, -3.0, 0.0, 4.0, 5.5]);
        let m32 = Matrix32::from_f64(&m);
        assert_eq!(m32.rows(), 2);
        assert_eq!(m32.cols(), 3);
        assert_eq!(m32.row(1), &[0.0f32, 4.0, 5.5]);
        // These values are exactly representable, so the round trip is exact.
        assert_eq!(m32.to_f64(), m);
    }

    #[test]
    fn from_rows_demotes_and_keeps_width() {
        let m = Matrix32::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]], 2);
        assert_eq!(m.data(), &[1.0f32, 2.0, 3.0, 4.0]);
        let empty = Matrix32::from_rows(&[], 5);
        assert_eq!(empty.rows(), 0);
        assert_eq!(empty.cols(), 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn from_rows_checks_widths() {
        Matrix32::from_rows(&[vec![1.0], vec![1.0, 2.0]], 1);
    }

    #[test]
    fn matmul_nt_matches_f64_reference_within_tolerance() {
        // Shapes straddling the 8-column tile, the 8-lane k chunking, and
        // the L1 slab boundary.
        for (n, m, k) in [
            (1, 1, 1),
            (3, 5, 7),
            (8, 8, 8),
            (13, 9, 21),
            (4, 3, 64),
            (2, 513, 3),
            (7, 70, 33),
            (1, 16, 1000),
        ] {
            let a = Matrix::from_fn(n, k, |r, c| ((r * 31 + c * 17) as f64).sin());
            let b = Matrix::from_fn(m, k, |r, c| ((r * 13 + c * 7) as f64).cos());
            let exact = a.matmul_nt(&b);
            let fast = Matrix32::from_f64(&a).matmul_nt(&Matrix32::from_f64(&b));
            assert_eq!(fast.rows(), n);
            assert_eq!(fast.cols(), m);
            let tol = 1e-6 * (k as f64).max(1.0) * 4.0;
            for (x, y) in exact.data().iter().zip(fast.data()) {
                assert!(
                    (x - *y as f64).abs() <= tol,
                    "{n}x{m}x{k}: {x} vs {y} (tol {tol})"
                );
            }
        }
    }

    #[test]
    fn matmul_nt_degenerate_shapes() {
        let c = Matrix32::zeros(0, 4).matmul_nt(&Matrix32::zeros(3, 4));
        assert_eq!((c.rows(), c.cols()), (0, 3));
        let c = Matrix32::zeros(3, 4).matmul_nt(&Matrix32::zeros(0, 4));
        assert_eq!((c.rows(), c.cols()), (3, 0));
        let c = Matrix32::zeros(2, 0).matmul_nt(&Matrix32::zeros(5, 0));
        assert_eq!((c.rows(), c.cols()), (2, 5));
        assert!(c.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_nt_checks_inner_dims() {
        Matrix32::zeros(2, 3).matmul_nt(&Matrix32::zeros(2, 4));
    }

    /// The runtime-dispatched microkernel and the portable fallback must
    /// agree within the accuracy contract on every tile shape (they are
    /// not bit-comparable: fused vs unfused rounding). No-op off x86_64 or
    /// on CPUs without AVX2+FMA, where dispatch already takes the portable
    /// path.
    #[test]
    #[cfg(target_arch = "x86_64")]
    fn avx_and_portable_kernels_agree() {
        if !avx::available() {
            return;
        }
        for (n, m, k) in [
            (1, 1, 1),
            (2, 4, 8),
            (3, 5, 7),
            (13, 9, 21),
            (5, 6, 64),
            (2, 513, 3),
            (7, 70, 33),
            (1, 16, 1000),
        ] {
            let a = Matrix32::from_f64(&Matrix::from_fn(n, k, |r, c| {
                ((r * 31 + c * 17) as f64).sin()
            }));
            let b = Matrix32::from_f64(&Matrix::from_fn(m, k, |r, c| {
                ((r * 13 + c * 7) as f64).cos()
            }));
            let mut fused = Matrix32::zeros(n, m);
            // SAFETY: guarded by the `avx::available()` check above.
            unsafe { avx::matmul_nt(&a, &b, &mut fused) };
            let mut portable = Matrix32::zeros(n, m);
            a.matmul_nt_portable(&b, &mut portable);
            let tol = 1e-6 * (k as f32).max(1.0) * 4.0;
            for (x, y) in fused.data().iter().zip(portable.data()) {
                assert!((x - y).abs() <= tol, "{n}x{m}x{k}: {x} vs {y} (tol {tol})");
            }
        }
    }

    #[test]
    fn dot_f32_matches_scalar() {
        for len in [0, 1, 7, 8, 9, 31, 64] {
            let a: Vec<f32> = (0..len).map(|i| (i as f32 * 0.3).sin()).collect();
            let b: Vec<f32> = (0..len).map(|i| (i as f32 * 0.7).cos()).collect();
            let scalar: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot_f32(&a, &b) - scalar).abs() < 1e-4, "len {len}");
        }
    }

    #[test]
    fn add_row_bias_broadcasts() {
        let mut m = Matrix32::zeros(2, 3);
        m.add_row_bias(&[1.0, 2.0, 3.0]);
        assert_eq!(m.row(0), &[1.0f32, 2.0, 3.0]);
        assert_eq!(m.row(1), &[1.0f32, 2.0, 3.0]);
    }
}
