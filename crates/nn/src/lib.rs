//! Minimal neural-network substrate for LTE's meta-learned UIS classifiers.
//!
//! The paper's classifier (§VI-A) is a composition of small fully connected
//! blocks trained in a few-shot regime: support sets of ~30 tuples, a few
//! local gradient steps, and first-order global (meta) updates over
//! thousands of tasks. Mature autograd frameworks are unnecessary (and the
//! Rust ML ecosystem is immature for few-shot training — see DESIGN.md);
//! what meta-learning *does* require, and what this crate provides, is:
//!
//! * exact gradients through fixed dense architectures ([`Mlp::backward`]),
//! * parameters as *flat vectors* that can be copied, blended, and updated
//!   arithmetically — the `θ ⇐ φ − σ·ωR` initialization (Eq. 6), local SGD
//!   (Eq. 12) and one-step global updates (Eq. 13) are all flat-vector
//!   operations,
//! * numerically stable binary-cross-entropy on logits ([`loss`]),
//! * [`Matrix`] arithmetic for the memory modules (attention reads,
//!   outer-product writes; Eqs. 7–10, 14–16).
//!
//! Gradient correctness is verified against finite differences in the test
//! suite ([`gradcheck`]).

pub mod activation;
pub mod dense;
pub mod gradcheck;
pub mod init;
pub mod loss;
pub mod matrix;
pub mod matrix32;
pub mod mlp;
pub mod optimizer;
pub mod qmatmul;

pub use activation::Activation;
pub use dense::Dense;
pub use matrix::Matrix;
pub use matrix32::{cpu_features, Epilogue, KernelKind, Matrix32};
pub use mlp::{Mlp, MlpCache};
pub use optimizer::{Adam, Sgd};
pub use qmatmul::{matmul_nt_ranked, QuantizedMat};
