//! Dense row-major matrices.
//!
//! Sized for LTE's workloads: layer weights are at most a few hundred by a
//! few hundred, and the memory modules are `m × ku` / `m × |θR|` with small
//! `m` (2–6). Straightforward loops optimize well at these sizes; no BLAS
//! needed.

use rand::Rng;

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Self { rows, cols, data }
    }

    /// Build element-wise from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Fill with independent uniform values in `[-a, a]`.
    pub fn uniform<R: Rng + ?Sized>(rows: usize, cols: usize, a: f64, rng: &mut R) -> Self {
        Self::from_fn(rows, cols, |_, _| crate::init::uniform_sym(rng, a))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix-vector product `y = A·x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *yr = acc;
        }
        y
    }

    /// Transposed matrix-vector product `y = Aᵀ·x` (x has `rows` entries,
    /// result has `cols`). This is the attention read `ωR = aRᵀ·MR` (Eq. 8).
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for (r, &xv) in x.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            let row = self.row(r);
            for (yi, a) in y.iter_mut().zip(row) {
                *yi += xv * a;
            }
        }
        y
    }

    /// In-place scale: `A *= s`.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// In-place axpy: `A += s·B`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Matrix, s: f64) {
        assert_eq!(self.rows, other.rows, "row mismatch");
        assert_eq!(self.cols, other.cols, "col mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// Accumulate a scaled outer product: `A += s·(u ⊗ v)` where `u` has
    /// `rows` entries and `v` has `cols`. This is the attentive memory write
    /// `M ⇐ η(aR × vᵀ) + (1−η)M` (Eq. 14) after a prior [`Matrix::scale`].
    pub fn add_outer(&mut self, u: &[f64], v: &[f64], s: f64) {
        assert_eq!(u.len(), self.rows, "outer row mismatch");
        assert_eq!(v.len(), self.cols, "outer col mismatch");
        for (r, &uv) in u.iter().enumerate() {
            let ur = s * uv;
            if ur == 0.0 {
                continue;
            }
            let row = self.row_mut(r);
            for (a, b) in row.iter_mut().zip(v) {
                *a += ur * b;
            }
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Build from a slice of equally sized rows. `cols` must be passed
    /// explicitly so the empty batch keeps its width.
    ///
    /// # Panics
    /// Panics when any row's length differs from `cols`.
    pub fn from_rows(rows: &[Vec<f64>], cols: usize) -> Self {
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "row width mismatch");
            data.extend_from_slice(row);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Blocked matrix product with a transposed right operand:
    /// `C = A·Bᵀ` where `A` is `n × k` and `B` is `m × k`, so
    /// `C[i][j] = ⟨A.row(i), B.row(j)⟩`.
    ///
    /// This is the batched-inference workhorse: a dense layer over a batch
    /// is `X·Wᵀ` with both operands row-major, so no transposition is ever
    /// materialized. The kernel computes eight output columns per pass:
    /// eight *independent* accumulator chains hide the floating-point add
    /// latency that serializes a single running dot product, which is where
    /// the batch path's speedup over a per-point [`dot`] loop comes from
    /// (~1.7× on the dot itself, more end-to-end once per-point allocation
    /// overhead is gone). Each chain still sums its column over `k` in
    /// index order — the same additions in the same order as the per-row
    /// [`Matrix::matvec`] path — so outputs are bit-identical to per-row
    /// evaluation, and each output row depends only on its own input row.
    ///
    /// # Panics
    /// Panics when the inner dimensions (`cols`) disagree.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt inner dimension mismatch");
        const COLS: usize = 8;
        let (n, m, k) = (self.rows, other.rows, self.cols);
        let mut out = Matrix::zeros(n, m);
        for i in 0..n {
            let a = &self.data[i * k..(i + 1) * k];
            let orow = &mut out.data[i * m..(i + 1) * m];
            let mut j = 0;
            while j + COLS <= m {
                let cols: [&[f64]; COLS] =
                    std::array::from_fn(|c| &other.data[(j + c) * k..(j + c + 1) * k]);
                let mut s = [0.0f64; COLS];
                for (kk, &av) in a.iter().enumerate() {
                    for c in 0..COLS {
                        s[c] += av * cols[c][kk];
                    }
                }
                orow[j..j + COLS].copy_from_slice(&s);
                j += COLS;
            }
            while j < m {
                orow[j] = dot(a, &other.data[j * k..(j + 1) * k]);
                j += 1;
            }
        }
        out
    }

    /// Add a bias vector to every row in place (`A.row(i) += b` for all i).
    ///
    /// # Panics
    /// Panics when `b.len() != cols`.
    pub fn add_row_bias(&mut self, b: &[f64]) {
        assert_eq!(b.len(), self.cols, "bias width mismatch");
        for r in 0..self.rows {
            for (v, bi) in self.row_mut(r).iter_mut().zip(b) {
                *v += bi;
            }
        }
    }
}

/// Dot product of equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Cosine similarity; zero vectors yield 0.
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let na = dot(a, a).sqrt();
    let nb = dot(b, b).sqrt();
    if na <= f64::EPSILON || nb <= f64::EPSILON {
        0.0
    } else {
        dot(a, b) / (na * nb)
    }
}

/// In-place numerically stable softmax.
pub fn softmax_inplace(x: &mut [f64]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in x.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in x.iter_mut() {
            *v /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    #[should_panic(expected = "data length mismatch")]
    fn from_vec_checks_length() {
        Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_matches_hand_computation() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        // Aᵀ·[1, -1] = [1-4, 2-5, 3-6]
        assert_eq!(m.matvec_t(&[1.0, -1.0]), vec![-3.0, -3.0, -3.0]);
    }

    #[test]
    fn add_outer_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(&[1.0, 2.0], &[3.0, 4.0], 0.5);
        assert_eq!(m.data(), &[1.5, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn scale_and_add_scaled() {
        let mut a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(1, 2, vec![10.0, 10.0]);
        a.scale(2.0);
        a.add_scaled(&b, 0.1);
        assert_eq!(a.data(), &[3.0, 5.0]);
    }

    #[test]
    fn cosine_properties() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let mut x = vec![1000.0, 1000.0, 999.0];
        softmax_inplace(&mut x);
        let sum: f64 = x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(x[0] > x[2]);
        assert!((x[0] - x[1]).abs() < 1e-12);
        // Empty input is a no-op.
        softmax_inplace(&mut []);
    }

    #[test]
    fn frobenius_norm() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn from_rows_round_trips() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]], 2);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        let empty = Matrix::from_rows(&[], 5);
        assert_eq!(empty.rows(), 0);
        assert_eq!(empty.cols(), 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn from_rows_checks_widths() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]], 1);
    }

    #[test]
    fn matmul_nt_matches_per_row_matvec_bitwise() {
        // Shapes straddling the 8-column kernel width to exercise the
        // column remainder path.
        for (n, m, k) in [(1, 1, 1), (3, 5, 7), (8, 8, 8), (13, 9, 21), (4, 3, 64)] {
            let a = Matrix::from_fn(n, k, |r, c| ((r * 31 + c * 17) as f64).sin());
            let b = Matrix::from_fn(m, k, |r, c| ((r * 13 + c * 7) as f64).cos());
            let c = a.matmul_nt(&b);
            assert_eq!(c.rows(), n);
            assert_eq!(c.cols(), m);
            for i in 0..n {
                let reference = b.matvec(a.row(i));
                for (j, r) in reference.iter().enumerate() {
                    assert_eq!(
                        c.get(i, j).to_bits(),
                        r.to_bits(),
                        "({i},{j}) of {n}x{m}x{k}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_nt_checks_inner_dims() {
        Matrix::zeros(2, 3).matmul_nt(&Matrix::zeros(2, 4));
    }

    #[test]
    fn add_row_bias_broadcasts() {
        let mut m = Matrix::zeros(2, 3);
        m.add_row_bias(&[1.0, 2.0, 3.0]);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
    }
}
