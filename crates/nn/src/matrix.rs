//! Dense row-major matrices — the exact (`f64`) compute path.
//!
//! Sized for LTE's workloads: layer weights are at most a few hundred by a
//! few hundred, the memory modules are `m × ku` / `m × |θR|` with small
//! `m` (2–6), and batched pool scoring multiplies a `pool × features`
//! operand against layer weights. The one genuinely hot kernel,
//! [`Matrix::matmul_nt`], is cache-tiled and register-blocked but keeps a
//! strict per-output summation order so batched results stay bit-identical
//! to per-row evaluation; the reassociating SIMD fast path lives in
//! [`crate::matrix32`]. No BLAS needed.

use rand::Rng;

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Self { rows, cols, data }
    }

    /// Build element-wise from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Fill with independent uniform values in `[-a, a]`.
    pub fn uniform<R: Rng + ?Sized>(rows: usize, cols: usize, a: f64, rng: &mut R) -> Self {
        Self::from_fn(rows, cols, |_, _| crate::init::uniform_sym(rng, a))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix-vector product `y = A·x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *yr = acc;
        }
        y
    }

    /// Transposed matrix-vector product `y = Aᵀ·x` (x has `rows` entries,
    /// result has `cols`). This is the attention read `ωR = aRᵀ·MR` (Eq. 8).
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for (r, &xv) in x.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            let row = self.row(r);
            for (yi, a) in y.iter_mut().zip(row) {
                *yi += xv * a;
            }
        }
        y
    }

    /// In-place scale: `A *= s`.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// In-place axpy: `A += s·B`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Matrix, s: f64) {
        assert_eq!(self.rows, other.rows, "row mismatch");
        assert_eq!(self.cols, other.cols, "col mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// Accumulate a scaled outer product: `A += s·(u ⊗ v)` where `u` has
    /// `rows` entries and `v` has `cols`. This is the attentive memory write
    /// `M ⇐ η(aR × vᵀ) + (1−η)M` (Eq. 14) after a prior [`Matrix::scale`].
    pub fn add_outer(&mut self, u: &[f64], v: &[f64], s: f64) {
        assert_eq!(u.len(), self.rows, "outer row mismatch");
        assert_eq!(v.len(), self.cols, "outer col mismatch");
        for (r, &uv) in u.iter().enumerate() {
            let ur = s * uv;
            if ur == 0.0 {
                continue;
            }
            let row = self.row_mut(r);
            for (a, b) in row.iter_mut().zip(v) {
                *a += ur * b;
            }
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Build from a slice of equally sized rows. `cols` must be passed
    /// explicitly so the empty batch keeps its width.
    ///
    /// # Panics
    /// Panics when any row's length differs from `cols`.
    pub fn from_rows(rows: &[Vec<f64>], cols: usize) -> Self {
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "row width mismatch");
            data.extend_from_slice(row);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Tiled matrix product with a transposed right operand:
    /// `C = A·Bᵀ` where `A` is `n × k` and `B` is `m × k`, so
    /// `C[i][j] = ⟨A.row(i), B.row(j)⟩`.
    ///
    /// This is the batched-inference workhorse: a dense layer over a batch
    /// is `X·Wᵀ` with both operands row-major, so no transposition is ever
    /// materialized. Three layers of blocking:
    ///
    /// * **cache tiling** — `B`'s rows are processed in slabs sized to stay
    ///   L1-resident (see [`l1_block_rows`]) while every row of `A` streams
    ///   over the slab, so large `B` operands are loaded from memory once
    ///   per slab instead of once per output row;
    /// * **register tiling** — two `A` rows are computed per pass, sharing
    ///   every load of the `B` slab between two output rows;
    /// * **8-wide column unroll** — each pass keeps eight *independent*
    ///   accumulator chains per `A` row, hiding the floating-point add
    ///   latency that serializes a single running dot product.
    ///
    /// Every accumulator still sums its output's products over `k` in index
    /// order — the same additions in the same order as the per-row
    /// [`Matrix::matvec`] path — so outputs are **bit-identical** to per-row
    /// evaluation regardless of shape or tiling, and each output row depends
    /// only on its own input row. This is the exact (`f64`) reference path;
    /// the [`Matrix32`](crate::matrix32::Matrix32) fast path trades this
    /// guarantee for SIMD throughput.
    ///
    /// ```
    /// use lte_nn::Matrix;
    ///
    /// // A: 2×3 batch, B: weight matrix stored row-major (2 outputs × 3 in).
    /// let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    /// let b = Matrix::from_vec(2, 3, vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0]);
    /// let c = a.matmul_nt(&b);
    /// assert_eq!(c.row(0), &[1.0, 2.0]); // ⟨row0, b_j⟩ picks components
    /// assert_eq!(c.row(1), &[4.0, 5.0]);
    /// ```
    ///
    /// # Panics
    /// Panics when the inner dimensions (`cols`) disagree.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt inner dimension mismatch");
        const COLS: usize = 8;
        let (n, m, k) = (self.rows, other.rows, self.cols);
        let mut out = Matrix::zeros(n, m);
        if n == 0 || m == 0 {
            return out;
        }
        let slab = l1_block_rows(k, 8);
        let mut j0 = 0;
        while j0 < m {
            let j1 = (j0 + slab).min(m);
            // Two A rows per pass share every load of the B slab.
            let mut i = 0;
            while i + 2 <= n {
                let (a0, a1) = {
                    let rows = &self.data[i * k..(i + 2) * k];
                    rows.split_at(k)
                };
                let (o0, o1) = {
                    let rows = &mut out.data[i * m..(i + 2) * m];
                    rows.split_at_mut(m)
                };
                let mut j = j0;
                while j + COLS <= j1 {
                    let cols: [&[f64]; COLS] =
                        std::array::from_fn(|c| &other.data[(j + c) * k..(j + c + 1) * k]);
                    let mut s0 = [0.0f64; COLS];
                    let mut s1 = [0.0f64; COLS];
                    for (kk, (&av0, &av1)) in a0.iter().zip(a1).enumerate() {
                        for c in 0..COLS {
                            let bv = cols[c][kk];
                            s0[c] += av0 * bv;
                            s1[c] += av1 * bv;
                        }
                    }
                    o0[j..j + COLS].copy_from_slice(&s0);
                    o1[j..j + COLS].copy_from_slice(&s1);
                    j += COLS;
                }
                while j < j1 {
                    let b = &other.data[j * k..(j + 1) * k];
                    o0[j] = dot(a0, b);
                    o1[j] = dot(a1, b);
                    j += 1;
                }
                i += 2;
            }
            if i < n {
                let a = &self.data[i * k..(i + 1) * k];
                let orow = &mut out.data[i * m..(i + 1) * m];
                let mut j = j0;
                while j + COLS <= j1 {
                    let cols: [&[f64]; COLS] =
                        std::array::from_fn(|c| &other.data[(j + c) * k..(j + c + 1) * k]);
                    let mut s = [0.0f64; COLS];
                    for (kk, &av) in a.iter().enumerate() {
                        for c in 0..COLS {
                            s[c] += av * cols[c][kk];
                        }
                    }
                    orow[j..j + COLS].copy_from_slice(&s);
                    j += COLS;
                }
                while j < j1 {
                    orow[j] = dot(a, &other.data[j * k..(j + 1) * k]);
                    j += 1;
                }
            }
            j0 = j1;
        }
        out
    }

    /// Add a bias vector to every row in place (`A.row(i) += b` for all i).
    ///
    /// # Panics
    /// Panics when `b.len() != cols`.
    pub fn add_row_bias(&mut self, b: &[f64]) {
        assert_eq!(b.len(), self.cols, "bias width mismatch");
        for r in 0..self.rows {
            for (v, bi) in self.row_mut(r).iter_mut().zip(b) {
                *v += bi;
            }
        }
    }
}

/// Dot product of equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Rows of a `rows × k` right-operand slab that fit a conservative L1
/// budget (~32 KiB), floored at `min_rows` so tiny inner dimensions never
/// degenerate the tile below the kernel width. `elem_size` is the scalar
/// width in bytes (8 for `f64`, 4 for `f32`).
pub(crate) fn l1_block_rows_sized(k: usize, min_rows: usize, elem_size: usize) -> usize {
    const L1_BUDGET_BYTES: usize = 32 * 1024;
    (L1_BUDGET_BYTES / (elem_size * k.max(1))).clamp(min_rows, 512)
}

/// [`Matrix::matmul_nt`]'s cache tile: how many rows of the `f64` right
/// operand are processed per slab. Exposed for the kernel benches.
pub fn l1_block_rows(k: usize, min_rows: usize) -> usize {
    l1_block_rows_sized(k, min_rows, std::mem::size_of::<f64>())
}

/// Cosine similarity; zero vectors yield 0.
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let na = dot(a, a).sqrt();
    let nb = dot(b, b).sqrt();
    if na <= f64::EPSILON || nb <= f64::EPSILON {
        0.0
    } else {
        dot(a, b) / (na * nb)
    }
}

/// In-place numerically stable softmax.
pub fn softmax_inplace(x: &mut [f64]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in x.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in x.iter_mut() {
            *v /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    #[should_panic(expected = "data length mismatch")]
    fn from_vec_checks_length() {
        Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_matches_hand_computation() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        // Aᵀ·[1, -1] = [1-4, 2-5, 3-6]
        assert_eq!(m.matvec_t(&[1.0, -1.0]), vec![-3.0, -3.0, -3.0]);
    }

    #[test]
    fn add_outer_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(&[1.0, 2.0], &[3.0, 4.0], 0.5);
        assert_eq!(m.data(), &[1.5, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn scale_and_add_scaled() {
        let mut a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(1, 2, vec![10.0, 10.0]);
        a.scale(2.0);
        a.add_scaled(&b, 0.1);
        assert_eq!(a.data(), &[3.0, 5.0]);
    }

    #[test]
    fn cosine_properties() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let mut x = vec![1000.0, 1000.0, 999.0];
        softmax_inplace(&mut x);
        let sum: f64 = x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(x[0] > x[2]);
        assert!((x[0] - x[1]).abs() < 1e-12);
        // Empty input is a no-op.
        softmax_inplace(&mut []);
    }

    #[test]
    fn frobenius_norm() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn from_rows_round_trips() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]], 2);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        let empty = Matrix::from_rows(&[], 5);
        assert_eq!(empty.rows(), 0);
        assert_eq!(empty.cols(), 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn from_rows_checks_widths() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]], 1);
    }

    #[test]
    fn matmul_nt_matches_per_row_matvec_bitwise() {
        // Shapes straddling the 8-column kernel width, the 2-row unroll,
        // and the L1 slab boundary (512 rows at small k) to exercise every
        // remainder path.
        for (n, m, k) in [
            (1, 1, 1),
            (3, 5, 7),
            (8, 8, 8),
            (13, 9, 21),
            (4, 3, 64),
            (2, 513, 3),
            (5, 520, 9),
            (1, 16, 1000),
        ] {
            let a = Matrix::from_fn(n, k, |r, c| ((r * 31 + c * 17) as f64).sin());
            let b = Matrix::from_fn(m, k, |r, c| ((r * 13 + c * 7) as f64).cos());
            let c = a.matmul_nt(&b);
            assert_eq!(c.rows(), n);
            assert_eq!(c.cols(), m);
            for i in 0..n {
                let reference = b.matvec(a.row(i));
                for (j, r) in reference.iter().enumerate() {
                    assert_eq!(
                        c.get(i, j).to_bits(),
                        r.to_bits(),
                        "({i},{j}) of {n}x{m}x{k}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_nt_checks_inner_dims() {
        Matrix::zeros(2, 3).matmul_nt(&Matrix::zeros(2, 4));
    }

    #[test]
    fn matmul_nt_degenerate_shapes() {
        // Empty left operand.
        let c = Matrix::zeros(0, 4).matmul_nt(&Matrix::zeros(3, 4));
        assert_eq!((c.rows(), c.cols()), (0, 3));
        // Empty right operand.
        let c = Matrix::zeros(3, 4).matmul_nt(&Matrix::zeros(0, 4));
        assert_eq!((c.rows(), c.cols()), (3, 0));
        // Zero inner dimension: well-defined all-zeros output.
        let c = Matrix::zeros(2, 0).matmul_nt(&Matrix::zeros(5, 0));
        assert_eq!((c.rows(), c.cols()), (2, 5));
        assert!(c.data().iter().all(|&v| v == 0.0));
        // Single row × single column.
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.matmul_nt(&b).data(), &[32.0]);
    }

    #[test]
    fn l1_block_rows_respects_bounds() {
        // Tiny k: capped at 512 rows; huge k: floored at the kernel width.
        assert_eq!(l1_block_rows(1, 8), 512);
        assert_eq!(l1_block_rows(1_000_000, 8), 8);
        // At k=64 the slab is 32 KiB / (8·64) = 64 rows.
        assert_eq!(l1_block_rows(64, 8), 64);
    }

    #[test]
    fn add_row_bias_broadcasts() {
        let mut m = Matrix::zeros(2, 3);
        m.add_row_bias(&[1.0, 2.0, 3.0]);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
    }
}
