//! Weight initialization.

use rand::Rng;

/// Uniform sample in `[-a, a]`.
pub fn uniform_sym<R: Rng + ?Sized>(rng: &mut R, a: f64) -> f64 {
    (rng.random::<f64>() * 2.0 - 1.0) * a
}

/// He (Kaiming) uniform bound for ReLU layers: `sqrt(6 / fan_in)`.
pub fn he_bound(fan_in: usize) -> f64 {
    (6.0 / fan_in.max(1) as f64).sqrt()
}

/// Xavier (Glorot) uniform bound: `sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_bound(fan_in: usize, fan_out: usize) -> f64 {
    (6.0 / (fan_in + fan_out).max(1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_sym_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            let v = uniform_sym(&mut rng, 0.3);
            assert!((-0.3..=0.3).contains(&v));
        }
    }

    #[test]
    fn bounds_shrink_with_fan() {
        assert!(he_bound(100) < he_bound(10));
        assert!(xavier_bound(100, 100) < xavier_bound(10, 10));
        // Guard against zero fan.
        assert!(he_bound(0).is_finite());
        assert!(xavier_bound(0, 0).is_finite());
    }
}
