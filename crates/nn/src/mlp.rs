//! Multi-layer perceptrons with flat-parameter access.
//!
//! Every block of the LTE classifier (UIS-feature embedding `f_θR`, tuple
//! embedding `f_θτ`, classification `f_θclf`; §VI-A) is an [`Mlp`]. The
//! meta-learner manipulates block parameters as flat vectors:
//! `|θR|`-length slices are stored per-row in the UIS-feature memory `MR`
//! (Eq. 8) and blended into initializations (Eq. 6), so [`Mlp::write_params`]
//! / [`Mlp::read_params`] define a stable flat layout (per layer: weights
//! row-major, then biases).

use crate::activation::Activation;
use crate::dense::Dense;
use crate::matrix::Matrix;
use crate::matrix32::Matrix32;
use rand::Rng;

/// A sequential stack of dense layers with per-layer activations.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Dense>,
    acts: Vec<Activation>,
}

/// Cached intermediate state of one forward pass, needed for backprop.
#[derive(Debug, Clone)]
pub struct MlpCache {
    /// Input to each layer (`inputs[0]` is the network input).
    inputs: Vec<Vec<f64>>,
    /// Pre-activation output of each layer.
    pre_acts: Vec<Vec<f64>>,
    /// Final output (post-activation of the last layer).
    output: Vec<f64>,
}

impl MlpCache {
    /// The forward output this cache corresponds to.
    pub fn output(&self) -> &[f64] {
        &self.output
    }
}

impl Mlp {
    /// Build an MLP with the given layer dimensions and hidden activation.
    ///
    /// `dims = [in, h1, ..., out]` produces `dims.len() - 1` layers; all but
    /// the last use `hidden_act`, the last uses `out_act`. Weights are
    /// He-uniform initialized.
    ///
    /// # Panics
    /// Panics when `dims` has fewer than two entries.
    pub fn new<R: Rng + ?Sized>(
        dims: &[usize],
        hidden_act: Activation,
        out_act: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(dims.len() >= 2, "an MLP needs at least one layer");
        let mut layers = Vec::with_capacity(dims.len() - 1);
        let mut acts = Vec::with_capacity(dims.len() - 1);
        for w in dims.windows(2) {
            layers.push(Dense::he_init(w[0], w[1], rng));
        }
        for i in 0..layers.len() {
            acts.push(if i + 1 == layers.len() {
                out_act
            } else {
                hidden_act
            });
        }
        Self { layers, acts }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }

    /// Copy all parameters into a flat vector.
    pub fn params(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.param_count()];
        self.write_params(&mut out);
        out
    }

    /// Copy all parameters into a flat slice.
    ///
    /// # Panics
    /// Panics when `out.len() != param_count()`.
    pub fn write_params(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.param_count(), "flat size mismatch");
        let mut off = 0;
        for layer in &self.layers {
            let n = layer.param_count();
            layer.write_params(&mut out[off..off + n]);
            off += n;
        }
    }

    /// Load all parameters from a flat slice.
    ///
    /// # Panics
    /// Panics when `src.len() != param_count()`.
    pub fn read_params(&mut self, src: &[f64]) {
        assert_eq!(src.len(), self.param_count(), "flat size mismatch");
        let mut off = 0;
        for layer in &mut self.layers {
            let n = layer.param_count();
            layer.read_params(&src[off..off + n]);
            off += n;
        }
    }

    /// Plain forward pass.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut cur = x.to_vec();
        for (layer, act) in self.layers.iter().zip(&self.acts) {
            let mut z = layer.forward(&cur);
            act.apply_slice(&mut z);
            cur = z;
        }
        cur
    }

    /// Batched forward pass: one input tuple per row of `x`
    /// (`batch × in_dim`), one output per row of the result
    /// (`batch × out_dim`). The batch form is the serving hot path: pool
    /// scoring does one matrix product per layer instead of a per-point
    /// `dot` loop. Each output row agrees with [`Mlp::forward`] on the
    /// corresponding input row bitwise (see [`Matrix::matmul_nt`]: the
    /// tiled kernel preserves per-output summation order) and depends
    /// only on that row — batch composition never changes a row's result.
    ///
    /// ```
    /// use lte_nn::{Activation, Matrix, Mlp};
    /// use rand::{rngs::StdRng, SeedableRng};
    ///
    /// let mut rng = StdRng::seed_from_u64(7);
    /// let mlp = Mlp::new(&[4, 8, 1], Activation::Relu, Activation::Identity, &mut rng);
    /// let rows = vec![vec![0.1, 0.2, 0.3, 0.4], vec![0.5, 0.6, 0.7, 0.8]];
    /// let batch = mlp.forward_batch(&Matrix::from_rows(&rows, 4));
    /// assert_eq!(batch.row(1), mlp.forward(&rows[1]).as_slice());
    /// ```
    ///
    /// # Panics
    /// Panics when `x.cols() != in_dim()`.
    pub fn forward_batch(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.in_dim(), "batch input width mismatch");
        let mut cur = None;
        for (layer, act) in self.layers.iter().zip(&self.acts) {
            let mut z = layer.forward_batch(cur.as_ref().unwrap_or(x));
            act.apply_slice(z.data_mut());
            cur = Some(z);
        }
        cur.expect("an MLP has at least one layer")
    }

    /// Single-precision batched forward pass: [`Mlp::forward_batch`] on
    /// the SIMD `f32` kernels with each layer's bias add and activation
    /// **fused into the kernel epilogue**
    /// ([`Dense::forward_batch_f32_act`]) — one sweep per layer output
    /// instead of three (matmul, bias pass, activation pass).
    /// Use for pool *ranking*, where only the order of outputs matters:
    /// outputs track the `f64` path to within `f32` round-off accumulated
    /// over the layers (see [`lte_nn::matrix32`](crate::matrix32) for the
    /// contract), but are not bit-comparable to it, and the `f64` path
    /// remains the reference for gradcheck and training.
    ///
    /// # Panics
    /// Panics when `x.cols() != in_dim()`.
    pub fn forward_batch_f32(&self, x: &Matrix32) -> Matrix32 {
        assert_eq!(x.cols(), self.in_dim(), "batch input width mismatch");
        let mut cur = None;
        for (layer, act) in self.layers.iter().zip(&self.acts) {
            let z = layer.forward_batch_f32_act(cur.as_ref().unwrap_or(x), *act);
            cur = Some(z);
        }
        cur.expect("an MLP has at least one layer")
    }

    /// i8-quantized batched forward pass (the `Ranked` scoring mode):
    /// every layer runs [`Dense::forward_batch_ranked`] — per-row absmax
    /// dynamic quantization of activations and weights, exact `i32`
    /// accumulation, fused dequant + bias + activation epilogue. Outputs
    /// are valid for **argmax-order ranking only**; quantization error is
    /// far outside the `f32` noise floor (see
    /// [`lte_nn::qmatmul`](crate::qmatmul) for the contract). Each output
    /// row depends only on its own input row (row-local scales), so
    /// block-parallel dispatch stays bitwise deterministic.
    ///
    /// # Panics
    /// Panics when `x.cols() != in_dim()`.
    pub fn forward_batch_ranked(&self, x: &Matrix32) -> Matrix32 {
        assert_eq!(x.cols(), self.in_dim(), "batch input width mismatch");
        let mut cur = None;
        for (layer, act) in self.layers.iter().zip(&self.acts) {
            let z = layer.forward_batch_ranked(cur.as_ref().unwrap_or(x), *act);
            cur = Some(z);
        }
        cur.expect("an MLP has at least one layer")
    }

    /// Forward pass retaining the per-layer state needed by
    /// [`Mlp::backward`].
    pub fn forward_cache(&self, x: &[f64]) -> MlpCache {
        let mut inputs = Vec::with_capacity(self.layers.len());
        let mut pre_acts = Vec::with_capacity(self.layers.len());
        let mut cur = x.to_vec();
        for (layer, act) in self.layers.iter().zip(&self.acts) {
            inputs.push(cur.clone());
            let z = layer.forward(&cur);
            pre_acts.push(z.clone());
            let mut a = z;
            act.apply_slice(&mut a);
            cur = a;
        }
        MlpCache {
            inputs,
            pre_acts,
            output: cur,
        }
    }

    /// Backward pass. `grad_out` is `dL/d(output)`; gradients are
    /// *accumulated* into `grad` (flat layout, same as [`Mlp::write_params`])
    /// and `dL/d(input)` is returned.
    ///
    /// # Panics
    /// Panics when `grad.len() != param_count()`.
    pub fn backward(&self, cache: &MlpCache, grad_out: &[f64], grad: &mut [f64]) -> Vec<f64> {
        assert_eq!(grad.len(), self.param_count(), "flat size mismatch");
        // Per-layer flat offsets.
        let mut offsets = Vec::with_capacity(self.layers.len());
        let mut off = 0;
        for layer in &self.layers {
            offsets.push(off);
            off += layer.param_count();
        }

        let mut dcur = grad_out.to_vec();
        for i in (0..self.layers.len()).rev() {
            // Through the activation: dz = da * act'(z).
            let act = self.acts[i];
            let pre = &cache.pre_acts[i];
            let mut dz = dcur;
            for (d, &z) in dz.iter_mut().zip(pre) {
                *d *= act.derivative(z);
            }
            let layer = &self.layers[i];
            let n = layer.param_count();
            let g = &mut grad[offsets[i]..offsets[i] + n];
            dcur = layer.backward(&cache.inputs[i], &dz, g);
        }
        dcur
    }

    /// In-place SGD step: `params -= lr · grad`.
    pub fn sgd_step(&mut self, grad: &[f64], lr: f64) {
        let mut flat = self.params();
        for (p, g) in flat.iter_mut().zip(grad) {
            *p -= lr * g;
        }
        self.read_params(&flat);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_and_counts() {
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = Mlp::new(&[4, 8, 2], Activation::Relu, Activation::Identity, &mut rng);
        assert_eq!(mlp.in_dim(), 4);
        assert_eq!(mlp.out_dim(), 2);
        assert_eq!(mlp.n_layers(), 2);
        assert_eq!(mlp.param_count(), (4 * 8 + 8) + (8 * 2 + 2));
        assert_eq!(mlp.forward(&[0.1, 0.2, 0.3, 0.4]).len(), 2);
    }

    #[test]
    fn param_round_trip_preserves_behavior() {
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(&[3, 5, 1], Activation::Tanh, Activation::Identity, &mut rng);
        let flat = mlp.params();
        let mut other = Mlp::new(&[3, 5, 1], Activation::Tanh, Activation::Identity, &mut rng);
        other.read_params(&flat);
        let x = [0.5, -0.5, 0.25];
        assert_eq!(mlp.forward(&x), other.forward(&x));
    }

    #[test]
    fn forward_cache_output_matches_forward() {
        let mut rng = StdRng::seed_from_u64(2);
        let mlp = Mlp::new(&[2, 4, 3], Activation::Relu, Activation::Sigmoid, &mut rng);
        let x = [0.3, -1.2];
        assert_eq!(mlp.forward(&x), mlp.forward_cache(&x).output());
    }

    #[test]
    fn forward_batch_rows_match_forward() {
        let mut rng = StdRng::seed_from_u64(7);
        let mlp = Mlp::new(
            &[6, 10, 4, 2],
            Activation::Relu,
            Activation::Sigmoid,
            &mut rng,
        );
        let rows: Vec<Vec<f64>> = (0..17)
            .map(|i| (0..6).map(|j| ((i * 6 + j) as f64 * 0.21).cos()).collect())
            .collect();
        let batch = mlp.forward_batch(&Matrix::from_rows(&rows, 6));
        assert_eq!(batch.rows(), 17);
        assert_eq!(batch.cols(), 2);
        for (i, row) in rows.iter().enumerate() {
            let single = mlp.forward(row);
            for (a, b) in batch.row(i).iter().zip(&single) {
                assert!((a - b).abs() <= 1e-12, "row {i}: {a} vs {b}");
            }
        }
        let empty = mlp.forward_batch(&Matrix::from_rows(&[], 6));
        assert_eq!(empty.rows(), 0);
        assert_eq!(empty.cols(), 2);
    }

    #[test]
    fn backward_matches_finite_differences() {
        // Smooth activations only: ReLU kinks break finite differences.
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new(
            &[3, 6, 4, 1],
            Activation::Tanh,
            Activation::Identity,
            &mut rng,
        );
        let x = [0.7, -0.2, 0.4];
        let max_err = gradcheck::max_param_grad_error(&mlp, &x);
        assert!(max_err < 1e-5, "max grad error {max_err}");
    }

    #[test]
    fn backward_input_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(4);
        let mlp = Mlp::new(
            &[3, 5, 1],
            Activation::Sigmoid,
            Activation::Identity,
            &mut rng,
        );
        let x = [0.1, 0.9, -0.4];
        let err = gradcheck::max_input_grad_error(&mlp, &x);
        assert!(err < 1e-5, "max input grad error {err}");
    }

    #[test]
    fn sgd_step_reduces_simple_loss() {
        // Minimize ||f(x)||² for a fixed input: loss must go down.
        let mut rng = StdRng::seed_from_u64(5);
        let mut mlp = Mlp::new(&[2, 8, 1], Activation::Tanh, Activation::Identity, &mut rng);
        let x = [0.5, -0.25];
        let loss = |m: &Mlp| -> f64 { m.forward(&x)[0].powi(2) };
        let before = loss(&mlp);
        for _ in 0..50 {
            let cache = mlp.forward_cache(&x);
            let dout = vec![2.0 * cache.output()[0]];
            let mut grad = vec![0.0; mlp.param_count()];
            mlp.backward(&cache, &dout, &mut grad);
            mlp.sgd_step(&grad, 0.1);
        }
        let after = loss(&mlp);
        assert!(after < before * 0.1, "before {before}, after {after}");
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn single_dim_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        Mlp::new(&[3], Activation::Relu, Activation::Identity, &mut rng);
    }
}
