//! Finite-difference gradient checking utilities.
//!
//! Meta-learning is unforgiving of gradient bugs: a subtly wrong backward
//! pass still "trains" but converges to mush, which would silently destroy
//! the paper's Meta-vs-Basic comparison. These helpers verify [`Mlp`]
//! gradients against central finite differences and are used by the test
//! suites of this crate and `lte-core`.

use crate::mlp::Mlp;

/// Scalar probe loss: sum of network outputs.
fn probe_loss(mlp: &Mlp, x: &[f64]) -> f64 {
    mlp.forward(x).iter().sum()
}

/// Maximum absolute error between analytic and numeric parameter gradients
/// for the probe loss `L = Σ outputs` at input `x`.
///
/// Use smooth activations (Tanh/Sigmoid/Identity); ReLU kinks make central
/// differences unreliable near zero pre-activations.
pub fn max_param_grad_error(mlp: &Mlp, x: &[f64]) -> f64 {
    let cache = mlp.forward_cache(x);
    let ones = vec![1.0; mlp.out_dim()];
    let mut grad = vec![0.0; mlp.param_count()];
    mlp.backward(&cache, &ones, &mut grad);

    let h = 1e-6;
    let flat = mlp.params();
    let mut worst = 0.0f64;
    let mut scratch = mlp.clone();
    for i in 0..flat.len() {
        let mut fp = flat.clone();
        fp[i] += h;
        scratch.read_params(&fp);
        let lp = probe_loss(&scratch, x);
        let mut fm = flat.clone();
        fm[i] -= h;
        scratch.read_params(&fm);
        let lm = probe_loss(&scratch, x);
        let numeric = (lp - lm) / (2.0 * h);
        worst = worst.max((numeric - grad[i]).abs());
    }
    worst
}

/// Maximum absolute error between analytic and numeric *input* gradients for
/// the probe loss at input `x`.
pub fn max_input_grad_error(mlp: &Mlp, x: &[f64]) -> f64 {
    let cache = mlp.forward_cache(x);
    let ones = vec![1.0; mlp.out_dim()];
    let mut grad = vec![0.0; mlp.param_count()];
    let dx = mlp.backward(&cache, &ones, &mut grad);

    let h = 1e-6;
    let mut worst = 0.0f64;
    for i in 0..x.len() {
        let mut xp = x.to_vec();
        xp[i] += h;
        let mut xm = x.to_vec();
        xm[i] -= h;
        let numeric = (probe_loss(mlp, &xp) - probe_loss(mlp, &xm)) / (2.0 * h);
        worst = worst.max((numeric - dx[i]).abs());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gradcheck_detects_correct_gradients() {
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = Mlp::new(&[2, 4, 2], Activation::Tanh, Activation::Identity, &mut rng);
        assert!(max_param_grad_error(&mlp, &[0.3, -0.6]) < 1e-5);
        assert!(max_input_grad_error(&mlp, &[0.3, -0.6]) < 1e-5);
    }
}
