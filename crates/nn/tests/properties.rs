//! Property-based tests for the neural substrate: backprop correctness on
//! random architectures and parameter-vector round-trips.

use lte_nn::activation::sigmoid;
use lte_nn::loss::bce_with_logits;
use lte_nn::matrix::{cosine, softmax_inplace};
use lte_nn::{gradcheck, Activation, Matrix, Mlp};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_dims() -> impl Strategy<Value = Vec<usize>> {
    // Random small architecture: 2–4 layers, widths 1–8.
    proptest::collection::vec(1usize..8, 3..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Analytic gradients match finite differences on arbitrary (smooth)
    /// architectures and inputs — the bedrock of all meta-learning here.
    #[test]
    fn gradients_match_finite_differences(dims in arb_dims(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(&dims, Activation::Tanh, Activation::Identity, &mut rng);
        let x: Vec<f64> = (0..dims[0]).map(|i| ((i as f64) * 0.37).sin()).collect();
        prop_assert!(gradcheck::max_param_grad_error(&mlp, &x) < 1e-4);
        prop_assert!(gradcheck::max_input_grad_error(&mlp, &x) < 1e-4);
    }

    /// Batched inference agrees with per-row inference to within 1e-12 on
    /// arbitrary architectures and batch sizes — the serving fast path must
    /// never change what a classifier predicts.
    #[test]
    fn forward_batch_agrees_with_per_row_forward(
        dims in arb_dims(),
        seed in 0u64..1000,
        batch in 0usize..24,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(&dims, Activation::Relu, Activation::Sigmoid, &mut rng);
        let rows: Vec<Vec<f64>> = (0..batch)
            .map(|i| {
                (0..dims[0])
                    .map(|j| ((i * dims[0] + j) as f64 * 0.39 + seed as f64 * 0.01).sin())
                    .collect()
            })
            .collect();
        let out = mlp.forward_batch(&Matrix::from_rows(&rows, dims[0]));
        prop_assert_eq!(out.rows(), batch);
        prop_assert_eq!(out.cols(), mlp.out_dim());
        for (i, row) in rows.iter().enumerate() {
            let single = mlp.forward(row);
            for (a, b) in out.row(i).iter().zip(&single) {
                prop_assert!((a - b).abs() <= 1e-12, "row {}: {} vs {}", i, a, b);
            }
        }
    }

    /// Batched scoring is read-only: parameters are untouched and analytic
    /// gradients still match finite differences afterwards.
    #[test]
    fn forward_batch_leaves_gradcheck_untouched(dims in arb_dims(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(&dims, Activation::Tanh, Activation::Identity, &mut rng);
        let before = mlp.params();
        let rows: Vec<Vec<f64>> = (0..9)
            .map(|i| (0..dims[0]).map(|j| ((i + j) as f64 * 0.23).cos()).collect())
            .collect();
        let _ = mlp.forward_batch(&Matrix::from_rows(&rows, dims[0]));
        prop_assert_eq!(mlp.params(), before, "forward_batch must not mutate parameters");
        let x: Vec<f64> = (0..dims[0]).map(|i| ((i as f64) * 0.37).sin()).collect();
        prop_assert!(gradcheck::max_param_grad_error(&mlp, &x) < 1e-4);
    }

    /// Parameter round-trips preserve network behaviour exactly.
    #[test]
    fn param_round_trip_is_identity(dims in arb_dims(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(&dims, Activation::Relu, Activation::Sigmoid, &mut rng);
        let flat = mlp.params();
        let mut clone = Mlp::new(&dims, Activation::Relu, Activation::Sigmoid, &mut rng);
        clone.read_params(&flat);
        let x: Vec<f64> = (0..dims[0]).map(|i| (i as f64) * 0.1).collect();
        prop_assert_eq!(mlp.forward(&x), clone.forward(&x));
    }

    /// Softmax output is a probability distribution for any finite input.
    #[test]
    fn softmax_is_distribution(xs in proptest::collection::vec(-500.0..500.0f64, 1..16)) {
        let mut v = xs;
        softmax_inplace(&mut v);
        let sum: f64 = v.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(v.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    /// Cosine similarity is bounded and symmetric.
    #[test]
    fn cosine_bounded_symmetric(
        a in proptest::collection::vec(-10.0..10.0f64, 4),
        b in proptest::collection::vec(-10.0..10.0f64, 4),
    ) {
        let c1 = cosine(&a, &b);
        let c2 = cosine(&b, &a);
        prop_assert!((c1 - c2).abs() < 1e-12);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c1));
    }

    /// BCE is non-negative, zero only for confident correct predictions,
    /// and its gradient is sigmoid(z) − y.
    #[test]
    fn bce_properties(z in -50.0..50.0f64, y in prop::bool::ANY) {
        let target = if y { 1.0 } else { 0.0 };
        let (loss, grad) = bce_with_logits(z, target);
        prop_assert!(loss >= 0.0);
        prop_assert!((grad - (sigmoid(z) - target)).abs() < 1e-12);
    }

    /// Matrix matvec_t is the adjoint of matvec: ⟨Ax, y⟩ = ⟨x, Aᵀy⟩.
    #[test]
    fn matvec_adjoint_identity(
        data in proptest::collection::vec(-5.0..5.0f64, 12),
        x in proptest::collection::vec(-5.0..5.0f64, 4),
        y in proptest::collection::vec(-5.0..5.0f64, 3),
    ) {
        let a = Matrix::from_vec(3, 4, data);
        let ax = a.matvec(&x);
        let aty = a.matvec_t(&y);
        let lhs: f64 = ax.iter().zip(&y).map(|(p, q)| p * q).sum();
        let rhs: f64 = x.iter().zip(&aty).map(|(p, q)| p * q).sum();
        prop_assert!((lhs - rhs).abs() < 1e-9, "adjoint identity violated");
    }
}
