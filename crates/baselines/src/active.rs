//! Active-learning primitives shared by AL-SVM and DSM.
//!
//! Both baselines drive exploration by *uncertainty sampling*: each round
//! the unlabeled pool tuple closest to the current decision boundary is
//! selected for labelling (§II, "select the tuples that are most difficult
//! to discriminate"). The pool is subsampled per round, which is the
//! standard scalability device in these systems.

use crate::svm::Svm;
use rand::Rng;

/// Labels pool tuples on demand. The index refers to the explorer's pool;
/// implementations may label from the feature vector (plain closures) or
/// look up side-channel data by index (e.g. raw un-normalized tuples when
/// the pool holds normalized features).
pub trait PoolOracle {
    /// True when pool tuple `index` (features `row`) is interesting.
    fn label(&self, index: usize, row: &[f64]) -> bool;
}

impl<F: Fn(usize, &[f64]) -> bool> PoolOracle for F {
    fn label(&self, index: usize, row: &[f64]) -> bool {
        self(index, row)
    }
}

/// A growing set of labeled examples, tracking which pool indices are used.
#[derive(Debug, Clone, Default)]
pub struct LabeledSet {
    /// Feature vectors of labeled tuples.
    pub x: Vec<Vec<f64>>,
    /// Labels (`true` = interesting).
    pub y: Vec<bool>,
    used: Vec<usize>,
}

impl LabeledSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of labels spent.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when nothing is labeled.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// True when both classes are present (an SVM can be trained).
    pub fn has_both_classes(&self) -> bool {
        self.y.iter().any(|&v| v) && self.y.iter().any(|&v| !v)
    }

    /// True when pool index `i` has already been labeled.
    pub fn is_used(&self, i: usize) -> bool {
        self.used.contains(&i)
    }

    /// Record a labeled pool tuple.
    pub fn add(&mut self, pool_index: usize, features: Vec<f64>, label: bool) {
        self.x.push(features);
        self.y.push(label);
        self.used.push(pool_index);
    }

    /// Count of positive labels.
    pub fn n_positive(&self) -> usize {
        self.y.iter().filter(|&&v| v).count()
    }
}

/// Draw up to `count` distinct unlabeled pool indices uniformly at random.
pub fn sample_unlabeled<R: Rng + ?Sized>(
    rng: &mut R,
    pool_len: usize,
    labeled: &LabeledSet,
    count: usize,
) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..pool_len).filter(|&i| !labeled.is_used(i)).collect();
    // Partial Fisher-Yates.
    let take = count.min(idx.len());
    for i in 0..take {
        let j = rng.random_range(i..idx.len());
        idx.swap(i, j);
    }
    idx.truncate(take);
    idx
}

/// Among `candidates` (pool indices), pick the one whose |decision value| is
/// smallest — the classic uncertainty-sampling criterion. Returns `None` for
/// an empty candidate list.
pub fn most_uncertain(svm: &Svm, pool: &[Vec<f64>], candidates: &[usize]) -> Option<usize> {
    candidates.iter().copied().min_by(|&a, &b| {
        let da = svm.decision(&pool[a]).abs();
        let db = svm.decision(&pool[b]).abs();
        da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svm::SvmConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn labeled_set_tracks_classes_and_usage() {
        let mut set = LabeledSet::new();
        assert!(set.is_empty());
        assert!(!set.has_both_classes());
        set.add(3, vec![1.0], true);
        assert!(!set.has_both_classes());
        set.add(5, vec![2.0], false);
        assert!(set.has_both_classes());
        assert!(set.is_used(3));
        assert!(!set.is_used(4));
        assert_eq!(set.len(), 2);
        assert_eq!(set.n_positive(), 1);
    }

    #[test]
    fn sample_unlabeled_skips_used_indices() {
        let mut set = LabeledSet::new();
        set.add(0, vec![0.0], true);
        set.add(1, vec![0.0], false);
        let mut rng = StdRng::seed_from_u64(0);
        let s = sample_unlabeled(&mut rng, 5, &set, 10);
        assert_eq!(s.len(), 3);
        assert!(!s.contains(&0) && !s.contains(&1));
    }

    #[test]
    fn most_uncertain_picks_boundary_point() {
        // Boundary is x=0-ish for symmetric data.
        let x = vec![vec![-2.0], vec![-1.0], vec![1.0], vec![2.0]];
        let y = vec![false, false, true, true];
        let svm = Svm::train(&x, &y, &SvmConfig::default()).unwrap();
        let pool = vec![vec![-3.0], vec![0.05], vec![3.0]];
        let pick = most_uncertain(&svm, &pool, &[0, 1, 2]).unwrap();
        assert_eq!(pick, 1);
        assert!(most_uncertain(&svm, &pool, &[]).is_none());
    }
}
